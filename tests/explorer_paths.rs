//! Integration pins for the path-enumerating filter explorer.
//!
//! 1. The calibrated loopy/multi-branch family
//!    ([`cr_targets::browsers::LOOPY_CASES`]) is the misclassification
//!    regression: the single-shot pipeline provably gets the pinned
//!    cases wrong (a mix of widened spill reloads and budget-burning
//!    loop tails) while the explorer classifies every case correctly
//!    under feasibility pruning.
//! 2. A proptest drives random branchy filters through the incremental
//!    explorer (hash-consed arena + watched-literal push/pop) and the
//!    independent-blast explorer running on the retained reference
//!    pipeline; merged and per-path results must be identical.
//! 3. Parallel determinism: the fork scheduler at `jobs ∈ {2,4}` must
//!    produce byte-identical [`cr_symex::ExplorationReport`]s to the
//!    sequential explorer — over random branchy filters (proptest) and
//!    over the whole LOOPY family — and a `worker.panic` chaos run must
//!    either merge the same report after retry or fail cleanly, never
//!    return a torn report. Solver-counter checks go through the scoped
//!    [`SolverCounters`] snapshot/delta API: the raw statics are
//!    process-global and bleed across concurrently running tests.

use cr_image::{FilterRef, Machine, PeBuilder, PeImage, ScopeEntry};
use cr_isa::{AluOp, Asm, Cond, Inst, Mem as M, Reg, Rm, Width};
use cr_symex::{
    ExplorationReport, FilterExplorer, FilterVerdict, SolverCounters, SymExec,
    EXCEPTION_ACCESS_VIOLATION,
};
use cr_targets::browsers::{generate_loopy_dll, LOOPY_CASES};
use proptest::prelude::*;

#[test]
fn loopy_family_pins_the_single_shot_misclassification() {
    let img = generate_loopy_dll();
    let code = cr_core::seh::PeCode::new(&img);
    let explorer = FilterExplorer::builder().build();
    let mut single_shot_wrong = 0;
    for case in &LOOPY_CASES {
        let addr = img.image_base + u64::from(img.exports[case.name]);

        // The explorer must be exact on every case.
        let report = explorer.explore(&code, addr);
        match (case.accepts_av, &report.verdict) {
            (true, FilterVerdict::AcceptsAccessViolation { witness_code }) => {
                assert_eq!(*witness_code, EXCEPTION_ACCESS_VIOLATION, "{}", case.name);
            }
            (false, FilterVerdict::RejectsAccessViolation) => {}
            (want, got) => panic!(
                "explorer misclassified {}: accepts_av={want}, got {got:?}",
                case.name
            ),
        }
        assert!(
            report.aborted_paths.is_empty(),
            "{}: explorer aborted paths {:?}",
            case.name,
            report.aborted_paths
        );

        // The single-shot pipeline's correctness is pinned per case: if
        // it ever starts getting a pinned-wrong case right (or vice
        // versa), this calibration must be revisited.
        let ss = SymExec::default().analyze_filter(&code, addr).verdict;
        let ss_correct = matches!(
            (case.accepts_av, &ss),
            (true, FilterVerdict::AcceptsAccessViolation { .. })
                | (false, FilterVerdict::RejectsAccessViolation)
        );
        assert_eq!(
            ss_correct, case.single_shot_correct,
            "single-shot on {}: {ss:?}",
            case.name
        );
        if !ss_correct {
            single_shot_wrong += 1;
        }
    }
    assert!(
        single_shot_wrong >= 1,
        "the family must keep at least one single-shot misclassification"
    );
}

/// A random branchy (loop-free) exception filter; a trimmed version of
/// the `filter_soundness` decision tree, here only to diversify path
/// shapes for the per-path differential below.
#[derive(Debug, Clone)]
enum FilterAst {
    Ret(i32),
    IfCodeEq(u32, Box<FilterAst>, Box<FilterAst>),
    IfFlagsBit(u32, Box<FilterAst>, Box<FilterAst>),
}

impl FilterAst {
    fn emit(&self, a: &mut Asm) {
        match self {
            FilterAst::Ret(c) => {
                a.mov_ri(Reg::Rax, *c as i64 as u64);
                a.ret();
            }
            FilterAst::IfCodeEq(k, t, e) => {
                a.inst(Inst::AluRmI {
                    op: AluOp::Cmp,
                    dst: Rm::Reg(Reg::R10),
                    imm: *k as i32,
                    width: Width::B4,
                });
                let els = a.fresh();
                a.jcc(Cond::Ne, els);
                t.emit(a);
                a.bind(els);
                e.emit(a);
            }
            FilterAst::IfFlagsBit(m, t, e) => {
                a.mov_rr(Reg::R11, Reg::R8);
                a.and_ri(Reg::R11, *m as i32);
                a.cmp_ri(Reg::R11, 0);
                let els = a.fresh();
                a.jcc(Cond::E, els);
                t.emit(a);
                a.bind(els);
                e.emit(a);
            }
        }
    }
}

fn arb_filter() -> impl Strategy<Value = FilterAst> {
    let leaf = prop_oneof![
        Just(FilterAst::Ret(0)),
        Just(FilterAst::Ret(1)),
        Just(FilterAst::Ret(-1)),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![Just(0xC000_0005u32), Just(0xC000_0094), Just(0x8000_0003),],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(k, a, b)| FilterAst::IfCodeEq(k, Box::new(a), Box::new(b))),
            (
                prop_oneof![Just(1u32), Just(2), Just(0x10)],
                inner.clone(),
                inner
            )
                .prop_map(|(m, a, b)| FilterAst::IfFlagsBit(
                    m,
                    Box::new(a),
                    Box::new(b)
                )),
        ]
    })
}

const BASE: u64 = 0x7FFC_4000_0000;

fn build_module(ast: &FilterAst) -> PeImage {
    let mut a = Asm::new(BASE + 0x1000);
    a.global("Filter");
    a.load(Reg::R9, M::base(Reg::Rcx));
    a.inst(Inst::MovRRm {
        dst: Reg::R10,
        src: Rm::Mem(M::base(Reg::R9)),
        width: Width::B4,
    });
    a.inst(Inst::MovRRm {
        dst: Reg::R8,
        src: Rm::Mem(M::base_disp(Reg::R9, 4)),
        width: Width::B4,
    });
    ast.emit(&mut a);
    a.global("filter_end");
    a.align(16);
    a.global("Guarded");
    a.global("g_tb");
    a.load(Reg::Rax, M::base(Reg::Rcx));
    a.global("g_te");
    a.ret();
    a.global("g_ex");
    a.mov_ri(Reg::Rax, 0xEEEE_0001);
    a.ret();
    a.global("g_end");
    let asm = a.assemble().unwrap();
    let rva = |s: &str| (asm.sym(s) - BASE) as u32;
    let mut b = PeBuilder::new("paths.dll", Machine::X64, BASE);
    b.export("Filter", rva("Filter"));
    b.function_with_seh(
        rva("Guarded"),
        rva("g_end"),
        rva("Filter"),
        vec![ScopeEntry {
            begin_rva: rva("g_tb"),
            end_rva: rva("g_te"),
            filter: FilterRef::Function(rva("Filter")),
            target_rva: rva("g_ex"),
        }],
    );
    b.function(rva("Filter"), rva("filter_end"));
    b.text(0x1000, asm.code);
    PeImage::parse(&b.build()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Watched-vs-reference per-path differential: the incremental
    /// explorer (production solver state) and the independent-blast
    /// explorer running on the retained reference pipeline must agree
    /// on the merged verdict and on every per-path record.
    #[test]
    fn incremental_and_reference_explorers_agree_per_path(ast in arb_filter()) {
        let img = build_module(&ast);
        let addr = img.image_base + u64::from(img.exports["Filter"]);
        let code = cr_core::seh::PeCode::new(&img);
        let incremental = FilterExplorer::builder().build().explore(&code, addr);
        let reference = cr_symex::with_reference_pipeline(|| {
            FilterExplorer::builder()
                .incremental(false)
                .build()
                .explore(&code, addr)
        });
        prop_assert_eq!(&incremental.verdict, &reference.verdict, "for {:?}", ast);
        prop_assert_eq!(incremental.paths.len(), reference.paths.len());
        for (p, q) in incremental.paths.iter().zip(&reference.paths) {
            prop_assert_eq!(&p.verdict, &q.verdict);
            prop_assert_eq!(p.steps, q.steps);
            prop_assert_eq!(p.depth, q.depth);
        }
        prop_assert_eq!(incremental.completed_paths, reference.completed_paths);
        prop_assert_eq!(&incremental.aborted_paths, &reference.aborted_paths);
        prop_assert_eq!(incremental.pruned_branches, reference.pruned_branches);
        prop_assert_eq!(incremental.steps, reference.steps);
    }

    /// Parallel determinism over random branchy filters: any worker
    /// count must reproduce the sequential report byte for byte. The
    /// filter is explored once first so the normalized-query memo is
    /// warm for both runs — report memo counters reflect memo state at
    /// exploration start, which is the one process-global input.
    #[test]
    fn parallel_exploration_matches_sequential(
        ast in arb_filter(),
        jobs in prop_oneof![Just(2usize), Just(4usize)],
    ) {
        let img = build_module(&ast);
        let addr = img.image_base + u64::from(img.exports["Filter"]);
        let code = cr_core::seh::PeCode::new(&img);
        let _ = FilterExplorer::builder().build().explore(&code, addr);
        let sequential = FilterExplorer::builder().build().explore(&code, addr);
        let parallel = FilterExplorer::builder()
            .jobs(jobs)
            .build()
            .explore(&code, addr);
        prop_assert_eq!(&sequential, &parallel, "jobs={} for {:?}", jobs, ast);
    }
}

/// Every filter entry of the LOOPY family, in canonical (sorted RVA)
/// order — the same batch the CLI's `explore --jobs` runs.
fn loopy_entries(img: &PeImage) -> Vec<u64> {
    let mut rvas: Vec<u32> = img
        .runtime_functions
        .iter()
        .flat_map(|rf| rf.unwind.scopes.iter())
        .filter_map(|s| match s.filter {
            FilterRef::Function(rva) => Some(rva),
            FilterRef::CatchAll => None,
        })
        .collect();
    rvas.sort_unstable();
    rvas.dedup();
    rvas.iter()
        .map(|&rva| img.image_base + u64::from(rva))
        .collect()
}

#[test]
fn loopy_family_parallel_batch_is_byte_identical() {
    let img = generate_loopy_dll();
    let code = cr_core::seh::PeCode::new(&img);
    let entries = loopy_entries(&img);
    // Warm the memo so per-report memo counters don't depend on what
    // other tests in this process have already explored.
    for &e in &entries {
        let _ = FilterExplorer::builder().build().explore(&code, e);
    }
    let sequential: Vec<ExplorationReport> = entries
        .iter()
        .map(|&e| FilterExplorer::builder().build().explore(&code, e))
        .collect();
    for jobs in [2usize, 4] {
        let before = SolverCounters::snapshot();
        let (parallel, stats) = FilterExplorer::builder()
            .jobs(jobs)
            .build()
            .explore_batch(&code, &entries);
        assert_eq!(sequential, parallel, "jobs={jobs}");
        assert_eq!(stats.jobs, jobs);
        // Scoped deltas, not absolute statics: other tests may run
        // concurrently in this process, so the delta is a floor (our
        // own activity) rather than an exact figure.
        let d = before.delta();
        let completed: u64 = parallel.iter().map(|r| r.completed_paths as u64).sum();
        let pruned: u64 = parallel.iter().map(|r| r.pruned_branches as u64).sum();
        assert!(
            d.paths_completed >= completed,
            "jobs={jobs}: completed delta {} < report total {completed}",
            d.paths_completed
        );
        assert!(
            d.paths_pruned >= pruned,
            "jobs={jobs}: pruned delta {} < report total {pruned}",
            d.paths_pruned
        );
        assert!(d.memo_hits <= d.memo_lookups, "jobs={jobs}");
    }
}

#[test]
fn loopy_family_worker_panic_never_tears_the_report() {
    use std::sync::atomic::{AtomicBool, Ordering};
    static FIRED: AtomicBool = AtomicBool::new(false);
    fn blow_once(_worker: usize, _attempt: u64) {
        if !FIRED.swap(true, Ordering::SeqCst) {
            panic!("chaos: exploration worker down");
        }
    }

    let img = generate_loopy_dll();
    let code = cr_core::seh::PeCode::new(&img);
    let entries = loopy_entries(&img);
    for &e in &entries {
        let _ = FilterExplorer::builder().build().explore(&code, e);
    }
    let sequential: Vec<ExplorationReport> = entries
        .iter()
        .map(|&e| FilterExplorer::builder().build().explore(&code, e))
        .collect();

    // A one-shot worker panic is retried on a rebuilt session and the
    // batch still merges to the exact sequential reports.
    FIRED.store(false, Ordering::SeqCst);
    let (chaotic, _) = FilterExplorer::builder()
        .jobs(2)
        .chaos_hook(blow_once)
        .build()
        .explore_batch(&code, &entries);
    assert!(FIRED.load(Ordering::SeqCst), "chaos hook never fired");
    assert_eq!(sequential, chaotic, "retried batch must merge identically");

    // A persistent panic propagates as a clean failure: the caller gets
    // the panic payload, never a partially merged report.
    fn always_blow(_worker: usize, _attempt: u64) {
        panic!("chaos: persistent worker failure");
    }
    let ex = FilterExplorer::builder()
        .jobs(2)
        .chaos_hook(always_blow)
        .build();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ex.explore_batch(&code, &entries)
    }));
    let payload = out.expect_err("persistent panic must propagate, not produce a report");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("non-str payload");
    assert!(msg.contains("persistent worker failure"), "{msg}");
}
