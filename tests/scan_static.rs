//! End-to-end contract of the traceless scanner (cr-scan):
//!
//! * **Recall** — on every calibrated server, static discovery finds
//!   every syscall site the dynamic taint observer confirms
//!   (`taint_only` empty, recall 1.0).
//! * **Temporal sanity** — serving-phase primitives (the sites the
//!   paper's attacks actually use) are tagged serving-reachable, and
//!   init-phase setup syscalls are not.
//! * **Unharnessed corpus** — a module with no dynamic harness scans
//!   end-to-end with all four temporal tags in evidence.
//! * **Determinism** — report bytes are identical across repeated
//!   runs and independent of any prior state.

use cr_scan::{cross_validate, scan_elf, Origin, Temporal};

fn server(name: &str) -> cr_targets::ServerTarget {
    cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == name)
        .expect("known server")
}

#[test]
fn static_recall_is_total_on_every_calibrated_server() {
    for t in cr_targets::all_servers() {
        let (scan, agreement) = cross_validate(&t);
        assert!(
            agreement.taint_only.is_empty(),
            "{}: scanner missed dynamically confirmed sites {:?}",
            t.name,
            agreement.taint_only
        );
        assert_eq!(agreement.recall(), 1.0, "{}", t.name);
        assert!(
            !agreement.matched.is_empty(),
            "{}: the workload must confirm at least one site",
            t.name
        );
        // The static side must also see strictly more than the
        // workload exercises — that surplus is the whole point of a
        // traceless backend.
        assert!(
            scan.sites.len() >= agreement.matched.len(),
            "{}: static site set can't be smaller than the matched set",
            t.name
        );
    }
}

#[test]
fn serving_loops_are_recognized_on_every_server() {
    for t in cr_targets::all_servers() {
        let scan = scan_elf(t.name, &t.image);
        assert!(
            !scan.serving_roots.is_empty(),
            "{}: no serving-loop marker matched",
            t.name
        );
        let serving = scan
            .sites
            .iter()
            .filter(|s| matches!(s.temporal, Temporal::Serving | Temporal::Both))
            .count();
        assert!(serving > 0, "{}: no serving-phase sites", t.name);
    }
}

#[test]
fn lighttpd_socket_setup_is_init_only_and_read_is_serving() {
    let t = server("lighttpd");
    let scan = scan_elf(t.name, &t.image);
    let by_nr = |nr: u64| {
        scan.sites
            .iter()
            .filter(move |s| s.nr() == Some(nr))
            .collect::<Vec<_>>()
    };
    use cr_os::linux::syscall::nr;
    for s in by_nr(nr::SOCKET) {
        assert_eq!(
            s.temporal,
            Temporal::InitOnly,
            "socket() runs before the loop"
        );
    }
    let reads = by_nr(nr::READ);
    assert!(!reads.is_empty(), "read sites resolved to constants");
    assert!(
        reads
            .iter()
            .any(|s| matches!(s.temporal, Temporal::Serving | Temporal::Both)),
        "the ⊕ read primitive must be serving-reachable"
    );
}

#[test]
fn unharnessed_corpus_module_scans_end_to_end() {
    let m = cr_targets::corpus::module("vsftpd").expect("corpus module");
    let scan = scan_elf(m.name, &m.image);

    // All four temporal flavors are present by construction.
    let tag_count = |t: Temporal| scan.sites.iter().filter(|s| s.temporal == t).count();
    assert!(tag_count(Temporal::InitOnly) > 0, "socket/bind/listen");
    assert!(tag_count(Temporal::Serving) > 0, "accept/read/close");
    assert!(tag_count(Temporal::Both) > 0, "shared log helper");
    assert!(tag_count(Temporal::Unreached) > 0, "dead shutdown path");

    // The config-driven site's number is memory-loaded from the config
    // cell — reported as such, never guessed.
    let loaded: Vec<_> = scan
        .sites
        .iter()
        .filter(|s| matches!(s.number, Origin::MemoryLoaded { .. }))
        .collect();
    assert_eq!(loaded.len(), 1, "exactly one config-driven site");
    assert_eq!(
        loaded[0].number,
        Origin::MemoryLoaded {
            addr: Some(cr_targets::corpus::F_OPCELL)
        }
    );
    assert!(loaded[0].nr().is_none(), "no number claimed for it");

    // The serving-phase read's buffer argument traces to the writable
    // pointer field — the corruption-monitor shape, found statically.
    use cr_os::linux::syscall::nr;
    let read = scan
        .sites
        .iter()
        .find(|s| s.nr() == Some(nr::READ))
        .expect("read site");
    assert!(matches!(read.temporal, Temporal::Serving | Temporal::Both));
    let buf = read.args.iter().find(|a| a.index == 1).expect("buf arg");
    assert_eq!(
        buf.origin,
        Origin::MemoryLoaded {
            addr: Some(cr_targets::corpus::F_BUFPTR)
        }
    );
}

#[test]
fn scan_reports_are_byte_identical_across_runs() {
    for t in cr_targets::all_servers() {
        let a = scan_elf(t.name, &t.image).to_json();
        let b = scan_elf(t.name, &t.image).to_json();
        assert_eq!(a, b, "{}", t.name);
    }
    let m = cr_targets::corpus::module("vsftpd").unwrap();
    assert_eq!(
        scan_elf(m.name, &m.image).to_json(),
        scan_elf(m.name, &m.image).to_json()
    );
}
