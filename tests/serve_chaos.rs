//! Serve-layer chaos invariants: the `wire` fault plan (connection
//! drops, truncated response frames, slow-loris stalls) and hand-made
//! protocol garbage must never double-execute a request or wedge the
//! server — a degraded connection is the client's problem, a degraded
//! *campaign* is reported in-band via the `degraded` flag.

use cr_chaos::{FaultInjector, FaultPlan};
use cr_serve::proto::{read_frame, write_frame, Frame, FrameKind};
use cr_serve::{Client, ServeConfig, Server};
use std::net::TcpStream;
use std::sync::Arc;

const SPEC: &str = r#"{"name":"serve-chaos","seed":2017,"tasks":[{"PocScan":"ie"}]}"#;

#[test]
fn wire_plan_never_double_executes_requests() {
    let cfg = ServeConfig {
        injector: Some(Arc::new(FaultInjector::new(
            FaultPlan::builtin("wire")
                .expect("wire is built in")
                .with_seed(2017),
        ))),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("clean drain"));

    // Enough fresh connections to let every armed wire fault fire at
    // least its max_triggers. Transport failures (injected drops or
    // truncations) are expected; the invariant is what the *server*
    // did, not what the client saw.
    let mut completed = 0u32;
    for _ in 0..8 {
        let Ok(mut client) = Client::connect(&addr) else {
            continue; // connection dropped during the handshake
        };
        match client.request(SPEC) {
            Ok(response) if response.completed() => {
                completed += 1;
                assert_eq!(response.done_str("status").as_deref(), Some("ok"));
                // A healthy single-oracle campaign is never degraded;
                // the flag must not be polluted by wire-level faults.
                assert!(
                    !response
                        .done
                        .as_deref()
                        .unwrap_or("")
                        .contains("\"degraded\":true"),
                    "wire faults must not mark the campaign degraded"
                );
            }
            _ => {} // dropped or truncated mid-response: acceptable
        }
    }

    for ((conn, req), n) in handle.execution_counts() {
        assert_eq!(n, 1, "request ({conn},{req}) executed {n} times");
    }
    assert!(completed >= 1, "some requests must survive the wire plan");

    // The server must still be fully functional afterwards. Fresh
    // connections are still under the fault plan, so allow a few
    // attempts before requiring a clean end-to-end round trip.
    let mut post_chaos_ok = false;
    for _ in 0..10 {
        let Ok(mut client) = Client::connect(&addr) else {
            continue;
        };
        if let Ok(response) = client.request(SPEC) {
            if response.completed() {
                post_chaos_ok = true;
                if client.shutdown().is_ok() {
                    break;
                }
            }
        }
    }
    assert!(post_chaos_ok, "server must keep serving after the storm");
    handle.shutdown(); // idempotent if the Shutdown frame already landed

    let stats = runner.join().expect("server thread");
    assert!(
        stats.conns_dropped + stats.frames_truncated >= 1,
        "the wire plan must actually fire ({stats:?})"
    );
    assert_eq!(stats.requests_cancelled, 0);
    assert_eq!(
        stats.exec_violations, 0,
        "no request may execute more than once ({stats:?})"
    );
}

#[test]
fn corrupt_frames_are_rejected_without_execution() {
    let server = Server::bind(ServeConfig::default()).expect("bind ephemeral");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("clean drain"));

    // Handshake by hand, then send a Request frame whose payload is
    // flipped after the CRC was computed.
    let mut stream = TcpStream::connect(&addr).expect("raw connect");
    write_frame(
        &mut stream,
        &Frame::text(FrameKind::Hello, 0, cr_serve::proto::hello_payload()),
    )
    .expect("hello");
    let ack = read_frame(&mut stream).expect("hello ack");
    assert_eq!(ack.kind, FrameKind::HelloAck);

    let mut bytes = Frame::text(FrameKind::Request, 1, SPEC).encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff; // corrupt the payload under an intact CRC
    {
        use std::io::Write as _;
        stream.write_all(&bytes).expect("send corrupt frame");
    }
    let reply = read_frame(&mut stream).expect("error reply");
    assert_eq!(reply.kind, FrameKind::Error);
    assert!(
        reply.payload_str().contains("bad_frame"),
        "payload={}",
        reply.payload_str()
    );
    drop(stream);

    // A frame that dies mid-payload (claimed length never arrives).
    let mut stream = TcpStream::connect(&addr).expect("raw connect 2");
    write_frame(
        &mut stream,
        &Frame::text(FrameKind::Hello, 0, cr_serve::proto::hello_payload()),
    )
    .expect("hello 2");
    let ack = read_frame(&mut stream).expect("hello ack 2");
    assert_eq!(ack.kind, FrameKind::HelloAck);
    let bytes = Frame::text(FrameKind::Request, 1, SPEC).encode();
    {
        use std::io::Write as _;
        stream
            .write_all(&bytes[..bytes.len() / 2])
            .expect("send truncated frame");
    }
    drop(stream); // half a frame, then gone

    // Neither connection may have executed anything.
    assert!(
        handle.execution_counts().is_empty(),
        "corrupt frames must never reach the executor: {:?}",
        handle.execution_counts()
    );

    // And an honest client still gets full service.
    let mut client = Client::connect(&addr).expect("honest connect");
    let response = client.request(SPEC).expect("honest request");
    assert!(response.completed(), "error={:?}", response.error);
    client.shutdown().expect("shutdown ack");

    let stats = runner.join().expect("server thread");
    assert!(stats.bad_frames >= 1, "stats={stats:?}");
    assert_eq!(stats.requests_admitted, 1);
    assert_eq!(stats.requests_completed, 1);
}
