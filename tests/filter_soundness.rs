//! Randomized soundness check for the symbolic filter analysis.
//!
//! We generate random exception-filter decision trees, compile them to
//! machine code with `cr-isa`, and require three views to agree:
//!
//! 1. **ground truth** — direct evaluation of the tree: does *any*
//!    exception record with `code == EXCEPTION_ACCESS_VIOLATION` make it
//!    return non-zero?
//! 2. **symbolic execution** — `cr-symex`'s verdict on the compiled code;
//! 3. **dynamic dispatch** — wiring the compiled filter into a PE scope
//!    table and taking a real fault (concrete flags = 0): survival must
//!    match evaluation of the tree at flags = 0, and symex-rejection must
//!    imply a crash.

use cr_image::{FilterRef, Machine, PeBuilder, PeImage, ScopeEntry};
use cr_isa::{AluOp, Asm, Cond, Inst, Mem as M, Reg, Rm, Width};
use cr_os::windows::api::ApiTable;
use cr_os::windows::{CallOutcome, WinProc};
use cr_symex::{FilterVerdict, SymExec, EXCEPTION_ACCESS_VIOLATION};
use cr_vm::NullHook;
use proptest::prelude::*;

/// A random exception-filter decision tree.
#[derive(Debug, Clone)]
enum FilterAst {
    /// `return c;`
    Ret(i32),
    /// `if (code == k) { a } else { b }`
    IfCodeEq(u32, Box<FilterAst>, Box<FilterAst>),
    /// `if ((code >> 30) == sev) { a } else { b }`
    IfSeverity(u8, Box<FilterAst>, Box<FilterAst>),
    /// `if (flags & mask) { a } else { b }` — flags is a free input.
    IfFlagsBit(u32, Box<FilterAst>, Box<FilterAst>),
}

impl FilterAst {
    /// Evaluate with concrete record fields.
    fn eval(&self, code: u32, flags: u32) -> i32 {
        match self {
            FilterAst::Ret(c) => *c,
            FilterAst::IfCodeEq(k, a, b) => {
                if code == *k {
                    a.eval(code, flags)
                } else {
                    b.eval(code, flags)
                }
            }
            FilterAst::IfSeverity(s, a, b) => {
                if (code >> 30) as u8 == *s {
                    a.eval(code, flags)
                } else {
                    b.eval(code, flags)
                }
            }
            FilterAst::IfFlagsBit(m, a, b) => {
                if flags & m != 0 {
                    a.eval(code, flags)
                } else {
                    b.eval(code, flags)
                }
            }
        }
    }

    /// Ground truth: ∃ flags such that eval(AV, flags) != 0.
    fn accepts_av(&self) -> bool {
        // flags only matter through the masks in the tree; testing the
        // all-zero and all-one assignments covers every branch combination
        // reachable by a single flags value... not in general! Collect the
        // masks and brute-force the subsets over them (trees are tiny).
        let mut masks = Vec::new();
        self.collect_masks(&mut masks);
        let n = masks.len().min(10);
        for bits in 0u32..(1 << n) {
            let mut flags = 0u32;
            for (i, m) in masks.iter().take(n).enumerate() {
                if bits & (1 << i) != 0 {
                    flags |= m;
                }
            }
            if self.eval(EXCEPTION_ACCESS_VIOLATION as u32, flags) != 0 {
                return true;
            }
        }
        false
    }

    fn collect_masks(&self, out: &mut Vec<u32>) {
        match self {
            FilterAst::Ret(_) => {}
            FilterAst::IfCodeEq(_, a, b) | FilterAst::IfSeverity(_, a, b) => {
                a.collect_masks(out);
                b.collect_masks(out);
            }
            FilterAst::IfFlagsBit(m, a, b) => {
                if !out.contains(m) {
                    out.push(*m);
                }
                a.collect_masks(out);
                b.collect_masks(out);
            }
        }
    }

    /// Compile to machine code. ABI: rcx → EXCEPTION_POINTERS. The record
    /// fields live in registers `Ret` never clobbers: `r10d` = code,
    /// `r8d` = flags; `r11` is per-test scratch.
    fn compile(&self, a: &mut Asm) {
        a.load(Reg::R9, M::base(Reg::Rcx));
        a.inst(Inst::MovRRm {
            dst: Reg::R10,
            src: Rm::Mem(M::base(Reg::R9)),
            width: Width::B4,
        });
        a.inst(Inst::MovRRm {
            dst: Reg::R8,
            src: Rm::Mem(M::base_disp(Reg::R9, 4)),
            width: Width::B4,
        });
        self.emit(a);
    }

    fn emit(&self, a: &mut Asm) {
        match self {
            FilterAst::Ret(c) => {
                a.mov_ri(Reg::Rax, *c as i64 as u64);
                a.ret();
            }
            FilterAst::IfCodeEq(k, t, e) => {
                a.inst(Inst::AluRmI {
                    op: AluOp::Cmp,
                    dst: Rm::Reg(Reg::R10),
                    imm: *k as i32,
                    width: Width::B4,
                });
                let els = a.fresh();
                a.jcc(Cond::Ne, els);
                t.emit(a);
                a.bind(els);
                e.emit(a);
            }
            FilterAst::IfSeverity(s, t, e) => {
                a.mov_rr(Reg::R11, Reg::R10);
                a.shr(Reg::R11, 30);
                a.cmp_ri(Reg::R11, *s as i32);
                let els = a.fresh();
                a.jcc(Cond::Ne, els);
                t.emit(a);
                a.bind(els);
                e.emit(a);
            }
            FilterAst::IfFlagsBit(m, t, e) => {
                a.mov_rr(Reg::R11, Reg::R8);
                a.and_ri(Reg::R11, *m as i32);
                a.cmp_ri(Reg::R11, 0);
                let els = a.fresh();
                a.jcc(Cond::E, els);
                t.emit(a);
                a.bind(els);
                e.emit(a);
            }
        }
    }
}

fn arb_filter() -> impl Strategy<Value = FilterAst> {
    let leaf = prop_oneof![
        Just(FilterAst::Ret(0)),
        Just(FilterAst::Ret(1)),
        Just(FilterAst::Ret(-1)),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(0xC000_0005u32), // AV
                    Just(0xC000_0094),    // divide by zero
                    Just(0x8000_0003),    // breakpoint
                    Just(0xC000_001D),    // illegal instruction
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(k, a, b)| FilterAst::IfCodeEq(k, Box::new(a), Box::new(b))),
            (0u8..4, inner.clone(), inner.clone()).prop_map(|(s, a, b)| FilterAst::IfSeverity(
                s,
                Box::new(a),
                Box::new(b)
            )),
            (
                prop_oneof![Just(1u32), Just(2), Just(0x10)],
                inner.clone(),
                inner
            )
                .prop_map(|(m, a, b)| FilterAst::IfFlagsBit(
                    m,
                    Box::new(a),
                    Box::new(b)
                )),
        ]
    })
}

const BASE: u64 = 0x7FFB_0000_0000;

/// Build a module: one guarded probe function + the compiled filter.
fn build_module(ast: &FilterAst) -> PeImage {
    let mut a = Asm::new(BASE + 0x1000);
    a.global("Probe");
    a.global("tb");
    a.load(Reg::Rax, M::base(Reg::Rcx));
    a.global("te");
    a.ret();
    a.global("ex");
    a.mov_ri(Reg::Rax, 0xEEEE_0001);
    a.ret();
    a.global("probe_end");
    a.align(16);
    a.global("Filter");
    ast.compile(&mut a);
    a.global("end");
    let asm = a.assemble().unwrap();
    let rva = |s: &str| (asm.sym(s) - BASE) as u32;
    let mut b = PeBuilder::new("prop.dll", Machine::X64, BASE);
    b.export("Probe", rva("Probe"));
    b.function_with_seh(
        rva("Probe"),
        rva("probe_end"),
        rva("Filter"),
        vec![ScopeEntry {
            begin_rva: rva("tb"),
            end_rva: rva("te"),
            filter: FilterRef::Function(rva("Filter")),
            target_rva: rva("ex"),
        }],
    );
    b.function(rva("Filter"), rva("end"));
    b.text(0x1000, asm.code);
    PeImage::parse(&b.build()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn symex_matches_ground_truth_and_dispatch(ast in arb_filter()) {
        let img = build_module(&ast);
        let truth = ast.accepts_av();

        // Symbolic verdict on the *parsed* image bytes.
        let filter_rva = img
            .runtime_functions
            .iter()
            .flat_map(|rf| rf.unwind.scopes.iter())
            .find_map(|s| match s.filter {
                FilterRef::Function(rva) => Some(rva),
                _ => None,
            })
            .unwrap();
        let code = cr_core::seh::PeCode::new(&img);
        let verdict = SymExec::default().analyze_filter(&code, BASE + filter_rva as u64).verdict;
        match (&verdict, truth) {
            (FilterVerdict::AcceptsAccessViolation { .. }, true) => {}
            (FilterVerdict::RejectsAccessViolation, false) => {}
            (v, t) => prop_assert!(false, "symex {v:?} vs ground truth accepts={t} for {ast:?}"),
        }

        // Dynamic dispatch with concrete flags = 0.
        let mut p = WinProc::new(ApiTable::curated_only());
        p.load_module(&img);
        let probe = img.image_base + img.exports["Probe"] as u64;
        let outcome = p.call(probe, &[0xdead_0000], 1_000_000, &mut NullHook);
        let dyn_survives = matches!(outcome, CallOutcome::Returned(_));
        let expect_dyn = ast.eval(EXCEPTION_ACCESS_VIOLATION as u32, 0) != 0;
        prop_assert_eq!(dyn_survives, expect_dyn, "dispatch vs eval(flags=0) for {:?}", ast);
        // Soundness: symex-reject ⇒ crash; dynamic survival ⇒ symex-accept.
        if matches!(verdict, FilterVerdict::RejectsAccessViolation) {
            prop_assert!(!dyn_survives);
        }
        if dyn_survives {
            let accepted = matches!(verdict, FilterVerdict::AcceptsAccessViolation { .. });
            prop_assert!(accepted, "dynamic survival must imply a symex accept");
        }
    }

    /// Pipeline differential: the interned decision procedure (term
    /// arena + watched-literal DPLL + normalized-query memo) and the
    /// retained reference pipeline (Rc-pointer blaster + scan-all DPLL)
    /// must produce identical analyses for random compiled filters.
    /// Filter queries are tiny, so both solvers stay in budget.
    #[test]
    fn old_and_new_pipelines_agree_on_filter_verdicts(ast in arb_filter()) {
        let img = build_module(&ast);
        let filter_rva = img
            .runtime_functions
            .iter()
            .flat_map(|rf| rf.unwind.scopes.iter())
            .find_map(|s| match s.filter {
                FilterRef::Function(rva) => Some(rva),
                _ => None,
            })
            .unwrap();
        let code = cr_core::seh::PeCode::new(&img);
        let addr = BASE + filter_rva as u64;
        let new = SymExec::default().analyze_filter(&code, addr);
        let old =
            cr_symex::with_reference_pipeline(|| SymExec::default().analyze_filter(&code, addr));
        prop_assert_eq!(&new.verdict, &old.verdict, "pipeline divergence for {:?}", ast);
        prop_assert_eq!(new.completed_paths, old.completed_paths);
        prop_assert_eq!(&new.aborted_paths, &old.aborted_paths);
        prop_assert_eq!(new.steps, old.steps);
    }
}
