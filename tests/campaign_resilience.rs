//! Campaign hardening acceptance tests (the cr-chaos tentpole):
//!
//! * corrupt cache lines are quarantined, counted, and recomputed —
//!   never fatal, and only the quarantined entries cost solver time
//!   on the warm rerun;
//! * a save interrupted mid-write (simulated kill) leaves the previous
//!   store intact and loadable — no torn hybrid;
//! * a rerun over a damaged store completes with `degraded: false`.

use cr_campaign::{
    run_campaign, AnalysisCache, CampaignSpec, EngineConfig, CACHE_FILE, QUARANTINE_FILE,
};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// `cr_symex::solver_calls()` is process-wide; tests that count it
/// take this lock so harness parallelism can't bleed calls across
/// tests.
static SOLO: Mutex<()> = Mutex::new(());

fn solo() -> std::sync::MutexGuard<'static, ()> {
    SOLO.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cr-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seh_spec() -> CampaignSpec {
    CampaignSpec::builder()
        .name("resilience")
        .seed(2017)
        .seh("xmllite")
        .seh("jscript9")
        .seh("user32")
        .build()
        .expect("resilience spec is valid")
}

fn cfg_for(dir: &Path) -> EngineConfig {
    EngineConfig {
        jobs: 2,
        retries: 0,
        cache_dir: Some(dir.to_path_buf()),
        ..EngineConfig::default()
    }
}

/// Flip one character inside the JSON payload (past the `crc32hex `
/// prefix) of every cache line matching `needle`; returns how many
/// lines were damaged. The CRC then refutes each damaged line.
fn corrupt_matching_lines(dir: &Path, needle: &str) -> u64 {
    let path = dir.join(CACHE_FILE);
    let text = std::fs::read_to_string(&path).expect("cache file present");
    let mut corrupted = 0;
    let lines: Vec<String> = text
        .lines()
        .map(|line| {
            if !line.contains(needle) {
                return line.to_string();
            }
            corrupted += 1;
            let mut bytes = line.as_bytes().to_vec();
            let at = 9 + (bytes.len() - 9) / 2;
            bytes[at] = if bytes[at] == b'#' { b'@' } else { b'#' };
            String::from_utf8(bytes).expect("ascii line")
        })
        .collect();
    std::fs::write(&path, lines.join("\n") + "\n").expect("rewrite cache");
    corrupted
}

#[test]
fn corrupt_records_are_quarantined_and_only_they_are_recomputed() {
    let _guard = solo();
    let dir = scratch("quarantine");
    let spec = seh_spec();
    let cfg = cfg_for(&dir);

    let before_cold = cr_symex::solver_calls();
    let cold = run_campaign(&spec, &cfg).expect("cold run");
    let cold_solver = cr_symex::solver_calls() - before_cold;
    assert!(!cold.degraded);
    assert!(cold_solver > 0, "cold run must exercise the solver");

    // Damage user32's module summary plus every cached filter verdict.
    // The warm rerun must recompute exactly that: one module analysis,
    // re-solving its filters — while the other two modules are served
    // from their intact summaries without touching the solver.
    let corrupted = corrupt_matching_lines(&dir, "\"module\":\"user32.")
        + corrupt_matching_lines(&dir, "\"kind\":\"filter\"");
    assert!(corrupted >= 2, "spec must have cached filters + user32");

    let before_warm = cr_symex::solver_calls();
    let warm = run_campaign(&spec, &cfg).expect("warm run over damaged store");
    let warm_solver = cr_symex::solver_calls() - before_warm;

    assert!(!warm.degraded, "quarantine never degrades the campaign");
    assert_eq!(warm.errors.cache_corrupt, corrupted);
    assert_eq!(warm.metrics.quarantined, corrupted);
    assert_eq!(
        warm.metrics.cache.module_hits, 2,
        "undamaged modules are served from the cache"
    );
    assert_eq!(warm.metrics.cache.module_misses, 1);
    // Cold covers all three modules' filters; warm only user32's. The
    // shared verdict cache dedups content-identical filters across
    // modules, and whether a cold-run race double-solves one is
    // scheduling-dependent — so cold can legitimately equal warm (full
    // dedup, no races), but never be smaller.
    assert!(
        warm_solver > 0 && warm_solver <= cold_solver,
        "recompute pays for the quarantined module only \
         (warm {warm_solver} vs cold {cold_solver} solver calls)"
    );
    assert_eq!(
        warm.records.iter().map(|r| &r.result).collect::<Vec<_>>(),
        cold.records.iter().map(|r| &r.result).collect::<Vec<_>>(),
        "recompute reproduces the cold results"
    );

    let quarantine = std::fs::read_to_string(dir.join(QUARANTINE_FILE)).expect("quarantine file");
    assert_eq!(quarantine.lines().count() as u64, corrupted);

    // The warm save rewrote the store; a final load is clean.
    let reload = AnalysisCache::load(&dir).expect("reload");
    assert_eq!(reload.quarantined(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_save_leaves_previous_store_intact() {
    let _guard = solo();
    let dir = scratch("torn-save");
    let spec = seh_spec();
    let cfg = cfg_for(&dir);

    let cold = run_campaign(&spec, &cfg).expect("cold run");
    let saved = std::fs::read_to_string(dir.join(CACHE_FILE)).expect("saved store");

    // Simulate a process killed mid-save: a partial temp file from a
    // dead pid next to the real store. The write-then-rename protocol
    // means the store itself is never a torn hybrid.
    let torn = &saved[..saved.len() / 3];
    std::fs::write(dir.join(format!("{CACHE_FILE}.tmp.99999")), torn).expect("write torn tmp");

    let reload = AnalysisCache::load(&dir).expect("load ignores stray tmp files");
    assert_eq!(reload.quarantined(), 0, "the store itself is not torn");

    let rerun = run_campaign(&spec, &cfg).expect("rerun after simulated kill");
    assert!(!rerun.degraded, "rerun completes with full coverage");
    assert_eq!(rerun.errors.cache_corrupt, 0);
    assert_eq!(
        rerun.metrics.cache.module_hits, 3,
        "every module is served from the intact store"
    );
    assert_eq!(
        rerun.records.iter().map(|r| &r.result).collect::<Vec<_>>(),
        cold.records.iter().map(|r| &r.result).collect::<Vec<_>>(),
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_suffix_in_store_is_not_fatal_to_a_campaign() {
    let _guard = solo();
    let dir = scratch("garbage");
    let spec = seh_spec();
    let cfg = cfg_for(&dir);

    run_campaign(&spec, &cfg).expect("cold run");

    // A hard kill while something else appended (or disk corruption):
    // a half-written garbage tail plus a bare torn JSON fragment.
    let path = dir.join(CACHE_FILE);
    let mut text = std::fs::read_to_string(&path).unwrap();
    text.push_str("deadbeef {\"kind\":\"module\",\"key\":\"tor\n");
    text.push_str("\x00\x01garbage\n");
    std::fs::write(&path, text).unwrap();

    let report = run_campaign(&spec, &cfg).expect("campaign survives garbage lines");
    assert!(!report.degraded);
    assert_eq!(report.errors.cache_corrupt, 2);
    assert_eq!(report.metrics.quarantined, 2);
    assert!(report.records.iter().all(|r| r.result.is_some()));

    let _ = std::fs::remove_dir_all(&dir);
}
