//! Cross-crate soundness check: the *static* verdicts of the SEH
//! analysis (cr-image parsing + cr-symex filter vetting) must agree with
//! the *dynamic* behaviour of the SEH dispatcher (cr-os executing the
//! same filter machine code on a real fault).
//!
//! For every guarded function in a generated module:
//! * if the analysis says some scope accepts access violations, calling
//!   the function with an unmapped pointer must survive (the `__except`
//!   block runs);
//! * if the analysis says every scope rejects AVs, the same call must
//!   crash the process.

use cr_core::seh::analyze_module;
use cr_os::windows::api::ApiTable;
use cr_os::windows::{CallOutcome, WinProc};
use cr_targets::browsers::{generate_dll, DllSpec};
use cr_vm::NullHook;

fn small_spec() -> DllSpec {
    DllSpec {
        name: "verify".into(),
        machine: cr_image::Machine::X64,
        image_base: 0x7FFA_0000_0000,
        guarded_total: 12,
        guarded_accepting: 5,
        on_path: 0,
        filters_total: 9,
        filters_accepting: 4,
        unknown_filter: false,
        mutx_extra: None,
        veh_extra: false,
    }
}

#[test]
fn static_verdicts_match_dynamic_dispatch() {
    let img = generate_dll(&small_spec());
    let analysis = analyze_module(&img);
    assert_eq!(analysis.guarded_before, 12);
    assert_eq!(analysis.guarded_after, 5);

    let mut surviving_checked = 0;
    let mut crashing_checked = 0;
    for f in &analysis.functions {
        // Fresh process per function: crashes are terminal.
        let mut p = WinProc::new(ApiTable::curated_only());
        p.load_module(&img);
        let outcome = p.call(f.begin_va, &[0xdead_0000], 1_000_000, &mut NullHook);
        if f.survives() {
            match outcome {
                CallOutcome::Returned(v) => {
                    assert_eq!(v >> 16, 0xEEEE, "__except block value, got {v:#x}");
                }
                other => panic!(
                    "analysis said AV-capable but call {:#x} → {other:?}",
                    f.begin_va
                ),
            }
            assert!(p.alive());
            surviving_checked += 1;
        } else {
            assert!(
                matches!(outcome, CallOutcome::Crashed(_)),
                "analysis said rejects-AV but call {:#x} → {outcome:?}",
                f.begin_va
            );
            crashing_checked += 1;
        }
    }
    assert_eq!(surviving_checked, 5);
    assert_eq!(crashing_checked, 7);
}

#[test]
fn witness_codes_are_real_access_violation_codes() {
    let img = generate_dll(&small_spec());
    let analysis = analyze_module(&img);
    for s in &analysis.scopes {
        if let cr_core::seh::FilterClass::AcceptsAv { witness } = s.class {
            assert_eq!(witness, 0xC000_0005, "witness must be the AV status code");
        }
    }
}

#[test]
fn valid_pointers_never_fault() {
    let img = generate_dll(&small_spec());
    let analysis = analyze_module(&img);
    let mut p = WinProc::new(ApiTable::curated_only());
    p.load_module(&img);
    p.mem.map(0x12_0000, 0x1000, cr_vm::Prot::RW);
    p.mem.write_u64(0x12_0000, 0x42).unwrap();
    for f in &analysis.functions {
        match p.call(f.begin_va, &[0x12_0000], 1_000_000, &mut NullHook) {
            CallOutcome::Returned(v) => assert_eq!(v, 0x42),
            other => panic!("{other:?}"),
        }
    }
    assert!(p.fault_log.is_empty());
}
