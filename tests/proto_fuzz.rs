//! Never-panic property tests over the framed-protocol decoder.
//!
//! A resident serve or fleet front reads frames from anything that
//! can reach its socket; `read_frame` must reject malformed input —
//! truncated headers, bad magic, oversized lengths, corrupt CRCs,
//! unknown kinds — with an error, never a panic or an unbounded
//! allocation. Payload corruption specifically must always be caught
//! by the CRC; header bytes outside the checksum may decode to a
//! different valid frame, but still must never panic.

use cr_serve::proto::{read_frame, write_frame, Frame, FrameKind, HEADER_LEN, MAGIC, MAX_PAYLOAD};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Errors are fine (and expected); panics are not.
        let _ = read_frame(&mut bytes.as_slice());
    }

    #[test]
    fn near_valid_headers_never_panic(
        version in 0u16..5,
        kind in 0u8..32,
        len in prop_oneof![
            0u32..64,
            Just(MAX_PAYLOAD),
            Just(MAX_PAYLOAD + 1),
            Just(u32::MAX),
        ],
        crc in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        keep in 0usize..100,
    ) {
        // Hand-assemble a header that is plausible everywhere the
        // decoder branches: real magic, near-real version, a kind code
        // around the assigned range, and a length field that may be
        // truncated, oversized (must not allocate 4 GiB), or honest.
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&version.to_le_bytes());
        bytes.push(kind);
        bytes.push(0);
        bytes.extend_from_slice(&u64::from(crc).to_le_bytes());
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.truncate(keep.min(bytes.len()));
        let _ = read_frame(&mut bytes.as_slice());
    }

    #[test]
    fn every_kind_roundtrips_with_arbitrary_payload(
        code in 1u8..=17,
        request_id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let kind = FrameKind::from_code(code).expect("codes 1..=17 are assigned");
        let frame = Frame { kind, request_id, payload };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).expect("vec write");
        let back = read_frame(&mut wire.as_slice()).expect("own output decodes");
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn payload_corruption_is_always_detected(
        code in 1u8..=17,
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let kind = FrameKind::from_code(code).expect("codes 1..=17 are assigned");
        let frame = Frame { kind, request_id: 9, payload };
        let mut wire = frame.encode();
        let pos = HEADER_LEN + pos_seed % (wire.len() - HEADER_LEN);
        wire[pos] ^= flip;
        prop_assert!(
            read_frame(&mut wire.as_slice()).is_err(),
            "a flipped payload byte must fail the CRC"
        );
    }

    #[test]
    fn header_corruption_never_panics(
        code in 1u8..=17,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let kind = FrameKind::from_code(code).expect("codes 1..=17 are assigned");
        let frame = Frame { kind, request_id: 1, payload };
        let mut wire = frame.encode();
        let pos = pos_seed % HEADER_LEN;
        wire[pos] ^= flip;
        // Header bytes are outside the CRC: the decode may fail or may
        // yield a frame with a different kind/id — but never panic.
        let _ = read_frame(&mut wire.as_slice());
    }
}
