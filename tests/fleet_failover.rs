//! Fleet-layer acceptance (the cr-fleet tentpole): the supervised
//! fleet answers every admitted request with a Result frame
//! byte-identical to a one-shot campaign run, no matter which worker
//! answers, which worker dies mid-request, or whether the whole fleet
//! is rolling-restarted under load. The delivery ledger must show
//! exactly one Result per request throughout.

use cr_campaign::{run_campaign, CampaignSpec, EngineConfig};
use cr_chaos::{FaultInjector, FaultPlan};
use cr_fleet::{Fleet, FleetConfig, WorkerState};
use cr_serve::Client;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Each fleet spins up several serve workers; serialize the tests so
/// they don't compete for cores and trip heartbeat thresholds.
static SOLO: Mutex<()> = Mutex::new(());

fn solo() -> std::sync::MutexGuard<'static, ()> {
    SOLO.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small spec with a distinct SEH module per index, so each request
/// has its own consistent-hash route key.
fn spec_for(n: usize) -> CampaignSpec {
    let calib = cr_targets::browsers::CALIBRATION;
    CampaignSpec::builder()
        .name(format!("fleet-{n}"))
        .seed(2017)
        .seh(calib[n % calib.len()].name)
        .build()
        .expect("fleet spec is valid")
}

fn payload_for(spec: &CampaignSpec) -> String {
    use serde::Serialize;
    spec.to_json()
}

/// One-shot reference: what every fleet answer must match, byte for
/// byte.
fn reference_for(spec: &CampaignSpec) -> String {
    let report = run_campaign(spec, &EngineConfig::default()).expect("one-shot run");
    report.results_json()
}

/// Send one request over a fresh front connection and return the
/// Result document.
fn ask(addr: &str, payload: &str) -> String {
    let mut client = Client::connect(addr).expect("connect to fleet front");
    let response = client
        .request_with_retry(payload, 10)
        .expect("fleet request");
    assert!(response.completed(), "error={:?}", response.error);
    assert_eq!(response.done_str("status").as_deref(), Some("ok"));
    String::from_utf8(response.result.expect("result document")).expect("UTF-8 result")
}

fn assert_exactly_once(fleet: &Fleet) {
    for ((conn, request), deliveries) in fleet.delivery_counts() {
        assert_eq!(
            deliveries, 1,
            "request {request} on front conn {conn} must get exactly one Result"
        );
    }
    // Closed connections' ledger entries are retired into counters;
    // the invariant must have held for them too.
    assert_eq!(
        fleet.stats().ledger_violations,
        0,
        "every retired ledger entry must have had exactly one Result"
    );
}

#[test]
fn fleet_answers_are_byte_identical_to_oneshot_and_coalesce() {
    let _guard = solo();
    let specs: Vec<CampaignSpec> = (0..3).map(spec_for).collect();
    let refs: Vec<String> = specs.iter().map(reference_for).collect();

    let fleet = Fleet::start(FleetConfig {
        workers: 2,
        ..FleetConfig::default()
    })
    .expect("fleet starts");
    let addr = fleet.addr().to_string();

    // Sequential distinct requests land on ring-chosen workers.
    for (spec, reference) in specs.iter().zip(&refs) {
        assert_eq!(&ask(&addr, &payload_for(spec)), reference);
    }

    // A concurrent burst of byte-identical requests: coalescing
    // candidates, each still owed its own byte-identical Result.
    let burst_payload = payload_for(&specs[0]);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| s.spawn(|| ask(&addr, &burst_payload)))
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("burst thread"), refs[0]);
        }
    });

    assert_exactly_once(&fleet);
    let stats = fleet.join();
    assert_eq!(stats.results_delivered, 6);
    assert_eq!(stats.requests_admitted, 6);
    assert_eq!(stats.kills, 0);
}

#[test]
fn node_kill_mid_request_fails_over_without_changing_a_byte() {
    let _guard = solo();
    let spec = spec_for(0);
    let reference = reference_for(&spec);

    let fleet = Fleet::start(FleetConfig {
        workers: 3,
        // Kill the serving worker right after it receives admission 1.
        kill_at_admission: Some(1),
        ..FleetConfig::default()
    })
    .expect("fleet starts");
    let addr = fleet.addr().to_string();

    // The killed admission must still complete — on a sibling — with
    // the exact reference bytes.
    assert_eq!(ask(&addr, &payload_for(&spec)), reference);
    // And the fleet keeps serving afterwards.
    assert_eq!(ask(&addr, &payload_for(&spec)), reference);

    // The supervisor notices the death and respawns the slot.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let states = fleet.worker_states();
        let all_healthy = states.iter().all(|&(_, s, _)| s == WorkerState::Healthy);
        let respawned = states.iter().any(|&(_, _, generation)| generation > 0);
        if all_healthy && respawned {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "killed worker never came back: {states:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    assert_exactly_once(&fleet);
    let stats = fleet.join();
    assert_eq!(stats.kills, 1, "exactly one injected kill");
    assert!(stats.failovers >= 1, "the kill must surface as a failover");
    assert!(stats.restarts >= 1, "the dead slot must be respawned");
    assert_eq!(stats.results_delivered, 2);
}

#[test]
fn rolling_restart_under_load_drops_nothing() {
    let _guard = solo();
    let specs: Vec<CampaignSpec> = (0..4).map(spec_for).collect();
    let refs: Vec<String> = specs.iter().map(reference_for).collect();

    let fleet = Fleet::start(FleetConfig {
        workers: 2,
        ..FleetConfig::default()
    })
    .expect("fleet starts");
    let addr = fleet.addr().to_string();

    // Warm the fleet, then rotate every worker while requests keep
    // flowing: the drain must be invisible to clients.
    assert_eq!(ask(&addr, &payload_for(&specs[0])), refs[0]);
    std::thread::scope(|s| {
        s.spawn(|| fleet.rolling_restart());
        for (spec, reference) in specs.iter().zip(&refs).cycle().take(8) {
            assert_eq!(&ask(&addr, &payload_for(spec)), reference);
        }
    });

    assert_exactly_once(&fleet);
    let stats = fleet.join();
    assert_eq!(stats.rolling_restarts, 2, "every worker rotated");
    assert_eq!(stats.results_delivered, 9);
    assert_eq!(stats.kills, 0, "rolling restarts are graceful");
}

#[test]
fn fleet_chaos_plan_preserves_every_invariant() {
    let _guard = solo();
    let specs: Vec<CampaignSpec> = (0..4).map(spec_for).collect();
    let refs: Vec<String> = specs.iter().map(reference_for).collect();

    let plan = FaultPlan::builtin("fleet")
        .expect("fleet plan exists")
        .with_seed(7);
    let fleet = Fleet::start(FleetConfig {
        workers: 3,
        injector: Some(Arc::new(FaultInjector::new(plan))),
        ..FleetConfig::default()
    })
    .expect("fleet starts");
    let addr = fleet.addr().to_string();

    // Node kills, partitions and heartbeat drops are armed; every
    // request must still complete with the reference bytes.
    for (spec, reference) in specs.iter().zip(&refs) {
        assert_eq!(&ask(&addr, &payload_for(spec)), reference);
    }

    assert_exactly_once(&fleet);
    let stats = fleet.join();
    assert_eq!(stats.results_delivered, 4);
    assert_eq!(stats.requests_admitted, 4);
}
