//! Cross-crate pipeline test: discovery output on a Linux server must be
//! *actionable* — the reported source cells, corrupted through the
//! attacker's write primitive, must yield exactly the crash-resistant
//! behaviour the classification promises.

use cr_core::syscall_finder::{discover_server, Classification};
use cr_os::linux::syscall::nr;
use cr_os::linux::RunExit;
use cr_vm::NullHook;

#[test]
fn lighttpd_finding_is_directly_exploitable() {
    let target = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == "lighttpd")
        .unwrap();
    let report = discover_server(&target);
    let read = report.finding(nr::READ).expect("read candidate");
    assert!(matches!(read.classification, Classification::Usable { .. }));

    // Act on the report: boot a fresh server, corrupt the reported source
    // cells by hand (the attacker's arbitrary write), and probe.
    let mut p = target.boot(&mut NullHook);
    for &cell in &read.sources {
        p.mem.write_u64(cell, 0xdead_0000).unwrap();
    }
    let conn = p.net.client_connect(target.port).unwrap();
    p.run(500_000, &mut NullHook);
    p.net.client_send(conn, b"GET /\n\n");
    let exit = p.run(2_000_000, &mut NullHook);
    assert!(matches!(exit, RunExit::Idle), "server survives: {exit:?}");
    assert!(p.alive());
    assert!(p.efault_count >= 1, "the probe is visible as -EFAULT");
    assert!(
        p.net.server_closed(conn),
        "graceful per-connection teardown"
    );
}

#[test]
fn crashing_finding_really_crashes() {
    let target = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == "lighttpd")
        .unwrap();
    let report = discover_server(&target);
    let open = report.finding(nr::OPEN).expect("open candidate");
    assert_eq!(open.classification, Classification::CrashesOnInvalidation);

    let mut p = target.boot(&mut NullHook);
    for &cell in &open.sources {
        p.mem.write_u64(cell, 0xdead_0000).unwrap();
    }
    let conn = p.net.client_connect(target.port).unwrap();
    p.run(500_000, &mut NullHook);
    p.net.client_send(conn, b"GET /\n\n");
    let exit = p.run(2_000_000, &mut NullHook);
    assert!(
        matches!(exit, RunExit::Crashed(_)),
        "touched pointer crashes: {exit:?}"
    );
}

#[test]
fn all_five_servers_have_a_usable_primitive() {
    // The paper's headline claim for §V-A: "our framework discovered a
    // usable crash-resistant primitive in all of our server programs".
    for target in cr_targets::all_servers() {
        let report = discover_server(&target);
        assert!(
            !report.usable().is_empty(),
            "{} must expose at least one usable primitive",
            target.name
        );
    }
}

#[test]
fn discovery_is_deterministic() {
    let t1 = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == "memcached")
        .unwrap();
    let t2 = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == "memcached")
        .unwrap();
    let r1 = discover_server(&t1);
    let r2 = discover_server(&t2);
    assert_eq!(r1.observed_syscalls, r2.observed_syscalls);
    let k1: Vec<_> = r1
        .findings
        .iter()
        .map(|f| (f.syscall, f.sources.clone()))
        .collect();
    let k2: Vec<_> = r2
        .findings
        .iter()
        .map(|f| (f.syscall, f.sources.clone()))
        .collect();
    assert_eq!(k1, k2, "same binary + same workload → same findings");
}
