//! Property tests over the binary-image substrate: arbitrary ELF images
//! round-trip through write→parse, and arbitrary PE scope-table
//! populations survive write→parse exactly. The discovery pipeline's
//! first stage is only as good as these parsers.

use cr_image::{ElfImage, ElfSegment, FilterRef, Machine, PeBuilder, PeImage, ScopeEntry, SegPerm};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_perm() -> impl Strategy<Value = SegPerm> {
    prop_oneof![
        Just(SegPerm::R),
        Just(SegPerm::RW),
        Just(SegPerm::RX),
        Just(SegPerm::RWX),
    ]
}

fn arb_segment() -> impl Strategy<Value = ElfSegment> {
    (
        1u64..0x100, // page index
        proptest::collection::vec(any::<u8>(), 0..256),
        0u64..0x1000,
        arb_perm(),
    )
        .prop_map(|(page, data, extra, perm)| {
            let memsz = data.len() as u64 + extra;
            ElfSegment {
                vaddr: page * 0x1000,
                data,
                memsz,
                perm,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn elf_write_parse_roundtrip(
        segments in proptest::collection::vec(arb_segment(), 1..5),
        entry in any::<u64>(),
        syms in proptest::collection::btree_map("[a-z_][a-z0-9_]{0,12}", any::<u64>(), 0..8),
    ) {
        let img = ElfImage {
            entry,
            segments,
            symbols: syms.into_iter().collect::<BTreeMap<_, _>>(),
        };
        let parsed = ElfImage::parse(&img.to_bytes()).expect("own output parses");
        prop_assert_eq!(parsed, img);
    }

    #[test]
    fn pe_scope_tables_roundtrip(
        scope_specs in proptest::collection::vec(
            (0x1000u32..0x2000, 1u32..0x40, prop_oneof![Just(None), (0x1000u32..0x2000).prop_map(Some)]),
            1..20
        ),
        base_page in 1u64..0x1000,
    ) {
        let image_base = base_page * 0x1_0000;
        let mut b = PeBuilder::new("prop.dll", Machine::X64, image_base);
        b.text(0x1000, vec![0x90u8; 0x1000]);
        let mut expected = Vec::new();
        for (i, (begin, len, filter)) in scope_specs.iter().enumerate() {
            let begin = *begin & !0xF;
            let end = begin + *len;
            let scope = ScopeEntry {
                begin_rva: begin,
                end_rva: end,
                filter: match filter {
                    None => FilterRef::CatchAll,
                    Some(rva) => FilterRef::Function(*rva),
                },
                target_rva: end + 4,
            };
            // Give each function a unique begin so sort order is stable.
            let fb = 0x1000 + (i as u32) * 0x40;
            b.function_with_seh(fb, fb + 0x40, 0x1000, vec![scope]);
            expected.push((fb, scope));
        }
        let img = PeImage::parse(&b.build()).expect("own output parses");
        expected.sort_by_key(|(fb, _)| *fb);
        prop_assert_eq!(img.runtime_functions.len(), expected.len());
        for (rf, (fb, scope)) in img.runtime_functions.iter().zip(&expected) {
            prop_assert_eq!(rf.begin_rva, *fb);
            prop_assert_eq!(rf.unwind.scopes.len(), 1);
            prop_assert_eq!(rf.unwind.scopes[0], *scope);
        }
    }

    #[test]
    fn pe_parser_rejects_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must never panic; errors are fine.
        let _ = PeImage::parse(&bytes);
        let _ = ElfImage::parse(&bytes);
    }
}
