//! Serve-layer warm-state acceptance (the cr-serve tentpole):
//!
//! Two identical requests over one connection. The second must be
//! served entirely from the process-wide warm state — zero solver
//! calls, zero re-parses — and both results must be byte-identical to
//! a one-shot `campaign` run of the same spec.

use cr_campaign::{run_campaign, CampaignSpec, EngineConfig};
use cr_serve::{Client, ServeConfig, Server};
use std::sync::Mutex;

/// `cr_symex`'s solver counters are process-wide; serialize against
/// the harness's parallelism exactly like `campaign_determinism`.
static SOLO: Mutex<()> = Mutex::new(());

fn solo() -> std::sync::MutexGuard<'static, ()> {
    SOLO.lock().unwrap_or_else(|e| e.into_inner())
}

fn warm_spec() -> CampaignSpec {
    CampaignSpec::builder()
        .name("serve-warm")
        .seed(2017)
        .seh("xmllite")
        .seh("jscript9")
        .poc("ie")
        .build()
        .expect("warm spec is valid")
}

#[test]
fn second_request_is_served_from_warm_state_byte_identical() {
    let _guard = solo();
    let spec = warm_spec();

    // The reference: a one-shot batch campaign, no serve layer at all.
    let oneshot = run_campaign(&spec, &EngineConfig::default()).expect("one-shot run");
    assert!(!oneshot.degraded, "reference run must be healthy");
    let reference = oneshot.results_json();

    let server = Server::bind(ServeConfig::default()).expect("bind ephemeral");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("clean drain"));

    let mut client = Client::connect(&addr).expect("connect");
    let payload = {
        use serde::Serialize;
        spec.to_json()
    };

    // Cold request: the server's cache is fresh, so the image is
    // generated and parsed ("fresh") and the module summaries are
    // computed from scratch.
    let cold = client.request(&payload).expect("cold request");
    assert!(cold.completed(), "cold error={:?}", cold.error);
    assert_eq!(cold.done_str("status").as_deref(), Some("ok"));
    assert_eq!(cold.done_str("parse").as_deref(), Some("fresh"));
    assert_eq!(
        cold.result.as_deref(),
        Some(reference.as_bytes()),
        "cold serve result must be byte-identical to the one-shot run"
    );

    // Warm request, same connection: resident parsed image, module
    // summaries, verdicts — zero parsing, zero solver work.
    let warm = client.request(&payload).expect("warm request");
    assert!(warm.completed(), "warm error={:?}", warm.error);
    assert_eq!(warm.done_str("status").as_deref(), Some("ok"));
    assert_eq!(
        warm.done_u64("solver_calls"),
        Some(0),
        "warm request must never reach the solver (done={:?})",
        warm.done
    );
    assert_eq!(
        warm.done_str("parse").as_deref(),
        Some("cached"),
        "warm request must reuse the resident parsed image"
    );
    assert!(
        warm.done_u64("module_hits").unwrap_or(0) >= 2,
        "both SEH modules served from the summary cache (done={:?})",
        warm.done
    );
    assert_eq!(
        warm.result.as_deref(),
        Some(reference.as_bytes()),
        "warm state must not change a single byte of the results"
    );

    client.shutdown().expect("shutdown ack");
    let stats = runner.join().expect("server thread");
    assert_eq!(stats.requests_completed, 2);
    assert_eq!(stats.requests_cancelled, 0);
    for ((_, _), n) in handle.execution_counts() {
        assert_eq!(n, 1, "every request executed exactly once");
    }
    assert_eq!(stats.exec_violations, 0);
    assert_eq!(
        stats.exec_retired + handle.execution_counts().len() as u64,
        2,
        "both executions accounted for, live or retired"
    );
}
