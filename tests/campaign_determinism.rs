//! Campaign engine acceptance tests (the cr-campaign tentpole):
//!
//! * a `--jobs 8` campaign produces **byte-identical** deterministic
//!   results to a serial run of the same spec;
//! * a warm rerun against a persisted cache is served almost entirely
//!   from the cache and never invokes the SAT solver.

use cr_campaign::prelude::*;
use std::path::PathBuf;
use std::sync::Mutex;

/// `cr_symex::solver_calls()` is process-wide; tests that count it (or
/// feed it) take this lock so the harness's parallelism can't bleed
/// solver calls across tests.
static SOLO: Mutex<()> = Mutex::new(());

fn solo() -> std::sync::MutexGuard<'static, ()> {
    SOLO.lock().unwrap_or_else(|e| e.into_inner())
}

/// A mixed-family spec that touches every task kind without taking
/// minutes: three SEH modules, one server, a small funnel, one oracle.
/// The deliberate duplicate task would be rejected by the validating
/// builder, so it is appended to the built spec directly — determinism
/// must hold even for degenerate task lists.
fn mixed_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::builder()
        .name("determinism")
        .seed(2017)
        .seh("xmllite")
        .seh("jscript9")
        .server("nginx")
        .funnel(200)
        .poc("nginx")
        .build()
        .expect("valid base spec");
    spec.tasks.push(CampaignTask::SehAnalysis("xmllite".into()));
    spec
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cr-campaign-test-{tag}-{}", std::process::id()))
}

#[test]
fn sharded_campaign_is_byte_identical_to_serial() {
    let _guard = solo();
    let spec = mixed_spec();
    let serial = run_campaign(
        &spec,
        &EngineConfig {
            jobs: 1,
            retries: 0,
            ..EngineConfig::default()
        },
    )
    .expect("serial run");
    let sharded = run_campaign(
        &spec,
        &EngineConfig {
            jobs: 8,
            retries: 0,
            ..EngineConfig::default()
        },
    )
    .expect("sharded run");

    assert_eq!(serial.records.len(), spec.tasks.len());
    assert!(
        serial.records.iter().all(|r| r.result.is_some()),
        "all tasks succeed"
    );
    assert_eq!(serial.results_json(), sharded.results_json());
    // Scheduling metadata may differ; outcome counts must not.
    assert_eq!(serial.metrics.succeeded, sharded.metrics.succeeded);
    assert_eq!(sharded.metrics.failed, 0);
}

#[test]
fn warm_rerun_is_served_from_the_cache_without_the_solver() {
    let _guard = solo();
    let dir = scratch("warm");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = CampaignSpec::builder()
        .name("warm")
        .seed(2017)
        .seh("xmllite")
        .seh("jscript9")
        .seh("user32")
        .build()
        .expect("warm spec is valid");
    let cfg = EngineConfig {
        jobs: 2,
        retries: 0,
        cache_dir: Some(dir.clone()),
        ..EngineConfig::default()
    };

    let cold = run_campaign(&spec, &cfg).expect("cold run");
    assert_eq!(
        cold.metrics.cache.module_hits, 0,
        "first run cannot hit the module cache"
    );

    let solver_before = cr_symex::solver_calls();
    let warm = run_campaign(&spec, &cfg).expect("warm run");
    let solver_after = cr_symex::solver_calls();

    assert_eq!(
        solver_after - solver_before,
        0,
        "warm rerun skips all symbolic execution"
    );
    let s = warm.metrics.cache;
    assert!(
        s.hit_rate() >= 0.95,
        "warm rerun must be served >=95% from the cache, got {:.3} ({s:?})",
        s.hit_rate()
    );
    assert_eq!(s.module_hits, 3);
    assert_eq!(s.module_misses, 0);
    assert_eq!(
        warm.results_json(),
        cold.results_json(),
        "cache must not change results"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_tasks_are_isolated_and_reported() {
    let _guard = solo();
    let spec = CampaignSpec::builder()
        .name("isolation")
        .seed(2017)
        .seh("no-such-module")
        .seh("xmllite")
        .build()
        .expect("isolation spec is valid");
    let report = run_campaign(
        &spec,
        &EngineConfig {
            jobs: 2,
            retries: 1,
            ..EngineConfig::default()
        },
    )
    .expect("campaign survives task panics");
    assert_eq!(report.metrics.failed, 1);
    assert_eq!(report.metrics.succeeded, 1);
    let bad = &report.records[0];
    assert!(bad.result.is_none());
    let err = bad.error.as_ref().expect("failed task carries its error");
    assert_eq!(err.kind, TaskErrorKind::Panic, "unknown module panics");
    assert!(err.message.contains("no-such-module"));
    assert!(report.degraded, "a result-less task degrades the report");
    assert_eq!(report.errors.panic, 2, "both attempts are counted");
    assert_eq!(
        report.metrics.tasks[0].attempts, 2,
        "one retry before giving up"
    );
    assert!(
        report.records[1].result.is_some(),
        "healthy task unaffected"
    );
}
