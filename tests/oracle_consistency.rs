//! Oracle ground-truth consistency: every §VI memory oracle must agree
//! with the process's actual memory map on a mixed probe set, without
//! crashing its host.

use cr_exploits::firefox::FirefoxOracle;
use cr_exploits::ie::IeOracle;
use cr_exploits::nginx::NginxOracle;
use cr_exploits::{MemoryOracle, ProbeResult};

#[test]
fn ie_oracle_matches_ground_truth() {
    let mut o = IeOracle::new();
    let base = 0x61_0000_0000u64;
    // Collect pages to map first (borrow rules), then run.
    for i in (0..8u64).step_by(2) {
        o.sim()
            .proc
            .mem
            .map(base + i * 0x1000, 0x1000, cr_vm::Prot::RW);
    }
    for i in 0..8u64 {
        let addr = base + i * 0x1000;
        let expect = if i % 2 == 0 {
            ProbeResult::Mapped
        } else {
            ProbeResult::Unmapped
        };
        assert_eq!(o.probe(addr), expect, "page {i}");
    }
    assert!(!o.crashed());
}

#[test]
fn firefox_oracle_matches_ground_truth() {
    let mut o = FirefoxOracle::new();
    let base = 0x62_0000_0000u64;
    for i in (0..8u64).step_by(2) {
        o.sim()
            .proc
            .mem
            .map(base + i * 0x1000, 0x1000, cr_vm::Prot::R);
    }
    for i in 0..8u64 {
        let addr = base + i * 0x1000;
        let expect = if i % 2 == 0 {
            ProbeResult::Mapped
        } else {
            ProbeResult::Unmapped
        };
        assert_eq!(o.probe(addr), expect, "page {i}");
    }
    assert!(!o.crashed());
}

#[test]
fn nginx_oracle_matches_ground_truth() {
    let mut o = NginxOracle::new();
    let base = 0x63_0000_0000u64;
    for i in (0..6u64).step_by(2) {
        o.proc().mem.map(base + i * 0x1000, 0x1000, cr_vm::Prot::RW);
    }
    for i in 0..6u64 {
        let addr = base + i * 0x1000 + 0x100;
        let expect = if i % 2 == 0 {
            ProbeResult::Mapped
        } else {
            ProbeResult::Unmapped
        };
        assert_eq!(o.probe(addr), expect, "page {i}");
    }
    assert!(!o.crashed());
}

#[test]
fn oracles_report_probe_counts() {
    let mut o = IeOracle::new();
    assert_eq!(o.probes(), 0);
    o.probe(0xdead_0000);
    o.probe(0xdead_1000);
    assert_eq!(o.probes(), 2);
}
