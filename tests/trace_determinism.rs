//! Trace acceptance tests (the cr-trace tentpole):
//!
//! * the deterministic event sequence of a traced campaign is
//!   **byte-identical** across worker counts, fault injection
//!   included — only wall stamps may differ;
//! * a trace round-trips through its JSONL form losslessly;
//! * a chaos campaign's trace covers every pipeline stage, fault
//!   events included, and `report`-style stage statistics see them.

use cr_campaign::prelude::*;
use cr_chaos::{FaultInjector, FaultPlan};
use cr_trace::{Stage, Trace};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// The trace collector is process-wide (one active session); every
/// test takes this lock so the harness's parallelism can't interleave
/// sessions.
static SOLO: Mutex<()> = Mutex::new(());

fn solo() -> std::sync::MutexGuard<'static, ()> {
    SOLO.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cr-trace-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every task family plus retries and faults: the mayhem plan panics,
/// stalls, starves the solver, flips image bytes, and corrupts cache
/// records.
fn spec() -> CampaignSpec {
    CampaignSpec::builder()
        .name("trace-det")
        .seed(2017)
        .server("nginx")
        .seh("xmllite")
        .seh("jscript9")
        .funnel(200)
        .poc("ie")
        .scan("vsftpd")
        .arena("bisect")
        .build()
        .expect("trace spec is valid")
}

/// Run the spec traced, under the mayhem fault plan, against a fresh
/// cache directory (so cache spans and `cache.record` faults appear).
fn traced_run(jobs: usize, tag: &str) -> (Trace, String) {
    let dir = scratch(tag);
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::builtin("mayhem")
            .expect("builtin plan")
            .with_seed(2017),
    ));
    assert!(cr_trace::start(), "no other session may be active");
    let report = run_campaign(
        &spec(),
        &EngineConfig {
            jobs,
            retries: 1,
            cache_dir: Some(dir.clone()),
            injector: Some(injector),
            ..EngineConfig::default()
        },
    )
    .expect("campaign cache I/O");
    let trace = cr_trace::finish();
    let _ = std::fs::remove_dir_all(&dir);
    (trace, report.results_json())
}

#[test]
fn deterministic_events_are_byte_identical_across_jobs() {
    let _guard = solo();
    let (serial, serial_results) = traced_run(1, "serial");
    let (sharded, sharded_results) = traced_run(8, "sharded");
    assert_eq!(
        serial_results, sharded_results,
        "results stay deterministic"
    );
    assert_eq!(
        serial.deterministic_json(),
        sharded.deterministic_json(),
        "deterministic event sequence must not depend on --jobs"
    );
    assert_eq!(serial.dropped, 0, "ring capacity fits a smoke campaign");
}

#[test]
fn trace_round_trips_through_jsonl() {
    let _guard = solo();
    let (trace, _) = traced_run(2, "roundtrip");
    let back = Trace::parse_jsonl(&trace.to_jsonl()).expect("own JSONL parses");
    assert_eq!(back, trace, "JSONL round-trip is lossless");
}

#[test]
fn chaos_trace_covers_every_stage_with_fault_events() {
    let _guard = solo();
    let (trace, _) = traced_run(2, "stages");
    assert_eq!(
        trace.stages(),
        Stage::ALL.to_vec(),
        "a faulted campaign exercises every pipeline stage"
    );
    let faults: Vec<&cr_trace::Event> = trace
        .events
        .iter()
        .filter(|e| e.stage == Stage::Fault)
        .collect();
    assert!(!faults.is_empty(), "mayhem must fire at least one fault");
    assert!(
        faults.iter().all(|e| e.detail.contains("kind=")),
        "fault events carry the injected kind"
    );
    let stats = trace.stage_stats();
    let sched = stats
        .iter()
        .find(|s| s.stage == Stage::Schedule)
        .expect("schedule stage present");
    assert!(sched.spans > 0, "attempt/pool spans carry durations");
    assert!(
        sched.hist.p50().is_some() && sched.hist.max() > 0,
        "stage histogram sees span durations"
    );
    // Wall stamps live only in the non-deterministic fields: stripping
    // them is exactly what the deterministic view does.
    assert!(
        !trace.deterministic_json().contains("wall_us"),
        "deterministic view carries no wall stamps"
    );
}
