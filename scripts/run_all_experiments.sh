#!/usr/bin/env bash
# Regenerate every paper artifact (EXPERIMENTS.md §E1–E12) in one go.
# Usage: scripts/run_all_experiments.sh [output-dir]
set -euo pipefail
out="${1:-experiment-results}"
mkdir -p "$out"
bins=(table1 table2 table3 api_funnel seh_totals poc_exploits fault_rates prior_work probe_cost stealth_compare ablations)
for b in "${bins[@]}"; do
    echo "[run_all] $b"
    cargo run --release -p cr-bench --bin "$b" >"$out/$b.txt" 2>"$out/$b.log"
done
# arena_bench asserts the §VII-C headline invariants in-binary and
# writes its JSON artifact next to the other BENCH_* files.
echo "[run_all] arena_bench"
ARENA_BENCH_OUT="$out/BENCH_defense.json" \
    cargo run --release -p cr-bench --bin arena_bench \
    >"$out/arena_bench.txt" 2>"$out/arena_bench.log"
echo "[run_all] done — results in $out/"
