#!/usr/bin/env bash
# The tier-1 gate. Everything CI (and the roadmap) requires, in order:
# formatting, lints-as-errors, release build, tests.
#
# Usage: scripts/check.sh [--offline]
#   --offline   forward to every cargo invocation (hermetic builds;
#               the workspace vendors its registry deps under
#               crates/shims/, so offline is expected to work).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
for arg in "$@"; do
  case "$arg" in
    --offline) CARGO_FLAGS+=("--offline") ;;
    *)
      echo "usage: scripts/check.sh [--offline]" >&2
      exit 2
      ;;
  esac
done

run() {
  echo "[check] $*"
  "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]+"${CARGO_FLAGS[@]}"}" -- -D warnings -D deprecated
run cargo build --release "${CARGO_FLAGS[@]+"${CARGO_FLAGS[@]}"}"
run cargo test -q "${CARGO_FLAGS[@]+"${CARGO_FLAGS[@]}"}"

# chaos-smoke: the smoke campaign under the mayhem fault plan must exit
# cleanly with exactly the golden per-class error accounting. The
# summary is deterministic by construction (fixed seed, worker-count
# independent), so a plain byte diff is the whole check. The same run
# captures a trace for the trace-smoke step below.
echo "[check] chaos-smoke (mayhem plan, fixed seed)"
smoke_tmp="$(mktemp -d)"
trap 'rm -rf "$smoke_tmp"' EXIT
target/release/crash-resist chaos --plan mayhem --jobs 2 --summary-json \
  --trace "$smoke_tmp/trace.jsonl" 2>/dev/null > "$smoke_tmp/chaos.json"
if ! diff -u scripts/golden/chaos_smoke.json "$smoke_tmp/chaos.json"; then
  echo "[check] chaos-smoke summary diverged from scripts/golden/chaos_smoke.json" >&2
  exit 1
fi

# trace-smoke: the chaos trace must parse, and the report must see
# every pipeline stage (fault events included) — the stage line is
# golden.
echo "[check] trace-smoke (report over the chaos trace)"
target/release/crash-resist report "$smoke_tmp/trace.jsonl" > "$smoke_tmp/report.txt"
grep '^stages: ' "$smoke_tmp/report.txt" > "$smoke_tmp/stages.txt"
if ! diff -u scripts/golden/trace_stages.txt "$smoke_tmp/stages.txt"; then
  echo "[check] trace stage set diverged from scripts/golden/trace_stages.txt" >&2
  exit 1
fi

# schema check: every machine-readable output carries the versioned
# envelope (schema_version first, a known kind).
echo "[check] report schema (schema_version on every JSON output)"
envelope='^{"schema_version":1,"kind":"'
head -n1 "$smoke_tmp/trace.jsonl" | grep -q '^{"schema_version":1,"kind":"trace"' \
  || { echo "[check] trace header lacks schema_version" >&2; exit 1; }
target/release/crash-resist report --json "$smoke_tmp/trace.jsonl" \
  | grep -q "${envelope}report\"" \
  || { echo "[check] report --json lacks the envelope" >&2; exit 1; }
target/release/crash-resist list --json | grep -q "${envelope}list\"" \
  || { echo "[check] list --json lacks the envelope" >&2; exit 1; }
grep -q "${envelope}chaos\"" "$smoke_tmp/chaos.json" \
  || { echo "[check] chaos --summary-json lacks the envelope" >&2; exit 1; }
printf '{"tasks":[{"PocScan":"ie"}]}' > "$smoke_tmp/spec.json"
target/release/crash-resist campaign --spec "$smoke_tmp/spec.json" --json 2>/dev/null \
  | grep -q "${envelope}campaign\"" \
  || { echo "[check] campaign --json lacks the envelope" >&2; exit 1; }

# solver-bench smoke: a small corpus through the decision-procedure
# bench. Only the non-timing invariants gate: the interned and
# reference pipelines must agree on every verdict, and the warm pass
# must answer every query from the normalized-query memo (the binary
# itself asserts hit == lookup == queries x rounds). Wall-time ratios
# are recorded in the JSON, never asserted.
echo "[check] solver-bench smoke (verdict parity + memo hits)"
SOLVER_BENCH_QUERIES=64 SOLVER_BENCH_ROUNDS=1 \
  SOLVER_BENCH_OUT="$smoke_tmp/solver.json" \
  target/release/solver_bench > /dev/null 2> "$smoke_tmp/solver.log" \
  || { cat "$smoke_tmp/solver.log" >&2; echo "[check] solver_bench failed" >&2; exit 1; }
grep -q '"verdict_parity":true' "$smoke_tmp/solver.json" \
  || { echo "[check] solver_bench verdict parity failed" >&2; exit 1; }
grep -q '"memo_warm":{[^}]*"memo_hits":64' "$smoke_tmp/solver.json" \
  || { echo "[check] solver_bench warm pass did not hit the memo" >&2; exit 1; }

# symex-paths smoke: the path explorer over the loopy/multi-branch
# filter family. Exploration is a single-threaded deterministic DFS
# over generated targets, so the whole envelope (per-filter verdicts,
# path/prune/step counts, solver counters) diffs byte for byte. The
# solver-bench JSON above also prices this family: incremental push/pop
# must beat re-blasting every path from scratch, at full verdict parity
# (the bench binary asserts parity itself).
echo "[check] symex-paths smoke (explore golden + incremental pricing)"
target/release/crash-resist explore loopy --json > "$smoke_tmp/explore.json"
if ! diff -u scripts/golden/explore_smoke.json "$smoke_tmp/explore.json"; then
  echo "[check] explore report diverged from scripts/golden/explore_smoke.json" >&2
  exit 1
fi
grep -q "${envelope}explore\"" "$smoke_tmp/explore.json" \
  || { echo "[check] explore --json lacks the envelope" >&2; exit 1; }
grep -q '"memo_hits":64' "$smoke_tmp/explore.json" \
  || { echo "[check] sibling-path memo hits fell below the 64-hit floor" >&2; exit 1; }
grep -q '"incremental_beats_independent":true' "$smoke_tmp/solver.json" \
  || { cat "$smoke_tmp/solver.json" >&2
  echo "[check] incremental exploration did not beat independent re-blasting" >&2; exit 1; }

# symex-parallel smoke: the same exploration through the parallel fork
# scheduler. Determinism is the hard gate — `explore --jobs 4` must
# reproduce the *same* pinned golden byte for byte (path order, solver
# counters and all), and the bench must have asserted full-report
# byte-identity across 1/2/4/8 workers in-binary. The wall-clock floor
# (parallel_speedup_4 > 1.5) only gates on hardware that can show it:
# on fewer than 4 cores the sweep records the ratio and we warn.
echo "[check] symex-parallel smoke (explore --jobs 4 golden + sweep invariants)"
target/release/crash-resist explore loopy --jobs 4 --json > "$smoke_tmp/explore_par.json"
if ! diff -u scripts/golden/explore_smoke.json "$smoke_tmp/explore_par.json"; then
  echo "[check] explore --jobs 4 diverged from scripts/golden/explore_smoke.json" >&2
  exit 1
fi
grep -q '"memo_hits":64' "$smoke_tmp/explore_par.json" \
  || { echo "[check] parallel explore memo hits fell below the 64-hit floor" >&2; exit 1; }
grep -q '"reports_byte_identical":true' "$smoke_tmp/solver.json" \
  || { cat "$smoke_tmp/solver.json" >&2
  echo "[check] parallel sweep reports were not byte-identical" >&2; exit 1; }
! grep -q '"verdict_parity":false' "$smoke_tmp/solver.json" \
  || { cat "$smoke_tmp/solver.json" >&2
  echo "[check] parallel sweep verdict parity failed" >&2; exit 1; }
speedup_4="$(sed -n 's/.*"parallel_speedup_4":\([0-9.]*\).*/\1/p' "$smoke_tmp/solver.json")"
if [ "$(nproc 2>/dev/null || echo 1)" -ge 4 ]; then
  awk -v s="${speedup_4:-0}" 'BEGIN { exit !(s > 1.5) }' \
    || { echo "[check] parallel_speedup_4=${speedup_4:-?} <= 1.5 on a >=4-core machine" >&2
    exit 1; }
else
  echo "[check]   <4 cores: parallel_speedup_4=${speedup_4:-?} recorded, floor not enforced"
fi

# scan-smoke: the traceless scanner over the harness-less corpus module
# must reproduce the golden report byte for byte (content hashes,
# dataflow origins and temporal tags included), and a one-round
# scan_bench sweep must hold the non-timing invariants: 100% static
# recall against every taint-confirmed site set, and byte-identical
# reports across repeated scans. Throughput numbers are recorded in the
# JSON, never asserted.
echo "[check] scan-smoke (golden vsftpd report + recall/determinism sweep)"
target/release/crash-resist scan vsftpd --json > "$smoke_tmp/scan.json"
if ! diff -u scripts/golden/scan_smoke.json "$smoke_tmp/scan.json"; then
  echo "[check] scan report diverged from scripts/golden/scan_smoke.json" >&2
  exit 1
fi
SCAN_BENCH_ROUNDS=1 SCAN_BENCH_OUT="$smoke_tmp/static.json" \
  target/release/scan_bench > /dev/null 2> "$smoke_tmp/scan.log" \
  || { cat "$smoke_tmp/scan.log" >&2; echo "[check] scan_bench failed" >&2; exit 1; }
grep -q '"recall_100":true' "$smoke_tmp/static.json" \
  || { echo "[check] scan_bench static recall below 100%" >&2; exit 1; }
grep -q '"deterministic":true' "$smoke_tmp/static.json" \
  || { echo "[check] scan_bench reports diverged across runs" >&2; exit 1; }

# arena-smoke: the full strategy × detector matrix through the
# campaign engine. The envelope carries only the deterministic half
# (metrics is null), so the whole document diffs byte for byte — and
# the golden itself encodes the §VII-C headline: stealth evades the
# rate threshold but CUSUM catches it, the scan-derived serving filter
# blocks every escalation, zero false positives anywhere. The explicit
# greps keep the invariant readable even if the golden is regenerated.
echo "[check] arena-smoke (strategy x detector matrix golden)"
target/release/crash-resist arena --json 2>/dev/null > "$smoke_tmp/arena.json"
if ! diff -u scripts/golden/arena_smoke.json "$smoke_tmp/arena.json"; then
  echo "[check] arena matrix diverged from scripts/golden/arena_smoke.json" >&2
  exit 1
fi
grep -q "${envelope}arena\"" "$smoke_tmp/arena.json" \
  || { echo "[check] arena --json lacks the envelope" >&2; exit 1; }
grep -q '"stealth_evades_rate":true' "$smoke_tmp/arena.json" \
  || { echo "[check] stealth no longer evades the rate threshold" >&2; exit 1; }
grep -q '"stealth_caught_by_cusum":true' "$smoke_tmp/arena.json" \
  || { echo "[check] CUSUM no longer catches stealth probing" >&2; exit 1; }
grep -q '"filter_blocks_escalations":true' "$smoke_tmp/arena.json" \
  || { echo "[check] the syscall filter missed an escalation" >&2; exit 1; }
grep -q '"zero_false_positives":true' "$smoke_tmp/arena.json" \
  || { echo "[check] a detector false-positived on benign browsing" >&2; exit 1; }

# serve-smoke: start the resident server on an ephemeral port, send one
# cold and one warm request over a single client connection, assert the
# warm invariants (zero solver calls, resident parsed image), and drain
# gracefully. The Shutdown frame is the SIGTERM-equivalent: portable
# std cannot trap signals, so graceful drain is a protocol affair.
echo "[check] serve-smoke (cold + warm request, graceful drain)"
printf '{"name":"serve-smoke","seed":2017,"tasks":[{"SehAnalysis":"xmllite"}]}' \
  > "$smoke_tmp/serve_spec.json"
target/release/crash-resist serve --stats-json \
  > "$smoke_tmp/serve_out.json" 2> "$smoke_tmp/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^serving on //p' "$smoke_tmp/serve_out.json" 2>/dev/null | head -n1)"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { cat "$smoke_tmp/serve.log" >&2
  echo "[check] server never published its address" >&2; exit 1; }
target/release/crash-resist client --addr "$addr" \
  --spec "$smoke_tmp/serve_spec.json" --repeat 2 --stats --shutdown \
  > "$smoke_tmp/client.json" 2> "$smoke_tmp/client.log" \
  || { cat "$smoke_tmp/client.log" >&2
  echo "[check] serve client round trip failed" >&2; exit 1; }
wait "$serve_pid" \
  || { cat "$smoke_tmp/serve.log" >&2
  echo "[check] server did not drain cleanly" >&2; exit 1; }
[ "$(wc -l < "$smoke_tmp/client.json")" -eq 2 ] \
  || { echo "[check] expected two Done payloads" >&2; exit 1; }
head -n1 "$smoke_tmp/client.json" | grep -q '"parse":"fresh"' \
  || { echo "[check] cold request must parse the image fresh" >&2; exit 1; }
tail -n1 "$smoke_tmp/client.json" \
  | grep -q '"solver_calls":0.*"parse":"cached"' \
  || { cat "$smoke_tmp/client.json" >&2
  echo "[check] warm request must skip the solver and reuse the image" >&2; exit 1; }
grep -q '"schema_version":1,"kind":"serve"' "$smoke_tmp/serve_out.json" \
  || { echo "[check] serve --stats-json lacks the envelope" >&2; exit 1; }
grep -q '"requests_completed":2' "$smoke_tmp/serve_out.json" \
  || { cat "$smoke_tmp/serve_out.json" >&2
  echo "[check] drained stats must report both requests completed" >&2; exit 1; }

# fleet-smoke: three workers behind the router, four sequential
# requests plus a three-client burst, with the worker owning admission
# 2 killed mid-request. Every admitted request must still get exactly
# one answer, byte-identical to a one-shot campaign run — the failover
# and coalescing invariants, under an actual node death. Restart
# timing is scheduler-dependent, so only the delivery invariants gate.
echo "[check] fleet-smoke (node kill mid-request, delivery invariants)"
target/release/crash-resist fleet --workers 3 --requests 4 \
  --kill-request 2 --summary-json \
  > "$smoke_tmp/fleet.json" 2> "$smoke_tmp/fleet.log" \
  || { cat "$smoke_tmp/fleet.log" >&2
  echo "[check] fleet run failed" >&2; exit 1; }
grep -q "${envelope}fleet\"" "$smoke_tmp/fleet.json" \
  || { echo "[check] fleet --summary-json lacks the envelope" >&2; exit 1; }
grep -q '"answered":7,"expected":7,"byte_identical":true,"exactly_once":true,"ok":true' \
  "$smoke_tmp/fleet.json" \
  || { cat "$smoke_tmp/fleet.json" >&2
  echo "[check] fleet delivery invariants broken" >&2; exit 1; }
grep -q '"kills":1' "$smoke_tmp/fleet.json" \
  || { cat "$smoke_tmp/fleet.json" >&2
  echo "[check] fleet smoke never killed its worker" >&2; exit 1; }
echo "[check] all green"
