#!/usr/bin/env bash
# Full verification: build, lints, tests, docs, bench smoke.
set -euo pipefail
cargo build --workspace --examples --benches
cargo test --workspace
cargo doc --workspace --no-deps
cargo bench -p cr-bench -- --test
echo "[check] all green"
