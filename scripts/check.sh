#!/usr/bin/env bash
# The tier-1 gate. Everything CI (and the roadmap) requires, in order:
# formatting, lints-as-errors, release build, tests.
#
# Usage: scripts/check.sh [--offline]
#   --offline   forward to every cargo invocation (hermetic builds;
#               the workspace vendors its registry deps under
#               crates/shims/, so offline is expected to work).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
for arg in "$@"; do
  case "$arg" in
    --offline) CARGO_FLAGS+=("--offline") ;;
    *)
      echo "usage: scripts/check.sh [--offline]" >&2
      exit 2
      ;;
  esac
done

run() {
  echo "[check] $*"
  "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]+"${CARGO_FLAGS[@]}"}" -- -D warnings
run cargo build --release "${CARGO_FLAGS[@]+"${CARGO_FLAGS[@]}"}"
run cargo test -q "${CARGO_FLAGS[@]+"${CARGO_FLAGS[@]}"}"

# chaos-smoke: the smoke campaign under the mayhem fault plan must exit
# cleanly with exactly the golden per-class error accounting. The
# summary is deterministic by construction (fixed seed, worker-count
# independent), so a plain byte diff is the whole check.
echo "[check] chaos-smoke (mayhem plan, fixed seed)"
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
target/release/crash-resist chaos --plan mayhem --jobs 2 --summary-json \
  2>/dev/null > "$smoke_out"
if ! diff -u scripts/golden/chaos_smoke.json "$smoke_out"; then
  echo "[check] chaos-smoke summary diverged from scripts/golden/chaos_smoke.json" >&2
  exit 1
fi
echo "[check] all green"
