//! Windows-side targets: calibrated system DLLs and browser hosts.

pub mod calibration;
pub mod dlls;
pub mod firefox;
pub mod ie;
pub mod loopy;

pub use calibration::{calib, DllCalib, CALIBRATION};
pub use dlls::{
    full_population_specs, full_population_specs_seeded, generate_dll, generate_dll_bytes, DllSpec,
};
pub use firefox::FirefoxSim;
pub use ie::IeSim;
pub use loopy::{generate_loopy_dll, generate_loopy_dll_bytes, LoopyCase, LOOPY_CASES};

#[cfg(test)]
mod tests {
    use super::*;
    use cr_image::FilterRef;

    #[test]
    fn generated_dll_matches_calibration_structure() {
        let c = calib("user32").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x64(c, 0));
        // Guarded-function count equals guarded_before (from .pdata).
        let guarded: usize = img
            .runtime_functions
            .iter()
            .filter(|f| f.unwind.handler_rva.is_some() && !f.unwind.scopes.is_empty())
            .count();
        assert_eq!(guarded as u32, c.guarded_before);
        // Every declared filter is referenced by some scope.
        let referenced: std::collections::BTreeSet<u32> = img
            .runtime_functions
            .iter()
            .flat_map(|f| f.unwind.scopes.iter())
            .filter_map(|s| match s.filter {
                FilterRef::Function(rva) => Some(rva),
                FilterRef::CatchAll => None,
            })
            .collect();
        assert_eq!(referenced.len() as u32, c.fx64_before);
        // Distinct filter functions referenced ≤ filters_before, and
        // catch-all scopes exist.
        let mut filters: Vec<u32> = img
            .runtime_functions
            .iter()
            .flat_map(|f| f.unwind.scopes.iter())
            .filter_map(|s| match s.filter {
                FilterRef::Function(rva) => Some(rva),
                FilterRef::CatchAll => None,
            })
            .collect();
        filters.sort_unstable();
        filters.dedup();
        assert!(filters.len() as u32 <= c.fx64_before);
        let catchall = img
            .runtime_functions
            .iter()
            .flat_map(|f| f.unwind.scopes.iter())
            .filter(|s| s.filter == FilterRef::CatchAll)
            .count();
        assert!(catchall > 0);
        // Exports for every guarded function.
        assert!(img.exports.contains_key("Guarded0"));
        assert!(img
            .exports
            .contains_key(&format!("Guarded{}", c.guarded_before - 1)));
    }

    #[test]
    fn x86_variant_uses_x86_machine_and_counts() {
        let c = calib("xmllite").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x86(c, 7));
        assert_eq!(img.machine, cr_image::Machine::X86);
        let guarded: usize = img
            .runtime_functions
            .iter()
            .filter(|f| f.unwind.handler_rva.is_some() && !f.unwind.scopes.is_empty())
            .count();
        assert_eq!(guarded as u32, c.guarded_before);
    }

    #[test]
    fn all_calibrated_dlls_generate() {
        for (i, c) in CALIBRATION.iter().enumerate() {
            let img = generate_dll(&DllSpec::from_calib_x64(c, i));
            assert!(!img.runtime_functions.is_empty(), "{}", c.name);
        }
    }
}

#[cfg(test)]
mod population_tests {
    use super::dlls::full_population_specs;

    #[test]
    fn full_population_totals_match_prose() {
        let specs = full_population_specs();
        assert_eq!(specs.len(), 187, "187 analyzed DLLs");
        let handlers: u32 = specs.iter().map(|s| s.guarded_total).sum();
        let filters: u32 = specs.iter().map(|s| s.filters_total).sum();
        let after: u32 = specs.iter().map(|s| s.filters_accepting).sum();
        assert_eq!(handlers, 6_745, "C-specific exception handlers");
        assert_eq!(filters, 5_751, "distinct filter functions");
        assert_eq!(after, 808, "filters that handle access violations");
    }

    #[test]
    fn full_population_specs_are_generatable() {
        // Spot-check a sample (generating all 187 is the bench's job).
        for spec in full_population_specs().iter().skip(10).step_by(40) {
            let img = super::generate_dll(spec);
            assert!(!img.runtime_functions.is_empty(), "{}", spec.name);
        }
    }
}

#[cfg(test)]
mod population_av_tests {
    #[test]
    fn full_population_av_capable_total_matches_prose() {
        let specs = super::dlls::full_population_specs();
        let av: u32 = specs.iter().map(|s| s.guarded_accepting).sum();
        assert_eq!(av, 1_797, "AV-capable handlers across 187 DLLs");
    }
}
