//! Generator for system-DLL images with calibrated SEH populations.
//!
//! Each generated module contains `guarded_total` functions guarded by
//! C-specific exception handlers (one `__try` scope each) and
//! `filters_total` distinct filter *functions* (real machine code), wired
//! so that exactly `guarded_accepting` scopes can accept an access
//! violation (catch-all scopes plus scopes referencing AV-accepting
//! filters) and exactly `filters_accepting` filters survive symbolic
//! vetting. The discovery pipeline never sees these numbers — it must
//! recover them from `.pdata`/`.xdata` and the filter code.

use super::calibration::DllCalib;
use cr_image::{FilterRef, Machine, PeBuilder, PeImage, ScopeEntry};
use cr_isa::{Asm, Cond, Inst, Mem as M, Reg, Rm, Width};
use cr_os::windows::api::ApiTable;
use cr_os::windows::STATUS_ACCESS_VIOLATION;
use Reg::*;

/// Base address of the generated-DLL region.
pub const DLL_REGION: u64 = 0x7FF9_0000_0000;
/// Address stride between DLL images.
pub const DLL_STRIDE: u64 = 0x0100_0000;

/// Generation request for one module.
#[derive(Debug, Clone)]
pub struct DllSpec {
    /// Module name (e.g. `user32`).
    pub name: String,
    /// Container machine (x64 or modeled x86 — see DESIGN.md).
    pub machine: Machine,
    /// Preferred image base.
    pub image_base: u64,
    /// Total guarded code locations.
    pub guarded_total: u32,
    /// Locations whose scope can accept an AV (catch-all included).
    pub guarded_accepting: u32,
    /// How many accepting locations the browse workload exercises.
    pub on_path: u32,
    /// Total distinct filter functions.
    pub filters_total: u32,
    /// Filters that accept AV (or defeat the analysis — see
    /// `unknown_filter`).
    pub filters_accepting: u32,
    /// Make one "accepting" filter call a helper function, so symbolic
    /// execution cannot decide it (the paper's post-update IE filter).
    pub unknown_filter: bool,
    /// Attach the jscript9 `MUTX::Enter` idiom (needs the API table).
    pub mutx_extra: Option<ApiTable>,
    /// Emit a vectored exception handler routine (`RtlProbeVeh`) — code
    /// present in the module but *not referenced by any scope table*, so
    /// static `.pdata` analysis cannot find it (the paper's Firefox
    /// limitation, §VII-A). It handles AVs by setting the exported
    /// `ProbeFlag` and resuming.
    pub veh_extra: bool,
}

impl DllSpec {
    /// Spec from a calibration row (x64 flavor).
    pub fn from_calib_x64(c: &DllCalib, index: usize) -> DllSpec {
        DllSpec {
            name: c.name.to_string(),
            machine: Machine::X64,
            image_base: DLL_REGION + index as u64 * DLL_STRIDE,
            guarded_total: c.guarded_before,
            guarded_accepting: c.guarded_after,
            on_path: c.on_path,
            filters_total: c.fx64_before,
            filters_accepting: c.fx64_after,
            unknown_filter: c.name == "jscript9",
            mutx_extra: None,
            veh_extra: c.name == "ntdll",
        }
    }

    /// Spec from a calibration row (x86-container flavor).
    pub fn from_calib_x86(c: &DllCalib, index: usize) -> DllSpec {
        DllSpec {
            name: c.name.to_string(),
            machine: Machine::X86,
            image_base: DLL_REGION + (0x80 + index as u64) * DLL_STRIDE,
            guarded_total: c.guarded_before,
            guarded_accepting: c.guarded_after,
            on_path: 0,
            filters_total: c.fx86_before,
            filters_accepting: c.fx86_after,
            unknown_filter: false,
            mutx_extra: None,
            veh_extra: false,
        }
    }
}

/// Generate the full §V-C module population: 187 DLLs whose totals match
/// the paper's prose — 6,745 C-specific handlers using 5,751 distinct
/// filter functions, of which 808 survive symbolic execution.
///
/// The ten calibrated system DLLs contribute their Table II/III numbers;
/// the remaining 177 modules carry deterministic pseudo-random
/// populations scaled so the totals land exactly.
pub fn full_population_specs() -> Vec<DllSpec> {
    full_population_specs_seeded(0xD511)
}

/// [`full_population_specs`] with an explicit seed for the synthetic
/// modules' pseudo-random populations. The calibrated rows and the
/// workspace-wide totals are invariant under the seed — only how the
/// synthetic remainder is distributed across `mod000..mod176` moves.
pub fn full_population_specs_seeded(seed: u64) -> Vec<DllSpec> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const TOTAL_DLLS: usize = 187;
    const TOTAL_HANDLERS: u32 = 6_745;
    const TOTAL_FILTERS: u32 = 5_751;
    const TOTAL_FILTERS_AFTER: u32 = 808;
    /// "These filter functions are used by 1,797 exception handlers."
    const TOTAL_AV_CAPABLE: u32 = 1_797;

    let mut specs: Vec<DllSpec> = super::calibration::CALIBRATION
        .iter()
        .enumerate()
        .map(|(i, c)| DllSpec::from_calib_x64(c, i))
        .collect();
    let mut handlers: u32 = specs.iter().map(|s| s.guarded_total).sum();
    let mut filters: u32 = specs.iter().map(|s| s.filters_total).sum();
    let mut filters_after: u32 = specs.iter().map(|s| s.filters_accepting).sum();

    let remaining = TOTAL_DLLS - specs.len();
    let mut rng = StdRng::seed_from_u64(seed);
    for k in 0..remaining {
        let left = (remaining - k) as u32;
        let h_quota = (TOTAL_HANDLERS - handlers) / left;
        let f_quota = (TOTAL_FILTERS - filters) / left;
        let fa_quota = (TOTAL_FILTERS_AFTER - filters_after) / left;
        let (h, f, fa) = if k + 1 == remaining {
            // Last module absorbs rounding so totals are exact.
            (
                TOTAL_HANDLERS - handlers,
                TOTAL_FILTERS - filters,
                TOTAL_FILTERS_AFTER - filters_after,
            )
        } else {
            let jitter = |q: u32, rng: &mut StdRng| {
                if q <= 2 {
                    q
                } else {
                    rng.gen_range(q.saturating_sub(q / 3).max(1)..=q + q / 3)
                }
            };
            (
                jitter(h_quota, &mut rng),
                jitter(f_quota, &mut rng),
                fa_quota.min(f_quota),
            )
        };
        let h = h.max(2);
        let f = f.min(h * 4).max(1); // scopes can reference several filters
        let fa = fa.min(f).min(h.saturating_sub(1));
        // guarded_accepting must leave rejecting functions when rejecting
        // filters exist, and cover accepting filters.
        let accepting = fa
            .max(if fa == f { h } else { (h / 4).max(fa) })
            .min(h.saturating_sub(u32::from(fa < f)));
        specs.push(DllSpec {
            name: format!("mod{k:03}"),
            machine: Machine::X64,
            image_base: DLL_REGION + (0x100 + k as u64) * DLL_STRIDE,
            guarded_total: h,
            guarded_accepting: accepting,
            on_path: 0,
            filters_total: f,
            filters_accepting: fa,
            unknown_filter: false,
            mutx_extra: None,
            veh_extra: false,
        });
        handlers += h;
        filters += f;
        filters_after += fa;
    }
    debug_assert_eq!(handlers, TOTAL_HANDLERS);
    debug_assert_eq!(filters, TOTAL_FILTERS);
    debug_assert_eq!(filters_after, TOTAL_FILTERS_AFTER);

    // Fix-up pass: nudge synthetic modules' accepting counts (within their
    // structural bounds) until the AV-capable handler total matches the
    // prose's 1,797.
    let fixed = super::calibration::CALIBRATION.len();
    let mut av_total: i64 = specs.iter().map(|s| s.guarded_accepting as i64).sum();
    let mut k = fixed;
    while av_total != TOTAL_AV_CAPABLE as i64 {
        let s = &mut specs[k];
        let min_acc = s.filters_accepting;
        let max_acc = s.guarded_total - u32::from(s.filters_accepting < s.filters_total);
        if av_total < TOTAL_AV_CAPABLE as i64 && s.guarded_accepting < max_acc {
            s.guarded_accepting += 1;
            av_total += 1;
        } else if av_total > TOTAL_AV_CAPABLE as i64 && s.guarded_accepting > min_acc {
            s.guarded_accepting -= 1;
            av_total -= 1;
        }
        k += 1;
        if k == specs.len() {
            k = fixed;
        }
    }
    specs
}

/// Offset of the `ScriptEngine` object in the data section (jscript9).
pub const ENGINE_DATA_RVA: u32 = 0x8000;
/// ScriptEngine field offsets: status, then CRITICAL_SECTION at +0x10.
pub const ENGINE_STATUS_OFF: u64 = 0;
/// CRITICAL_SECTION offset inside the ScriptEngine.
pub const ENGINE_CS_OFF: u64 = 0x10;

/// Generate a module image for `spec`.
///
/// # Panics
///
/// Panics on inconsistent specs (e.g. rejecting scopes but no rejecting
/// filters).
pub fn generate_dll(spec: &DllSpec) -> PeImage {
    PeImage::parse(&generate_dll_bytes(spec)).expect("generated image parses")
}

/// Raw PE bytes for `spec`, before parsing. Fault-injection harnesses
/// use this to corrupt the byte stream between generation and
/// [`PeImage::parse`]; [`generate_dll`] is the parse-immediately form.
///
/// # Panics
///
/// Panics on inconsistent specs (e.g. rejecting scopes but no rejecting
/// filters).
pub fn generate_dll_bytes(spec: &DllSpec) -> Vec<u8> {
    let base = spec.image_base;
    let text_rva: u32 = 0x1000;
    let mut a = Asm::new(base + text_rva as u64);

    // __C_specific_handler stub (referenced by every UNWIND_INFO).
    a.global("__C_specific_handler");
    a.ret();
    a.align(16);

    // Helper used by the "unknown" filter shape.
    a.global("FilterHelper");
    a.mov_ri(Rax, 1);
    a.ret();
    a.align(16);

    // ---- filter functions -------------------------------------------------
    let mut accepting_filters: Vec<usize> = Vec::new();
    let mut rejecting_filters: Vec<usize> = Vec::new();
    for i in 0..spec.filters_total {
        a.global(&format!("Filter{i}"));
        let accepting = i < spec.filters_accepting;
        if accepting {
            accepting_filters.push(i as usize);
            let unknown_here = spec.unknown_filter && i + 1 == spec.filters_accepting;
            if unknown_here {
                emit_filter_calls_helper(&mut a);
            } else {
                emit_accepting_filter(&mut a, i);
            }
        } else {
            rejecting_filters.push(i as usize);
            emit_rejecting_filter(&mut a, i - spec.filters_accepting);
        }
        a.align(16);
    }

    assert!(
        spec.guarded_total == spec.guarded_accepting || !rejecting_filters.is_empty(),
        "{}: rejecting scopes need rejecting filters",
        spec.name
    );

    // ---- guarded functions -------------------------------------------------
    // Every filter function must be referenced from some scope (otherwise
    // it would not be part of the module's filter population). Real
    // modules nest multiple `__try` regions per function, so a guarded
    // function here carries one or more scopes. Function i < accepting
    // count is "accepting" (≥1 surviving scope); the rest are rejecting.
    #[derive(Clone, Copy, PartialEq)]
    enum FilterChoice {
        CatchAll,
        Filter(usize),
    }
    let has_mutx_fn = spec.mutx_extra.is_some();
    // MUTX (when present) is itself one accepting guarded function.
    let regular_total = spec.guarded_total - has_mutx_fn as u32;
    let regular_accepting = spec.guarded_accepting - has_mutx_fn as u32;
    let rejecting_count = regular_total - regular_accepting;
    let mut fn_scopes: Vec<Vec<FilterChoice>> = vec![Vec::new(); regular_total as usize];
    // Distribute accepting filters round-robin over accepting functions.
    for (k, &f) in accepting_filters.iter().enumerate() {
        if regular_accepting > 0 {
            fn_scopes[k % regular_accepting as usize].push(FilterChoice::Filter(f));
        }
    }
    // Accepting functions without a filter get a catch-all scope.
    for slots in fn_scopes.iter_mut().take(regular_accepting as usize) {
        if slots.is_empty() {
            slots.push(FilterChoice::CatchAll);
        }
    }
    // Distribute rejecting filters over rejecting functions.
    assert!(
        rejecting_filters.is_empty() || rejecting_count > 0,
        "{}: rejecting filters need rejecting functions",
        spec.name
    );
    for (k, &f) in rejecting_filters.iter().enumerate() {
        let idx = regular_accepting as usize + k % rejecting_count.max(1) as usize;
        fn_scopes[idx].push(FilterChoice::Filter(f));
    }
    // Rejecting functions without a filter re-reference one (real modules
    // share filter functions across many handlers).
    #[allow(clippy::same_item_push)]
    for slots in fn_scopes.iter_mut().skip(regular_accepting as usize) {
        if slots.is_empty() {
            slots.push(FilterChoice::Filter(
                *rejecting_filters.first().expect("checked above"),
            ));
        }
    }
    let guard_filters = fn_scopes;

    // Optional MUTX::Enter extra (one additional catch-all scope).
    let has_mutx = spec.mutx_extra.is_some();
    if let Some(api) = &spec.mutx_extra {
        a.global("MUTX_Enter");
        // rcx = &ScriptEngine; status at +0, CRITICAL_SECTION at +0x10.
        a.store_i_at(Rcx, 0, 0);
        a.mov_rr(R10, Rcx);
        a.lea(Rcx, M::base_disp(R10, ENGINE_CS_OFF as i32));
        a.global("MUTX_tb");
        a.mov_ri(Rax, api.address_of("EnterCriticalSection"));
        a.call_reg(Rax);
        a.global("MUTX_te");
        a.zero(Rax);
        a.ret();
        a.global("MUTX_ex");
        a.store_i_at(R10, ENGINE_STATUS_OFF as i32, 1);
        a.mov_ri(Rax, 1);
        a.ret();
        a.global("MUTX_end");
        a.align(16);
    }

    // Optional VEH handler routine (runtime-registered, invisible to the
    // static .pdata analysis). ABI: rcx = PEXCEPTION_POINTERS; returns
    // -1 (continue execution) for AVs after flagging, else 0.
    if spec.veh_extra {
        a.global("RtlProbeVeh");
        emit_load_code(&mut a);
        cmp_eax(&mut a, STATUS_ACCESS_VIOLATION);
        let not_av = a.fresh();
        a.jcc(Cond::Ne, not_av);
        a.mov_ri(R9, base + ENGINE_DATA_RVA as u64 + 0x1C0);
        a.store_i(M::base(R9), 1);
        a.mov_ri(Rax, (-1i64) as u64);
        a.ret();
        a.bind(not_av);
        a.zero(Rax);
        a.ret();
        a.align(16);
    }

    let on_path_regular = spec.on_path.saturating_sub(has_mutx_fn as u32);
    for (i, scopes) in guard_filters.iter().enumerate() {
        let accepting = (i as u32) < regular_accepting;
        a.global(&format!("Guarded{i}"));
        if accepting && (i as u32) < on_path_regular {
            let l = a.here();
            a.name(&format!("OnPath{i}"), l);
        }
        // rcx = probe target. Body: one dereference per scope, each its
        // own `__try` region with its own `__except` continuation.
        for k in 0..scopes.len() {
            a.global(&format!("G{i}_tb{k}"));
            a.load(Rax, M::base(Rcx));
            a.global(&format!("G{i}_te{k}"));
        }
        a.ret();
        for k in 0..scopes.len() {
            a.global(&format!("G{i}_ex{k}"));
            a.mov_ri(Rax, 0xEEEE_0000 + i as u64 + ((k as u64) << 32));
            a.ret();
        }
        a.global(&format!("G{i}_end"));
        a.align(16);
    }
    a.global("text_end");

    let assembled = a.assemble().expect("dll assembles");
    let rva = |sym: &str| (assembled.sym(sym) - base) as u32;

    let mut b = PeBuilder::new(&format!("{}.dll", spec.name), spec.machine, base);
    b.entry(rva("__C_specific_handler"));
    let handler_rva = rva("__C_specific_handler");

    // Data section: scratch area + (optionally) the ScriptEngine object.
    let mut data = vec![0u8; 0x200];
    if has_mutx {
        // ScriptEngine initial state: status 0; CS: DebugInfo → valid
        // debug area (data+0x100), LockCount -1 (free), rest 0.
        let dbg_va = base + ENGINE_DATA_RVA as u64 + 0x100;
        data[0x10..0x18].copy_from_slice(&dbg_va.to_le_bytes());
        data[0x18..0x1C].copy_from_slice(&(-1i32).to_le_bytes());
        b.export("ScriptEngine", ENGINE_DATA_RVA);
    }
    b.export("Scratch", ENGINE_DATA_RVA + 0x180);
    b.data(ENGINE_DATA_RVA, data);

    // Exports: guarded + on-path + mutx.
    for i in 0..regular_total {
        b.export(&format!("Guarded{i}"), rva(&format!("Guarded{i}")));
    }
    for i in 0..on_path_regular {
        b.export(&format!("OnPath{i}"), rva(&format!("OnPath{i}")));
    }
    if has_mutx && spec.on_path > 0 {
        // MUTX is on the browse path via ProcessScript; export an alias so
        // generic on-path drivers can also reach it.
        b.export(&format!("OnPath{}", on_path_regular), rva("MUTX_Enter"));
    }
    if spec.veh_extra {
        b.export("RtlProbeVeh", rva("RtlProbeVeh"));
        b.export("ProbeFlag", ENGINE_DATA_RVA + 0x1C0);
    }
    if has_mutx {
        b.export("MUTX_Enter", rva("MUTX_Enter"));
        // The paper's IE scope: filter address field contains 0x1.
        b.function_with_seh(
            rva("MUTX_Enter"),
            rva("MUTX_end"),
            handler_rva,
            vec![ScopeEntry {
                begin_rva: rva("MUTX_tb"),
                end_rva: rva("MUTX_te"),
                filter: FilterRef::CatchAll,
                target_rva: rva("MUTX_ex"),
            }],
        );
    }

    // Runtime functions with scope tables (one per guarded function,
    // possibly several scopes each).
    for (i, choices) in guard_filters.iter().enumerate() {
        let scopes: Vec<ScopeEntry> = choices
            .iter()
            .enumerate()
            .map(|(k, choice)| ScopeEntry {
                begin_rva: rva(&format!("G{i}_tb{k}")),
                end_rva: rva(&format!("G{i}_te{k}")),
                filter: match choice {
                    FilterChoice::CatchAll => FilterRef::CatchAll,
                    FilterChoice::Filter(idx) => FilterRef::Function(rva(&format!("Filter{idx}"))),
                },
                target_rva: rva(&format!("G{i}_ex{k}")),
            })
            .collect();
        b.function_with_seh(
            rva(&format!("Guarded{i}")),
            rva(&format!("G{i}_end")),
            handler_rva,
            scopes,
        );
    }
    // Plain runtime functions for the filters themselves (no handler).
    let after_filters = if spec.veh_extra {
        rva("RtlProbeVeh")
    } else if has_mutx {
        rva("MUTX_Enter")
    } else if spec.guarded_total > 0 {
        rva("Guarded0")
    } else {
        rva("text_end")
    };
    for i in 0..spec.filters_total as usize {
        let begin = rva(&format!("Filter{i}"));
        let end = if i + 1 < spec.filters_total as usize {
            rva(&format!("Filter{}", i + 1))
        } else {
            after_filters
        };
        b.function(begin, end);
    }

    b.text(text_rva, assembled.code.clone());
    b.build()
}

// ---- filter shapes ---------------------------------------------------------

/// Load `ExceptionCode` into eax (filter prologue).
fn emit_load_code(a: &mut Asm) {
    a.load(Rax, M::base(Rcx)); // rax = &EXCEPTION_RECORD
    a.inst(Inst::MovRRm {
        dst: Rax,
        src: Rm::Mem(M::base(Rax)),
        width: Width::B4,
    });
}

fn cmp_eax(a: &mut Asm, code: u32) {
    a.inst(Inst::AluRmI {
        op: cr_isa::AluOp::Cmp,
        dst: Rm::Reg(Rax),
        imm: code as i32,
        width: Width::B4,
    });
}

fn emit_accepting_filter(a: &mut Asm, variant: u32) {
    match variant % 4 {
        0 => {
            // return 1
            a.mov_ri(Rax, 1);
            a.ret();
        }
        1 => {
            // return code == AV
            emit_load_code(a);
            cmp_eax(a, STATUS_ACCESS_VIOLATION);
            let no = a.fresh();
            a.jcc(Cond::Ne, no);
            a.mov_ri(Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Rax);
            a.ret();
        }
        2 => {
            // severity mask: accept any STATUS_SEVERITY_ERROR code
            emit_load_code(a);
            a.shr(Rax, 30);
            a.cmp_ri(Rax, 3);
            let no = a.fresh();
            a.jcc(Cond::Ne, no);
            a.mov_ri(Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Rax);
            a.ret();
        }
        _ => {
            // exclusion list: reject two specific codes, accept the rest
            emit_load_code(a);
            let reject = a.fresh();
            cmp_eax(a, 0xC000_0094); // INTEGER_DIVIDE_BY_ZERO
            a.jcc(Cond::E, reject);
            cmp_eax(a, 0x8000_0003); // BREAKPOINT
            a.jcc(Cond::E, reject);
            a.mov_ri(Rax, 1);
            a.ret();
            a.bind(reject);
            a.zero(Rax);
            a.ret();
        }
    }
}

fn emit_rejecting_filter(a: &mut Asm, variant: u32) {
    match variant % 4 {
        0 => {
            // return 0
            a.zero(Rax);
            a.ret();
        }
        1 => {
            // return code == INTEGER_DIVIDE_BY_ZERO
            emit_load_code(a);
            cmp_eax(a, 0xC000_0094);
            let no = a.fresh();
            a.jcc(Cond::Ne, no);
            a.mov_ri(Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Rax);
            a.ret();
        }
        2 => {
            // return code == BREAKPOINT
            emit_load_code(a);
            cmp_eax(a, 0x8000_0003);
            let no = a.fresh();
            a.jcc(Cond::Ne, no);
            a.mov_ri(Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Rax);
            a.ret();
        }
        _ => {
            // handle everything EXCEPT access violations
            emit_load_code(a);
            cmp_eax(a, STATUS_ACCESS_VIOLATION);
            let no = a.fresh();
            a.jcc(Cond::E, no);
            a.mov_ri(Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Rax);
            a.ret();
        }
    }
}

fn emit_filter_calls_helper(a: &mut Asm) {
    // Delegate the decision to a helper — undecidable for the symbolic
    // executor, requiring manual verification (paper §VII-A).
    let helper = a.fresh();
    a.call_label(helper);
    a.ret();
    // The helper body is shared; jump into the module-level FilterHelper
    // via a local trampoline to keep this filter self-contained.
    a.bind(helper);
    a.mov_ri(Rax, 1);
    a.ret();
}

// Convenience: `mov qword [reg+off], imm` for the MUTX body.
trait AsmExt {
    fn store_i_at(&mut self, base: Reg, off: i32, imm: i32);
}

impl AsmExt for Asm {
    fn store_i_at(&mut self, base: Reg, off: i32, imm: i32) {
        self.store_i(M::base_disp(base, off), imm);
    }
}
