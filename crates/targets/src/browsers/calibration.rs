//! Per-DLL SEH population calibration for Tables II and III.
//!
//! The paper analyzes proprietary Windows system DLLs; we synthesize
//! modules whose handler/filter populations are calibrated to the paper's
//! reported per-DLL counts, and the pipeline must *recover* these numbers
//! from the binary (it is never shown this table). Cells that are
//! unreadable in the available copy of the paper are reconstructed to
//! match the prose totals (e.g. "only 4 of 126 filter functions remain in
//! sechost.dll, while 9 of 129 are left in msvcrt.dll"); EXPERIMENTS.md
//! records which cells are reconstructions.

/// Calibration row for one system DLL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DllCalib {
    /// DLL name (without extension).
    pub name: &'static str,
    /// Table II: guarded code locations before symbolic execution.
    pub guarded_before: u32,
    /// Table II: locations whose filter can accept an access violation
    /// (including catch-all scopes) — "after SB".
    pub guarded_after: u32,
    /// Table II: locations (from the after-SB set) on the browsing
    /// execution path.
    pub on_path: u32,
    /// Table III: unique filter functions, x64 image, before SB.
    pub fx64_before: u32,
    /// Table III: x64 filters surviving SB (accept AV or undecidable).
    pub fx64_after: u32,
    /// Table III: unique filter functions, x86 image, before SB.
    pub fx86_before: u32,
    /// Table III: x86 filters surviving SB.
    pub fx86_after: u32,
    /// Whether this DLL appears in Table II (guarded-location analysis).
    pub in_table2: bool,
    /// Whether this DLL appears in Table III (filter analysis).
    pub in_table3: bool,
}

/// The calibrated population, in paper row order.
pub const CALIBRATION: &[DllCalib] = &[
    DllCalib {
        name: "user32",
        guarded_before: 70,
        guarded_after: 63,
        on_path: 40,
        fx64_before: 9,
        fx64_after: 4,
        fx86_before: 17,
        fx86_after: 6,
        in_table2: true,
        in_table3: true,
    },
    DllCalib {
        name: "kernel32",
        guarded_before: 76,
        guarded_after: 66,
        on_path: 14,
        fx64_before: 60,
        fx64_after: 12,
        fx86_before: 50,
        fx86_after: 10,
        in_table2: true,
        in_table3: true,
    },
    DllCalib {
        name: "msvcrt",
        guarded_before: 129,
        guarded_after: 10,
        on_path: 3,
        fx64_before: 129,
        fx64_after: 9,
        fx86_before: 33,
        fx86_after: 5,
        in_table2: true,
        in_table3: true,
    },
    DllCalib {
        name: "jscript9",
        guarded_before: 22,
        guarded_after: 6,
        on_path: 4,
        fx64_before: 29,
        fx64_after: 6,
        fx86_before: 6,
        fx86_after: 2,
        in_table2: true,
        in_table3: true,
    },
    DllCalib {
        name: "rpcrt4",
        guarded_before: 62,
        guarded_after: 20,
        on_path: 6,
        fx64_before: 62,
        fx64_after: 20,
        fx86_before: 25,
        fx86_after: 8,
        in_table2: true,
        in_table3: false,
    },
    DllCalib {
        name: "sechost",
        guarded_before: 133,
        guarded_after: 11,
        on_path: 0,
        fx64_before: 126,
        fx64_after: 4,
        fx86_before: 19,
        fx86_after: 9,
        in_table2: true,
        in_table3: true,
    },
    DllCalib {
        name: "ws2_32",
        guarded_before: 82,
        guarded_after: 29,
        on_path: 10,
        fx64_before: 55,
        fx64_after: 25,
        fx86_before: 25,
        fx86_after: 7,
        in_table2: true,
        in_table3: true,
    },
    DllCalib {
        name: "xmllite",
        guarded_before: 10,
        guarded_after: 2,
        on_path: 1,
        fx64_before: 10,
        fx64_after: 0,
        fx86_before: 10,
        fx86_after: 0,
        in_table2: true,
        in_table3: true,
    },
    DllCalib {
        name: "kernelbase",
        guarded_before: 60,
        guarded_after: 24,
        on_path: 0,
        fx64_before: 54,
        fx64_after: 21,
        fx86_before: 21,
        fx86_after: 8,
        in_table2: false,
        in_table3: true,
    },
    DllCalib {
        name: "ntdll",
        guarded_before: 90,
        guarded_after: 30,
        on_path: 0,
        fx64_before: 71,
        fx64_after: 25,
        fx86_before: 25,
        fx86_after: 9,
        in_table2: false,
        in_table3: true,
    },
];

/// Row by name.
pub fn calib(name: &str) -> Option<&'static DllCalib> {
    CALIBRATION.iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_internally_consistent() {
        for c in CALIBRATION {
            assert!(c.guarded_after <= c.guarded_before, "{}", c.name);
            assert!(c.on_path <= c.guarded_after, "{}", c.name);
            assert!(c.fx64_after <= c.fx64_before, "{}", c.name);
            assert!(c.fx86_after <= c.fx86_before, "{}", c.name);
        }
    }

    #[test]
    fn prose_anchors_hold() {
        // "only 4 of 126 filter functions remain in sechost.dll"
        let s = calib("sechost").unwrap();
        assert_eq!((s.fx64_before, s.fx64_after), (126, 4));
        // "9 of 129 are left in msvcrt"
        let m = calib("msvcrt").unwrap();
        assert_eq!((m.fx64_before, m.fx64_after), (129, 9));
        // "63 crash-resistant candidates from 70 exception handlers in
        // user32.dll, whereby 40 code locations … executed"
        let u = calib("user32").unwrap();
        assert_eq!((u.guarded_before, u.guarded_after, u.on_path), (70, 63, 40));
        // "sechost.dll guards 133 code locations, whereby 11 crash-
        // resistant candidates exist and no guarded code location was
        // triggered"
        assert_eq!((s.guarded_before, s.guarded_after, s.on_path), (133, 11, 0));
    }
}
