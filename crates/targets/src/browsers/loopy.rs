//! Calibrated loopy/multi-branch filter family.
//!
//! Four SEH filters built so that the single-shot symbolic pipeline
//! ([`cr_symex::SymExec`]) *provably* gets at least one of them wrong
//! while the path explorer ([`cr_symex::FilterExplorer`]) classifies
//! all four correctly. Each case pins ground truth (does the filter
//! accept an access violation on real hardware?) together with the
//! single-shot pipeline's expected failure mode, so the regression
//! tests can assert the divergence rather than merely observe it:
//!
//! * `spill_widen` — spills the 32-bit exception code to the stack and
//!   reloads it at 64 bits. The single-shot memory model drops the
//!   stored value on the widening read and substitutes a fresh
//!   unconstrained variable, so it reports an accept; in truth the low
//!   32 bits still carry the code and an AV can never match.
//! * `shrink_loop_reject` / `shrink_loop_accept` — shift the code
//!   right until zero (a data-dependent loop), then compare. The
//!   single-shot executor forks the loop until its path budget dies;
//!   the explorer prunes the infeasible "stay" branch after 32
//!   iterations and terminates.
//! * `chain_exclude_av` — a comparison chain longer than the
//!   single-shot path budget, with AV among the excluded codes.
//!
//! This family is deliberately **not** part of the calibrated §V-C
//! population (the Table II/III totals are pinned); it ships as its own
//! module, `loopy.dll`.

use cr_image::{FilterRef, Machine, PeBuilder, PeImage, ScopeEntry};
use cr_isa::{Asm, Cond, Inst, Mem as M, Reg, Rm, Width};
use cr_os::windows::STATUS_ACCESS_VIOLATION;
use Reg::*;

use super::dlls::{DLL_REGION, DLL_STRIDE};

/// Image base of the generated `loopy.dll` (clear of the calibrated
/// x64 region, the x86 region at `+0x80` strides, and the synthetic
/// population at `+0x100`).
pub const LOOPY_BASE: u64 = DLL_REGION + 0x200 * DLL_STRIDE;

/// Number of exclusion comparisons in `chain_exclude_av` — chosen to
/// exceed the single-shot executor's 64-path budget.
pub const CHAIN_LEN: u32 = 70;

/// Ground truth (and pinned single-shot behavior) for one family member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopyCase {
    /// Filter name; also the PE export naming its entry point.
    pub name: &'static str,
    /// Ground truth: does the filter return nonzero for an AV?
    pub accepts_av: bool,
    /// Whether the single-shot pipeline's verdict matches ground truth
    /// (pinned, so regressions in either direction are caught).
    pub single_shot_correct: bool,
}

/// The family, in filter-emission order (`Filter0..Filter3`).
pub const LOOPY_CASES: [LoopyCase; 4] = [
    LoopyCase {
        name: "spill_widen",
        accepts_av: false,
        // Single-shot reports an accept: actively wrong, not just unknown.
        single_shot_correct: false,
    },
    LoopyCase {
        name: "shrink_loop_reject",
        accepts_av: false,
        // Single-shot burns its path budget: Unknown.
        single_shot_correct: false,
    },
    LoopyCase {
        name: "shrink_loop_accept",
        accepts_av: true,
        // Single-shot stumbles onto the witness before the budget dies.
        single_shot_correct: true,
    },
    LoopyCase {
        name: "chain_exclude_av",
        accepts_av: false,
        // 70 forks > 64-path budget: Unknown.
        single_shot_correct: false,
    },
];

/// Generate `loopy.dll`: one guarded function per family member, each
/// scope referencing its filter, discoverable through `.pdata` exactly
/// like the calibrated population.
///
/// # Panics
///
/// Panics if the generated image fails to assemble or parse (a build
/// bug, not an input condition).
pub fn generate_loopy_dll() -> PeImage {
    PeImage::parse(&generate_loopy_dll_bytes()).expect("loopy image parses")
}

/// Raw PE bytes for the loopy module (see [`generate_loopy_dll`]).
///
/// # Panics
///
/// Panics if the module fails to assemble.
pub fn generate_loopy_dll_bytes() -> Vec<u8> {
    let base = LOOPY_BASE;
    let text_rva: u32 = 0x1000;
    let mut a = Asm::new(base + text_rva as u64);

    a.global("__C_specific_handler");
    a.ret();
    a.align(16);

    for (i, case) in LOOPY_CASES.iter().enumerate() {
        a.global(&format!("Filter{i}"));
        match case.name {
            "spill_widen" => emit_spill_widen(&mut a),
            "shrink_loop_reject" => emit_shrink_loop(&mut a, 0xC000_0094),
            "shrink_loop_accept" => emit_shrink_loop(&mut a, STATUS_ACCESS_VIOLATION),
            "chain_exclude_av" => emit_chain_exclude_av(&mut a),
            other => unreachable!("unknown loopy case {other}"),
        }
        a.align(16);
    }

    for i in 0..LOOPY_CASES.len() {
        a.global(&format!("Guarded{i}"));
        a.global(&format!("G{i}_tb"));
        a.load(Rax, M::base(Rcx));
        a.global(&format!("G{i}_te"));
        a.ret();
        a.global(&format!("G{i}_ex"));
        a.mov_ri(Rax, 0xEEEE_1000 + i as u64);
        a.ret();
        a.global(&format!("G{i}_end"));
        a.align(16);
    }
    a.global("text_end");

    let assembled = a.assemble().expect("loopy dll assembles");
    let rva = |sym: &str| (assembled.sym(sym) - base) as u32;

    let mut b = PeBuilder::new("loopy.dll", Machine::X64, base);
    b.entry(rva("__C_specific_handler"));
    let handler_rva = rva("__C_specific_handler");

    for (i, case) in LOOPY_CASES.iter().enumerate() {
        b.export(case.name, rva(&format!("Filter{i}")));
        b.export(&format!("Guarded{i}"), rva(&format!("Guarded{i}")));
        b.function_with_seh(
            rva(&format!("Guarded{i}")),
            rva(&format!("G{i}_end")),
            handler_rva,
            vec![ScopeEntry {
                begin_rva: rva(&format!("G{i}_tb")),
                end_rva: rva(&format!("G{i}_te")),
                filter: FilterRef::Function(rva(&format!("Filter{i}"))),
                target_rva: rva(&format!("G{i}_ex")),
            }],
        );
    }
    for i in 0..LOOPY_CASES.len() {
        let begin = rva(&format!("Filter{i}"));
        let end = if i + 1 < LOOPY_CASES.len() {
            rva(&format!("Filter{}", i + 1))
        } else {
            rva("Guarded0")
        };
        b.function(begin, end);
    }

    b.text(text_rva, assembled.code.clone());
    b.build()
}

/// Load `ExceptionCode` into eax (filter prologue — same shape as the
/// calibrated population's).
fn emit_load_code(a: &mut Asm) {
    a.load(Rax, M::base(Rcx));
    a.inst(Inst::MovRRm {
        dst: Rax,
        src: Rm::Mem(M::base(Rax)),
        width: Width::B4,
    });
}

fn cmp_eax(a: &mut Asm, code: u32) {
    a.inst(Inst::AluRmI {
        op: cr_isa::AluOp::Cmp,
        dst: Rm::Reg(Rax),
        imm: code as i32,
        width: Width::B4,
    });
}

/// Spill the 32-bit code, reload 64-bit, accept iff the reload == 0x10.
/// Truth: the low 32 bits are the exception code, so an AV (0xC0000005)
/// can never satisfy the compare — the filter rejects.
fn emit_spill_widen(a: &mut Asm) {
    emit_load_code(a);
    a.inst(Inst::MovRmR {
        dst: Rm::Mem(M::base_disp(Rsp, -8)),
        src: Rax,
        width: Width::B4,
    });
    a.inst(Inst::MovRRm {
        dst: Rax,
        src: Rm::Mem(M::base_disp(Rsp, -8)),
        width: Width::B8,
    });
    a.inst(Inst::AluRmI {
        op: cr_isa::AluOp::Cmp,
        dst: Rm::Reg(Rax),
        imm: 0x10,
        width: Width::B8,
    });
    let no = a.fresh();
    a.jcc(Cond::Ne, no);
    a.mov_ri(Rax, 1);
    a.ret();
    a.bind(no);
    a.zero(Rax);
    a.ret();
}

/// `while (code >>= 1) ;` then accept iff the original code equals
/// `accept_code` — a data-dependent loop whose trip count only
/// feasibility pruning can bound.
fn emit_shrink_loop(a: &mut Asm, accept_code: u32) {
    emit_load_code(a);
    a.inst(Inst::MovRmR {
        dst: Rm::Reg(Rbx),
        src: Rax,
        width: Width::B4,
    });
    let top = a.fresh();
    a.bind(top);
    a.shr(Rbx, 1);
    a.cmp_ri(Rbx, 0);
    a.jcc(Cond::Ne, top);
    cmp_eax(a, accept_code);
    let no = a.fresh();
    a.jcc(Cond::Ne, no);
    a.mov_ri(Rax, 1);
    a.ret();
    a.bind(no);
    a.zero(Rax);
    a.ret();
}

/// Exclusion chain longer than the single-shot path budget, with AV
/// among the excluded codes: accept everything except [`CHAIN_LEN`]
/// specific codes. Truth: AV is excluded, so the filter rejects.
fn emit_chain_exclude_av(a: &mut Asm) {
    emit_load_code(a);
    let reject = a.fresh();
    cmp_eax(a, STATUS_ACCESS_VIOLATION);
    a.jcc(Cond::E, reject);
    for k in 0..CHAIN_LEN - 1 {
        cmp_eax(a, 0xC000_0100 + k);
        a.jcc(Cond::E, reject);
    }
    a.mov_ri(Rax, 1);
    a.ret();
    a.bind(reject);
    a.zero(Rax);
    a.ret();
}
