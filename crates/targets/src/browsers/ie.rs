//! `ie-sim` — an Internet Explorer 11-like host process.
//!
//! Loads the eight Table II system DLLs (x64), with the jscript9 module
//! carrying the `MUTX::Enter` idiom of the paper's §VI-A proof of
//! concept: a `__try`-guarded `EnterCriticalSection` call whose scope
//! table filter field holds the constant `1` (catch-all), plus a status
//! field in the `ScriptEngine` object that records whether the last call
//! raised.
//!
//! The host module exports:
//! * `ProcessScript` — models "the JavaScript engine processes new script
//!   code": it invokes `MUTX::Enter` on the engine object;
//! * `RenderPage` — a benign page-render entry used by the browsing
//!   workload.

use super::calibration::CALIBRATION;
use super::dlls::{generate_dll, DllSpec};
use cr_image::{Machine, PeBuilder, PeImage};
use cr_isa::{Asm, Mem as M, Reg};
use cr_os::windows::api::ApiTable;
use cr_os::windows::WinProc;
use cr_os::OsHook;
use Reg::*;

/// Host module base.
pub const HOST_BASE: u64 = 0x1_4000_0000;

/// A built IE-like process plus the addresses the workloads need.
pub struct IeSim {
    /// The process with all modules loaded.
    pub proc: WinProc,
    /// `ProcessScript` entry (the JS-reachable trigger).
    pub process_script: u64,
    /// `RenderPage` entry.
    pub render_page: u64,
    /// The `ScriptEngine` object address (jscript9 data).
    pub script_engine: u64,
    /// Per-module `(module name, on-path entry addresses, scratch)`.
    pub on_path: Vec<(String, Vec<u64>, u64)>,
}

impl std::fmt::Debug for IeSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IeSim")
            .field("modules", &self.proc.modules.len())
            .finish()
    }
}

/// How a JS-reachable API wrapper supplies its pointer argument — the
/// three §V-B exclusion categories, built into the host binary so the
/// classifier has something real to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgStyle {
    /// `lea rcx, [rsp-0x200]` — short-lived stack out-parameter.
    StackLocal,
    /// Pointer loaded from a data field and dereferenced by the caller
    /// right before the call.
    DerefOutside,
    /// Address materialized as an immediate in code — no writable memory
    /// cell ever holds it ("volatile heap pointer, no previous
    /// references stored in memory").
    Volatile,
}

/// Scratch page all render-path API calls use for valid pointers.
pub const SCRATCH_PAGE: u64 = HOST_BASE + 0x4000;
/// Page referenced only from code immediates (the Volatile style).
pub const VOLATILE_PAGE: u64 = HOST_BASE + 0x5000;
/// Data field holding the DerefOutside pointer.
pub const DEREF_FIELD: u64 = HOST_BASE + 0x3080;

/// Build the full IE-sim process with only the curated API set.
pub fn build() -> IeSim {
    build_with_corpus(0, 0)
}

/// Build IE-sim with a generated API corpus of `generated` functions.
///
/// The host binary calls a sample of crash-resistant corpus APIs on the
/// render path (valid pointers) and a second sample from the JS path with
/// the three §V-B argument styles, so the funnel experiment has real
/// call sites to harvest and classify.
pub fn build_with_corpus(generated: usize, seed: u64) -> IeSim {
    let api = ApiTable::with_corpus(generated, seed);
    let mut proc = WinProc::new(api.clone());

    for (i, c) in CALIBRATION.iter().filter(|c| c.in_table2).enumerate() {
        let mut spec = DllSpec::from_calib_x64(c, i);
        if c.name == "jscript9" {
            spec.mutx_extra = Some(api.clone());
        }
        let img = generate_dll(&spec);
        proc.load_module(&img);
    }

    let jscript9 = proc.module("jscript9.dll").expect("loaded").clone();
    let engine = jscript9.export("ScriptEngine");
    let mutx = jscript9.export("MUTX_Enter");

    // Pick corpus samples: graceful (crash-resistant) APIs split between
    // the render path and the JS path; some raw-deref APIs for realism.
    let graceful: Vec<String> = api
        .specs()
        .iter()
        .filter(|s| {
            s.name.starts_with("ApiFn")
                && s.has_pointer_arg()
                && matches!(
                    s.behavior,
                    cr_os::windows::api::ApiBehavior::Graceful { .. }
                )
        })
        .map(|s| s.name.clone())
        .collect();
    let render_graceful: Vec<&str> = graceful.iter().take(12).map(|s| s.as_str()).collect();
    let js_graceful: Vec<&str> = graceful
        .iter()
        .skip(12)
        .take(11)
        .map(|s| s.as_str())
        .collect();
    let rawderef: Vec<String> = api
        .specs()
        .iter()
        .filter(|s| {
            s.name.starts_with("ApiFn")
                && s.has_pointer_arg()
                && matches!(
                    s.behavior,
                    cr_os::windows::api::ApiBehavior::RawDeref { .. }
                )
        })
        .take(8)
        .map(|s| s.name.clone())
        .collect();

    // Emit `call api(name)` with every pointer arg supplied per `style`.
    let emit_call = |a: &mut Asm, api: &ApiTable, name: &str, style: Option<ArgStyle>| {
        let spec = api
            .spec_at(api.address_of(name))
            .expect("known api")
            .clone();
        let arg_regs = [Rcx, Rdx, R8, R9];
        for (i, at) in spec.args.iter().enumerate().take(4) {
            let reg = arg_regs[i];
            if at.is_pointer() {
                match style {
                    None => {
                        a.mov_ri(reg, SCRATCH_PAGE + 0x100 * i as u64);
                    }
                    Some(ArgStyle::StackLocal) => {
                        a.lea(reg, M::base_disp(Rsp, -0x200 - 0x10 * i as i32));
                    }
                    Some(ArgStyle::DerefOutside) => {
                        a.mov_ri(R11, DEREF_FIELD);
                        a.load(reg, M::base(R11));
                        a.load_u8(R11, M::base(reg)); // caller-side deref
                    }
                    Some(ArgStyle::Volatile) => {
                        a.mov_ri(reg, VOLATILE_PAGE + 0x40 * i as u64);
                    }
                }
            } else {
                a.mov_ri(reg, 8);
            }
        }
        let addr = api.address_of(name);
        a.mov_ri(Rax, addr);
        a.call_reg(Rax);
    };

    // Host module.
    let mut a = Asm::new(HOST_BASE + 0x1000);
    a.global("ProcessScript");
    a.push(Rbx); // keep stack 16-ish and give lea room
    a.mov_ri(Rcx, engine);
    a.mov_ri(Rax, mutx);
    a.call_reg(Rax);
    // JS-reachable API calls with the three §V-B argument styles.
    emit_call(
        &mut a,
        &api,
        "GetPwrCapabilities",
        Some(ArgStyle::StackLocal),
    );
    for (k, name) in js_graceful.iter().enumerate() {
        let style = match k {
            0..=4 => ArgStyle::StackLocal,
            5..=8 => ArgStyle::DerefOutside,
            _ => ArgStyle::Volatile,
        };
        emit_call(&mut a, &api, name, Some(style));
    }
    a.pop(Rbx);
    a.ret();
    a.align(16);
    a.global("RenderPage");
    // Benign DOM work: bump a counter in host data.
    a.mov_ri(R9, HOST_BASE + 0x3000);
    a.load(Rax, M::base(R9));
    a.add_ri(Rax, 1);
    a.store(M::base(R9), Rax);
    // Render-path API calls with valid pointers.
    emit_call(&mut a, &api, "VirtualQuery", None);
    for name in &render_graceful {
        emit_call(&mut a, &api, name, None);
    }
    for name in &rawderef {
        emit_call(&mut a, &api, name, None);
    }
    a.ret();
    let assembled = a.assemble().expect("host assembles");
    let rva = |s: &str| (assembled.sym(s) - HOST_BASE) as u32;
    let mut b = PeBuilder::new("iexplore.exe", Machine::X64, HOST_BASE);
    b.entry(rva("ProcessScript"));
    b.export("ProcessScript", rva("ProcessScript"));
    b.export("RenderPage", rva("RenderPage"));
    b.text(0x1000, assembled.code.clone());
    b.data(0x3000, vec![0u8; 0x100]);
    let host = PeImage::parse(&b.build()).expect("host parses");
    proc.load_module(&host);

    // Pages and fields the API wrappers rely on.
    proc.mem.map(SCRATCH_PAGE, 0x1000, cr_vm::Prot::RW);
    proc.mem.map(VOLATILE_PAGE, 0x1000, cr_vm::Prot::RW);
    proc.mem
        .write_u64(DEREF_FIELD, SCRATCH_PAGE + 0x800)
        .expect("host data mapped");

    let mut on_path = Vec::new();
    for (c, m) in CALIBRATION
        .iter()
        .filter(|c| c.in_table2)
        .zip(proc.modules.clone())
    {
        let entries: Vec<u64> = (0..c.on_path)
            .map(|i| m.export(&format!("OnPath{i}")))
            .collect();
        let scratch = m.export("Scratch");
        on_path.push((m.name.clone(), entries, scratch));
    }

    IeSim {
        process_script: HOST_BASE + rva("ProcessScript") as u64,
        render_page: HOST_BASE + rva("RenderPage") as u64,
        script_engine: engine,
        on_path,
        proc,
    }
}

/// Browse `sites` synthetic websites: each visit renders a page, runs the
/// JS engine, and exercises every on-path guarded code location once with
/// a valid pointer (so browsing itself causes no access violations —
/// matching the paper's §VII-C baseline).
pub fn browse(sim: &mut IeSim, sites: usize, hook: &mut dyn OsHook) -> bool {
    for _ in 0..sites {
        if !matches!(
            sim.proc.call(sim.render_page, &[], 1_000_000, hook),
            cr_os::windows::CallOutcome::Returned(_)
        ) {
            return false;
        }
        if !matches!(
            sim.proc.call(sim.process_script, &[], 1_000_000, hook),
            cr_os::windows::CallOutcome::Returned(_)
        ) {
            return false;
        }
        let visits: Vec<(u64, u64)> = sim
            .on_path
            .iter()
            .flat_map(|(_, entries, scratch)| entries.iter().map(|&e| (e, *scratch)))
            .collect();
        for (entry, scratch) in visits {
            match sim.proc.call(entry, &[scratch], 1_000_000, hook) {
                cr_os::windows::CallOutcome::Returned(_) => {}
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_vm::NullHook;

    #[test]
    fn builds_and_browses_without_faults() {
        let mut sim = build();
        assert_eq!(sim.proc.modules.len(), 9, "8 system DLLs + host");
        assert!(browse(&mut sim, 2, &mut NullHook));
        assert!(sim.proc.alive());
        assert!(
            sim.proc.fault_log.is_empty(),
            "browsing must not raise AVs: {:?}",
            sim.proc.fault_log
        );
    }

    #[test]
    fn mutx_enter_is_a_memory_oracle() {
        // The §VI-A PoC mechanics: force the EnterCriticalSection probe
        // circumstances and point DebugInfo at x-0x10.
        let mut sim = build();
        let cs = sim.script_engine + super::super::dlls::ENGINE_CS_OFF;
        // Probe an unmapped address.
        sim.proc.mem.write_u64(cs, 0xdead_0000 - 0x10).unwrap();
        sim.proc.mem.write(cs + 8, &(-2i32).to_le_bytes()).unwrap();
        sim.proc.mem.write(cs + 16, &0i32.to_le_bytes()).unwrap();
        sim.proc.mem.write_u64(cs + 24, 0).unwrap();
        match sim
            .proc
            .call(sim.process_script, &[], 1_000_000, &mut NullHook)
        {
            cr_os::windows::CallOutcome::Returned(_) => {}
            other => panic!("{other:?}"),
        }
        assert!(sim.proc.alive(), "no crash — the oracle is crash-resistant");
        let status = sim.proc.mem.read_u64(sim.script_engine).unwrap();
        assert_eq!(status, 1, "status records the swallowed exception");

        // Probe a mapped address: no exception, status stays 0.
        let mapped = sim.script_engine; // any mapped addr
        sim.proc.mem.write_u64(cs, mapped - 0x10).unwrap();
        sim.proc.mem.write(cs + 8, &(-2i32).to_le_bytes()).unwrap();
        sim.proc.mem.write(cs + 16, &0i32.to_le_bytes()).unwrap();
        sim.proc.mem.write_u64(cs + 24, 0).unwrap();
        sim.proc
            .call(sim.process_script, &[], 1_000_000, &mut NullHook);
        let status = sim.proc.mem.read_u64(sim.script_engine).unwrap();
        assert_eq!(status, 0, "mapped probe leaves status clear");
    }
}
