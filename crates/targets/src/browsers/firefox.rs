//! `firefox-sim` — a Firefox 46-like host process.
//!
//! Reproduces the §VI-B memory oracle and the §VII-A discovery
//! limitation:
//!
//! * the exception handler lives in the *ntdll-like* module
//!   (`RtlProbeVeh`) but is registered as a **vectored** exception
//!   handler at runtime via `AddVectoredExceptionHandler` — static
//!   `.pdata` analysis cannot see it;
//! * a background worker thread continuously polls a job object; writing
//!   a probe address into the object makes the worker dereference it, the
//!   VEH swallows any AV (setting `ProbeFlag`), and the worker publishes
//!   the verdict — "we only need to write the address to probe … and read
//!   back the result";
//! * an `AsmJsBench` entry generates the *intentional* guard-page faults
//!   of §VII-C (bursts of up to 20 handled AVs on mapped-but-inaccessible
//!   memory).

use super::calibration::calib;
use super::dlls::{generate_dll, DllSpec};
use cr_image::{Machine, PeBuilder, PeImage};
use cr_isa::{Asm, Cond, Mem as M, Reg};
use cr_os::windows::api::ApiTable;
use cr_os::windows::WinProc;
use cr_os::OsHook;
use Reg::*;

/// Host module base.
pub const HOST_BASE: u64 = 0x1_5000_0000;
/// Guard page used by the asm.js-style optimization (mapped, PROT_NONE).
pub const GUARD_PAGE: u64 = 0x1_5100_0000;

/// Job object layout: `{probe_addr, result}` (result: 1 mapped, 2 fault).
pub const JOB_PROBE_OFF: u64 = 0;
/// Result slot offset.
pub const JOB_RESULT_OFF: u64 = 8;

/// A built Firefox-like process.
pub struct FirefoxSim {
    /// The process.
    pub proc: WinProc,
    /// Job object address (host data).
    pub job: u64,
    /// `RenderPage` entry.
    pub render_page: u64,
    /// `AsmJsBench` entry.
    pub asmjs_bench: u64,
    /// The runtime-registered VEH handler address (ground truth the
    /// static analysis must *miss*).
    pub veh_handler: u64,
}

impl std::fmt::Debug for FirefoxSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FirefoxSim")
            .field("job", &self.job)
            .finish()
    }
}

/// Build the firefox-sim process: load ntdll, register the VEH, spawn the
/// background probing thread.
pub fn build() -> FirefoxSim {
    let api = ApiTable::curated_only();
    let mut proc = WinProc::new(api.clone());

    let ntdll_calib = calib("ntdll").expect("calibrated");
    let spec = DllSpec::from_calib_x64(ntdll_calib, 9);
    let ntdll = generate_dll(&spec);
    proc.load_module(&ntdll);
    let ntdll = proc.module("ntdll.dll").expect("loaded").clone();
    let veh_handler = ntdll.export("RtlProbeVeh");
    let flag = ntdll.export("ProbeFlag");

    // Host module: FoxInit, Worker, RenderPage, AsmJsBench.
    let mut a = Asm::new(HOST_BASE + 0x1000);
    let job = HOST_BASE + 0x3000;

    a.global("FoxInit");
    a.zero(Rcx);
    a.mov_ri(Rdx, veh_handler);
    a.mov_ri(Rax, api.address_of("AddVectoredExceptionHandler"));
    a.call_reg(Rax);
    a.ret();
    a.align(16);

    a.global("Worker");
    a.mov_rr(R12, Rcx); // &job
    let top = a.here();
    let sleepy = a.fresh();
    a.load(Rax, M::base(R12));
    a.test_rr(Rax);
    a.jcc(Cond::E, sleepy);
    // clear flag, probe, read flag
    a.mov_ri(R9, flag);
    a.store_i(M::base(R9), 0);
    a.load(R8, M::base(Rax)); // THE PROBE (VEH swallows faults)
    a.mov_ri(R9, flag);
    a.load(Rax, M::base(R9));
    a.add_ri(Rax, 1); // 1 = mapped, 2 = faulted
    a.store(M::base_disp(R12, JOB_RESULT_OFF as i32), Rax);
    a.store_i(M::base(R12), 0);
    a.bind(sleepy);
    a.hlt(); // yield
    a.jmp(top);
    a.align(16);

    a.global("RenderPage");
    a.mov_ri(R9, HOST_BASE + 0x3100);
    a.load(Rax, M::base(R9));
    a.add_ri(Rax, 1);
    a.store(M::base(R9), Rax);
    a.ret();
    a.align(16);

    // asm.js-style optimization: a burst of guarded accesses to a mapped
    // PROT_NONE page (bounds-check elimination via fault handling).
    a.global("AsmJsBench");
    a.mov_ri(Rbx, 20);
    let burst = a.here();
    a.mov_ri(R9, GUARD_PAGE);
    a.load(Rax, M::base(R9)); // handled AV on *mapped* memory
    a.sub_ri(Rbx, 1);
    a.cmp_ri(Rbx, 0);
    a.jcc(Cond::G, burst);
    a.ret();

    let assembled = a.assemble().expect("host assembles");
    let rva = |s: &str| (assembled.sym(s) - HOST_BASE) as u32;
    let mut b = PeBuilder::new("firefox.exe", Machine::X64, HOST_BASE);
    b.entry(rva("FoxInit"));
    for s in ["FoxInit", "Worker", "RenderPage", "AsmJsBench"] {
        b.export(s, rva(s));
    }
    b.text(0x1000, assembled.code.clone());
    b.data(0x3000, vec![0u8; 0x200]);
    let host = PeImage::parse(&b.build()).expect("host parses");
    proc.load_module(&host);

    // Map the guard page (mapped but inaccessible).
    proc.mem.map(GUARD_PAGE, 0x1000, cr_vm::Prot::NONE);

    // Initialize: register the VEH and start the background worker.
    let init = HOST_BASE + rva("FoxInit") as u64;
    let worker = HOST_BASE + rva("Worker") as u64;
    match proc.call(init, &[], 100_000, &mut cr_vm::NullHook) {
        cr_os::windows::CallOutcome::Returned(_) => {}
        other => panic!("FoxInit failed: {other:?}"),
    }
    proc.spawn_thread(worker, job);

    FirefoxSim {
        job,
        render_page: HOST_BASE + rva("RenderPage") as u64,
        asmjs_bench: HOST_BASE + rva("AsmJsBench") as u64,
        veh_handler,
        proc,
    }
}

/// Use the background-thread oracle: probe `addr`, returning `true` if it
/// is mapped. `None` if the worker never answered (should not happen).
pub fn probe(sim: &mut FirefoxSim, addr: u64, hook: &mut dyn OsHook) -> Option<bool> {
    sim.proc.mem.write_u64(sim.job + JOB_RESULT_OFF, 0).ok()?;
    sim.proc.mem.write_u64(sim.job + JOB_PROBE_OFF, addr).ok()?;
    for _ in 0..1000 {
        sim.proc.run(600, hook);
        let r = sim.proc.mem.read_u64(sim.job + JOB_RESULT_OFF).ok()?;
        if r != 0 {
            return Some(r == 1);
        }
        if !sim.proc.alive() {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_vm::NullHook;

    #[test]
    fn background_oracle_probes_without_crashing() {
        let mut sim = build();
        // Unmapped probe.
        assert_eq!(probe(&mut sim, 0xdead_0000, &mut NullHook), Some(false));
        // Mapped probe (the job object itself).
        let job = sim.job;
        assert_eq!(probe(&mut sim, job, &mut NullHook), Some(true));
        assert!(sim.proc.alive(), "zero crashes");
        // The unmapped probe produced exactly one handled fault.
        assert!(sim
            .proc
            .fault_log
            .iter()
            .any(|f| f.handled && f.addr == Some(0xdead_0000)));
    }

    #[test]
    fn asmjs_bench_generates_handled_mapped_faults() {
        let mut sim = build();
        let before = sim.proc.fault_log.len();
        match sim
            .proc
            .call(sim.asmjs_bench, &[], 1_000_000, &mut NullHook)
        {
            cr_os::windows::CallOutcome::Returned(_) => {}
            other => panic!("{other:?}"),
        }
        let events: Vec<_> = sim.proc.fault_log[before..].to_vec();
        assert_eq!(events.len(), 20, "one burst of 20 guard-page faults");
        assert!(
            events.iter().all(|f| f.handled && f.mapped),
            "mapped + handled"
        );
    }

    #[test]
    fn veh_handler_is_not_in_any_scope_table() {
        // §VII-A: the oracle's handler is runtime state, invisible to the
        // static .pdata analysis.
        let sim = build();
        let ntdll = sim.proc.module("ntdll.dll").unwrap();
        let handler_rva = (sim.veh_handler - ntdll.base) as u32;
        for rf in &ntdll.image.runtime_functions {
            for scope in &rf.unwind.scopes {
                if let cr_image::FilterRef::Function(frva) = scope.filter {
                    assert_ne!(frva, handler_rva, "VEH handler must not appear as a filter");
                }
            }
        }
        // But it is registered at runtime.
        assert!(sim.proc.veh_handlers().contains(&sim.veh_handler));
    }
}
