//! Corpus modules: binaries we ship **without** a dynamic harness.
//!
//! The calibrated servers in [`crate::servers`] all come with a
//! `boot`/`exercise` driver, which is what the dynamic (taint)
//! discovery pipeline needs. Real corpora are mostly not like that —
//! the ROADMAP's "analyze anything in the corpus" workload is about
//! binaries nobody has written a harness for. This module holds such
//! targets: well-formed ELF executables with the same crash-resistance
//! idioms as the servers, but **no** exercise function and no
//! calibrated boot budget. Only the traceless scanner (cr-scan) can
//! analyze them end-to-end.
//!
//! The first module, `vsftpd`, is an FTP-daemon sketch with all four
//! temporal flavors on display: init-only socket setup, a serving
//! `accept_loop`, a logging helper shared by both phases, a
//! config-driven syscall whose number is loaded from writable memory
//! (provable only as *memory-loaded*, never guessed), and a dead
//! `shutdown` routine no reachability walk can claim.

use crate::servers::common::{build_elf, DataTemplate, SrvAsm, DATA_BASE};
use cr_image::ElfImage;
use cr_isa::{Cond, Reg};
use cr_os::linux::syscall::nr;
use Reg::*;

/// One harness-less corpus binary.
pub struct CorpusModule {
    /// Module name (`scan <name>` on the CLI).
    pub name: &'static str,
    /// The ELF image to scan.
    pub image: ElfImage,
    /// One-line provenance note for listings.
    pub description: &'static str,
}

/// Every corpus module, in stable order.
pub fn modules() -> Vec<CorpusModule> {
    vec![vsftpd()]
}

/// Look up one corpus module by name.
pub fn module(name: &str) -> Option<CorpusModule> {
    modules().into_iter().find(|m| m.name == name)
}

const F_LISTEN: u64 = DATA_BASE;
/// Pointer to the request buffer (corruption-monitor material, as in
/// the harnessed servers).
pub const F_BUFPTR: u64 = DATA_BASE + 0x08;
const F_LOGPTR: u64 = DATA_BASE + 0x10;
const F_PATHPTR: u64 = DATA_BASE + 0x18;
/// The config cell holding the per-site maintenance syscall *number* —
/// the scanner must report the site as memory-loaded from this cell.
pub const F_OPCELL: u64 = DATA_BASE + 0x20;
const SOCKADDR: u64 = DATA_BASE + 0x40;
const LOG_BUF: u64 = DATA_BASE + 0x100;
const PATH_STR: u64 = DATA_BASE + 0x140;
const REQ_BUF: u64 = DATA_BASE + 0x800;

/// FTP listening port baked into the sockaddr template.
pub const PORT: u16 = 2121;

fn vsftpd() -> CorpusModule {
    let mut s = SrvAsm::new();
    s.a.global("entry");

    // --- init phase: socket/bind/listen, then a log line ---
    s.sys(nr::SOCKET);
    s.store_field(F_LISTEN, Rax);
    s.a.mov_rr(Rdi, Rax);
    s.a.mov_ri(Rsi, SOCKADDR);
    s.a.mov_ri(Rdx, 16);
    s.sys(nr::BIND);
    s.load_field(Rdi, F_LISTEN);
    s.a.mov_ri(Rsi, 8);
    s.sys(nr::LISTEN);
    let log_write = s.a.fresh();
    s.a.call_label(log_write);

    // --- serving phase ---
    let accept_loop = s.a.here();
    s.a.name("accept_loop", accept_loop);
    s.load_field(Rdi, F_LISTEN);
    s.a.zero(Rsi);
    s.a.zero(Rdx);
    s.sys(nr::ACCEPT);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::L, accept_loop);
    s.a.mov_rr(R13, Rax);
    // read(conn, *F_BUFPTR, 128) — the pointer lives in writable
    // memory, same ⊕ shape as the harnessed servers.
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_BUFPTR);
    s.a.mov_ri(Rdx, 128);
    s.sys(nr::READ);
    // shared helper: the serving phase logs too.
    s.a.call_label(log_write);
    // config-driven maintenance op: the syscall *number* comes from a
    // writable config cell. Statically this is memory-loaded, full
    // stop — no number can honestly be claimed for the site.
    s.load_field(Rdi, F_PATHPTR);
    s.load_field(Rax, F_OPCELL);
    s.a.syscall();
    s.a.mov_rr(Rdi, R13);
    s.sys(nr::CLOSE);
    s.a.jmp(accept_loop);

    // --- shared helper (init + serving → tagged "both") ---
    s.a.bind(log_write);
    let here = s.a.here();
    s.a.name("log_write", here);
    s.a.mov_ri(Rdi, 1);
    s.a.mov_ri(Rsi, LOG_BUF);
    s.a.mov_ri(Rdx, 16);
    s.sys(nr::WRITE);
    s.a.ret();

    // --- dead shutdown path: has a symbol, no incoming edges ---
    let shutdown = s.a.here();
    s.a.name("shutdown", shutdown);
    s.load_field(Rdi, F_PATHPTR);
    s.sys(nr::UNLINK);
    s.load_field(Rdi, F_LISTEN);
    s.sys(nr::CLOSE);
    s.a.ret();

    let mut d = DataTemplate::new();
    d.put_u64(F_BUFPTR, REQ_BUF);
    d.put_u64(F_LOGPTR, LOG_BUF);
    d.put_u64(F_PATHPTR, PATH_STR);
    d.put_u64(F_OPCELL, nr::CHMOD);
    d.put(SOCKADDR, &sockaddr_in(PORT));
    d.put(LOG_BUF, b"vsftpd: session\n");
    d.put(PATH_STR, b"/srv/ftp/upload.tmp\0");

    CorpusModule {
        name: "vsftpd",
        image: build_elf(s.a, d.build()),
        description: "FTP daemon sketch, no harness (static scan only)",
    }
}

fn sockaddr_in(port: u16) -> [u8; 16] {
    let mut sa = [0u8; 16];
    sa[0] = 2;
    sa[2..4].copy_from_slice(&port.to_be_bytes());
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vsftpd_builds_a_wellformed_elf() {
        let m = module("vsftpd").expect("registered");
        let bytes = m.image.to_bytes();
        let back = ElfImage::parse(&bytes).expect("round-trips");
        assert_eq!(back.entry, m.image.entry);
        for sym in ["entry", "accept_loop", "log_write", "shutdown"] {
            assert!(back.symbols.contains_key(sym), "missing symbol {sym}");
        }
    }

    #[test]
    fn corpus_has_no_harness_by_construction() {
        // CorpusModule deliberately has no exercise/boot members; the
        // registry is the list the scan verb iterates.
        let names: Vec<&str> = modules().iter().map(|m| m.name).collect();
        assert_eq!(names, ["vsftpd"]);
    }
}
