//! The five synthetic Linux servers of Table I.

pub mod cherokee;
pub mod common;
pub mod lighttpd;
pub mod memcached;
pub mod nginx;
pub mod postgresql;

pub use common::{ServerTarget, DATA_BASE, DATA_SIZE};

/// All five server targets in Table I column order.
pub fn all() -> Vec<ServerTarget> {
    vec![
        nginx::target(),
        cherokee::target(),
        lighttpd::target(),
        memcached::target(),
        postgresql::target(),
    ]
}
