//! `postgresql-sim` — a process-per-connection database modeled on
//! PostgreSQL 9.0.
//!
//! The real server forks a backend per connection; workers here are
//! cloned threads whose *graceful exit after serving is expected
//! behaviour* (see DESIGN.md substitution notes — the paper itself notes
//! "a graceful process termination is sufficient for our purposes").
//!
//! The usable (⊕) primitive is the per-worker `epoll_wait`: its event
//! buffer pointer lives in a worker context in writable memory; on error
//! the worker exits cleanly while the postmaster keeps accepting new
//! connections.

use super::common::{build_elf, DataTemplate, ServerTarget, SrvAsm, DATA_BASE};
use cr_isa::{Cond, Mem as M, Reg};
use cr_os::linux::syscall::nr;
use cr_os::linux::LinuxProc;
use cr_os::OsHook;
use Reg::*;

/// Listening port.
pub const PORT: u16 = 8084;
/// Maximum live worker contexts.
pub const MAX_WORKERS: u64 = 8;

const F_LISTEN: u64 = DATA_BASE;
const F_WIDX: u64 = DATA_BASE + 0x08;
const F_RESPPTR: u64 = DATA_BASE + 0x18;
const F_DATAPTR: u64 = DATA_BASE + 0x20;
const F_WALPTR: u64 = DATA_BASE + 0x28;
const SOCKADDR: u64 = DATA_BASE + 0x70;
/// Worker contexts `{ev_ptr, buf_ptr, epfd, pad}` × MAX_WORKERS.
pub const WCTX: u64 = DATA_BASE + 0x200;
/// Worker context stride.
pub const WCTX_STRIDE: u64 = 32;
const WEV: u64 = DATA_BASE + 0x800;
const WBUF: u64 = DATA_BASE + 0x1000;
const RESP_BUF: u64 = DATA_BASE + 0x600;
const DATA_STR: u64 = DATA_BASE + 0x440;
const WAL_STR: u64 = DATA_BASE + 0x480;

/// Build the postgresql-sim target.
pub fn target() -> ServerTarget {
    let mut s = SrvAsm::new();
    s.a.global("entry");

    // postmaster startup
    s.sys(nr::SOCKET);
    s.store_field(F_LISTEN, Rax);
    s.a.mov_rr(Rdi, Rax);
    s.a.mov_ri(Rsi, SOCKADDR);
    s.a.mov_ri(Rdx, 16);
    s.sys(nr::BIND);
    s.load_field(Rdi, F_LISTEN);
    s.a.mov_ri(Rsi, 64);
    s.sys(nr::LISTEN);
    // WAL-directory hygiene at boot: mkdir(wal ±), chmod(wal ±),
    // unlink(stale lock ±).
    s.load_field(Rdi, F_WALPTR);
    s.touch(Rdi);
    s.sys(nr::MKDIR);
    s.load_field(Rdi, F_WALPTR);
    s.touch(Rdi);
    s.a.mov_ri(Rsi, 0o700);
    s.sys(nr::CHMOD);
    s.load_field(Rdi, F_DATAPTR);
    s.touch(Rdi);
    s.sys(nr::UNLINK);

    // accept loop: one worker thread per connection
    let worker = s.a.fresh();
    let accept_loop = s.a.here();
    s.a.name("accept_loop", accept_loop);
    s.load_field(Rdi, F_LISTEN);
    s.a.zero(Rsi);
    s.a.zero(Rdx);
    s.sys(nr::ACCEPT);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::L, accept_loop);
    s.a.mov_rr(R13, Rax); // conn fd
                          // worker stack
    s.a.zero(Rdi);
    s.a.mov_ri(Rsi, 0x8000);
    s.sys(nr::MMAP);
    s.a.add_ri(Rax, 0x7000);
    s.a.mov_rr(Rsi, Rax);
    // pass conn fd and worker index on the child stack: [top]=fd, [top+8]=widx
    s.a.store(M::base(Rsi), R13);
    s.a.mov_ri(R11, F_WIDX);
    s.a.load(R10, M::base(R11));
    s.a.add_ri(R10, 1);
    s.a.store(M::base(R11), R10);
    s.a.and_ri(R10, (MAX_WORKERS - 1) as i32);
    s.a.store(M::base_disp(Rsi, 8), R10);
    s.a.zero(Rdi);
    s.sys(nr::CLONE);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::E, worker);
    s.a.jmp(accept_loop);

    // ---- worker ----------------------------------------------------------
    s.a.bind(worker);
    s.a.name("worker", worker);
    s.a.load(R13, M::base(Rsp)); // conn fd
    s.a.load(R14, M::base_disp(Rsp, 8)); // worker index
                                         // r12 = &wctx[widx]
    s.a.mov_rr(R12, R14);
    s.a.shl(R12, 5);
    s.a.mov_ri(R11, WCTX);
    s.a.add_rr(R12, R11);
    // per-worker epoll on the connection
    s.sys(nr::EPOLL_CREATE1);
    s.a.store(M::base_disp(R12, 16), Rax);
    s.a.sub_ri(Rsp, 32);
    s.a.store_i(M::base(Rsp), 1);
    s.a.store(M::base_disp(Rsp, 4), R13);
    s.a.load(Rdi, M::base_disp(R12, 16));
    s.a.mov_ri(Rsi, 1);
    s.a.mov_rr(Rdx, R13);
    s.a.mov_rr(R10, Rsp);
    s.sys(nr::EPOLL_CTL);

    let wexit = s.a.fresh();
    let wloop = s.a.here();
    // *** ⊕ primitive: epoll_wait(epfd, wctx.ev_ptr, 4, -1). Error →
    // *** graceful worker exit; the postmaster keeps serving.
    s.a.load(Rdi, M::base_disp(R12, 16));
    s.a.load(Rsi, M::base(R12));
    s.a.mov_ri(Rdx, 4);
    s.a.mov_ri(R10, (-1i64) as u64);
    s.sys(nr::EPOLL_WAIT);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::Le, wexit);
    // read the query (buffer ptr from wctx, touched ± — the backend
    // parses SQL in user mode).
    s.a.mov_rr(Rdi, R13);
    s.a.load(Rsi, M::base_disp(R12, 8));
    s.touch(Rsi);
    s.a.mov_ri(Rdx, 256);
    s.sys(nr::READ);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::Le, wexit);
    // respond a row (resp ptr touched ±).
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_RESPPTR);
    s.touch_write(Rsi, b'R' as i32);
    s.a.mov_ri(Rdx, 12);
    s.sys(nr::WRITE);
    s.a.jmp(wloop);

    s.a.bind(wexit);
    s.a.mov_rr(Rdi, R13);
    s.sys(nr::CLOSE);
    s.a.zero(Rdi);
    s.sys(nr::EXIT); // graceful backend termination — expected behaviour

    let mut d = DataTemplate::new();
    d.put_u64(F_RESPPTR, RESP_BUF);
    d.put_u64(F_DATAPTR, DATA_STR);
    d.put_u64(F_WALPTR, WAL_STR);
    d.put(SOCKADDR, &sockaddr_in(PORT));
    d.put(RESP_BUF, b"ROW 1 ok\n\n\n\0");
    d.put(DATA_STR, b"/www/pg.lock\0");
    d.put(WAL_STR, b"/www/wal\0");
    for w in 0..MAX_WORKERS {
        let ctx = WCTX + w * WCTX_STRIDE;
        d.put_u64(ctx, WEV + w * 64);
        d.put_u64(ctx + 8, WBUF + w * 0x200);
    }

    ServerTarget {
        name: "postgresql",
        image: build_elf(s.a, d.build()),
        port: PORT,
        attacker_regions: vec![(DATA_BASE, super::common::DATA_SIZE)],
        exercise,
        boot_steps: 2_000_000,
    }
}

fn sockaddr_in(port: u16) -> [u8; 16] {
    let mut sa = [0u8; 16];
    sa[0] = 2;
    sa[2..4].copy_from_slice(&port.to_be_bytes());
    sa
}

fn exercise(p: &mut LinuxProc, hook: &mut dyn OsHook) -> bool {
    let Some(conn) = p.net.client_connect(PORT) else {
        return false;
    };
    p.run(500_000, hook);
    p.net.client_send(conn, b"SELECT 1;\n");
    p.run(3_000_000, hook);
    let resp = p.net.client_recv(conn, 64);
    p.net.client_close(conn);
    p.run(500_000, hook);
    resp.starts_with(b"ROW")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_vm::NullHook;

    #[test]
    fn serves_queries_via_workers() {
        let t = target();
        let mut p = t.boot(&mut NullHook);
        assert!((t.exercise)(&mut p, &mut NullHook));
        assert!((t.exercise)(&mut p, &mut NullHook));
        assert!(p.alive());
        assert!(p.threads().len() >= 3, "postmaster + 2 workers");
    }

    #[test]
    fn corrupted_worker_epoll_buffer_exits_worker_gracefully() {
        let t = target();
        let mut p = t.boot(&mut NullHook);
        // Open a connection so worker 1 (wctx index 1) exists and parks.
        let conn = p.net.client_connect(PORT).unwrap();
        p.run(1_000_000, &mut NullHook);
        // Corrupt its event-buffer pointer (attacker write primitive).
        p.mem.write_u64(WCTX + WCTX_STRIDE, 0xdead_0000).unwrap();
        // Nudge the worker awake with data.
        p.net.client_send(conn, b"SELECT 1;\n");
        p.run(3_000_000, &mut NullHook);
        assert!(p.alive(), "no crash");
        assert!(p.efault_count >= 1, "probe visible as EFAULT");
        assert!(p.net.server_closed(conn), "worker tore the connection down");
        // New connections still served.
        assert!((t.exercise)(&mut p, &mut NullHook));
    }
}
