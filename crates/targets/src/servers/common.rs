//! Shared building blocks for the synthetic Linux servers.
//!
//! Every server follows the same physical layout — code at
//! [`CODE_BASE`] (r-x), data at [`DATA_BASE`] (rw-) — and the same
//! *idiom vocabulary*:
//!
//! * **memory-resident pointers**: buffer/path/event pointers live in
//!   fields of the data segment and are loaded right before use. An
//!   attacker with an arbitrary-write primitive can corrupt them, and the
//!   taint seed over writable memory makes the discovery monitor flag
//!   syscalls consuming them.
//! * **the `touch` idiom**: most real servers dereference their buffers
//!   in user mode around syscalls (parsing, `strlen`, memcpy). Sites with
//!   a user-mode touch crash when the pointer is invalidated — the "±"
//!   cells of Table I. Sites whose pointer flows *only* into the syscall
//!   and whose error path tears the connection down cleanly survive — the
//!   "⊕" cells.

use cr_image::{ElfImage, ElfSegment, SegPerm};
use cr_isa::{Asm, Inst, Mem as M, Reg, Rm, Width};
use cr_os::linux::LinuxProc;
use cr_os::OsHook;

/// Base of the code segment.
pub const CODE_BASE: u64 = 0x40_0000;
/// Base of the writable data segment.
pub const DATA_BASE: u64 = 0x60_0000;
/// Size of the data segment (zero-initialized beyond the template).
pub const DATA_SIZE: u64 = 0x2_0000;

/// `MSG_DONTWAIT`-style flag understood by the recv/accept paths.
pub const MSG_DONTWAIT: u64 = 0x40;

/// A synthetic server: its binary image plus the driver knowledge the
/// framework needs (port, attacker-reachable regions, workload).
pub struct ServerTarget {
    /// Server name as it appears in Table I.
    pub name: &'static str,
    /// The ELF binary (parsed form; serialize with `to_bytes`).
    pub image: ElfImage,
    /// TCP port the server listens on.
    pub port: u16,
    /// Writable regions the monitor seeds as attacker-reachable
    /// (label 0): the data segment and the mmap arena.
    pub attacker_regions: Vec<(u64, u64)>,
    /// Drive one full request/response cycle against a booted server.
    /// Returns true if the service answered correctly.
    pub exercise: fn(&mut LinuxProc, &mut dyn OsHook) -> bool,
    /// Steps to allow for boot.
    pub boot_steps: u64,
}

impl std::fmt::Debug for ServerTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerTarget")
            .field("name", &self.name)
            .field("port", &self.port)
            .finish()
    }
}

impl ServerTarget {
    /// Load the image into a fresh process and run until it is listening
    /// (blocked waiting for connections). Also seeds `/www` content.
    pub fn boot(&self, hook: &mut dyn OsHook) -> LinuxProc {
        let mut p = LinuxProc::load(&self.image);
        p.vfs.mkdir("/www").expect("fresh vfs");
        p.vfs
            .write_file("/www/index.html", b"<html>crash-resist</html>")
            .expect("fresh vfs");
        p.vfs
            .write_file("/www/404.html", b"not found")
            .expect("fresh vfs");
        p.run(self.boot_steps, hook);
        p
    }
}

/// Assembler wrapper with the idiom vocabulary.
pub struct SrvAsm {
    /// Underlying assembler.
    pub a: Asm,
}

impl SrvAsm {
    /// New server assembler at [`CODE_BASE`].
    pub fn new() -> SrvAsm {
        SrvAsm {
            a: Asm::new(CODE_BASE),
        }
    }

    /// Emit `mov rax, nr; syscall`.
    pub fn sys(&mut self, nr: u64) -> &mut Self {
        self.a.mov_ri(Reg::Rax, nr);
        self.a.syscall();
        self
    }

    /// Load the pointer stored at static data address `field` into `reg`
    /// — the memory-resident-pointer idiom.
    pub fn load_field(&mut self, reg: Reg, field: u64) -> &mut Self {
        self.a.mov_ri(reg, field);
        self.a.load(reg, M::base(reg));
        self
    }

    /// Store `reg` into the static data field at `field` (clobbers r11).
    pub fn store_field(&mut self, field: u64, reg: Reg) -> &mut Self {
        self.a.mov_ri(Reg::R11, field);
        self.a.store(M::base(Reg::R11), reg);
        self
    }

    /// Store an immediate into a static data field (clobbers r11).
    pub fn store_field_i(&mut self, field: u64, imm: i32) -> &mut Self {
        self.a.mov_ri(Reg::R11, field);
        self.a.store_i(M::base(Reg::R11), imm);
        self
    }

    /// The "±" idiom: touch the first byte behind `ptr_reg` in user mode
    /// (models parsing/`strlen` around the syscall). Clobbers r11.
    pub fn touch(&mut self, ptr_reg: Reg) -> &mut Self {
        self.a.load_u8(Reg::R11, M::base(ptr_reg));
        self
    }

    /// Store `byte` through `ptr_reg` (a user-mode write touch).
    pub fn touch_write(&mut self, ptr_reg: Reg, byte: i32) -> &mut Self {
        self.a.inst(Inst::MovRmI {
            dst: Rm::Mem(M::base(ptr_reg)),
            imm: byte,
            width: Width::B1,
        });
        self
    }
}

impl Default for SrvAsm {
    fn default() -> Self {
        SrvAsm::new()
    }
}

/// Package assembled code plus a data-segment template into an ELF image.
pub fn build_elf(asm: Asm, data_template: Vec<u8>) -> ElfImage {
    let assembled = asm.assemble().expect("server assembles");
    let entry = assembled.sym("entry");
    ElfImage {
        entry,
        segments: vec![
            ElfSegment {
                vaddr: assembled.base,
                memsz: assembled.code.len() as u64,
                data: assembled.code,
                perm: SegPerm::RX,
            },
            ElfSegment {
                vaddr: DATA_BASE,
                memsz: DATA_SIZE,
                data: data_template,
                perm: SegPerm::RW,
            },
        ],
        symbols: assembled.symbols,
    }
}

/// A data-segment template builder: place strings/values at offsets.
#[derive(Debug, Default)]
pub struct DataTemplate {
    bytes: Vec<u8>,
}

impl DataTemplate {
    /// Empty template.
    pub fn new() -> DataTemplate {
        DataTemplate::default()
    }

    /// Write `content` at `addr` (absolute, within the data segment).
    pub fn put(&mut self, addr: u64, content: &[u8]) -> &mut Self {
        assert!(addr >= DATA_BASE && addr + content.len() as u64 <= DATA_BASE + DATA_SIZE);
        let off = (addr - DATA_BASE) as usize;
        if self.bytes.len() < off + content.len() {
            self.bytes.resize(off + content.len(), 0);
        }
        self.bytes[off..off + content.len()].copy_from_slice(content);
        self
    }

    /// Write a little-endian u64 at `addr`.
    pub fn put_u64(&mut self, addr: u64, v: u64) -> &mut Self {
        self.put(addr, &v.to_le_bytes())
    }

    /// Finish.
    pub fn build(self) -> Vec<u8> {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_template_layout() {
        let mut t = DataTemplate::new();
        t.put(DATA_BASE + 0x10, b"/www\0");
        t.put_u64(DATA_BASE, 0x1234);
        let b = t.build();
        assert_eq!(&b[0..8], &0x1234u64.to_le_bytes());
        assert_eq!(&b[0x10..0x15], b"/www\0");
    }

    #[test]
    #[should_panic]
    fn data_template_bounds_checked() {
        DataTemplate::new().put(DATA_BASE - 1, b"x");
    }

    #[test]
    fn build_elf_shape() {
        let mut s = SrvAsm::new();
        s.a.global("entry");
        s.a.ret();
        let img = build_elf(s.a, vec![1, 2, 3]);
        assert_eq!(img.entry, CODE_BASE);
        assert_eq!(img.segments.len(), 2);
        assert_eq!(img.segments[1].vaddr, DATA_BASE);
        assert_eq!(img.segments[1].memsz, DATA_SIZE);
    }
}
