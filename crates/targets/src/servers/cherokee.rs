//! `cherokee-sim` — a multi-threaded HTTP server modeled on Cherokee 1.2.
//!
//! Each worker thread owns an epoll instance (with the shared listener
//! registered) and loops `epoll_wait` with a 1-second timeout. The
//! per-thread `epoll_event` buffer pointer lives in a thread context in
//! writable memory and flows only into the syscall; an invalidated
//! pointer leaves that worker spinning in a tight loop of failing
//! `epoll_wait` calls — the **usable (⊕) primitive with a timing side
//! channel** of §VI-D: the process survives, service continues on the
//! remaining threads, measurably slower.

use super::common::{build_elf, DataTemplate, ServerTarget, SrvAsm, DATA_BASE};
use cr_isa::{Cond, Mem as M, Reg};
use cr_os::linux::syscall::nr;
use cr_os::linux::LinuxProc;
use cr_os::OsHook;
use Reg::*;

/// Listening port.
pub const PORT: u16 = 8082;
/// Number of worker threads.
pub const WORKERS: u64 = 3;

const F_LISTEN: u64 = DATA_BASE;
const F_RESPPTR: u64 = DATA_BASE + 0x18;
const F_PATHPTR: u64 = DATA_BASE + 0x20;
const F_FILEPTR: u64 = DATA_BASE + 0x28;
const F_TMPPTR: u64 = DATA_BASE + 0x30;
const SOCKADDR: u64 = DATA_BASE + 0x70;
/// Worker thread contexts: `{epfd, ev_ptr, buf_ptr, pad}` × 3.
pub const CTX_TABLE: u64 = DATA_BASE + 0x200;
/// Context stride.
pub const CTX_STRIDE: u64 = 32;
const WEV_BUFS: u64 = DATA_BASE + 0x800; // 3 × 64-byte event buffers
const WREQ_BUFS: u64 = DATA_BASE + 0x1000; // 3 × 0x400 request buffers
const PATH_STR: u64 = DATA_BASE + 0x440;
const TMP_STR: u64 = DATA_BASE + 0x480;
const RESP_BUF: u64 = DATA_BASE + 0x600;
const FILE_BUF: u64 = DATA_BASE + 0x700;
const MAGIC_LISTEN: i32 = 0xFF;
const RESP_LEN: u64 = 17;

/// Build the cherokee-sim target.
pub fn target() -> ServerTarget {
    let mut s = SrvAsm::new();
    s.a.global("entry");

    // startup: listener socket
    s.sys(nr::SOCKET);
    s.store_field(F_LISTEN, Rax);
    s.a.mov_rr(Rdi, Rax);
    s.a.mov_ri(Rsi, SOCKADDR);
    s.a.mov_ri(Rdx, 16);
    s.sys(nr::BIND);
    s.load_field(Rdi, F_LISTEN);
    s.a.mov_ri(Rsi, 64);
    s.sys(nr::LISTEN);

    // spawn WORKERS threads, each with its context address on its stack
    let worker = s.a.fresh();
    s.a.zero(R14); // t
    let spawn_loop = s.a.here();
    s.a.cmp_ri(R14, WORKERS as i32);
    let spawned = s.a.fresh();
    s.a.jcc(Cond::Ge, spawned);
    // stack = mmap(0, 0x8000); top = stack + 0x7000
    s.a.zero(Rdi);
    s.a.mov_ri(Rsi, 0x8000);
    s.sys(nr::MMAP);
    s.a.add_ri(Rax, 0x7000);
    s.a.mov_rr(Rsi, Rax); // child stack top
                          // [top] = &ctx[t]
    s.a.mov_rr(R11, R14);
    s.a.shl(R11, 5);
    s.a.mov_ri(R10, CTX_TABLE);
    s.a.add_rr(R10, R11);
    s.a.store(M::base(Rsi), R10);
    s.a.zero(Rdi);
    s.sys(nr::CLONE);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::E, worker); // child → worker body
    s.a.add_ri(R14, 1);
    s.a.jmp(spawn_loop);

    // supervisor: periodic nanosleep forever
    s.a.bind(spawned);
    let ts = s.a.fresh();
    let sup_loop = s.a.here();
    s.a.lea_label(Rdi, ts);
    s.a.zero(Rsi);
    s.sys(nr::NANOSLEEP);
    s.a.jmp(sup_loop);
    // timespec {0s, 10ms} as inline code-segment data
    s.a.align(8);
    s.a.bind(ts);
    s.a.bytes(&0u64.to_le_bytes());
    s.a.bytes(&10_000_000u64.to_le_bytes());

    // ---- worker body ----------------------------------------------------
    s.a.bind(worker);
    s.a.name("worker", worker);
    s.a.load(R12, M::base(Rsp)); // r12 = &ctx
                                 // epfd = epoll_create1; ctx.epfd = epfd
    s.sys(nr::EPOLL_CREATE1);
    s.a.store(M::base(R12), Rax);
    // epoll_ctl(epfd, ADD, listen, {EPOLLIN, data=MAGIC})
    // build event inline on own stack: [rsp-16]
    s.a.sub_ri(Rsp, 32);
    s.a.store_i(M::base(Rsp), 1);
    s.a.mov_ri(R11, MAGIC_LISTEN as u64);
    s.a.store(M::base_disp(Rsp, 4), R11);
    s.a.load(Rdi, M::base(R12));
    s.a.mov_ri(Rsi, 1);
    s.load_field(Rdx, F_LISTEN);
    s.a.mov_rr(R10, Rsp);
    s.sys(nr::EPOLL_CTL);

    let wloop = s.a.here();
    // *** ⊕ primitive: epoll_wait(ctx.epfd, ctx.ev_ptr, 4, 1000ms). The
    // *** event-buffer pointer comes from the thread context in writable
    // *** memory and is NOT touched in user mode; on error the worker
    // *** just loops — a tight EFAULT spin (timing side channel).
    s.a.load(Rdi, M::base(R12));
    s.a.load(Rsi, M::base_disp(R12, 8));
    s.a.mov_ri(Rdx, 4);
    s.a.mov_ri(R10, 1000);
    s.sys(nr::EPOLL_WAIT);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::Le, wloop);

    // accept one connection (nonblocking; another worker may have won)
    s.load_field(Rdi, F_LISTEN);
    s.a.zero(Rsi);
    s.a.zero(Rdx);
    s.a.mov_ri(R10, 0x800);
    s.sys(nr::ACCEPT4);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::L, wloop);
    s.a.mov_rr(R13, Rax);

    // read request (single chunk; buffer ptr from ctx, touched ± — the
    // worker parses the request in user mode).
    s.a.mov_rr(Rdi, R13);
    s.a.load(Rsi, M::base_disp(R12, 16));
    s.touch(Rsi);
    s.a.mov_ri(Rdx, 256);
    s.sys(nr::READ);
    let wclose = s.a.fresh();
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::Le, wclose);

    // respond: open(path ±) + read(file ±) + write header/body (±).
    s.load_field(Rdi, F_PATHPTR);
    s.touch(Rdi);
    s.a.zero(Rsi);
    s.sys(nr::OPEN);
    s.a.mov_rr(R9, Rax);
    s.a.cmp_ri(R9, 0);
    s.a.jcc(Cond::L, wclose);
    s.a.mov_rr(Rdi, R9);
    s.load_field(Rsi, F_FILEPTR);
    s.touch(Rsi);
    s.a.mov_ri(Rdx, 128);
    s.sys(nr::READ);
    s.a.mov_rr(R15, Rax);
    s.a.mov_rr(Rdi, R9);
    s.sys(nr::CLOSE);
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_RESPPTR);
    s.touch_write(Rsi, b'H' as i32);
    s.a.mov_ri(Rdx, RESP_LEN);
    s.a.zero(R10);
    s.sys(nr::SENDTO);
    s.a.cmp_ri(R15, 0);
    let no_body = s.a.fresh();
    s.a.jcc(Cond::Le, no_body);
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_FILEPTR);
    s.a.mov_rr(Rdx, R15);
    s.a.zero(R10);
    s.sys(nr::SENDTO);
    s.a.bind(no_body);
    // housekeeping: chmod(path ±) + mkdir(tmp ±) once per request.
    s.load_field(Rdi, F_PATHPTR);
    s.touch(Rdi);
    s.a.mov_ri(Rsi, 0o644);
    s.sys(nr::CHMOD);
    s.load_field(Rdi, F_TMPPTR);
    s.touch(Rdi);
    s.sys(nr::MKDIR);

    s.a.bind(wclose);
    s.a.mov_rr(Rdi, R13);
    s.sys(nr::CLOSE);
    s.a.jmp(wloop);

    // ---- data ----------------------------------------------------------
    let mut d = DataTemplate::new();
    d.put_u64(F_RESPPTR, RESP_BUF);
    d.put_u64(F_PATHPTR, PATH_STR);
    d.put_u64(F_FILEPTR, FILE_BUF);
    d.put_u64(F_TMPPTR, TMP_STR);
    d.put(SOCKADDR, &sockaddr_in(PORT));
    d.put(PATH_STR, b"/www/index.html\0");
    d.put(TMP_STR, b"/www/cache\0");
    d.put(RESP_BUF, b"HTTP/1.1 200 OK\n\n");
    for t in 0..WORKERS {
        let ctx = CTX_TABLE + t * CTX_STRIDE;
        d.put_u64(ctx + 8, WEV_BUFS + t * 64);
        d.put_u64(ctx + 16, WREQ_BUFS + t * 0x400);
    }

    ServerTarget {
        name: "cherokee",
        image: build_elf(s.a, d.build()),
        port: PORT,
        attacker_regions: vec![(DATA_BASE, super::common::DATA_SIZE)],
        exercise,
        boot_steps: 3_000_000,
    }
}

fn sockaddr_in(port: u16) -> [u8; 16] {
    let mut sa = [0u8; 16];
    sa[0] = 2;
    sa[2..4].copy_from_slice(&port.to_be_bytes());
    sa
}

fn exercise(p: &mut LinuxProc, hook: &mut dyn OsHook) -> bool {
    let Some(conn) = p.net.client_connect(PORT) else {
        return false;
    };
    p.net.client_send(conn, b"GET /index.html\n\n");
    p.run(4_000_000, hook);
    let resp = p.net.client_recv(conn, 256);
    p.net.client_close(conn);
    p.run(100_000, hook);
    resp.starts_with(b"HTTP/1.1 200 OK")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_vm::NullHook;

    #[test]
    fn boots_workers_and_serves() {
        let t = target();
        let mut p = t.boot(&mut NullHook);
        assert!(p.threads().len() > WORKERS as usize, "main + workers");
        assert!((t.exercise)(&mut p, &mut NullHook));
        assert!((t.exercise)(&mut p, &mut NullHook));
        assert!(p.alive());
    }

    #[test]
    fn corrupted_worker_epoll_buffer_stalls_but_serves() {
        // §VI-D: corrupt worker 0's ev_ptr → that worker spins on EFAULT;
        // the other workers keep serving; the process never crashes.
        let t = target();
        let mut p = t.boot(&mut NullHook);
        assert!((t.exercise)(&mut p, &mut NullHook));
        p.mem.write_u64(CTX_TABLE + 8, 0xdead_0000).unwrap();
        let before = p.efault_count;
        assert!(
            (t.exercise)(&mut p, &mut NullHook),
            "remaining workers serve"
        );
        assert!(p.alive(), "no crash");
        assert!(
            p.efault_count > before,
            "stalled worker produces EFAULT stream"
        );
    }

    #[test]
    fn stalled_worker_increases_service_time() {
        // The timing side channel: measure vtime for a batch of requests
        // with 0 vs 1 stalled workers.
        let t = target();
        let mut p = t.boot(&mut NullHook);
        let t0 = p.vtime;
        for _ in 0..3 {
            assert!((t.exercise)(&mut p, &mut NullHook));
        }
        let healthy = p.vtime - t0;

        let mut p2 = t.boot(&mut NullHook);
        p2.mem.write_u64(CTX_TABLE + 8, 0xdead_0000).unwrap();
        p2.run(200_000, &mut NullHook); // let the stall begin
        let t0 = p2.vtime;
        for _ in 0..3 {
            assert!((t.exercise)(&mut p2, &mut NullHook));
        }
        let degraded = p2.vtime - t0;
        assert!(
            degraded > healthy,
            "stalled worker must slow service: healthy={healthy} degraded={degraded}"
        );
    }
}
