//! `memcached-sim` — a key/value cache modeled on Memcached 1.4.
//!
//! One dedicated *connection-handling thread* owns the epoll loop; the
//! main thread only supervises. Two findings reproduce here:
//!
//! * `read` is a usable (⊕) primitive: the command-buffer pointer lives
//!   in writable memory, flows only into the syscall, and errors close
//!   just the probed connection.
//! * `epoll_wait` is the paper's **false positive**: on an `epoll_wait`
//!   error the connection-handling thread exits while the process stays
//!   alive. The framework (which only watches for crashes) reports it
//!   usable — but subsequent connections are never processed (§V-A).

use super::common::{build_elf, DataTemplate, ServerTarget, SrvAsm, DATA_BASE};
use cr_isa::{Cond, Mem as M, Reg};
use cr_os::linux::syscall::nr;
use cr_os::linux::LinuxProc;
use cr_os::OsHook;
use Reg::*;

/// Listening port.
pub const PORT: u16 = 8083;

const F_LISTEN: u64 = DATA_BASE;
/// The worker's epoll fd field.
pub const F_EPFD: u64 = DATA_BASE + 0x08;
/// The worker's epoll event-buffer pointer — the false-positive source.
pub const F_EVPTR: u64 = DATA_BASE + 0x10;
const F_RESPPTR: u64 = DATA_BASE + 0x18;
/// Command-buffer pointer — the ⊕ `read` primitive's source.
pub const F_BUFPTR: u64 = DATA_BASE + 0x38;
const F_STATSPTR: u64 = DATA_BASE + 0x40;
const F_MSGPTR: u64 = DATA_BASE + 0x48;
const SOCKADDR: u64 = DATA_BASE + 0x70;
const EV_BUF: u64 = DATA_BASE + 0x300;
const RESP_BUF: u64 = DATA_BASE + 0x600;
const STATS_BUF: u64 = DATA_BASE + 0x680;
const MSGHDR: u64 = DATA_BASE + 0x6C0;
const IOVEC: u64 = DATA_BASE + 0x6F0;
const CMD_BUF: u64 = DATA_BASE + 0x1000;
const MAGIC_LISTEN: i32 = 0xFF;

/// Build the memcached-sim target.
pub fn target() -> ServerTarget {
    let mut s = SrvAsm::new();
    s.a.global("entry");

    // startup
    s.sys(nr::SOCKET);
    s.store_field(F_LISTEN, Rax);
    s.a.mov_rr(Rdi, Rax);
    s.a.mov_ri(Rsi, SOCKADDR);
    s.a.mov_ri(Rdx, 16);
    s.sys(nr::BIND);
    s.load_field(Rdi, F_LISTEN);
    s.a.mov_ri(Rsi, 64);
    s.sys(nr::LISTEN);

    // spawn the connection-handling thread
    let worker = s.a.fresh();
    s.a.zero(Rdi);
    s.a.mov_ri(Rsi, 0x8000);
    s.sys(nr::MMAP);
    s.a.add_ri(Rax, 0x7000);
    s.a.mov_rr(Rsi, Rax);
    s.a.zero(Rdi);
    s.sys(nr::CLONE);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::E, worker);

    // main thread: supervisor sleep loop (keeps the process alive even if
    // the worker dies — the substance of the false positive)
    let ts = s.a.fresh();
    let sup = s.a.here();
    s.a.lea_label(Rdi, ts);
    s.a.zero(Rsi);
    s.sys(nr::NANOSLEEP);
    s.a.jmp(sup);
    s.a.align(8);
    s.a.bind(ts);
    s.a.bytes(&0u64.to_le_bytes());
    s.a.bytes(&50_000_000u64.to_le_bytes()); // 50 ms

    // ---- connection-handling thread -------------------------------------
    s.a.bind(worker);
    s.a.name("worker", worker);
    s.sys(nr::EPOLL_CREATE1);
    s.store_field(F_EPFD, Rax);
    // register listener
    s.a.sub_ri(Rsp, 32);
    s.a.store_i(M::base(Rsp), 1);
    s.a.mov_ri(R11, MAGIC_LISTEN as u64);
    s.a.store(M::base_disp(Rsp, 4), R11);
    s.load_field(Rdi, F_EPFD);
    s.a.mov_ri(Rsi, 1);
    s.load_field(Rdx, F_LISTEN);
    s.a.mov_rr(R10, Rsp);
    s.sys(nr::EPOLL_CTL);

    let wloop = s.a.here();
    let die = s.a.fresh();
    // *** The FALSE POSITIVE: epoll_wait with a memory-resident events
    // *** pointer; on error the thread exits(1) — the process survives,
    // *** but nobody serves connections anymore.
    s.load_field(Rdi, F_EPFD);
    s.load_field(Rsi, F_EVPTR);
    s.a.mov_ri(Rdx, 8);
    s.a.mov_ri(R10, (-1i64) as u64);
    s.sys(nr::EPOLL_WAIT);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::L, die);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::E, wloop);
    // inspect first event's data — through the same pointer register the
    // kernel just validated (rsi survives the syscall).
    s.a.mov_rr(R15, Rsi);
    s.a.load(R13, M::base_disp(R15, 4));
    let handle_conn = s.a.fresh();
    s.a.cmp_ri(R13, MAGIC_LISTEN);
    s.a.jcc(Cond::Ne, handle_conn);
    // accept, register conn with data=fd
    s.load_field(Rdi, F_LISTEN);
    s.a.zero(Rsi);
    s.a.zero(Rdx);
    s.a.mov_ri(R10, 0x800);
    s.sys(nr::ACCEPT4);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::L, wloop);
    s.a.store_i(M::base(Rsp), 1);
    s.a.store(M::base_disp(Rsp, 4), Rax);
    s.a.mov_rr(Rdx, Rax);
    s.load_field(Rdi, F_EPFD);
    s.a.mov_ri(Rsi, 1);
    s.a.mov_rr(R10, Rsp);
    s.sys(nr::EPOLL_CTL);
    s.a.jmp(wloop);

    // connection data: r13 = fd
    s.a.bind(handle_conn);
    let close_conn = s.a.fresh();
    // *** ⊕ primitive: read(fd, cmd_buf ptr from memory, 64) — untouched;
    // *** error → close just this connection, thread keeps serving.
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_BUFPTR);
    s.a.mov_ri(Rdx, 64);
    s.sys(nr::READ);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::Le, close_conn);
    // parse command (derefs buffer only after a successful read): 'g' → get
    s.load_field(Rsi, F_BUFPTR);
    s.a.load_u8(R11, M::base(Rsi));
    s.a.cmp_ri(R11, b'g' as i32);
    let respond_stats = s.a.fresh();
    s.a.jcc(Cond::Ne, respond_stats);
    // respond VALUE (resp ptr touched ±, sendto)
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_RESPPTR);
    s.touch_write(Rsi, b'V' as i32);
    s.a.mov_ri(Rdx, 22);
    s.a.zero(R10);
    s.sys(nr::SENDTO);
    s.a.jmp(close_conn);
    // stats command: write(fd, stats ptr touched ±) then a
    // sendmsg(fd, msghdr ptr touched ±) with the uptime line.
    s.a.bind(respond_stats);
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_STATSPTR);
    s.touch(Rsi);
    s.a.mov_ri(Rdx, 10);
    s.sys(nr::WRITE);
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_MSGPTR);
    s.touch(Rsi);
    s.a.zero(Rdx);
    s.sys(nr::SENDMSG);
    s.a.bind(close_conn);
    s.load_field(Rdi, F_EPFD);
    s.a.mov_ri(Rsi, 2);
    s.a.mov_rr(Rdx, R13);
    s.a.zero(R10);
    s.sys(nr::EPOLL_CTL);
    s.a.mov_rr(Rdi, R13);
    s.sys(nr::CLOSE);
    s.a.jmp(wloop);

    // thread death on epoll failure: exit(1) — thread-level exit only.
    s.a.bind(die);
    s.a.mov_ri(Rdi, 1);
    s.sys(nr::EXIT);

    let mut d = DataTemplate::new();
    d.put_u64(F_EVPTR, EV_BUF);
    d.put_u64(F_RESPPTR, RESP_BUF);
    d.put_u64(F_BUFPTR, CMD_BUF);
    d.put_u64(F_STATSPTR, STATS_BUF);
    d.put_u64(F_MSGPTR, MSGHDR);
    // struct msghdr: iov at +16, iovlen at +24; iovec = {STATS_BUF, 10}.
    d.put_u64(MSGHDR + 16, IOVEC);
    d.put_u64(MSGHDR + 24, 1);
    d.put_u64(IOVEC, STATS_BUF);
    d.put_u64(IOVEC + 8, 10);
    d.put(SOCKADDR, &sockaddr_in(PORT));
    d.put(RESP_BUF, b"VALUE k 0 5\r\nhello\r\n\r\n");
    d.put(STATS_BUF, b"STAT up 1\n");

    ServerTarget {
        name: "memcached",
        image: build_elf(s.a, d.build()),
        port: PORT,
        attacker_regions: vec![(DATA_BASE, super::common::DATA_SIZE)],
        exercise,
        boot_steps: 2_000_000,
    }
}

fn sockaddr_in(port: u16) -> [u8; 16] {
    let mut sa = [0u8; 16];
    sa[0] = 2;
    sa[2..4].copy_from_slice(&port.to_be_bytes());
    sa
}

fn exercise(p: &mut LinuxProc, hook: &mut dyn OsHook) -> bool {
    let Some(conn) = p.net.client_connect(PORT) else {
        return false;
    };
    p.net.client_send(conn, b"get key\r\n");
    p.run(3_000_000, hook);
    let resp = p.net.client_recv(conn, 64);
    p.net.client_close(conn);
    p.run(100_000, hook);
    // The test suite also covers the stats command (the sendmsg path).
    if let Some(stats) = p.net.client_connect(PORT) {
        p.net.client_send(stats, b"stats\r\n");
        p.run(3_000_000, hook);
        let _ = p.net.client_recv(stats, 64);
        p.net.client_close(stats);
        p.run(100_000, hook);
    }
    resp.starts_with(b"VALUE")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_vm::NullHook;

    #[test]
    fn boots_and_answers_get() {
        let t = target();
        let mut p = t.boot(&mut NullHook);
        assert!((t.exercise)(&mut p, &mut NullHook));
        assert!((t.exercise)(&mut p, &mut NullHook));
        assert!(p.alive());
    }

    #[test]
    fn corrupted_cmd_buffer_is_crash_resistant() {
        let t = target();
        let mut p = t.boot(&mut NullHook);
        p.mem.write_u64(F_BUFPTR, 0xdead_0000).unwrap();
        let conn = p.net.client_connect(PORT).unwrap();
        p.net.client_send(conn, b"get key\r\n");
        p.run(3_000_000, &mut NullHook);
        assert!(p.alive());
        assert!(p.efault_count >= 1);
        assert!(p.net.server_closed(conn), "probed connection closed");
        // Restore → service continues: the thread survived.
        p.mem.write_u64(F_BUFPTR, CMD_BUF).unwrap();
        assert!((t.exercise)(&mut p, &mut NullHook));
    }

    #[test]
    fn epoll_false_positive_thread_dies_silently() {
        // The framework-visible outcome: EFAULT + process alive (looks
        // usable). The ground truth: the connection-handling thread is
        // gone and service is dead — the paper's false positive.
        let t = target();
        let mut p = t.boot(&mut NullHook);
        assert!((t.exercise)(&mut p, &mut NullHook));
        p.mem.write_u64(F_EVPTR, 0xdead_0000).unwrap();
        // Trigger an epoll_wait cycle.
        let conn = p.net.client_connect(PORT).unwrap();
        p.net.client_send(conn, b"get key\r\n");
        p.run(3_000_000, &mut NullHook);
        assert!(p.alive(), "process survives (main thread sleeps on)");
        assert!(p.efault_count >= 1, "EFAULT observed");
        // ...but the service is dead: new connections get no answer.
        assert!(!(t.exercise)(&mut p, &mut NullHook), "service must be dead");
        // And the worker thread has exited.
        assert!(p.threads().iter().any(|th| th.exited()));
    }
}
