//! `nginx-sim` — an event-driven HTTP server modeled on Nginx 1.9.
//!
//! Structure mirrors the real server closely enough for the paper's
//! findings to reproduce:
//!
//! * single-threaded epoll event loop, multiple parallel connections;
//! * per-connection buffer object (`ngx_buf_t`-like) in writable memory
//!   holding the receive-buffer pointer — `recv` consumes that pointer
//!   and tears the connection down cleanly on any error: the **usable
//!   (⊕) crash-resistant primitive** of §V-A / §VI-C;
//! * a partial request parks the connection with its buffer allocated
//!   (the foothold the Nginx PoC exploits);
//! * every other pointer-consuming syscall site "touches" its buffer in
//!   user mode first (parsing, logging, response building), so pointer
//!   invalidation crashes the process — the ± cells of Table I.

use super::common::{build_elf, DataTemplate, ServerTarget, SrvAsm, DATA_BASE};
use cr_isa::{AluOp, Cond, Inst, Mem as M, Reg, Rm, Width};
use cr_os::linux::syscall::nr;
use cr_os::linux::LinuxProc;
use cr_os::OsHook;
use Reg::*;

/// Listening port.
pub const PORT: u16 = 8080;

// Data-segment fields.
const F_LISTEN: u64 = DATA_BASE;
const F_EPFD: u64 = DATA_BASE + 0x08;
const F_EVPTR: u64 = DATA_BASE + 0x10;
const F_RESPPTR: u64 = DATA_BASE + 0x18;
const F_PATHPTR: u64 = DATA_BASE + 0x20;
const F_LOGPTR: u64 = DATA_BASE + 0x28;
const F_LINKPTR: u64 = DATA_BASE + 0x30;
const F_TMPPTR: u64 = DATA_BASE + 0x38;
const F_FILEPTR: u64 = DATA_BASE + 0x40;
const F_UPSTREAM: u64 = DATA_BASE + 0x48;
const F_REQCNT: u64 = DATA_BASE + 0x58;
const EV_SCRATCH: u64 = DATA_BASE + 0x60; // 12-byte epoll_event build area
const SOCKADDR: u64 = DATA_BASE + 0x70;
const UPSTREAM_SA: u64 = DATA_BASE + 0x80;
/// Connection slot table (`ngx_buf_t`-alike): 4 slots × 32 bytes
/// `{fd, active, buf_ptr, buf_used}`.
pub const CONN_TABLE: u64 = DATA_BASE + 0x100;
/// Slot stride in bytes.
pub const CONN_STRIDE: u64 = 32;
const EV_BUF: u64 = DATA_BASE + 0x300;
const PATH_STR: u64 = DATA_BASE + 0x440;
const LOG_STR: u64 = DATA_BASE + 0x480;
const LINK_STR: u64 = DATA_BASE + 0x4C0;
const TMP_STR: u64 = DATA_BASE + 0x500;
const RESP_BUF: u64 = DATA_BASE + 0x600;
const FILE_BUF: u64 = DATA_BASE + 0x700;
/// Per-connection receive buffers.
pub const BUF_ARENA: u64 = DATA_BASE + 0x1000;
/// Bytes per connection buffer.
pub const BUF_SIZE: u64 = 0x400;

const MAGIC_LISTEN: i32 = 0xFF;
const RESP_LEN: u64 = 17; // "HTTP/1.1 200 OK\n\n"

/// Build the nginx-sim binary image and driver metadata.
pub fn target() -> ServerTarget {
    let mut s = SrvAsm::new();
    let a = &mut s.a;
    a.global("entry");

    // ---- startup: socket/bind/listen/epoll --------------------------------
    s.sys(nr::SOCKET);
    s.store_field(F_LISTEN, Rax);
    s.a.mov_rr(Rdi, Rax);
    s.a.mov_ri(Rsi, SOCKADDR);
    s.a.mov_ri(Rdx, 16);
    s.sys(nr::BIND);
    s.load_field(Rdi, F_LISTEN);
    s.a.mov_ri(Rsi, 64);
    s.sys(nr::LISTEN);
    s.sys(nr::EPOLL_CREATE1);
    s.store_field(F_EPFD, Rax);
    // epoll_ctl(epfd, ADD, listen_fd, {EPOLLIN, data=MAGIC_LISTEN})
    s.store_field_i(EV_SCRATCH, 1); // events = EPOLLIN (writes 8 bytes; data next)
    s.a.mov_ri(R11, EV_SCRATCH + 4);
    s.a.store_i(M::base(R11), MAGIC_LISTEN);
    s.load_field(Rdi, F_EPFD);
    s.a.mov_ri(Rsi, 1);
    s.load_field(Rdx, F_LISTEN);
    s.a.mov_ri(R10, EV_SCRATCH);
    s.sys(nr::EPOLL_CTL);

    // ---- main event loop ---------------------------------------------------
    let main_loop = s.a.here();
    s.a.name("main_loop", main_loop);
    s.load_field(Rdi, F_EPFD);
    s.load_field(Rsi, F_EVPTR);
    // nginx touches its event array in user mode (timer bookkeeping):
    // invalidating F_EVPTR therefore crashes → epoll_wait is "±" here.
    s.touch(Rsi);
    s.a.mov_ri(Rdx, 8);
    s.a.mov_ri(R10, (-1i64) as u64);
    s.sys(nr::EPOLL_WAIT);
    s.a.mov_rr(Rbx, Rax); // n events
    s.a.cmp_ri(Rbx, 0);
    s.a.jcc(Cond::Le, main_loop);
    s.a.zero(R14); // event index

    let event_loop = s.a.here();
    let next_event = s.a.fresh();
    let close_conn = s.a.fresh();
    s.a.cmp_rr(R14, Rbx);
    s.a.jcc(Cond::Ge, main_loop);
    // r13 = events[i].data  (packed 12-byte events: data at +4)
    s.load_field(R15, F_EVPTR);
    s.a.mov_rr(R11, R14);
    s.a.shl(R11, 3);
    s.a.add_rr(R15, R11);
    s.a.mov_rr(R11, R14);
    s.a.shl(R11, 2);
    s.a.add_rr(R15, R11);
    s.a.load(R13, M::base_disp(R15, 4));

    let handle_conn = s.a.fresh();
    s.a.cmp_ri(R13, MAGIC_LISTEN);
    s.a.jcc(Cond::Ne, handle_conn);

    // ---- accept path -------------------------------------------------------
    s.load_field(Rdi, F_LISTEN);
    s.a.zero(Rsi);
    s.a.zero(Rdx);
    s.a.mov_ri(R10, 0x800); // SOCK_NONBLOCK
    s.sys(nr::ACCEPT4);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::L, next_event);
    s.a.mov_rr(R9, Rax); // new fd
                         // find a free slot j in 0..4
    s.a.zero(R12);
    let find_slot = s.a.here();
    let take_slot = s.a.fresh();
    s.a.mov_rr(R11, R12);
    s.a.shl(R11, 5);
    s.a.mov_ri(R15, CONN_TABLE + 8);
    s.a.add_rr(R15, R11);
    s.a.cmp_mi(M::base(R15), 0); // slot.active == 0 ?
    s.a.jcc(Cond::E, take_slot);
    s.a.add_ri(R12, 1);
    s.a.cmp_ri(R12, 4);
    s.a.jcc(Cond::L, find_slot);
    // no slot: drop connection
    s.a.mov_rr(Rdi, R9);
    s.sys(nr::CLOSE);
    s.a.jmp(next_event);
    s.a.bind(take_slot);
    // slot base in r15-8; initialize {fd, active=1, buf_ptr, buf_used=0}
    s.a.sub_ri(R15, 8);
    s.a.store(M::base(R15), R9);
    s.a.store_i(M::base_disp(R15, 8), 1);
    s.a.mov_rr(R11, R12);
    s.a.shl(R11, 10); // j * BUF_SIZE
    s.a.mov_ri(R10, BUF_ARENA);
    s.a.add_rr(R10, R11);
    s.a.store(M::base_disp(R15, 16), R10);
    s.a.store_i(M::base_disp(R15, 24), 0);
    // epoll_ctl(epfd, ADD, fd, {EPOLLIN, data=j})
    s.store_field_i(EV_SCRATCH, 1);
    s.a.mov_ri(R11, EV_SCRATCH + 4);
    s.a.store(M::base(R11), R12);
    s.load_field(Rdi, F_EPFD);
    s.a.mov_ri(Rsi, 1);
    s.a.mov_rr(Rdx, R9);
    s.a.mov_ri(R10, EV_SCRATCH);
    s.sys(nr::EPOLL_CTL);
    s.a.jmp(next_event);

    // ---- connection data path ----------------------------------------------
    s.a.bind(handle_conn);
    // r12 = &conn_table[data]
    s.a.mov_rr(R12, R13);
    s.a.shl(R12, 5);
    s.a.mov_ri(R11, CONN_TABLE);
    s.a.add_rr(R12, R11);
    // recv(fd, buf_ptr + used, 64, MSG_DONTWAIT)
    // *** The usable crash-resistant primitive: the pointer comes from the
    // *** connection object in writable memory, flows ONLY into the
    // *** syscall, and every error tears the connection down cleanly.
    s.a.load(Rdi, M::base(R12));
    s.a.load(Rsi, M::base_disp(R12, 16));
    s.a.inst(Inst::AluRRm {
        op: AluOp::Add,
        dst: Rsi,
        src: Rm::Mem(M::base_disp(R12, 24)),
        width: Width::B8,
    });
    s.a.mov_ri(Rdx, 64);
    s.a.mov_ri(R10, 0x40); // MSG_DONTWAIT
    s.sys(nr::RECVFROM);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::Le, close_conn); // error (EFAULT!) or EOF → clean close
                                   // buf_used += n
    s.a.inst(Inst::AluRmR {
        op: AluOp::Add,
        dst: Rm::Mem(M::base_disp(R12, 24)),
        src: Rax,
        width: Width::B8,
    });
    // complete request? buf[used-2..] == "\n\n"
    s.a.load(Rsi, M::base_disp(R12, 16));
    s.a.load(R9, M::base_disp(R12, 24));
    s.a.cmp_ri(R9, 2);
    s.a.jcc(Cond::L, next_event);
    s.a.lea(R10, M::base_index(Rsi, R9, 1, -2));
    s.a.load_u8(R11, M::base(R10));
    s.a.cmp_ri(R11, 10);
    s.a.jcc(Cond::Ne, next_event);
    s.a.load_u8(R11, M::base_disp(R10, 1));
    s.a.cmp_ri(R11, 10);
    s.a.jcc(Cond::Ne, next_event);

    // ---- serve the request ---------------------------------------------------
    // open(path, 0) — path pointer from memory, *touched* in user mode (±).
    s.load_field(Rdi, F_PATHPTR);
    s.touch(Rdi);
    s.a.zero(Rsi);
    s.sys(nr::OPEN);
    s.a.mov_rr(R9, Rax); // file fd
    s.a.cmp_ri(R9, 0);
    s.a.jcc(Cond::L, close_conn);
    // read(file, file_buf, 128) — buffer pointer from memory, touched (±).
    s.a.mov_rr(Rdi, R9);
    s.load_field(Rsi, F_FILEPTR);
    s.touch(Rsi);
    s.a.mov_ri(Rdx, 128);
    s.sys(nr::READ);
    s.a.mov_rr(R15, Rax); // file length
    s.a.mov_rr(Rdi, R9);
    s.sys(nr::CLOSE);
    // response header: write through resp_ptr (user-mode store, ±) then send.
    s.load_field(Rsi, F_RESPPTR);
    s.touch_write(Rsi, b'H' as i32);
    s.a.load(Rdi, M::base(R12));
    s.a.mov_ri(Rdx, RESP_LEN);
    s.a.zero(R10);
    s.sys(nr::SENDTO);
    // send file content.
    s.a.cmp_ri(R15, 0);
    let after_body = s.a.fresh();
    s.a.jcc(Cond::Le, after_body);
    s.a.load(Rdi, M::base(R12));
    s.load_field(Rsi, F_FILEPTR);
    s.a.mov_rr(Rdx, R15);
    s.a.zero(R10);
    s.sys(nr::SENDTO);
    s.a.bind(after_body);

    // maintenance (log rotation + upstream check) on the first request only.
    s.a.mov_ri(R11, F_REQCNT);
    s.a.load(R10, M::base(R11));
    s.a.add_ri(R10, 1);
    s.a.store(M::base(R11), R10);
    s.a.cmp_ri(R10, 1);
    s.a.jcc(Cond::Ne, close_conn);
    let maint = s.a.fresh();
    s.a.call_label(maint);
    s.a.jmp(close_conn);

    // ---- maintenance routine -------------------------------------------------
    s.a.bind(maint);
    s.a.name("maintenance", maint);
    // unlink(link) — touched (±)
    s.load_field(Rdi, F_LINKPTR);
    s.touch(Rdi);
    s.sys(nr::UNLINK);
    // symlink(log, link) — both touched (±)
    s.load_field(Rdi, F_LOGPTR);
    s.touch(Rdi);
    s.load_field(Rsi, F_LINKPTR);
    s.touch(Rsi);
    s.sys(nr::SYMLINK);
    // chmod(log, 0644) — touched (±)
    s.load_field(Rdi, F_LOGPTR);
    s.touch(Rdi);
    s.a.mov_ri(Rsi, 0o644);
    s.sys(nr::CHMOD);
    // mkdir(tmp) — touched (±)
    s.load_field(Rdi, F_TMPPTR);
    s.touch(Rdi);
    s.sys(nr::MKDIR);
    // upstream health check: connect(sock, upstream_sa, 16) — touched (±)
    s.sys(nr::SOCKET);
    s.a.mov_rr(Rdi, Rax);
    s.a.mov_rr(R9, Rax);
    s.load_field(Rsi, F_UPSTREAM);
    s.touch(Rsi);
    s.a.mov_ri(Rdx, 16);
    s.sys(nr::CONNECT);
    s.a.mov_rr(Rdi, R9);
    s.sys(nr::CLOSE);
    // write an access-log line: open(log, O_CREAT) + write(resp template, ±)
    s.load_field(Rdi, F_LOGPTR);
    s.touch(Rdi);
    s.a.mov_ri(Rsi, 0x40); // O_CREAT
    s.sys(nr::OPEN);
    s.a.mov_rr(R9, Rax);
    s.a.cmp_ri(R9, 0);
    let no_log = s.a.fresh();
    s.a.jcc(Cond::L, no_log);
    s.a.mov_rr(Rdi, R9);
    s.load_field(Rsi, F_RESPPTR);
    s.touch(Rsi);
    s.a.mov_ri(Rdx, 16);
    s.sys(nr::WRITE);
    s.a.mov_rr(Rdi, R9);
    s.sys(nr::CLOSE);
    s.a.bind(no_log);
    s.a.ret();

    // ---- connection teardown ---------------------------------------------------
    s.a.bind(close_conn);
    s.a.name("close_conn", close_conn);
    s.load_field(Rdi, F_EPFD);
    s.a.mov_ri(Rsi, 2); // EPOLL_CTL_DEL
    s.a.load(Rdx, M::base(R12));
    s.a.zero(R10);
    s.sys(nr::EPOLL_CTL);
    s.a.load(Rdi, M::base(R12));
    s.sys(nr::CLOSE);
    s.a.store_i(M::base_disp(R12, 8), 0);
    s.a.store_i(M::base(R12), 0);
    s.a.store_i(M::base_disp(R12, 24), 0);
    s.a.bind(next_event);
    s.a.add_ri(R14, 1);
    s.a.jmp(event_loop);

    // ---- data template -----------------------------------------------------------
    let mut d = DataTemplate::new();
    d.put_u64(F_EVPTR, EV_BUF);
    d.put_u64(F_RESPPTR, RESP_BUF);
    d.put_u64(F_PATHPTR, PATH_STR);
    d.put_u64(F_LOGPTR, LOG_STR);
    d.put_u64(F_LINKPTR, LINK_STR);
    d.put_u64(F_TMPPTR, TMP_STR);
    d.put_u64(F_FILEPTR, FILE_BUF);
    d.put_u64(F_UPSTREAM, UPSTREAM_SA);
    d.put(SOCKADDR, &sockaddr_in(PORT));
    d.put(UPSTREAM_SA, &sockaddr_in(9001));
    d.put(PATH_STR, b"/www/index.html\0");
    d.put(LOG_STR, b"/www/access.log\0");
    d.put(LINK_STR, b"/www/access.log.1\0");
    d.put(TMP_STR, b"/www/tmp\0");
    d.put(RESP_BUF, b"HTTP/1.1 200 OK\n\n");

    ServerTarget {
        name: "nginx",
        image: build_elf(s.a, d.build()),
        port: PORT,
        attacker_regions: vec![(DATA_BASE, super::common::DATA_SIZE)],
        exercise,
        boot_steps: 2_000_000,
    }
}

/// sockaddr_in with the port in network byte order.
fn sockaddr_in(port: u16) -> [u8; 16] {
    let mut sa = [0u8; 16];
    sa[0] = 2; // AF_INET
    sa[2..4].copy_from_slice(&port.to_be_bytes());
    sa
}

/// Drive one request/response cycle; true if the server answered.
fn exercise(p: &mut LinuxProc, hook: &mut dyn OsHook) -> bool {
    let Some(conn) = p.net.client_connect(PORT) else {
        return false;
    };
    p.run(500_000, hook);
    p.net.client_send(conn, b"GET /index.html\n\n");
    p.run(2_000_000, hook);
    let resp = p.net.client_recv(conn, 256);
    p.net.client_close(conn);
    p.run(200_000, hook);
    resp.starts_with(b"HTTP/1.1 200 OK")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_os::linux::RunExit;
    use cr_vm::NullHook;

    #[test]
    fn boots_and_serves() {
        let t = target();
        let mut p = t.boot(&mut NullHook);
        assert!(p.net.is_listening(PORT));
        assert!(
            (t.exercise)(&mut p, &mut NullHook),
            "nginx-sim must serve a request"
        );
        assert!(p.alive());
    }

    #[test]
    fn serves_multiple_parallel_connections() {
        let t = target();
        let mut p = t.boot(&mut NullHook);
        // Park a partial request on connection A.
        let a = p.net.client_connect(PORT).unwrap();
        p.run(500_000, &mut NullHook);
        p.net.client_send(a, b"GET /par");
        p.run(500_000, &mut NullHook);
        // Full request on connection B while A is parked.
        assert!((t.exercise)(&mut p, &mut NullHook));
        // Complete A.
        p.net.client_send(a, b"tial\n\n");
        p.run(2_000_000, &mut NullHook);
        let resp = p.net.client_recv(a, 256);
        assert!(
            resp.starts_with(b"HTTP/1.1 200 OK"),
            "parked connection completes"
        );
        assert!(p.alive());
    }

    #[test]
    fn corrupting_conn_buffer_pointer_is_crash_resistant() {
        // The §VI-C probe mechanics end to end: corrupt slot 0's buf_ptr,
        // send more data → recv returns EFAULT → connection closed
        // gracefully → server still serves others. Zero crashes.
        let t = target();
        let mut p = t.boot(&mut NullHook);
        let a = p.net.client_connect(PORT).unwrap();
        p.run(500_000, &mut NullHook);
        p.net.client_send(a, b"GET /par"); // partial → slot 0 allocated
        p.run(500_000, &mut NullHook);
        // Attacker write primitive: corrupt conn_table[0].buf_ptr.
        p.mem.write_u64(CONN_TABLE + 16, 0xdead_0000).unwrap();
        let efaults_before = p.efault_count;
        p.net.client_send(a, b"tial\n\n");
        match p.run(2_000_000, &mut NullHook) {
            RunExit::Idle => {}
            other => panic!("server must stay up, got {other:?}"),
        }
        assert!(p.alive(), "no crash");
        assert_eq!(
            p.efault_count,
            efaults_before + 1,
            "probe visible as EFAULT"
        );
        assert!(p.net.server_closed(a), "probed connection torn down");
        // Service continues for new connections.
        assert!((t.exercise)(&mut p, &mut NullHook));
    }

    #[test]
    fn corrupting_touched_pointer_crashes() {
        // The ± behaviour: the file path pointer is dereferenced in user
        // mode before open() — corruption crashes the process.
        let t = target();
        let mut p = t.boot(&mut NullHook);
        p.mem.write_u64(F_PATHPTR, 0xdead_0000).unwrap();
        let conn = p.net.client_connect(PORT).unwrap();
        p.run(500_000, &mut NullHook);
        p.net.client_send(conn, b"GET /x\n\n");
        match p.run(2_000_000, &mut NullHook) {
            RunExit::Crashed(c) => assert_eq!(c.fault.unwrap().addr, 0xdead_0000),
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn maintenance_exercises_table1_rows() {
        // The first served request triggers unlink/symlink/chmod/mkdir/
        // connect/write — they must all be observed during a test run.
        use cr_os::OsHook;
        #[derive(Default)]
        struct SysLog(Vec<u64>);
        impl cr_vm::Hook for SysLog {}
        impl OsHook for SysLog {
            fn on_syscall_ret(&mut self, _t: u32, nr_: u64, _r: i64) {
                self.0.push(nr_);
            }
        }
        let t = target();
        let mut log = SysLog::default();
        let mut p = t.boot(&mut log);
        assert!((t.exercise)(&mut p, &mut log));
        for expected in [
            nr::UNLINK,
            nr::SYMLINK,
            nr::CHMOD,
            nr::MKDIR,
            nr::CONNECT,
            nr::WRITE,
            nr::OPEN,
            nr::READ,
            nr::RECVFROM,
            nr::SENDTO,
            nr::EPOLL_WAIT,
        ] {
            assert!(
                log.0.contains(&expected),
                "syscall {} must appear in the test run",
                cr_os::linux::syscall::name(expected)
            );
        }
    }
}
