//! `lighttpd-sim` — a sequential accept/read/respond HTTP server modeled
//! on Lighttpd 1.4.
//!
//! The usable (⊕) primitive is `read`: the request-buffer pointer lives
//! in writable memory, flows only into the syscall, and any error closes
//! the connection and returns to the accept loop. The response path
//! touches its pointers in user mode (±).

use super::common::{build_elf, DataTemplate, ServerTarget, SrvAsm, DATA_BASE};
use cr_isa::{Cond, Mem as M, Reg};
use cr_os::linux::syscall::nr;
use cr_os::linux::LinuxProc;
use cr_os::OsHook;
use Reg::*;

/// Listening port.
pub const PORT: u16 = 8081;

const F_LISTEN: u64 = DATA_BASE;
const F_EPFD: u64 = DATA_BASE + 0x08;
const F_EVPTR: u64 = DATA_BASE + 0x10;
const F_RESPPTR: u64 = DATA_BASE + 0x18;
const F_PATHPTR: u64 = DATA_BASE + 0x20;
const F_FILEPTR: u64 = DATA_BASE + 0x28;
const F_TMPPTR: u64 = DATA_BASE + 0x30;
/// The request-buffer pointer field — the ⊕ `read` primitive's source.
pub const F_BUFPTR: u64 = DATA_BASE + 0x38;
const SOCKADDR: u64 = DATA_BASE + 0x70;
const EV_BUF: u64 = DATA_BASE + 0x300;
const PATH_STR: u64 = DATA_BASE + 0x440;
const TMP_STR: u64 = DATA_BASE + 0x480;
const RESP_BUF: u64 = DATA_BASE + 0x600;
const FILE_BUF: u64 = DATA_BASE + 0x700;
const REQ_BUF: u64 = DATA_BASE + 0x1000;

const RESP_LEN: u64 = 17;

/// Build the lighttpd-sim target.
pub fn target() -> ServerTarget {
    let mut s = SrvAsm::new();
    s.a.global("entry");

    // startup
    s.sys(nr::SOCKET);
    s.store_field(F_LISTEN, Rax);
    s.a.mov_rr(Rdi, Rax);
    s.a.mov_ri(Rsi, SOCKADDR);
    s.a.mov_ri(Rdx, 16);
    s.sys(nr::BIND);
    s.load_field(Rdi, F_LISTEN);
    s.a.mov_ri(Rsi, 16);
    s.sys(nr::LISTEN);
    s.sys(nr::EPOLL_CREATE1);
    s.store_field(F_EPFD, Rax);

    // accept loop
    let accept_loop = s.a.here();
    s.a.name("accept_loop", accept_loop);
    s.load_field(Rdi, F_LISTEN);
    s.a.zero(Rsi);
    s.a.zero(Rdx);
    s.sys(nr::ACCEPT);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::L, accept_loop);
    s.a.mov_rr(R13, Rax); // connection fd

    // read loop: accumulate until "\n\n"
    s.a.zero(R14); // used
    let read_loop = s.a.here();
    let conn_done = s.a.fresh();
    // *** ⊕ primitive: read(fd, buf_ptr + used, 64) — pointer from
    // *** writable memory, untouched in user mode; error → clean close.
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_BUFPTR);
    s.a.add_rr(Rsi, R14);
    s.a.mov_ri(Rdx, 64);
    s.sys(nr::READ);
    s.a.cmp_ri(Rax, 0);
    s.a.jcc(Cond::Le, conn_done); // EFAULT / EOF → close, keep serving
    s.a.add_rr(R14, Rax);
    // complete? buf[used-2..] == "\n\n" (derefs only after success)
    s.load_field(Rsi, F_BUFPTR);
    s.a.cmp_ri(R14, 2);
    s.a.jcc(Cond::L, read_loop);
    s.a.lea(R10, M::base_index(Rsi, R14, 1, -2));
    s.a.load_u8(R11, M::base(R10));
    s.a.cmp_ri(R11, 10);
    s.a.jcc(Cond::Ne, read_loop);
    s.a.load_u8(R11, M::base_disp(R10, 1));
    s.a.cmp_ri(R11, 10);
    s.a.jcc(Cond::Ne, read_loop);

    // idle-source poll: epoll_wait with a touched events pointer (±).
    s.load_field(Rdi, F_EPFD);
    s.load_field(Rsi, F_EVPTR);
    s.touch(Rsi);
    s.a.mov_ri(Rdx, 4);
    s.a.zero(R10);
    s.sys(nr::EPOLL_WAIT);

    // respond: open(path ±) / read(file ±) / write(resp ±) / body
    s.load_field(Rdi, F_PATHPTR);
    s.touch(Rdi);
    s.a.zero(Rsi);
    s.sys(nr::OPEN);
    s.a.mov_rr(R9, Rax);
    s.a.cmp_ri(R9, 0);
    s.a.jcc(Cond::L, conn_done);
    s.a.mov_rr(Rdi, R9);
    s.load_field(Rsi, F_FILEPTR);
    s.touch(Rsi);
    s.a.mov_ri(Rdx, 128);
    s.sys(nr::READ);
    s.a.mov_rr(R15, Rax);
    s.a.mov_rr(Rdi, R9);
    s.sys(nr::CLOSE);
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_RESPPTR);
    s.touch_write(Rsi, b'H' as i32);
    s.a.mov_ri(Rdx, RESP_LEN);
    s.sys(nr::WRITE);
    s.a.cmp_ri(R15, 0);
    let no_body = s.a.fresh();
    s.a.jcc(Cond::Le, no_body);
    s.a.mov_rr(Rdi, R13);
    s.load_field(Rsi, F_FILEPTR);
    s.a.mov_rr(Rdx, R15);
    s.sys(nr::WRITE);
    s.a.bind(no_body);
    // per-request temp-file hygiene: unlink(tmp ±), symlink(tmp ±).
    s.load_field(Rdi, F_TMPPTR);
    s.touch(Rdi);
    s.sys(nr::UNLINK);
    s.load_field(Rdi, F_PATHPTR);
    s.touch(Rdi);
    s.load_field(Rsi, F_TMPPTR);
    s.touch(Rsi);
    s.sys(nr::SYMLINK);

    s.a.bind(conn_done);
    s.a.mov_rr(Rdi, R13);
    s.sys(nr::CLOSE);
    s.a.jmp(accept_loop);

    let mut d = DataTemplate::new();
    d.put_u64(F_EVPTR, EV_BUF);
    d.put_u64(F_RESPPTR, RESP_BUF);
    d.put_u64(F_PATHPTR, PATH_STR);
    d.put_u64(F_FILEPTR, FILE_BUF);
    d.put_u64(F_TMPPTR, TMP_STR);
    d.put_u64(F_BUFPTR, REQ_BUF);
    d.put(SOCKADDR, &sockaddr_in(PORT));
    d.put(PATH_STR, b"/www/index.html\0");
    d.put(TMP_STR, b"/www/upload.tmp\0");
    d.put(RESP_BUF, b"HTTP/1.1 200 OK\n\n");

    ServerTarget {
        name: "lighttpd",
        image: build_elf(s.a, d.build()),
        port: PORT,
        attacker_regions: vec![(DATA_BASE, super::common::DATA_SIZE)],
        exercise,
        boot_steps: 2_000_000,
    }
}

fn sockaddr_in(port: u16) -> [u8; 16] {
    let mut sa = [0u8; 16];
    sa[0] = 2;
    sa[2..4].copy_from_slice(&port.to_be_bytes());
    sa
}

fn exercise(p: &mut LinuxProc, hook: &mut dyn OsHook) -> bool {
    let Some(conn) = p.net.client_connect(PORT) else {
        return false;
    };
    p.run(500_000, hook);
    p.net.client_send(conn, b"GET /index.html\n\n");
    p.run(2_000_000, hook);
    let resp = p.net.client_recv(conn, 256);
    p.net.client_close(conn);
    p.run(200_000, hook);
    resp.starts_with(b"HTTP/1.1 200 OK")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_os::linux::RunExit;
    use cr_vm::NullHook;

    #[test]
    fn boots_and_serves_sequentially() {
        let t = target();
        let mut p = t.boot(&mut NullHook);
        assert!((t.exercise)(&mut p, &mut NullHook));
        assert!((t.exercise)(&mut p, &mut NullHook), "second connection too");
        assert!(p.alive());
    }

    #[test]
    fn corrupted_read_buffer_is_crash_resistant() {
        let t = target();
        let mut p = t.boot(&mut NullHook);
        p.mem.write_u64(F_BUFPTR, 0xdead_0000).unwrap();
        let conn = p.net.client_connect(PORT).unwrap();
        p.run(500_000, &mut NullHook);
        p.net.client_send(conn, b"GET /\n\n");
        let exit = p.run(2_000_000, &mut NullHook);
        assert!(matches!(exit, RunExit::Idle), "server survives: {exit:?}");
        assert!(p.alive());
        assert!(p.efault_count >= 1);
        assert!(p.net.server_closed(conn));
        // Restore the pointer: service resumes (probe → restore → repeat).
        p.mem.write_u64(F_BUFPTR, REQ_BUF).unwrap();
        assert!((t.exercise)(&mut p, &mut NullHook));
    }

    #[test]
    fn corrupted_path_pointer_crashes() {
        let t = target();
        let mut p = t.boot(&mut NullHook);
        p.mem.write_u64(F_PATHPTR, 0xdead_0000).unwrap();
        let conn = p.net.client_connect(PORT).unwrap();
        p.run(500_000, &mut NullHook);
        p.net.client_send(conn, b"GET /\n\n");
        assert!(matches!(
            p.run(2_000_000, &mut NullHook),
            RunExit::Crashed(_)
        ));
    }
}
