//! # cr-targets — synthetic analysis targets
//!
//! The binaries the discovery framework analyzes, built from scratch with
//! `cr-isa`/`cr-image`:
//!
//! * [`servers`] — the five Linux servers of Table I (nginx, cherokee,
//!   lighttpd, memcached, postgresql), each an ELF executable with the
//!   crash-resistance idioms of the originals (see DESIGN.md).
//! * [`browsers`] — Windows-side material for Tables II/III and §V-B:
//!   system DLL images with calibrated SEH populations, plus Internet
//!   Explorer- and Firefox-like host applications.
//!
//! The pipeline consumes only the *binary* artifacts (ELF/PE bytes and
//! runtime behaviour); nothing here hands ground truth to the analyses.

pub mod browsers;
pub mod servers;

pub use servers::{all as all_servers, ServerTarget};
