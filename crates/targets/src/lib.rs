//! # cr-targets — synthetic analysis targets
//!
//! The binaries the discovery framework analyzes, built from scratch with
//! `cr-isa`/`cr-image`:
//!
//! * [`servers`] — the five Linux servers of Table I (nginx, cherokee,
//!   lighttpd, memcached, postgresql), each an ELF executable with the
//!   crash-resistance idioms of the originals (see DESIGN.md).
//! * [`browsers`] — Windows-side material for Tables II/III and §V-B:
//!   system DLL images with calibrated SEH populations, plus Internet
//!   Explorer- and Firefox-like host applications.
//!
//! The pipeline consumes only the *binary* artifacts (ELF/PE bytes and
//! runtime behaviour); nothing here hands ground truth to the analyses.

pub mod browsers;
pub mod corpus;
pub mod servers;

pub use servers::{all as all_servers, ServerTarget};

/// Symbol names marking a serving/accept loop across the calibrated
/// corpus. The five Table-I servers label their request loops with one
/// of these (`accept_loop` for nginx-style sequential accept loops,
/// `main_loop`/`worker` for the event- and worker-pool shapes), and
/// the traceless scanner uses them as SysPart-style temporal roots:
/// sites reachable from a matching symbol are serving-phase, sites
/// reachable from the entry point without crossing one are init-phase.
pub const SERVING_LOOP_SYMBOLS: &[&str] = &["accept_loop", "main_loop", "worker"];
