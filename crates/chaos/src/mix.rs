//! Deterministic mixing primitives.
//!
//! Everything in this crate derives decisions from these two
//! functions; there is no global RNG state, so decisions are
//! reproducible regardless of thread interleaving.

/// SplitMix64 finalizer: a high-quality 64-bit bit mixer.
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a string (site names, labels).
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Fold a sequence of values into one well-mixed 64-bit seed.
///
/// Used for per-attempt task seeds and fault decisions: each part is
/// mixed in separately so `derive_seed(&[a, b])` and
/// `derive_seed(&[b, a])` differ.
pub fn derive_seed(parts: &[u64]) -> u64 {
    let mut h = 0x005E_ED0F_CA05_u64;
    for &p in parts {
        h = mix64(h ^ mix64(p));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_is_stable_and_sensitive() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(derive_seed(&[1, 2]), derive_seed(&[2, 1]));
        assert_ne!(hash_str("task.stall"), hash_str("task.panic"));
    }

    #[test]
    fn draws_are_roughly_uniform() {
        // Sanity: per-mille thresholding over mixed keys lands near the
        // requested probability.
        let hits = (0..10_000)
            .filter(|&k| mix64(derive_seed(&[42, k])) % 1000 < 300)
            .count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
