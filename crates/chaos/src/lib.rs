//! # cr-chaos — deterministic fault injection for the campaign pipeline
//!
//! The paper studies code that survives hostile memory probes without
//! crashing; this crate holds the *pipeline itself* to that standard.
//! It provides a seedable, fully deterministic fault-injection layer
//! that the campaign engine threads through its hot paths: worker
//! panics, task stalls (virtual-time delays), solver budget
//! exhaustion, byte corruption of module images before parsing, and
//! corrupt/torn JSONL cache records.
//!
//! ## Determinism contract
//!
//! Whether a fault fires depends **only** on
//! `(plan.seed, site, fault-position-in-plan, scope key, attempt)` —
//! never on wall-clock time, thread scheduling, or global counters.
//! The scope key is stable by construction (the task's spec index, or
//! a cache record's position in the sorted save order), so two runs of
//! the same spec under the same plan inject the *exact same* faults at
//! any `--jobs` count, and expected fault accounting can be computed
//! up front with [`FaultInjector::would_fire`].
//!
//! A triggered site keeps firing for the first `max_triggers` attempts
//! of an afflicted scope and then stops, so a task retried at least
//! `max_triggers` times always recovers from injected faults.
//!
//! # Examples
//!
//! ```
//! use cr_chaos::{FaultInjector, FaultPlan, Site};
//!
//! let plan = FaultPlan::builtin("panics").unwrap();
//! let inj = FaultInjector::new(plan);
//! // Deterministic: the same (site, key, attempt) always decides the same.
//! let a = inj.would_fire(Site::WorkerPanic, 3, 0).is_some();
//! let b = inj.would_fire(Site::WorkerPanic, 3, 0).is_some();
//! assert_eq!(a, b);
//! // Attempts past max_triggers never fire: retries recover.
//! assert!(inj.would_fire(Site::WorkerPanic, 3, 9).is_none());
//! // Built-in "mayhem" arms every campaign-pipeline site; the serve
//! // layer's sites belong to the "wire" plan.
//! let mayhem = FaultPlan::builtin("mayhem").unwrap();
//! assert!(Site::CAMPAIGN.iter().all(|&s| mayhem.arms(s)));
//! let wire = FaultPlan::builtin("wire").unwrap();
//! assert!(Site::SERVE.iter().all(|&s| wire.arms(s)));
//! ```

mod inject;
mod mix;
mod plan;

pub use inject::FaultInjector;
pub use mix::{derive_seed, hash_str, mix64};
pub use plan::{FaultKind, FaultPlan, Site, SiteFault, BUILTIN_PLANS};
