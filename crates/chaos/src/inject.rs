//! The injector: deterministic fault decisions plus byte mutators.

use crate::mix::{derive_seed, hash_str, mix64};
use crate::plan::{FaultKind, FaultPlan, Site};
use std::sync::atomic::{AtomicU64, Ordering};

/// Decides, deterministically, which faults fire where, and carries
/// the per-site fired counters for reporting.
///
/// Scope keys are caller-chosen stable identifiers: the campaign
/// engine uses the task's spec index, the cache uses a record's
/// position in the sorted save order. Identical `(site, key, attempt)`
/// queries always agree, so [`FaultInjector::would_fire`] can predict
/// the full injection schedule without side effects.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    fired: [AtomicU64; Site::ALL.len()],
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            fired: Default::default(),
        }
    }

    /// An injector that never fires (the empty plan).
    pub fn disarmed() -> FaultInjector {
        FaultInjector::new(FaultPlan::none())
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Pure decision: the fault (if any) that fires at `site` for
    /// scope `key` on `attempt`. No counters are touched.
    pub fn would_fire(&self, site: Site, key: u64, attempt: u32) -> Option<FaultKind> {
        let site_tag = hash_str(site.name());
        self.plan
            .faults
            .iter()
            .enumerate()
            .filter(|(_, f)| f.site == site)
            .find(|(fi, f)| {
                attempt < f.max_triggers
                    && mix64(derive_seed(&[self.plan.seed, site_tag, *fi as u64, key])) % 1000
                        < f.per_mille as u64
            })
            .map(|(_, f)| f.kind)
    }

    /// [`FaultInjector::would_fire`], recording the firing in the
    /// per-site counters and emitting a `fault` trace event. Call this
    /// from real injection points only.
    pub fn fires(&self, site: Site, key: u64, attempt: u32) -> Option<FaultKind> {
        let hit = self.would_fire(site, key, attempt);
        if let Some(kind) = hit {
            self.fired[site_index(site)].fetch_add(1, Ordering::Relaxed);
            cr_trace::emit(cr_trace::Stage::Fault, site.name(), || {
                format!("kind={} key={key} attempt={attempt}", kind.name())
            });
        }
        hit
    }

    /// How many times `site` actually fired so far.
    pub fn fired_count(&self, site: Site) -> u64 {
        self.fired[site_index(site)].load(Ordering::Relaxed)
    }

    /// Total firings across all sites.
    pub fn fired_total(&self) -> u64 {
        Site::ALL.iter().map(|&s| self.fired_count(s)).sum()
    }

    /// Apply a byte-stream fault ([`FaultKind::BitFlip`] /
    /// [`FaultKind::Truncate`]) to `bytes`, seeded by `key` so the
    /// mutation is reproducible. Other kinds are no-ops.
    pub fn mutate_bytes(&self, kind: FaultKind, key: u64, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        match kind {
            FaultKind::BitFlip { flips } => {
                for i in 0..flips {
                    let d = mix64(derive_seed(&[self.plan.seed, key, i as u64]));
                    let pos = (d as usize) % bytes.len();
                    bytes[pos] ^= 1 << ((d >> 48) % 8);
                }
            }
            FaultKind::Truncate { keep_per_mille } => {
                let keep = (bytes.len() as u64 * keep_per_mille.min(1000) as u64 / 1000) as usize;
                bytes.truncate(keep);
            }
            _ => {}
        }
    }

    /// Apply a record fault ([`FaultKind::CorruptRecord`] /
    /// [`FaultKind::TornRecord`]) to one serialized line. The result
    /// stays valid UTF-8; other kinds are no-ops.
    pub fn corrupt_record(&self, kind: FaultKind, key: u64, line: &mut String) {
        if line.is_empty() {
            return;
        }
        match kind {
            FaultKind::CorruptRecord => {
                let mut b = std::mem::take(line).into_bytes();
                let d = mix64(derive_seed(&[self.plan.seed, key]));
                let mut pos = (d as usize) % b.len();
                // Land on an ASCII byte so the line stays valid UTF-8.
                while b[pos] >= 0x80 {
                    pos = (pos + 1) % b.len();
                }
                b[pos] = if b[pos] == b'#' { b'@' } else { b'#' };
                *line = String::from_utf8(b).expect("ASCII-only mutation");
            }
            FaultKind::TornRecord => {
                let mut cut = line.len() / 2;
                while cut > 0 && !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                line.truncate(cut);
            }
            _ => {}
        }
    }
}

fn site_index(site: Site) -> usize {
    Site::ALL
        .iter()
        .position(|&s| s == site)
        .expect("known site")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SiteFault;

    fn one_site_plan(site: Site, kind: FaultKind, per_mille: u16, max_triggers: u32) -> FaultPlan {
        FaultPlan {
            name: "test".into(),
            seed: 7,
            faults: vec![SiteFault {
                site,
                kind,
                per_mille,
                max_triggers,
            }],
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(one_site_plan(Site::WorkerPanic, FaultKind::Panic, 500, 1));
        let b = FaultInjector::new(one_site_plan(Site::WorkerPanic, FaultKind::Panic, 500, 1));
        let c = FaultInjector::new(
            one_site_plan(Site::WorkerPanic, FaultKind::Panic, 500, 1).with_seed(8),
        );
        let pattern = |inj: &FaultInjector| {
            (0..64)
                .map(|k| inj.would_fire(Site::WorkerPanic, k, 0).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(pattern(&a), pattern(&b));
        assert_ne!(pattern(&a), pattern(&c), "seed must matter");
        assert!(pattern(&a).iter().any(|&f| f), "p=0.5 over 64 keys fires");
        assert!(!pattern(&a).iter().all(|&f| f), "p=0.5 over 64 keys skips");
    }

    #[test]
    fn max_triggers_bounds_attempts_not_keys() {
        let inj = FaultInjector::new(one_site_plan(Site::TaskStall, FaultKind::Panic, 1000, 2));
        assert!(inj.would_fire(Site::TaskStall, 5, 0).is_some());
        assert!(inj.would_fire(Site::TaskStall, 5, 1).is_some());
        assert!(inj.would_fire(Site::TaskStall, 5, 2).is_none());
        assert!(inj.would_fire(Site::TaskStall, 6, 0).is_some());
    }

    #[test]
    fn fires_counts_but_would_fire_does_not() {
        let inj = FaultInjector::new(one_site_plan(Site::ImageBytes, FaultKind::Panic, 1000, 1));
        inj.would_fire(Site::ImageBytes, 0, 0);
        assert_eq!(inj.fired_count(Site::ImageBytes), 0);
        inj.fires(Site::ImageBytes, 0, 0);
        inj.fires(Site::ImageBytes, 1, 0);
        assert_eq!(inj.fired_count(Site::ImageBytes), 2);
        assert_eq!(inj.fired_total(), 2);
    }

    #[test]
    fn disarmed_never_fires() {
        let inj = FaultInjector::disarmed();
        for site in Site::ALL {
            assert!(inj.would_fire(site, 0, 0).is_none());
        }
    }

    #[test]
    fn bit_flips_are_reproducible() {
        let inj = FaultInjector::new(FaultPlan::none().with_seed(3));
        let orig = vec![0u8; 256];
        let mut a = orig.clone();
        let mut b = orig.clone();
        inj.mutate_bytes(FaultKind::BitFlip { flips: 8 }, 9, &mut a);
        inj.mutate_bytes(FaultKind::BitFlip { flips: 8 }, 9, &mut b);
        assert_eq!(a, b);
        assert_ne!(a, orig);
        let mut c = orig.clone();
        inj.mutate_bytes(FaultKind::BitFlip { flips: 8 }, 10, &mut c);
        assert_ne!(a, c, "different keys flip different bits");
    }

    #[test]
    fn truncate_keeps_fraction() {
        let inj = FaultInjector::disarmed();
        let mut v = vec![1u8; 1000];
        inj.mutate_bytes(
            FaultKind::Truncate {
                keep_per_mille: 400,
            },
            0,
            &mut v,
        );
        assert_eq!(v.len(), 400);
    }

    #[test]
    fn record_corruption_changes_line_but_keeps_utf8() {
        let inj = FaultInjector::disarmed();
        let orig = r#"{"kind":"module","key":"abc","n":1}"#.to_string();
        let mut line = orig.clone();
        inj.corrupt_record(FaultKind::CorruptRecord, 4, &mut line);
        assert_ne!(line, orig);
        assert_eq!(line.len(), orig.len());

        let mut torn = orig.clone();
        inj.corrupt_record(FaultKind::TornRecord, 4, &mut torn);
        assert!(torn.len() < orig.len());
        assert!(orig.starts_with(&torn));
    }
}
