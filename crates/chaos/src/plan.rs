//! Fault plans — what to inject, where, and how often.

/// A named injection point in the campaign pipeline or the serving
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize)]
pub enum Site {
    /// Inside a worker, at the top of a task attempt: the task panics.
    WorkerPanic,
    /// At the start of a task attempt: the task stalls for a
    /// virtual-time delay (tripping the per-task deadline when one is
    /// configured).
    TaskStall,
    /// Before symbolic filter vetting: the solver step budget is
    /// forced down so paths abort with budget exhaustion.
    SolverBudget,
    /// Between image generation and parsing: the raw image bytes are
    /// corrupted (bit flips or truncation).
    ImageBytes,
    /// During cache persistence: a serialized JSONL record is
    /// corrupted or torn.
    CacheRecord,
    /// Right after `accept()` in the serve layer: the connection is
    /// dropped before any frame is exchanged.
    ServeConnDrop,
    /// While the server writes a response frame: only a prefix of the
    /// encoded frame reaches the wire before the connection dies.
    ServeFrame,
    /// While the server writes a response frame: the write stalls
    /// mid-frame (a slow-loris peer, seen from the other side).
    ServeStall,
    /// In the fleet router, right after a worker received a request:
    /// the worker is killed abruptly (no drain, no cache persist) —
    /// the node-crash the failover machinery exists for.
    FleetNodeKill,
    /// In the fleet router, before dispatching to a worker: the route
    /// to that worker is severed for this attempt, as if the network
    /// partitioned; retries of the same admission heal.
    FleetPartition,
    /// In the fleet supervisor's heartbeat loop: a healthy worker's
    /// Pong is discarded, driving the miss counter toward a spurious
    /// death verdict.
    FleetHeartbeatDrop,
    /// In an arena probing strategy: one memory probe is swallowed
    /// before it touches the oracle (the strategy sees "unmapped" and
    /// moves on, degrading its sweep deterministically).
    ArenaProbeDrop,
}

impl Site {
    /// Every site, in a stable order.
    pub const ALL: [Site; 12] = [
        Site::WorkerPanic,
        Site::TaskStall,
        Site::SolverBudget,
        Site::ImageBytes,
        Site::CacheRecord,
        Site::ServeConnDrop,
        Site::ServeFrame,
        Site::ServeStall,
        Site::FleetNodeKill,
        Site::FleetPartition,
        Site::FleetHeartbeatDrop,
        Site::ArenaProbeDrop,
    ];

    /// The campaign-pipeline subset (what the `mayhem` plan arms; the
    /// `serve.*` sites belong to the `wire` plan).
    pub const CAMPAIGN: [Site; 5] = [
        Site::WorkerPanic,
        Site::TaskStall,
        Site::SolverBudget,
        Site::ImageBytes,
        Site::CacheRecord,
    ];

    /// The serving-layer subset (what the `wire` plan arms).
    pub const SERVE: [Site; 3] = [Site::ServeConnDrop, Site::ServeFrame, Site::ServeStall];

    /// The fleet-layer subset (what the `fleet` plan arms).
    pub const FLEET: [Site; 3] = [
        Site::FleetNodeKill,
        Site::FleetPartition,
        Site::FleetHeartbeatDrop,
    ];

    /// The arena subset (what the `arena` plan arms).
    pub const ARENA: [Site; 1] = [Site::ArenaProbeDrop];

    /// Stable machine-readable name (used in fault decisions, so
    /// renaming a site changes every seeded plan).
    pub fn name(self) -> &'static str {
        match self {
            Site::WorkerPanic => "worker.panic",
            Site::TaskStall => "task.stall",
            Site::SolverBudget => "solver.budget",
            Site::ImageBytes => "image.bytes",
            Site::CacheRecord => "cache.record",
            Site::ServeConnDrop => "serve.conn",
            Site::ServeFrame => "serve.frame",
            Site::ServeStall => "serve.loris",
            Site::FleetNodeKill => "fleet.node.kill",
            Site::FleetPartition => "fleet.partition",
            Site::FleetHeartbeatDrop => "fleet.heartbeat.drop",
            Site::ArenaProbeDrop => "arena.probe.drop",
        }
    }

    /// Parse a site from its [`Site::name`] form.
    pub fn parse(s: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|site| site.name() == s)
    }
}

/// What happens when a site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum FaultKind {
    /// Panic with a deterministic message.
    Panic,
    /// Stall the task for this much *virtual* time. No real sleeping
    /// happens; the delay is charged against the per-task deadline.
    Stall {
        /// Virtual milliseconds charged to the task clock.
        virtual_ms: u64,
    },
    /// Clamp the symbolic executor's per-path step budget.
    SolverBudget {
        /// The forced budget (paths abort once they exceed it).
        max_steps: usize,
    },
    /// Flip this many seeded bit positions in the byte stream.
    BitFlip {
        /// Number of single-bit flips.
        flips: u32,
    },
    /// Truncate the byte stream, keeping this fraction (per mille).
    Truncate {
        /// Kept length in 1/1000ths of the original.
        keep_per_mille: u16,
    },
    /// Overwrite bytes inside one serialized record (CRC mismatch).
    CorruptRecord,
    /// Cut one serialized record short mid-line (torn write).
    TornRecord,
    /// Sever a connection outright (the serve layer closes the socket).
    Disconnect,
}

impl FaultKind {
    /// Stable machine-readable name of the fault kind (payload fields
    /// are not included; trace events carry them in the detail string).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall { .. } => "stall",
            FaultKind::SolverBudget { .. } => "solver_budget",
            FaultKind::BitFlip { .. } => "bit_flip",
            FaultKind::Truncate { .. } => "truncate",
            FaultKind::CorruptRecord => "corrupt_record",
            FaultKind::TornRecord => "torn_record",
            FaultKind::Disconnect => "disconnect",
        }
    }
}

/// One armed fault: a site, what to inject, and how often.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct SiteFault {
    /// Where to inject.
    pub site: Site,
    /// What to inject.
    pub kind: FaultKind,
    /// Firing probability per scope key, in 1/1000ths (0..=1000).
    pub per_mille: u16,
    /// An afflicted scope fires on attempts `0..max_triggers` and then
    /// recovers, so `retries >= max_triggers` guarantees recovery.
    pub max_triggers: u32,
}

/// A complete, seedable fault plan.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct FaultPlan {
    /// Plan name (report header, `--plan NAME`).
    pub name: String,
    /// Seed for all fault decisions and byte mutations.
    pub seed: u64,
    /// The armed faults. Several faults may share a site; the first
    /// one whose draw passes wins for a given scope key.
    pub faults: Vec<SiteFault>,
}

/// Names of the built-in plans, in presentation order. `mayhem` arms
/// every campaign-pipeline site; `wire` arms every serving-layer
/// site; `fleet` arms every fleet-layer site.
pub const BUILTIN_PLANS: [&str; 10] = [
    "none", "panics", "stalls", "solver", "image", "cache", "wire", "mayhem", "fleet", "arena",
];

impl FaultPlan {
    /// The empty plan: no site ever fires.
    pub fn none() -> FaultPlan {
        FaultPlan {
            name: "none".into(),
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// Look up a built-in plan by name (see [`BUILTIN_PLANS`]).
    ///
    /// Every built-in plan uses `max_triggers: 1`, so campaigns with at
    /// least one retry fully recover from what it injects.
    pub fn builtin(name: &str) -> Option<FaultPlan> {
        let fault = |site, kind, per_mille| SiteFault {
            site,
            kind,
            per_mille,
            max_triggers: 1,
        };
        let faults: Vec<SiteFault> = match name {
            "none" => Vec::new(),
            "panics" => vec![fault(Site::WorkerPanic, FaultKind::Panic, 500)],
            "stalls" => vec![fault(
                Site::TaskStall,
                FaultKind::Stall { virtual_ms: 250 },
                600,
            )],
            "solver" => vec![fault(
                Site::SolverBudget,
                FaultKind::SolverBudget { max_steps: 4 },
                500,
            )],
            "image" => vec![
                fault(Site::ImageBytes, FaultKind::BitFlip { flips: 16 }, 350),
                fault(
                    Site::ImageBytes,
                    FaultKind::Truncate {
                        keep_per_mille: 400,
                    },
                    350,
                ),
            ],
            "cache" => vec![
                fault(Site::CacheRecord, FaultKind::CorruptRecord, 250),
                fault(Site::CacheRecord, FaultKind::TornRecord, 150),
            ],
            // Per-frame rates compound: a response is ~6 frames, so
            // 100‰ per frame already kills nearly half the
            // connections. Keep the rates low enough that a majority
            // of requests complete and the storm stays a storm, not a
            // blackout.
            "wire" => vec![
                fault(Site::ServeConnDrop, FaultKind::Disconnect, 150),
                fault(
                    Site::ServeFrame,
                    FaultKind::Truncate {
                        keep_per_mille: 500,
                    },
                    60,
                ),
                fault(Site::ServeStall, FaultKind::Stall { virtual_ms: 40 }, 100),
            ],
            "mayhem" => {
                let mut all = Vec::new();
                for n in ["panics", "stalls", "solver", "image", "cache"] {
                    all.extend(FaultPlan::builtin(n).expect("builtin").faults);
                }
                all
            }
            // Fleet rates are per admission (kill, partition) or per
            // heartbeat (drop): high enough that a short invariant run
            // sees each failure mode, low enough that the healthy
            // majority keeps the fleet answering. Partition heals on
            // the admission's next attempt (max_triggers 1); heartbeat
            // drops stay below the default miss threshold so they
            // exercise suspicion accounting, not spurious restarts.
            "fleet" => vec![
                fault(Site::FleetNodeKill, FaultKind::Panic, 250),
                fault(Site::FleetPartition, FaultKind::Disconnect, 200),
                fault(Site::FleetHeartbeatDrop, FaultKind::Disconnect, 120),
            ],
            // Per-probe rate: high enough that a sweep of a few hundred
            // probes visibly degrades, low enough that strategies still
            // locate the secret in most rounds.
            "arena" => vec![fault(Site::ArenaProbeDrop, FaultKind::Disconnect, 100)],
            _ => return None,
        };
        Some(FaultPlan {
            name: name.into(),
            seed: 2017,
            faults,
        })
    }

    /// This plan with a different seed.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// This plan with every fault at `site` removed (e.g. to rerun a
    /// campaign warm without re-corrupting the cache it just healed).
    pub fn without_site(mut self, site: Site) -> FaultPlan {
        self.faults.retain(|f| f.site != site);
        self
    }

    /// Whether any fault is armed at `site`.
    pub fn arms(&self, site: Site) -> bool {
        self.faults.iter().any(|f| f.site == site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_all_resolve() {
        for name in BUILTIN_PLANS {
            let plan = FaultPlan::builtin(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(plan.name, name);
            assert!(plan.faults.iter().all(|f| f.max_triggers == 1));
            assert!(plan.faults.iter().all(|f| f.per_mille <= 1000));
        }
        assert!(FaultPlan::builtin("bogus").is_none());
    }

    #[test]
    fn mayhem_covers_every_campaign_site() {
        let plan = FaultPlan::builtin("mayhem").unwrap();
        for site in Site::CAMPAIGN {
            assert!(plan.arms(site), "mayhem misses {}", site.name());
        }
        for site in Site::SERVE {
            assert!(
                !plan.arms(site),
                "mayhem must stay campaign-scoped, arms {}",
                site.name()
            );
        }
    }

    #[test]
    fn wire_covers_every_serve_site() {
        let plan = FaultPlan::builtin("wire").unwrap();
        for site in Site::SERVE {
            assert!(plan.arms(site), "wire misses {}", site.name());
        }
        for site in Site::CAMPAIGN {
            assert!(
                !plan.arms(site),
                "wire must stay serve-scoped, arms {}",
                site.name()
            );
        }
    }

    #[test]
    fn site_subsets_partition_all() {
        let mut combined: Vec<Site> = Site::CAMPAIGN.to_vec();
        combined.extend(Site::SERVE);
        combined.extend(Site::FLEET);
        combined.extend(Site::ARENA);
        assert_eq!(combined, Site::ALL.to_vec());
    }

    #[test]
    fn fleet_covers_every_fleet_site_and_nothing_else() {
        let plan = FaultPlan::builtin("fleet").unwrap();
        for site in Site::FLEET {
            assert!(plan.arms(site), "fleet misses {}", site.name());
        }
        for site in Site::CAMPAIGN.into_iter().chain(Site::SERVE) {
            assert!(
                !plan.arms(site),
                "fleet must stay fleet-scoped, arms {}",
                site.name()
            );
        }
    }

    #[test]
    fn arena_plan_stays_arena_scoped() {
        let plan = FaultPlan::builtin("arena").unwrap();
        for site in Site::ARENA {
            assert!(plan.arms(site), "arena misses {}", site.name());
        }
        for site in Site::CAMPAIGN
            .into_iter()
            .chain(Site::SERVE)
            .chain(Site::FLEET)
        {
            assert!(
                !plan.arms(site),
                "arena must stay arena-scoped, arms {}",
                site.name()
            );
        }
    }

    #[test]
    fn site_names_round_trip() {
        for site in Site::ALL {
            assert_eq!(Site::parse(site.name()), Some(site));
        }
        assert_eq!(Site::parse("nope"), None);
    }

    #[test]
    fn without_site_disarms() {
        let plan = FaultPlan::builtin("mayhem")
            .unwrap()
            .without_site(Site::CacheRecord);
        assert!(!plan.arms(Site::CacheRecord));
        assert!(plan.arms(Site::WorkerPanic));
    }
}
