//! A minimal JSON reader shared across the workspace.
//!
//! The workspace's (vendored) `serde` only serializes; several crates
//! need to read their own output back — trace JSONL, cache records,
//! campaign `--spec` files — so this module carries a small
//! recursive-descent parser for exactly the JSON this workspace emits,
//! plus enough generality (floats, unicode escapes) to accept
//! hand-written inputs. It lives in `cr-trace` (the lowest crate in
//! the dependency order that needs it) and is re-exported by
//! `cr_campaign::json` for backwards compatibility.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (no decimal point or exponent).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Anything with a decimal point or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer payload (accepts exact non-negative `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            Json::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// `as_u64` narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// Bool payload.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object payload.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or("bad \\u escape")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(b) if b < 0x20 => return Err("raw control char in string".into()),
                Some(_) => {
                    // Copy one UTF-8 scalar verbatim.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| e.to_string())
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| e.to_string())
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::Float(1500.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
        assert_eq!(
            Json::parse("\"\\uD83D\\uDE00\"").unwrap(),
            Json::Str("😀".into())
        );
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":false}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
    }

    #[test]
    fn round_trips_workspace_serializer() {
        use serde::Serialize;
        #[derive(serde::Serialize)]
        struct S {
            name: String,
            n: u64,
            flag: bool,
            items: Vec<i32>,
        }
        let s = S {
            name: "weird \"quote\"\n".into(),
            n: 7,
            flag: true,
            items: vec![-1, 2],
        };
        let v = Json::parse(&s.to_json()).unwrap();
        assert_eq!(
            v.get("name").and_then(Json::as_str),
            Some("weird \"quote\"\n")
        );
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(
            v.get("items").and_then(Json::as_arr).unwrap()[0],
            Json::Int(-1)
        );
    }
}
