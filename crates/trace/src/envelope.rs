//! The versioned JSON report envelope shared by every CLI output.
//!
//! All machine-readable outputs (`campaign --json`, `chaos
//! --summary-json`, `list --json`, `report --json`, `serve
//! --stats-json`, `scan --json`, `fleet --summary-json`, `explore
//! --json`) wrap their payload in one envelope:
//!
//! ```json
//! {"schema_version":1,"kind":"campaign","results":{…},"metrics":{…}}
//! ```
//!
//! `results` is the deterministic half — byte-identical across worker
//! counts for the same spec and fault plan. `metrics` is the
//! non-deterministic half (wall times, scheduling metadata) and is
//! `null` for outputs that have none. Consumers should check
//! `schema_version` before touching anything else.
//!
//! The trace JSONL header shares the `schema_version`/`kind` prefix
//! (kind `trace`) but carries `events`/`dropped` counters instead of
//! the results/metrics pair; [`Trace::to_jsonl`](crate::Trace::to_jsonl)
//! builds it through the same [`envelope_prefix`] so the framing bytes
//! have exactly one author.
//!
//! Construction goes through [`ReportEnvelope::builder`] — emitters
//! supply the pre-serialized halves and never hand-roll the framing.

use crate::json::Json;
use serde::Serialize;

/// Version of the envelope schema (`schema_version` in every emitted
/// JSON document).
pub const SCHEMA_VERSION: u32 = 1;

/// What an envelope carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// A campaign run (`campaign --json`).
    Campaign,
    /// A chaos-validation run (`chaos --summary-json`).
    Chaos,
    /// The target/plan listing (`list --json`).
    List,
    /// A trace analysis (`report --json`).
    Report,
    /// Resident-server lifetime statistics (`serve --stats-json`).
    Serve,
    /// A traceless static scan (`scan --json`).
    Scan,
    /// A supervised-fleet invariant run (`fleet --summary-json`).
    Fleet,
    /// A path-exploration run (`explore --json`).
    Explore,
    /// A trace JSONL header (flat envelope: `events`/`dropped` instead
    /// of `results`/`metrics`).
    Trace,
    /// An adversarial-arena matrix run (`arena --json`).
    Arena,
}

impl ReportKind {
    /// Every kind, in a stable order (new kinds append).
    pub const ALL: [ReportKind; 10] = [
        ReportKind::Campaign,
        ReportKind::Chaos,
        ReportKind::List,
        ReportKind::Report,
        ReportKind::Serve,
        ReportKind::Scan,
        ReportKind::Fleet,
        ReportKind::Explore,
        ReportKind::Trace,
        ReportKind::Arena,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ReportKind::Campaign => "campaign",
            ReportKind::Chaos => "chaos",
            ReportKind::List => "list",
            ReportKind::Report => "report",
            ReportKind::Serve => "serve",
            ReportKind::Scan => "scan",
            ReportKind::Fleet => "fleet",
            ReportKind::Explore => "explore",
            ReportKind::Trace => "trace",
            ReportKind::Arena => "arena",
        }
    }
}

impl Serialize for ReportKind {
    fn write_json(&self, out: &mut String) {
        self.name().write_json(out);
    }
}

/// The shared framing prefix `{"schema_version":1,"kind":"…"` — the
/// single author of those bytes for both report envelopes and the
/// trace JSONL header. The caller appends its own fields (each
/// starting with `,"key":`) and the closing `}`.
pub fn envelope_prefix(kind: ReportKind) -> String {
    let mut out = String::from("{\"schema_version\":");
    SCHEMA_VERSION.write_json(&mut out);
    out.push_str(",\"kind\":");
    kind.write_json(&mut out);
    out
}

/// One versioned envelope. `results` and `metrics` hold
/// *pre-serialized* JSON (the deterministic and non-deterministic
/// halves are rendered by their owners; the envelope only frames
/// them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportEnvelope {
    /// Payload kind.
    pub kind: ReportKind,
    /// Deterministic payload, as serialized JSON.
    pub results: String,
    /// Non-deterministic payload, as serialized JSON; `None` renders
    /// as `null`.
    pub metrics: Option<String>,
}

/// Builder returned by [`ReportEnvelope::builder`]. `results` defaults
/// to `null` (explicitly-empty payloads are legal, e.g. a listing with
/// no servers renders its own empty object instead).
#[derive(Debug, Clone)]
pub struct ReportEnvelopeBuilder {
    kind: ReportKind,
    results: String,
    metrics: Option<String>,
}

impl ReportEnvelopeBuilder {
    /// Set the deterministic half from pre-serialized JSON.
    pub fn results(mut self, json: impl Into<String>) -> ReportEnvelopeBuilder {
        self.results = json.into();
        self
    }

    /// Serialize `value` as the deterministic half.
    pub fn results_of(self, value: &impl Serialize) -> ReportEnvelopeBuilder {
        self.results(value.to_json())
    }

    /// Set the non-deterministic half from pre-serialized JSON.
    pub fn metrics(mut self, json: impl Into<String>) -> ReportEnvelopeBuilder {
        self.metrics = Some(json.into());
        self
    }

    /// Serialize `value` as the non-deterministic half.
    pub fn metrics_of(self, value: &impl Serialize) -> ReportEnvelopeBuilder {
        self.metrics(value.to_json())
    }

    /// Assemble the envelope.
    pub fn build(self) -> ReportEnvelope {
        ReportEnvelope {
            kind: self.kind,
            results: self.results,
            metrics: self.metrics,
        }
    }
}

impl ReportEnvelope {
    /// Start building a `kind` envelope.
    pub fn builder(kind: ReportKind) -> ReportEnvelopeBuilder {
        ReportEnvelopeBuilder {
            kind,
            results: "null".into(),
            metrics: None,
        }
    }

    /// Frame `results` (and optionally `metrics`) as a `kind` envelope —
    /// shorthand for the builder with both halves known up front.
    pub fn new(kind: ReportKind, results: String, metrics: Option<String>) -> ReportEnvelope {
        ReportEnvelope {
            kind,
            results,
            metrics,
        }
    }

    /// Render the envelope. Key order is fixed:
    /// `schema_version`, `kind`, `results`, `metrics`.
    pub fn to_json(&self) -> String {
        let mut out = envelope_prefix(self.kind);
        out.push_str(",\"results\":");
        out.push_str(&self.results);
        out.push_str(",\"metrics\":");
        match &self.metrics {
            Some(m) => out.push_str(m),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Parse and validate an envelope: `schema_version` must equal
    /// [`SCHEMA_VERSION`], `kind` must be known, `results` must be
    /// present. Returns the parsed document root.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated envelope rule.
    pub fn validate(text: &str) -> Result<Json, String> {
        let root = Json::parse(text).map_err(|e| format!("bad report JSON: {e}"))?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("report missing `schema_version`")?;
        if version != u64::from(SCHEMA_VERSION) {
            return Err(format!(
                "unsupported report schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let kind = root
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("report missing `kind`")?;
        if !ReportKind::ALL.iter().any(|k| k.name() == kind) {
            return Err(format!("unknown report kind {kind:?}"));
        }
        if root.get("results").is_none() {
            return Err("report missing `results`".into());
        }
        Ok(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = ReportKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "campaign", "chaos", "list", "report", "serve", "scan", "fleet", "explore",
                "trace", "arena"
            ]
        );
    }

    #[test]
    fn envelope_frames_and_validates() {
        let r = ReportEnvelope::builder(ReportKind::List)
            .results("{\"servers\":[]}")
            .build();
        let text = r.to_json();
        assert_eq!(
            text,
            "{\"schema_version\":1,\"kind\":\"list\",\"results\":{\"servers\":[]},\"metrics\":null}"
        );
        let root = ReportEnvelope::validate(&text).unwrap();
        assert!(root.get("results").is_some());
        assert_eq!(root.get("metrics"), Some(&Json::Null));
    }

    #[test]
    fn builder_and_new_agree() {
        let a = ReportEnvelope::builder(ReportKind::Fleet)
            .results("{\"x\":1}")
            .metrics("{\"y\":2}")
            .build();
        let b = ReportEnvelope::new(
            ReportKind::Fleet,
            "{\"x\":1}".into(),
            Some("{\"y\":2}".into()),
        );
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn prefix_is_the_single_framing_author() {
        assert_eq!(
            envelope_prefix(ReportKind::Trace),
            "{\"schema_version\":1,\"kind\":\"trace\""
        );
        for k in ReportKind::ALL {
            let env = ReportEnvelope::builder(k).results("{}").build().to_json();
            assert!(env.starts_with(&envelope_prefix(k)));
        }
    }

    #[test]
    fn validate_rejects_bad_envelopes() {
        assert!(ReportEnvelope::validate("{}").is_err());
        assert!(ReportEnvelope::validate(
            "{\"schema_version\":2,\"kind\":\"list\",\"results\":{}}"
        )
        .is_err());
        assert!(ReportEnvelope::validate(
            "{\"schema_version\":1,\"kind\":\"bogus\",\"results\":{}}"
        )
        .is_err());
        assert!(ReportEnvelope::validate("{\"schema_version\":1,\"kind\":\"list\"}").is_err());
        assert!(ReportEnvelope::validate("not json").is_err());
    }
}
