//! cr-trace: the crash-resist observability spine.
//!
//! A zero-cost-when-disabled structured tracing facility for the
//! campaign pipeline. Instrumented crates (`cr-image`, `cr-symex`,
//! `cr-chaos`, `cr-campaign`) call [`span`]/[`emit`] unconditionally;
//! when no session is active each call is a single relaxed atomic
//! load. When a session is active ([`start`] … [`finish`]), events
//! flow into per-thread ring buffers ([`ring::Ring`]) and drain into a
//! global session at task boundaries, yielding a [`Trace`] that can be
//! written to JSONL, merged with other traces, and summarized into
//! per-stage latency histograms ([`Histogram`]).
//!
//! ## Determinism
//!
//! Events split the same way campaign reports do: deterministic fields
//! (`run`, `task`, `attempt`, `seq`, `stage`, `name`, `detail`,
//! `virtual_ms`) are reproducible at any `--jobs` count, while wall
//! stamps (`wall_us`, `dur_us`) are explicitly non-deterministic and
//! stripped by [`Trace::deterministic_json`]. Sites whose *execution
//! count* depends on scheduling (a solver call elided because another
//! worker already cached the verdict) use [`span_advisory`] and are
//! excluded from the deterministic sequence entirely.
//!
//! ```
//! use cr_trace::{Stage, Trace};
//!
//! cr_trace::start();
//! cr_trace::begin_run("demo");
//! let outcome = cr_trace::task_scope(0, 0, || {
//!     let mut span = cr_trace::span(Stage::Parse, "pe.parse");
//!     span.set_detail(|| "bytes=4096".into());
//!     "ok"
//! });
//! assert_eq!(outcome, "ok");
//! let trace: Trace = cr_trace::finish();
//! assert_eq!(trace.events.len(), 2); // run.begin + the parse span
//! assert_eq!(trace.stages(), vec![Stage::Parse, Stage::Schedule]);
//! ```

pub mod collect;
pub mod envelope;
pub mod event;
pub mod hist;
pub mod json;
pub mod ring;
#[allow(clippy::module_inception)]
pub mod trace;

pub use collect::{
    advance_virtual, begin_run, drain, emit, enabled, finish, flush_local, span, span_advisory,
    start, start_with_capacity, task_scope, Span, DEFAULT_RING_CAPACITY,
};
pub use envelope::{
    envelope_prefix, ReportEnvelope, ReportEnvelopeBuilder, ReportKind, SCHEMA_VERSION,
};
pub use event::{Event, Stage};
pub use hist::{bucket_index, bucket_upper_bound, Histogram, BUCKETS};
pub use json::Json;
pub use ring::Ring;
pub use trace::{StageStats, Trace, TRACE_SCHEMA_VERSION};
