//! Bounded event ring: overwrites the oldest record when full and
//! counts what it dropped, so tracing never blocks on the hot path.
//!
//! Storage grows lazily (amortised append) up to the fixed capacity —
//! creating a ring allocates nothing, so short traces never pay for
//! the worst-case buffer.

use crate::event::Event;

/// Bounded circular buffer of [`Event`]s with an overwrite-oldest
/// policy. Each worker thread owns one; the collector drains them at
/// task boundaries.
#[derive(Debug)]
pub struct Ring {
    /// Allocated slots; grows on demand, never past `capacity`.
    slots: Vec<Option<Event>>,
    /// Maximum number of slots (fixed at construction).
    capacity: usize,
    /// Next write position.
    head: usize,
    /// Number of live records (`<= capacity`).
    len: usize,
    /// Records overwritten before they could be drained.
    dropped: u64,
}

impl Ring {
    /// Create a ring holding at most `capacity` events (min 1).
    /// Allocation is deferred until events arrive.
    pub fn new(capacity: usize) -> Ring {
        Ring {
            slots: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Record one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: Event) {
        if self.head == self.slots.len() && self.slots.len() < self.capacity {
            self.slots.push(Some(event));
            self.len += 1;
        } else if self.slots[self.head].replace(event).is_some() {
            self.dropped += 1;
        } else {
            self.len += 1;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events overwritten since the last [`Ring::drain`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Remove and return all buffered events in insertion order,
    /// together with the dropped-count, resetting both.
    pub fn drain(&mut self) -> (Vec<Event>, u64) {
        let cap = self.slots.len().max(1);
        let mut out = Vec::with_capacity(self.len);
        // Oldest record sits at `head` once the ring has wrapped (it
        // only wraps after growing to full capacity); at index 0 while
        // still growing or after a previous drain.
        let start = if self.len == self.capacity {
            self.head
        } else {
            0
        };
        for i in 0..self.len {
            if let Some(e) = self.slots[(start + i) % cap].take() {
                out.push(e);
            }
        }
        self.head = 0;
        self.len = 0;
        let dropped = std::mem::take(&mut self.dropped);
        (out, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;

    fn ev(seq: u64) -> Event {
        Event {
            run: 0,
            task: Some(0),
            attempt: 0,
            seq,
            stage: Stage::Schedule,
            name: "t".into(),
            detail: String::new(),
            det: true,
            virtual_ms: 0,
            wall_us: 0,
            dur_us: None,
        }
    }

    #[test]
    fn drains_in_insertion_order() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        let (events, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        assert!(r.is_empty());
    }

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let mut r = Ring::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let (events, dropped) = r.drain();
        assert_eq!(dropped, 6);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [6, 7, 8, 9]
        );
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut r = Ring::new(0);
        r.push(ev(1));
        r.push(ev(2));
        let (events, dropped) = r.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 2);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn drain_resets_for_reuse() {
        let mut r = Ring::new(2);
        r.push(ev(0));
        r.push(ev(1));
        r.push(ev(2));
        r.drain();
        r.push(ev(7));
        let (events, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), [7]);
    }
}
