//! Trace records: pipeline stages and the [`Event`] shape.

use crate::json::Json;
use serde::Serialize;

/// The pipeline stage an event belongs to. Stages partition the
/// campaign's hot paths: module parsing, symbolic execution, the
/// analysis cache, pool scheduling, retry backoff and injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Image parsing (`cr_image::PeImage::parse` / `ElfImage::parse`).
    Parse,
    /// Symbolic execution of one exception filter.
    Symex,
    /// Analysis-cache load/save.
    Cache,
    /// Pool scheduling: one task attempt, or a whole campaign run.
    Schedule,
    /// Retry backoff between failed attempts.
    Retry,
    /// An injected fault actually fired.
    Fault,
    /// Traceless static scanning (cr-scan CFG walk and dataflow).
    Scan,
    /// Adversarial defense arena (cr-arena strategy × detector runs).
    Arena,
}

impl Stage {
    /// Every stage, in the stable reporting order.
    pub const ALL: [Stage; 8] = [
        Stage::Parse,
        Stage::Symex,
        Stage::Cache,
        Stage::Schedule,
        Stage::Retry,
        Stage::Fault,
        Stage::Scan,
        Stage::Arena,
    ];

    /// Stable machine-readable name (`parse` / `symex` / `cache` /
    /// `schedule` / `retry` / `fault` / `scan` / `arena`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Symex => "symex",
            Stage::Cache => "cache",
            Stage::Schedule => "schedule",
            Stage::Retry => "retry",
            Stage::Fault => "fault",
            Stage::Scan => "scan",
            Stage::Arena => "arena",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn parse_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl Serialize for Stage {
    fn write_json(&self, out: &mut String) {
        self.name().write_json(out);
    }
}

/// One trace record — a point event, or a completed span (when
/// [`Event::dur_us`] is set).
///
/// ## Determinism contract
///
/// Everything except `wall_us` and `dur_us` is deterministic for
/// deterministic (`det: true`) events: two runs of the same spec under
/// the same fault plan produce the same sequence at any `--jobs` count.
/// `wall_us`/`dur_us` are wall-clock measurements and vary run to run —
/// [`Event::deterministic_json`] strips them. Advisory events
/// (`det: false`, e.g. per-filter solver spans, whose *count* depends
/// on cross-task cache races) are additionally excluded from
/// [`crate::Trace::deterministic_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Campaign run index within the trace session (chaos traces hold
    /// several runs: cold, determinism rerun, warm).
    pub run: u32,
    /// Task identity (spec index); `None` for coordinator events like
    /// cache load/save.
    pub task: Option<u64>,
    /// Attempt number the event belongs to (0 for coordinator events).
    pub attempt: u32,
    /// Emission order within `(run, task, attempt)` on the emitting
    /// thread, starting at 0 per attempt scope.
    pub seq: u64,
    /// Pipeline stage.
    pub stage: Stage,
    /// Event name (e.g. `attempt`, `cache.load`, `worker.panic`).
    pub name: String,
    /// Deterministic detail string (outcome, counts, fault kind…).
    pub detail: String,
    /// Whether this event is part of the deterministic sequence.
    pub det: bool,
    /// Virtual milliseconds charged to the attempt when the event was
    /// emitted (deterministic).
    pub virtual_ms: u64,
    /// **Non-deterministic**: wall microseconds since session start
    /// (span start for spans, emission time for point events).
    pub wall_us: u64,
    /// **Non-deterministic**: span duration in wall microseconds;
    /// `None` for point events.
    pub dur_us: Option<u64>,
}

impl Event {
    /// Sort key giving the canonical deterministic order: task events
    /// grouped by `(run, task, attempt, virtual_ms)`, coordinator
    /// events (`task: None`) after all tasks of their run. Within a
    /// group, deterministic events come first in emission order;
    /// advisory events follow in theirs (the two use independent
    /// sequence counters, so their `seq` values are not comparable).
    pub fn sort_key(&self) -> (u32, u64, u32, u64, u8, u64) {
        (
            self.run,
            self.task.map_or(u64::MAX, |t| t),
            self.attempt,
            self.virtual_ms,
            u8::from(!self.det),
            self.seq,
        )
    }

    /// Full JSON line, wall stamps included.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_fields(&mut out, true);
        out
    }

    /// JSON of the deterministic fields only (`wall_us`/`dur_us`
    /// stripped) — the byte-comparable form.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        self.write_fields(&mut out, false);
        out
    }

    fn write_fields(&self, out: &mut String, wall: bool) {
        out.push_str("{\"run\":");
        self.run.write_json(out);
        out.push_str(",\"task\":");
        self.task.write_json(out);
        out.push_str(",\"attempt\":");
        self.attempt.write_json(out);
        out.push_str(",\"seq\":");
        self.seq.write_json(out);
        out.push_str(",\"stage\":");
        self.stage.write_json(out);
        out.push_str(",\"name\":");
        self.name.write_json(out);
        out.push_str(",\"detail\":");
        self.detail.write_json(out);
        out.push_str(",\"det\":");
        self.det.write_json(out);
        out.push_str(",\"virtual_ms\":");
        self.virtual_ms.write_json(out);
        if wall {
            out.push_str(",\"wall_us\":");
            self.wall_us.write_json(out);
            out.push_str(",\"dur_us\":");
            self.dur_us.write_json(out);
        }
        out.push('}');
    }

    /// Parse one event from its [`Event::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Event, String> {
        let num = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("event missing numeric {k:?}"))
        };
        let stage_name = v
            .get("stage")
            .and_then(Json::as_str)
            .ok_or("event missing `stage`")?;
        let stage = Stage::parse_name(stage_name).ok_or(format!("unknown stage {stage_name:?}"))?;
        let task = match v.get("task") {
            None | Some(Json::Null) => None,
            Some(t) => Some(t.as_u64().ok_or("event `task` must be a number or null")?),
        };
        let dur_us = match v.get("dur_us") {
            None | Some(Json::Null) => None,
            Some(d) => Some(
                d.as_u64()
                    .ok_or("event `dur_us` must be a number or null")?,
            ),
        };
        Ok(Event {
            run: num("run")? as u32,
            task,
            attempt: num("attempt")? as u32,
            seq: num("seq")?,
            stage,
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("event missing `name`")?
                .to_string(),
            detail: v
                .get("detail")
                .and_then(Json::as_str)
                .ok_or("event missing `detail`")?
                .to_string(),
            det: v.get("det").and_then(Json::as_bool).unwrap_or(true),
            virtual_ms: num("virtual_ms")?,
            wall_us: num("wall_us").unwrap_or(0),
            dur_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            run: 1,
            task: Some(3),
            attempt: 2,
            seq: 7,
            stage: Stage::Symex,
            name: "filter.vet".into(),
            detail: "steps=12".into(),
            det: false,
            virtual_ms: 250,
            wall_us: 12345,
            dur_us: Some(678),
        }
    }

    #[test]
    fn stage_names_are_stable_and_invertible() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["parse", "symex", "cache", "schedule", "retry", "fault", "scan", "arena"]
        );
        for s in Stage::ALL {
            assert_eq!(Stage::parse_name(s.name()), Some(s));
        }
        assert_eq!(Stage::parse_name("bogus"), None);
    }

    #[test]
    fn event_round_trips_through_json() {
        let e = sample();
        let back = Event::from_json(&Json::parse(&e.to_json()).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn deterministic_json_strips_wall_fields() {
        let a = sample();
        let mut b = sample();
        b.wall_us = 99999;
        b.dur_us = Some(1);
        assert_ne!(a.to_json(), b.to_json());
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert!(!a.deterministic_json().contains("wall_us"));
        assert!(!a.deterministic_json().contains("dur_us"));
    }

    #[test]
    fn coordinator_events_sort_after_task_events() {
        let mut coord = sample();
        coord.task = None;
        coord.attempt = 0;
        assert!(sample().sort_key() < coord.sort_key());
    }
}
