//! A drained trace: the sorted event list, JSONL (de)serialization,
//! multi-file merge, and per-stage latency statistics.

use crate::event::{Event, Stage};
use crate::hist::Histogram;
use crate::json::Json;
use serde::Serialize;

/// Trace file schema version (the JSONL header's `schema_version`) —
/// the same version as every other report envelope.
pub const TRACE_SCHEMA_VERSION: u32 = crate::envelope::SCHEMA_VERSION;

/// A completed trace session: events in canonical order plus the count
/// of records lost to ring overflow.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events sorted by [`Event::sort_key`].
    pub events: Vec<Event>,
    /// Events overwritten in per-thread rings before they could be
    /// drained (0 unless a ring overflowed).
    pub dropped: u64,
}

/// Latency statistics for one stage of the pipeline.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// The stage.
    pub stage: Stage,
    /// Total events attributed to the stage (points and spans).
    pub events: u64,
    /// Spans only (events carrying a duration).
    pub spans: u64,
    /// Histogram over span durations (µs); empty when the stage had no
    /// spans.
    pub hist: Histogram,
}

impl Trace {
    /// Render the trace as JSONL: a header line
    /// `{"schema_version":1,"kind":"trace","events":N,"dropped":D}`
    /// followed by one event per line, wall stamps included.
    pub fn to_jsonl(&self) -> String {
        let mut out = crate::envelope::envelope_prefix(crate::envelope::ReportKind::Trace);
        out.push_str(",\"events\":");
        (self.events.len() as u64).write_json(&mut out);
        out.push_str(",\"dropped\":");
        self.dropped.write_json(&mut out);
        out.push_str("}\n");
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Parse a [`Trace::to_jsonl`] document, validating the header.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, a header
    /// mismatch, or an unsupported schema version.
    pub fn parse_jsonl(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or("empty trace file")?;
        let header = Json::parse(header_line).map_err(|e| format!("bad trace header: {e}"))?;
        let version = header
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("trace header missing `schema_version`")?;
        if version != u64::from(TRACE_SCHEMA_VERSION) {
            return Err(format!(
                "unsupported trace schema_version {version} (expected {TRACE_SCHEMA_VERSION})"
            ));
        }
        match header.get("kind").and_then(Json::as_str) {
            Some("trace") => {}
            other => return Err(format!("trace header kind {other:?}, expected \"trace\"")),
        }
        let declared = header
            .get("events")
            .and_then(Json::as_u64)
            .ok_or("trace header missing `events`")?;
        let dropped = header
            .get("dropped")
            .and_then(Json::as_u64)
            .ok_or("trace header missing `dropped`")?;
        let mut events = Vec::new();
        for (i, line) in lines.enumerate() {
            let v = Json::parse(line).map_err(|e| format!("bad event on line {}: {e}", i + 2))?;
            events.push(
                Event::from_json(&v).map_err(|e| format!("bad event on line {}: {e}", i + 2))?,
            );
        }
        if events.len() as u64 != declared {
            return Err(format!(
                "trace header declares {declared} events, file holds {}",
                events.len()
            ));
        }
        Ok(Trace { events, dropped })
    }

    /// The byte-comparable rendering: deterministic events only, one
    /// JSON object per line, wall stamps stripped.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        for e in self.events.iter().filter(|e| e.det) {
            out.push_str(&e.deterministic_json());
            out.push('\n');
        }
        out
    }

    /// Merge traces from several files into one timeline, offsetting
    /// each input's run indices past the previous input's so run
    /// identity stays unambiguous, then re-sorting canonically.
    pub fn merge(traces: Vec<Trace>) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut run_base: u32 = 0;
        for t in traces {
            let runs = t.events.iter().map(|e| e.run + 1).max().unwrap_or(0);
            events.extend(t.events.into_iter().map(|mut e| {
                e.run += run_base;
                e
            }));
            dropped += t.dropped;
            run_base += runs;
        }
        events.sort_by_key(Event::sort_key);
        Trace { events, dropped }
    }

    /// Count events in `stage` with exactly this `name`. Counters like
    /// the decision procedure's `solver.check` events are advisory, so
    /// counting them never perturbs the deterministic view.
    pub fn count_events(&self, stage: Stage, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.stage == stage && e.name == name)
            .count()
    }

    /// Like [`Trace::count_events`], further requiring the event detail
    /// to contain `detail_substr` (e.g. `memo=hit`).
    pub fn count_events_with(&self, stage: Stage, name: &str, detail_substr: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.stage == stage && e.name == name && e.detail.contains(detail_substr))
            .count()
    }

    /// Stages present in this trace, in [`Stage::ALL`] order.
    pub fn stages(&self) -> Vec<Stage> {
        Stage::ALL
            .into_iter()
            .filter(|s| self.events.iter().any(|e| e.stage == *s))
            .collect()
    }

    /// Per-stage event counts and span-latency histograms, in
    /// [`Stage::ALL`] order, stages with no events omitted.
    pub fn stage_stats(&self) -> Vec<StageStats> {
        let mut out = Vec::new();
        for stage in Stage::ALL {
            let mut stats = StageStats {
                stage,
                events: 0,
                spans: 0,
                hist: Histogram::new(),
            };
            for e in self.events.iter().filter(|e| e.stage == stage) {
                stats.events += 1;
                if let Some(dur) = e.dur_us {
                    stats.spans += 1;
                    stats.hist.record(dur);
                }
            }
            if stats.events > 0 {
                out.push(stats);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(run: u32, task: Option<u64>, seq: u64, stage: Stage, dur: Option<u64>) -> Event {
        Event {
            run,
            task,
            attempt: 0,
            seq,
            stage,
            name: "n".into(),
            detail: "d".into(),
            det: true,
            virtual_ms: 0,
            wall_us: seq * 10,
            dur_us: dur,
        }
    }

    fn sample() -> Trace {
        Trace {
            events: vec![
                ev(0, Some(0), 0, Stage::Parse, Some(3)),
                ev(0, Some(0), 1, Stage::Symex, None),
                ev(0, None, 0, Stage::Cache, Some(40)),
            ],
            dropped: 2,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let t = sample();
        let text = t.to_jsonl();
        assert!(text
            .starts_with("{\"schema_version\":1,\"kind\":\"trace\",\"events\":3,\"dropped\":2}\n"));
        assert_eq!(Trace::parse_jsonl(&text).unwrap(), t);
    }

    #[test]
    fn parse_rejects_bad_headers() {
        assert!(Trace::parse_jsonl("").is_err());
        assert!(Trace::parse_jsonl("{\"kind\":\"trace\"}\n").is_err());
        assert!(Trace::parse_jsonl(
            "{\"schema_version\":99,\"kind\":\"trace\",\"events\":0,\"dropped\":0}\n"
        )
        .is_err());
        assert!(Trace::parse_jsonl(
            "{\"schema_version\":1,\"kind\":\"campaign\",\"events\":0,\"dropped\":0}\n"
        )
        .is_err());
        // Declared count mismatch.
        assert!(Trace::parse_jsonl(
            "{\"schema_version\":1,\"kind\":\"trace\",\"events\":5,\"dropped\":0}\n"
        )
        .is_err());
    }

    #[test]
    fn merge_offsets_run_indices() {
        let mut a = sample();
        a.events.iter_mut().for_each(|e| e.run = 1); // runs 0..=1 occupied
        let b = sample();
        let merged = Trace::merge(vec![a, b]);
        assert_eq!(merged.dropped, 4);
        // Input B's run 0 lands after input A's two runs.
        assert!(merged.events.iter().any(|e| e.run == 2));
        let keys: Vec<_> = merged.events.iter().map(Event::sort_key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn stage_stats_split_points_and_spans() {
        let stats = sample().stage_stats();
        let names: Vec<&str> = stats.iter().map(|s| s.stage.name()).collect();
        assert_eq!(names, ["parse", "symex", "cache"]);
        assert_eq!(stats[0].spans, 1);
        assert_eq!(stats[0].hist.max(), 3);
        assert_eq!(stats[1].spans, 0);
        assert_eq!(stats[1].hist.total(), 0);
        assert_eq!(
            sample().stages(),
            [Stage::Parse, Stage::Symex, Stage::Cache]
        );
    }

    #[test]
    fn count_events_filters_by_stage_name_and_detail() {
        let mut t = sample();
        t.events[1].name = "solver.check".into();
        t.events[1].detail = "memo=hit vars=2".into();
        t.events.push({
            let mut e = ev(0, Some(0), 2, Stage::Symex, None);
            e.name = "solver.check".into();
            e.detail = "memo=miss vars=1 clauses=9".into();
            e
        });
        assert_eq!(t.count_events(Stage::Symex, "solver.check"), 2);
        assert_eq!(t.count_events(Stage::Parse, "solver.check"), 0);
        assert_eq!(
            t.count_events_with(Stage::Symex, "solver.check", "memo=hit"),
            1
        );
        assert_eq!(
            t.count_events_with(Stage::Symex, "solver.check", "memo=miss"),
            1
        );
        assert_eq!(
            t.count_events_with(Stage::Symex, "solver.check", "memo=never"),
            0
        );
    }

    #[test]
    fn deterministic_json_filters_advisory() {
        let mut t = sample();
        t.events[1].det = false;
        let det = t.deterministic_json();
        assert_eq!(det.lines().count(), 2);
        assert!(!det.contains("wall_us"));
    }
}
