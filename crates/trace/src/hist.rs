//! Fixed-bucket latency histograms: 32 power-of-two buckets over
//! microsecond durations, mergeable across workers and trace files.

/// Number of buckets. Bucket `i` covers `[2^(i-1), 2^i - 1]` µs for
/// `i >= 1`; bucket 0 holds exactly 0 µs; the last bucket absorbs
/// everything above `2^30` µs (~18 minutes).
pub const BUCKETS: usize = 32;

/// A latency histogram with fixed power-of-two bucket boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Bucket index for a duration in microseconds: 0 → 0, 1 → 1,
/// 2..=3 → 2, 4..=7 → 3, …, capped at `BUCKETS - 1`.
pub fn bucket_index(us: u64) -> usize {
    (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (0 for bucket 0, `2^i - 1`
/// otherwise). The top bucket's nominal bound understates what it can
/// absorb; quantile queries clamp to the observed max instead.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i.min(63)) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            max: 0,
        }
    }

    /// Record one duration in microseconds.
    pub fn record(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.total += 1;
        self.max = self.max.max(us);
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample, in microseconds (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`) in
    /// microseconds: the inclusive upper bound of the bucket holding
    /// the quantile rank, clamped to the observed max. Returns `None`
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample at quantile q, 1-based.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate in microseconds (`None` when empty).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate in microseconds (`None` when empty).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every boundary: 2^k lands in bucket k+1, 2^k - 1 in bucket k.
        for k in 1..BUCKETS - 1 {
            let bound = 1u64 << k;
            assert_eq!(bucket_index(bound - 1), k, "below boundary 2^{k}");
            assert_eq!(bucket_index(bound), k + 1, "at boundary 2^{k}");
        }
    }

    #[test]
    fn upper_bounds_match_index_ranges() {
        assert_eq!(bucket_upper_bound(0), 0);
        for i in 1..BUCKETS {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i);
            if i < BUCKETS - 1 {
                assert_eq!(bucket_index(ub + 1), i + 1);
            }
        }
    }

    #[test]
    fn quantiles_clamp_to_observed_max() {
        let mut h = Histogram::new();
        assert_eq!(h.p50(), None);
        h.record(5); // bucket 3, upper bound 7 — but max is 5
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.p95(), Some(5));
        assert_eq!(h.max(), 5);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(3); // bucket 2
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.p50(), Some(3));
        // rank for p95 = 95 > 90, so it falls in the slow bucket.
        assert_eq!(h.p95(), Some(1000));
        assert_eq!(h.quantile(0.90), Some(3));
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(100);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.max(), 100);
        assert_eq!(a.counts()[bucket_index(100)], 2);
    }
}
