//! The trace collector: global session state, per-thread ring buffers,
//! and the span/event emission API.
//!
//! ## Zero cost when disabled
//!
//! Every entry point loads one relaxed [`AtomicBool`] and returns
//! before touching thread-locals, taking locks, or building detail
//! strings (detail closures are only invoked when tracing is active).
//!
//! ## Lock-free hot path
//!
//! When active, each thread records into its own [`Ring`] behind a
//! `thread_local!` — no cross-thread synchronisation per event. Rings
//! drain into the global session under a mutex only at task boundaries
//! ([`flush_local`]), at thread exit, and at [`finish`].
//!
//! ## Determinism
//!
//! Deterministic events draw from a per-attempt sequence counter that
//! [`task_scope`] resets, so the `(run, task, attempt, virtual_ms,
//! seq)` key orders them identically at any worker count. Advisory
//! events (`det: false`) use a separate counter so their presence or
//! absence (e.g. a solver call elided by a cache hit on another
//! worker) cannot shift the deterministic numbering.

use crate::event::{Event, Stage};
use crate::ring::Ring;
use crate::trace::Trace;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Bumped on every start/finish so stale thread-locals from a previous
/// session refuse to flush into the current one.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static NEXT_RUN: AtomicU32 = AtomicU32::new(0);
static CURRENT_RUN: AtomicU32 = AtomicU32::new(0);

struct Session {
    events: Vec<Event>,
    dropped: u64,
    start: Option<Instant>,
    capacity: usize,
}

static SESSION: Mutex<Session> = Mutex::new(Session {
    events: Vec::new(),
    dropped: 0,
    start: None,
    capacity: DEFAULT_RING_CAPACITY,
});

fn session() -> MutexGuard<'static, Session> {
    SESSION.lock().unwrap_or_else(|e| e.into_inner())
}

struct Local {
    epoch: u64,
    start: Option<Instant>,
    ring: Ring,
    task: Option<u64>,
    attempt: u32,
    seq_det: u64,
    seq_adv: u64,
    virtual_ms: u64,
}

impl Local {
    fn fresh() -> Local {
        Local {
            epoch: u64::MAX,
            start: None,
            ring: Ring::new(1),
            task: None,
            attempt: 0,
            seq_det: 0,
            seq_adv: 0,
            virtual_ms: 0,
        }
    }

    /// Re-home this thread-local onto the current session if it still
    /// belongs to a previous one (discarding any stale records).
    fn ensure_epoch(&mut self) {
        let epoch = EPOCH.load(Ordering::Acquire);
        if self.epoch == epoch {
            return;
        }
        let (start, capacity) = {
            let s = session();
            (s.start, s.capacity)
        };
        self.epoch = epoch;
        self.start = start;
        self.ring = Ring::new(capacity);
        self.task = None;
        self.attempt = 0;
        self.seq_det = 0;
        self.seq_adv = 0;
        self.virtual_ms = 0;
    }

    fn session_elapsed_us(&self) -> u64 {
        self.start.map_or(0, |s| s.elapsed().as_micros() as u64)
    }

    fn push_event(
        &mut self,
        stage: Stage,
        name: &'static str,
        detail: String,
        det: bool,
        start_us: Option<u64>,
        dur_us: Option<u64>,
    ) {
        let seq = if det {
            let s = self.seq_det;
            self.seq_det += 1;
            s
        } else {
            let s = self.seq_adv;
            self.seq_adv += 1;
            s
        };
        let wall_us = start_us.unwrap_or_else(|| self.session_elapsed_us());
        self.ring.push(Event {
            run: CURRENT_RUN.load(Ordering::Relaxed),
            task: self.task,
            attempt: self.attempt,
            seq,
            stage,
            name: name.to_string(),
            detail,
            det,
            virtual_ms: self.virtual_ms,
            wall_us,
            dur_us,
        });
    }

    fn flush(&mut self) {
        if self.ring.is_empty() && self.ring.dropped() == 0 {
            return;
        }
        let (events, dropped) = self.ring.drain();
        let mut s = session();
        if self.epoch == EPOCH.load(Ordering::Acquire) {
            s.events.extend(events);
            s.dropped += dropped;
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Safety net: a thread exiting mid-session still contributes
        // its buffered events.
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::fresh());
}

fn local_with<R>(f: impl FnOnce(&mut Local) -> R) -> Option<R> {
    LOCAL
        .try_with(|cell| {
            let mut l = cell.borrow_mut();
            l.ensure_epoch();
            f(&mut l)
        })
        .ok()
}

/// Whether a trace session is active. The one branch every
/// instrumentation site pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Begin a trace session with the default ring capacity. Returns
/// `false` (and changes nothing) if a session is already active.
pub fn start() -> bool {
    start_with_capacity(DEFAULT_RING_CAPACITY)
}

/// Begin a trace session with `capacity` events buffered per thread.
/// Returns `false` (and changes nothing) if a session is already
/// active.
pub fn start_with_capacity(capacity: usize) -> bool {
    let mut s = session();
    if ACTIVE.load(Ordering::Acquire) {
        return false;
    }
    s.events.clear();
    s.dropped = 0;
    s.start = Some(Instant::now());
    s.capacity = capacity.max(1);
    EPOCH.fetch_add(1, Ordering::Release);
    NEXT_RUN.store(0, Ordering::Release);
    CURRENT_RUN.store(0, Ordering::Release);
    ACTIVE.store(true, Ordering::Release);
    true
}

/// End the active session and return everything collected, sorted into
/// the canonical deterministic order. Returns an empty [`Trace`] when
/// no session was active.
pub fn finish() -> Trace {
    if !enabled() {
        return Trace::default();
    }
    // Flush this thread's ring while the session (and epoch) are still
    // live — after the epoch bump below it would be discarded.
    let _ = local_with(|l| l.flush());
    let mut s = session();
    ACTIVE.store(false, Ordering::Release);
    EPOCH.fetch_add(1, Ordering::Release);
    s.start = None;
    let mut events = std::mem::take(&mut s.events);
    let dropped = std::mem::take(&mut s.dropped);
    drop(s);
    events.sort_by_key(Event::sort_key);
    Trace { events, dropped }
}

/// Take everything collected so far *out of* the active session
/// without ending it, sorted into the canonical deterministic order.
///
/// This is the per-request scoping primitive for long-lived processes:
/// a resident server starts one session for its whole lifetime, wraps
/// each request in [`begin_run`], and calls `drain` after the request
/// completes — the returned [`Trace`] holds exactly the events
/// collected since the previous drain, and the session keeps running
/// for the next request. Only the calling thread's ring is flushed
/// first, so call it from the thread that executed the request (worker
/// threads flush at task boundaries and thread exit already).
///
/// Returns an empty [`Trace`] when no session is active.
pub fn drain() -> Trace {
    if !enabled() {
        return Trace::default();
    }
    let _ = local_with(|l| l.flush());
    let mut s = session();
    let mut events = std::mem::take(&mut s.events);
    let dropped = std::mem::take(&mut s.dropped);
    drop(s);
    events.sort_by_key(Event::sort_key);
    Trace { events, dropped }
}

/// Mark the start of a campaign run within the session, returning its
/// run index. Subsequent events carry that index until the next
/// `begin_run`. Emits a deterministic `schedule`/`run.begin` event.
pub fn begin_run(name: &str) -> u32 {
    if !enabled() {
        return 0;
    }
    let run = NEXT_RUN.fetch_add(1, Ordering::AcqRel);
    CURRENT_RUN.store(run, Ordering::Release);
    let detail = format!("name={name}");
    let _ = local_with(|l| l.push_event(Stage::Schedule, "run.begin", detail, true, None, None));
    run
}

/// Emit a deterministic point event. The detail closure only runs when
/// tracing is active.
pub fn emit(stage: Stage, name: &'static str, detail: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    let detail = detail();
    let _ = local_with(|l| l.push_event(stage, name, detail, true, None, None));
}

/// Run `f` with events attributed to `(task, attempt)`, resetting the
/// per-attempt sequence and virtual-time counters. Restores the
/// enclosing attribution afterwards (also on unwind).
pub fn task_scope<R>(task: u64, attempt: u32, f: impl FnOnce() -> R) -> R {
    struct Guard {
        saved: Option<(Option<u64>, u32, u64, u64, u64)>,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            if let Some((task, attempt, seq_det, seq_adv, virtual_ms)) = self.saved.take() {
                if enabled() {
                    let _ = local_with(|l| {
                        l.task = task;
                        l.attempt = attempt;
                        l.seq_det = seq_det;
                        l.seq_adv = seq_adv;
                        l.virtual_ms = virtual_ms;
                    });
                }
            }
        }
    }
    let saved = if enabled() {
        local_with(|l| {
            let saved = (l.task, l.attempt, l.seq_det, l.seq_adv, l.virtual_ms);
            l.task = Some(task);
            l.attempt = attempt;
            l.seq_det = 0;
            l.seq_adv = 0;
            l.virtual_ms = 0;
            saved
        })
    } else {
        None
    };
    let _guard = Guard { saved };
    f()
}

/// Charge `ms` of virtual time to the current attempt (injected stalls
/// advance virtual time deterministically; wall time does not).
pub fn advance_virtual(ms: u64) {
    if !enabled() {
        return;
    }
    let _ = local_with(|l| l.virtual_ms += ms);
}

/// Drain this thread's ring into the session buffer. Call at task
/// boundaries so long-lived workers don't overflow their rings.
pub fn flush_local() {
    if !enabled() {
        return;
    }
    let _ = local_with(|l| l.flush());
}

/// An in-flight span; emits one event carrying its wall duration when
/// dropped. Obtained from [`span`] / [`span_advisory`]; a no-op shell
/// when tracing is disabled.
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    stage: Stage,
    name: &'static str,
    detail: String,
    det: bool,
    start_us: u64,
    begun: Instant,
}

/// Open a deterministic span. Its event is part of the byte-comparable
/// sequence, so only open it at sites whose execution count does not
/// depend on scheduling.
pub fn span(stage: Stage, name: &'static str) -> Span {
    make_span(stage, name, true)
}

/// Open an advisory (`det: false`) span for sites whose execution
/// count is scheduling-dependent — e.g. solver calls elided by a
/// shared-cache hit. Excluded from deterministic comparisons but still
/// feeds the latency histograms.
pub fn span_advisory(stage: Stage, name: &'static str) -> Span {
    make_span(stage, name, false)
}

fn make_span(stage: Stage, name: &'static str, det: bool) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let start_us = local_with(|l| l.session_elapsed_us()).unwrap_or(0);
    Span {
        inner: Some(SpanInner {
            stage,
            name,
            detail: String::new(),
            det,
            start_us,
            begun: Instant::now(),
        }),
    }
}

impl Span {
    /// Replace the span's detail string. The closure only runs when the
    /// span is live (tracing enabled at creation).
    pub fn set_detail(&mut self, f: impl FnOnce() -> String) {
        if let Some(inner) = &mut self.inner {
            inner.detail = f();
        }
    }

    /// Append to the span's detail string (space-separated). Useful to
    /// record identity up front and outcome later, so the identity
    /// survives even if an unwind drops the span early.
    pub fn append_detail(&mut self, f: impl FnOnce() -> String) {
        if let Some(inner) = &mut self.inner {
            if !inner.detail.is_empty() {
                inner.detail.push(' ');
            }
            inner.detail.push_str(&f());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            if !enabled() {
                return;
            }
            let dur = inner.begun.elapsed().as_micros() as u64;
            let SpanInner {
                stage,
                name,
                detail,
                det,
                start_us,
                ..
            } = inner;
            let _ =
                local_with(|l| l.push_event(stage, name, detail, det, Some(start_us), Some(dur)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global; tests touching it serialize
    /// through this lock.
    static SOLO: Mutex<()> = Mutex::new(());

    fn solo() -> MutexGuard<'static, ()> {
        SOLO.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_is_inert() {
        let _g = solo();
        assert!(!enabled());
        emit(Stage::Parse, "noop", || {
            unreachable!("detail closure must not run")
        });
        let mut s = span(Stage::Symex, "noop");
        s.set_detail(|| unreachable!("detail closure must not run"));
        drop(s);
        let t = finish();
        assert!(t.events.is_empty());
    }

    #[test]
    fn collects_and_orders_across_threads() {
        let _g = solo();
        assert!(start());
        assert!(!start(), "nested start must be refused");
        begin_run("demo");
        std::thread::scope(|scope| {
            for task in 0..4u64 {
                scope.spawn(move || {
                    task_scope(task, 0, || {
                        emit(Stage::Parse, "first", || format!("task={task}"));
                        advance_virtual(10);
                        emit(Stage::Retry, "second", String::new);
                    });
                    flush_local();
                });
            }
        });
        let t = finish();
        // 1 run.begin + 4 tasks * 2 events.
        assert_eq!(t.events.len(), 9);
        assert_eq!(t.dropped, 0);
        let keys: Vec<_> = t.events.iter().map(Event::sort_key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Task events first (in task order), coordinator event last.
        assert_eq!(t.events[0].task, Some(0));
        assert_eq!(t.events[0].seq, 0);
        assert_eq!(t.events[1].virtual_ms, 10);
        assert_eq!(t.events[8].task, None);
        assert_eq!(t.events[8].name, "run.begin");
    }

    #[test]
    fn advisory_events_do_not_shift_det_sequence() {
        let _g = solo();
        let run_once = |with_advisory: bool| {
            assert!(start());
            task_scope(7, 1, || {
                emit(Stage::Parse, "a", String::new);
                if with_advisory {
                    drop(span_advisory(Stage::Symex, "adv"));
                }
                emit(Stage::Cache, "b", String::new);
            });
            flush_local();
            finish().deterministic_json()
        };
        assert_eq!(run_once(true), run_once(false));
    }

    #[test]
    fn task_scope_restores_attribution_on_unwind() {
        let _g = solo();
        assert!(start());
        emit(Stage::Schedule, "outer.before", String::new);
        let _ = std::panic::catch_unwind(|| {
            task_scope(3, 0, || {
                emit(Stage::Schedule, "inner", String::new);
                panic!("boom");
            })
        });
        emit(Stage::Schedule, "outer.after", String::new);
        let t = finish();
        let outer: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.task.is_none())
            .map(|e| (e.name.as_str(), e.seq))
            .collect();
        assert_eq!(outer, [("outer.before", 0), ("outer.after", 1)]);
        assert_eq!(
            t.events.iter().find(|e| e.task == Some(3)).map(|e| e.seq),
            Some(0)
        );
    }

    /// `drain` hands back what was collected so far and leaves the
    /// session live for further events — the resident-server pattern.
    #[test]
    fn drain_scopes_requests_without_ending_the_session() {
        let _g = solo();
        assert!(start());
        let run_a = begin_run("req-a");
        emit(Stage::Schedule, "a.work", String::new);
        let first = drain();
        assert!(enabled(), "session must stay active across drain");
        assert_eq!(first.events.len(), 2, "run.begin + a.work");
        assert!(first.events.iter().all(|e| e.run == run_a));

        let run_b = begin_run("req-b");
        emit(Stage::Schedule, "b.work", String::new);
        let second = drain();
        assert_eq!(second.events.len(), 2, "only events since the last drain");
        assert!(second.events.iter().all(|e| e.run == run_b));
        assert_ne!(run_a, run_b, "runs keep distinct indices across drains");

        let rest = finish();
        assert!(rest.events.is_empty(), "drain left nothing behind");
    }

    #[test]
    fn drain_without_session_is_empty() {
        let _g = solo();
        let t = drain();
        assert!(t.events.is_empty());
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn ring_overflow_reports_dropped() {
        let _g = solo();
        assert!(start_with_capacity(4));
        task_scope(0, 0, || {
            for _ in 0..10 {
                emit(Stage::Parse, "spam", String::new);
            }
        });
        let t = finish();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 6);
    }

    #[test]
    fn spans_measure_duration() {
        let _g = solo();
        assert!(start());
        {
            let mut s = span(Stage::Cache, "load");
            s.set_detail(|| "filters=3".into());
            s.append_detail(|| "ok".into());
        }
        let t = finish();
        assert_eq!(t.events.len(), 1);
        let e = &t.events[0];
        assert_eq!(e.name, "load");
        assert_eq!(e.detail, "filters=3 ok");
        assert!(e.dur_us.is_some());
        assert!(e.det);
    }
}
