#![allow(missing_docs)] // criterion macros generate undocumented items

//! Criterion performance benches for the substrate and the pipeline:
//! emulator throughput, taint-tracking overhead (the libdft-style cost),
//! binary parsing, symbolic filter vetting, SAT solving, and end-to-end
//! probe throughput for the §VI oracles.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cr_isa::{Asm, Reg};
use cr_symex::{BoolExpr, CmpOp, Expr, FilterVerdict, SymExec};
use cr_taint::TaintEngine;
use cr_vm::{Cpu, Exit, Memory, NullHook, Prot};

/// A counting loop: `rax = sum(1..=n)`.
fn loop_program(n: u64) -> (Vec<u8>, u64) {
    let mut a = Asm::new(0x40_0000);
    a.zero(Reg::Rax);
    a.mov_ri(Reg::Rcx, n);
    let top = a.here();
    a.add_rr(Reg::Rax, Reg::Rcx);
    a.sub_ri(Reg::Rcx, 1);
    a.cmp_ri(Reg::Rcx, 0);
    a.jcc(cr_isa::Cond::Ne, top);
    a.hlt();
    (a.assemble().unwrap().code, 0x40_0000)
}

fn run_to_halt(code: &[u8], base: u64, hook: &mut dyn cr_vm::Hook) -> u64 {
    let mut mem = Memory::new();
    mem.map(base, 0x1000, Prot::RX);
    mem.poke(base, code).unwrap();
    let mut cpu = Cpu::new();
    cpu.rip = base;
    loop {
        match cpu.step(&mut mem, hook) {
            Exit::Normal => {}
            Exit::Halt => return cpu.steps,
            e => panic!("{e:?}"),
        }
    }
}

fn bench_emulator(c: &mut Criterion) {
    let (code, base) = loop_program(1000);
    c.bench_function("emulator/4k-inst-loop", |b| {
        b.iter(|| black_box(run_to_halt(&code, base, &mut NullHook)))
    });
}

fn bench_taint_overhead(c: &mut Criterion) {
    let (code, base) = loop_program(1000);
    c.bench_function("taint/4k-inst-loop", |b| {
        b.iter(|| {
            let mut taint = TaintEngine::new();
            taint.taint_region(0x60_0000, 0x1000, 0);
            black_box(run_to_halt(&code, base, &mut taint))
        })
    });
}

fn bench_pe_parse(c: &mut Criterion) {
    let calib = cr_targets::browsers::calib("user32").unwrap();
    let spec = cr_targets::browsers::DllSpec::from_calib_x64(calib, 0);
    let bytes_img = cr_targets::browsers::generate_dll(&spec);
    // Re-serialize via builder is not exposed; parse the in-memory image's
    // raw sections round-trip instead: rebuild bytes with PeBuilder once.
    let mut b =
        cr_image::PeBuilder::new("user32.dll", cr_image::Machine::X64, bytes_img.image_base);
    b.text(0x1000, bytes_img.section_at(0x1000).unwrap().data.clone());
    let bytes = b.build();
    c.bench_function("image/pe-parse", |bch| {
        bch.iter(|| black_box(cr_image::PeImage::parse(&bytes).unwrap()))
    });
}

fn bench_symex_filter(c: &mut Criterion) {
    // `return code == EXCEPTION_ACCESS_VIOLATION` filter.
    let mut a = Asm::new(0x1_0000);
    a.load(Reg::Rax, cr_isa::Mem::base(Reg::Rcx));
    a.inst(cr_isa::Inst::MovRRm {
        dst: Reg::Rax,
        src: cr_isa::Rm::Mem(cr_isa::Mem::base(Reg::Rax)),
        width: cr_isa::Width::B4,
    });
    a.inst(cr_isa::Inst::AluRmI {
        op: cr_isa::AluOp::Cmp,
        dst: cr_isa::Rm::Reg(Reg::Rax),
        imm: 0xC0000005u32 as i32,
        width: cr_isa::Width::B4,
    });
    let no = a.fresh();
    a.jcc(cr_isa::Cond::Ne, no);
    a.mov_ri(Reg::Rax, 1);
    a.ret();
    a.bind(no);
    a.zero(Reg::Rax);
    a.ret();
    let code = a.assemble().unwrap().code;
    c.bench_function("symex/vet-av-filter", |b| {
        b.iter(|| {
            let v = SymExec::default()
                .analyze_filter(&(0x1_0000u64, code.as_slice()), 0x1_0000)
                .verdict;
            assert!(matches!(v, FilterVerdict::AcceptsAccessViolation { .. }));
            black_box(v)
        })
    });
}

fn bench_sat(c: &mut Criterion) {
    c.bench_function("sat/32bit-add-eq", |b| {
        b.iter(|| {
            let x = Expr::var("x", 32);
            let y = Expr::var("y", 32);
            let sum = Expr::bin(cr_symex::BinOp::Add, x, y);
            let cs = [BoolExpr::cmp(CmpOp::Eq, 32, sum, Expr::c(0xC000_0005))];
            black_box(cr_symex::check(&cs))
        })
    });
}

fn bench_probe_throughput(c: &mut Criterion) {
    use cr_exploits::MemoryOracle;
    let mut group = c.benchmark_group("probe");
    group.sample_size(10);
    let mut ie = cr_exploits::ie::IeOracle::new();
    group.bench_function("ie11-mutx-enter", |b| {
        b.iter(|| black_box(ie.probe(0xdead_0000)))
    });
    let mut fx = cr_exploits::firefox::FirefoxOracle::new();
    group.bench_function("firefox46-veh-worker", |b| {
        b.iter(|| black_box(fx.probe(0xdead_0000)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_emulator,
    bench_taint_overhead,
    bench_pe_parse,
    bench_symex_filter,
    bench_sat,
    bench_probe_throughput
);
criterion_main!(benches);
