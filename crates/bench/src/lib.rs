//! # cr-bench — experiment harness
//!
//! One binary per paper artifact (see DESIGN.md §4):
//!
//! | binary        | regenerates                                   |
//! |---------------|-----------------------------------------------|
//! | `table1`      | Table I — syscall candidates × five servers   |
//! | `table2`      | Table II — guarded locations per DLL          |
//! | `table3`      | Table III — filters before/after symex        |
//! | `api_funnel`  | §V-B — the Windows API funnel                 |
//! | `poc_exploits`| §VI — the four proof-of-concept oracles       |
//! | `fault_rates` | §VII-C — fault-rate workloads + defenses      |
//! | `ablations`   | DESIGN.md §5 — design-choice ablations        |
//!
//! Criterion performance benches live in `benches/perf.rs`.

/// Shared banner printing for the experiment binaries.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}
