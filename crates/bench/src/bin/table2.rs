//! Regenerate **Table II**: guarded code locations per DLL in an
//! Internet Explorer 11 run — before symbolic execution, after, and on
//! the browsing execution path.

use cr_core::report::render_table2;
use cr_core::seh::{analyze_module, on_path_count};
use cr_os::OsHook;
use cr_vm::{CoverageHook, Hook};

struct Cov(CoverageHook);

impl Hook for Cov {
    fn on_inst(
        &mut self,
        cpu: &cr_vm::Cpu,
        mem: &mut cr_vm::Memory,
        inst: &cr_isa::Inst,
        va: u64,
        len: usize,
    ) {
        self.0.on_inst(cpu, mem, inst, va, len);
    }
}

impl OsHook for Cov {}

fn main() {
    cr_bench::banner("Table II — guarded code locations (IE 11 browsing run)");
    eprintln!("[table2] building ie-sim and browsing ...");
    let mut sim = cr_targets::browsers::ie::build();
    let mut cov = Cov(CoverageHook::new());
    assert!(
        cr_targets::browsers::ie::browse(&mut sim, 3, &mut cov),
        "browse workload"
    );

    let mut rows = Vec::new();
    for module in sim.proc.modules.clone() {
        if module.name == "iexplore.exe" {
            continue;
        }
        eprintln!("[table2] analyzing {} ...", module.name);
        let analysis = analyze_module(&module.image);
        let on_path = on_path_count(&analysis, &cov.0.visited);
        rows.push((analysis, on_path));
    }
    println!("{}", render_table2(&rows));
    let total_scopes: usize = rows.iter().map(|(a, _)| a.scopes.len()).sum();
    let total_after: usize = rows.iter().map(|(a, _)| a.guarded_after).sum();
    let total_on_path: usize = rows.iter().map(|(_, p)| p).sum();
    println!(
        "totals: {} scopes across {} modules; {} AV-capable guarded functions; {} on path",
        total_scopes,
        rows.len(),
        total_after,
        total_on_path
    );
}
