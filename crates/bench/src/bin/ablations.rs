//! Ablation experiments for the design choices called out in DESIGN.md §5.
//!
//! 1. **Active invalidation vs passive candidate listing** — without the
//!    invalidation phase every tainted-pointer syscall would be reported
//!    usable; invalidation reveals most of them crash.
//! 2. **Symbolic execution vs syntactic catch-all triage** — counting
//!    only scope entries with the literal `1` filter misses every filter
//!    *function* that still accepts access violations.
//! 3. **Byte- vs word-granular taint** — coarse shadow granularity
//!    falsely taints pointers packed next to attacker bytes.
//! 4. **Execution-path cross-referencing** — statically AV-capable
//!    guarded locations vastly overstate what a workload can actually
//!    trigger.

use cr_core::seh::analyze_module;
use cr_core::syscall_finder::{discover_server, Classification};
use cr_image::FilterRef;
use cr_targets::browsers::{generate_dll, DllSpec, CALIBRATION};

fn main() {
    cr_bench::banner("Ablations");

    // ---- 1. invalidation phase --------------------------------------------
    println!("\n[1] active pointer invalidation (nginx):");
    let target = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == "nginx")
        .unwrap();
    let report = discover_server(&target);
    let candidates = report.findings.len();
    let usable = report
        .findings
        .iter()
        .filter(|f| matches!(f.classification, Classification::Usable { .. }))
        .count();
    let crashing = report
        .findings
        .iter()
        .filter(|f| f.classification == Classification::CrashesOnInvalidation)
        .count();
    println!("    passive listing would report usable: {candidates}");
    println!("    after invalidation:  usable {usable}, crash-on-invalidation {crashing}");
    assert!(crashing > usable, "invalidation must prune most candidates");

    // ---- 2. symex vs catch-all triage ---------------------------------------
    println!("\n[2] symbolic execution vs catch-all-only triage:");
    let mut missed_total = 0usize;
    for (i, c) in CALIBRATION.iter().filter(|c| c.in_table2).enumerate() {
        let img = generate_dll(&DllSpec::from_calib_x64(c, i));
        let catchall_only: usize = img
            .runtime_functions
            .iter()
            .filter(|rf| {
                rf.unwind.handler_rva.is_some()
                    && rf
                        .unwind
                        .scopes
                        .iter()
                        .any(|s| s.filter == FilterRef::CatchAll)
            })
            .count();
        let full = analyze_module(&img);
        let missed = full.guarded_after.saturating_sub(catchall_only);
        missed_total += missed;
        println!(
            "    {:<10} catch-all-only: {:>3}   with symex: {:>3}   missed without symex: {:>3}",
            c.name, catchall_only, full.guarded_after, missed
        );
    }
    assert!(
        missed_total > 0,
        "symex must add candidates beyond catch-all"
    );

    // ---- 3. byte- vs word-granular taint ------------------------------------
    // The paper extends libdft with byte-granular tracking. Emulate the
    // coarser alternative by rounding the taint seed out to 8-byte words:
    // a 5-byte network command that shares a word with a packed adjacent
    // pointer then falsely taints the pointer — a phantom candidate.
    println!("\n[3] byte- vs word-granular taint (packed struct: 5-byte cmd, pointer at +5):");
    {
        use cr_isa::{Asm, Mem as M, Reg};
        use cr_taint::TaintEngine;
        use cr_vm::{Cpu, Exit, Memory, Prot};
        const BUF: u64 = 0x10_0000;
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rdi, BUF + 5);
        a.load(Reg::Rsi, M::base(Reg::Rdi)); // load the packed pointer
        a.hlt();
        let code = a.assemble().unwrap().code;
        let run = |seed_len: u64| {
            let mut mem = Memory::new();
            mem.map(0x1000, 0x1000, Prot::RX);
            mem.poke(0x1000, &code).unwrap();
            mem.map(BUF, 0x1000, Prot::RW);
            let mut t = TaintEngine::new();
            t.taint_region(BUF, seed_len, 1); // network-input label
            let mut cpu = Cpu::new();
            cpu.rip = 0x1000;
            while cpu.step(&mut mem, &mut t) == Exit::Normal {}
            t.reg_taint(Reg::Rsi, cr_isa::Width::B8).is_tainted()
        };
        let byte_granular = run(5); // exact 5 input bytes
        let word_granular = run(8); // seed rounded out to the word
        println!("    byte-granular: pointer tainted = {byte_granular} (correct)");
        println!("    word-granular: pointer tainted = {word_granular} (false candidate)");
        assert!(!byte_granular && word_granular);
    }

    // ---- 4. execution-path cross-referencing --------------------------------
    println!("\n[4] static AV-capable locations vs actually-triggered (Table II):");
    let statically: u32 = CALIBRATION
        .iter()
        .filter(|c| c.in_table2)
        .map(|c| c.guarded_after)
        .sum();
    let on_path: u32 = CALIBRATION
        .iter()
        .filter(|c| c.in_table2)
        .map(|c| c.on_path)
        .sum();
    println!(
        "    static after-symex: {statically}   on browse path: {on_path}   \
         overstatement factor: {:.1}x",
        statically as f64 / on_path.max(1) as f64
    );
}
