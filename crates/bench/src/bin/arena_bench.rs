//! Adversarial-arena bench: the §VII-C strategy × detector matrix as
//! machine-readable JSON written to `BENCH_defense.json`.
//!
//! Runs the full [`cr_arena::run_matrix`] grid (four probing
//! strategies against the rate threshold, windowed CUSUM, and the
//! scan-derived syscall filter) and records per-pair detection rates,
//! mean time-to-detect and false positives, plus wall time per
//! strategy (best of `ARENA_BENCH_ROUNDS`, default 3).
//!
//! Asserts the calibrated headline invariants while it measures:
//!
//! * low-and-slow stealth evades the naive rate threshold in every
//!   round, but CUSUM catches every stealth round;
//! * the rate threshold still catches the loud strategies (linear,
//!   burst) in every round;
//! * the serving-phase syscall filter blocks every located strategy's
//!   escalation syscalls;
//! * no detector false-positives on the benign browsing workload;
//! * repeated matrix runs render byte-identical summaries.
//!
//! Wall-time numbers are recorded, never asserted.

use serde::Serialize;
use std::time::Instant;

#[derive(serde::Serialize)]
struct PairRow {
    strategy: String,
    detector: String,
    detected_rounds: usize,
    rounds: usize,
    time_to_detect_ms: u64,
    false_positives: u64,
    blocked_escalations: u64,
}

#[derive(serde::Serialize)]
struct StrategyRow {
    strategy: String,
    rounds: usize,
    probes: u64,
    located_rounds: usize,
    /// Best-of-rounds wall time for the strategy's sessions plus all
    /// three detector judgments, microseconds.
    wall_us: u64,
}

#[derive(serde::Serialize)]
struct DefenseReport {
    rounds: usize,
    seed: u64,
    strategies: Vec<StrategyRow>,
    pairs: Vec<PairRow>,
    total_wall_us: u64,
    /// Stealth went undetected by the rate threshold in every round.
    stealth_evades_rate: bool,
    /// CUSUM caught every stealth round.
    stealth_caught_by_cusum: bool,
    /// The rate threshold caught every linear and burst round.
    rate_catches_loud: bool,
    /// The serving-phase filter blocked every located strategy's
    /// escalation syscalls.
    filter_blocks_escalations: bool,
    /// No detector raised a false positive on benign browsing.
    zero_false_positives: bool,
    /// Repeated matrix runs rendered byte-identical summaries.
    deterministic: bool,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn render(matrix: &[cr_arena::ArenaSummary]) -> String {
    let mut out = String::new();
    for s in matrix {
        out.push_str(&s.to_json());
        out.push('\n');
    }
    out
}

fn main() {
    cr_bench::banner("arena bench — probing strategies vs the detector roster (§VII-C)");
    let bench_rounds = env_u64("ARENA_BENCH_ROUNDS", 3).max(1) as usize;
    let seed = env_u64("ARENA_BENCH_SEED", 2017);
    let out_path = std::env::var("ARENA_BENCH_OUT").unwrap_or_else(|_| "BENCH_defense.json".into());
    let cfg = cr_arena::ArenaConfig {
        seed,
        ..cr_arena::ArenaConfig::default()
    };

    eprintln!(
        "[arena_bench] {} strategy grid x {bench_rounds} bench round(s), seed {seed} ...",
        cr_arena::StrategyKind::ALL.len()
    );
    let mut matrix = Vec::new();
    let mut walls = vec![u64::MAX; cr_arena::StrategyKind::ALL.len()];
    let mut deterministic = true;
    let mut baseline: Option<String> = None;
    for _ in 0..bench_rounds {
        let mut round = Vec::with_capacity(cr_arena::StrategyKind::ALL.len());
        for (i, kind) in cr_arena::StrategyKind::ALL.into_iter().enumerate() {
            let start = Instant::now();
            let summary = cr_arena::run_strategy(kind, &cfg, &mut |_| false);
            walls[i] = walls[i].min(start.elapsed().as_micros() as u64);
            round.push(summary);
        }
        let rendered = render(&round);
        if let Some(prev) = &baseline {
            if *prev != rendered {
                eprintln!("[arena_bench] DETERMINISM FAILURE across matrix runs");
                deterministic = false;
            }
        }
        baseline = Some(rendered);
        matrix = round;
    }

    let cell = |strategy: &str, detector: &str| {
        matrix
            .iter()
            .find(|s| s.strategy == strategy)
            .and_then(|s| s.pairs.iter().find(|p| p.detector == detector))
            .unwrap_or_else(|| panic!("missing matrix cell {strategy}/{detector}"))
    };
    let rounds_of = |strategy: &str| {
        matrix
            .iter()
            .find(|s| s.strategy == strategy)
            .map(|s| s.rounds)
            .unwrap_or(0)
    };
    let stealth_evades_rate = cell("stealth", "rate").detected_rounds == 0;
    let stealth_caught_by_cusum = cell("stealth", "cusum").detected_rounds == rounds_of("stealth");
    let rate_catches_loud = ["linear", "burst"]
        .iter()
        .all(|s| cell(s, "rate").detected_rounds == rounds_of(s));
    let escalation_len = cr_arena::ESCALATION.len() as u64;
    let filter_blocks_escalations = matrix.iter().all(|s| {
        s.pairs
            .iter()
            .find(|p| p.detector == "filter")
            .is_some_and(|p| p.blocked_escalations == escalation_len * s.located_rounds as u64)
    });
    let zero_false_positives = matrix
        .iter()
        .flat_map(|s| &s.pairs)
        .all(|p| p.false_positives == 0);

    let strategies: Vec<StrategyRow> = matrix
        .iter()
        .zip(&walls)
        .map(|(s, &wall)| StrategyRow {
            strategy: s.strategy.clone(),
            rounds: s.rounds,
            probes: s.probes,
            located_rounds: s.located_rounds,
            wall_us: wall,
        })
        .collect();
    let pairs: Vec<PairRow> = matrix
        .iter()
        .flat_map(|s| {
            s.pairs.iter().map(|p| PairRow {
                strategy: s.strategy.clone(),
                detector: p.detector.clone(),
                detected_rounds: p.detected_rounds,
                rounds: s.rounds,
                time_to_detect_ms: p.time_to_detect_ms,
                false_positives: p.false_positives,
                blocked_escalations: p.blocked_escalations,
            })
        })
        .collect();
    let report = DefenseReport {
        rounds: bench_rounds,
        seed,
        strategies,
        pairs,
        total_wall_us: walls.iter().sum(),
        stealth_evades_rate,
        stealth_caught_by_cusum,
        rate_catches_loud,
        filter_blocks_escalations,
        zero_false_positives,
        deterministic,
    };
    let json = report.to_json();
    println!("{json}");
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench report");
    eprintln!("[arena_bench] wrote {out_path}");

    assert!(
        stealth_evades_rate,
        "stealth must evade the naive rate threshold"
    );
    assert!(
        stealth_caught_by_cusum,
        "CUSUM must catch every stealth round"
    );
    assert!(
        rate_catches_loud,
        "the rate threshold must catch linear and burst probing"
    );
    assert!(
        filter_blocks_escalations,
        "the serving-phase filter must block every escalation syscall"
    );
    assert!(
        zero_false_positives,
        "no detector may false-positive on benign browsing"
    );
    assert!(
        deterministic,
        "matrix summaries must be byte-identical across runs"
    );
}
