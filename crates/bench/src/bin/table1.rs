//! Regenerate **Table I**: crash-resistant syscall candidates across the
//! five server applications.

use cr_core::report::render_table1;
use cr_core::syscall_finder::discover_server;

fn main() {
    cr_bench::banner("Table I — syscall probing candidates (Linux servers)");
    let mut reports = Vec::new();
    for target in cr_targets::all_servers() {
        eprintln!("[table1] discovering on {} ...", target.name);
        reports.push(discover_server(&target));
    }
    println!("{}", render_table1(&reports));
    println!("usable primitives found by the framework:");
    for r in &reports {
        for f in r.usable() {
            println!(
                "  {:<12} {:<12} arg {}  sources {:x?}  (service alive after: {})",
                r.server,
                f.syscall_name,
                f.arg_index,
                f.sources,
                matches!(
                    f.classification,
                    cr_core::Classification::Usable {
                        service_after: true
                    }
                )
            );
        }
    }
}
