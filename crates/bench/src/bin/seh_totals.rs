//! Regenerate the **§V-C aggregate numbers**: across 187 analyzed DLLs
//! the paper reports 6,745 C-specific exception handlers using 5,751
//! distinct filter functions, of which 808 survive symbolic execution
//! (handle access violations, catch-alls included).
//!
//! This is the scale test of the pipeline: every module is generated,
//! serialized, re-parsed, and every one of the 5,751 filter functions is
//! symbolically executed.

use cr_core::seh::analyze_module;
use cr_targets::browsers::{full_population_specs, generate_dll};

fn main() {
    cr_bench::banner("§V-C — full 187-DLL population (handlers / filters / after-SB)");
    let specs = full_population_specs();
    let mut handlers = 0usize;
    let mut filters = 0usize;
    let mut filters_after = 0usize;
    let mut guarded_after = 0usize;
    let mut undecided = 0usize;
    for (i, spec) in specs.iter().enumerate() {
        if i % 20 == 0 {
            eprintln!("[seh_totals] {}/{} modules ...", i, specs.len());
        }
        let img = generate_dll(spec);
        let a = analyze_module(&img);
        handlers += a.guarded_before;
        filters += a.filters_before;
        filters_after += a.filters_after;
        guarded_after += a.guarded_after;
        undecided += a.filters_undecided;
    }
    println!(
        "modules analyzed:                 {:>6}   (paper: 187)",
        specs.len()
    );
    println!("C-specific exception handlers:    {handlers:>6}   (paper: 6,745)");
    println!("distinct filter functions:        {filters:>6}   (paper: 5,751)");
    println!("filters surviving symex:          {filters_after:>6}   (paper: 808)");
    println!("AV-capable guarded locations:     {guarded_after:>6}   (paper: 1,797)");
    assert_eq!(guarded_after, 1_797);
    println!("undecided filters (manual check): {undecided:>6}");
    assert_eq!(handlers, 6_745);
    assert_eq!(filters, 5_751);
    assert_eq!(filters_after, 808);
}
