//! Regenerate **Table III**: unique exception filters per DLL before and
//! after symbolic execution, for the x64 and x86 module variants.

use cr_core::report::render_table3;
use cr_core::seh::analyze_module;
use cr_targets::browsers::{generate_dll, DllSpec, CALIBRATION};

fn main() {
    cr_bench::banner("Table III — exception filters before/after symbolic execution");
    let mut x64 = Vec::new();
    let mut x86 = Vec::new();
    for (i, c) in CALIBRATION.iter().enumerate() {
        if !c.in_table3 {
            continue;
        }
        eprintln!("[table3] generating + analyzing {} (x64, x86) ...", c.name);
        x64.push(analyze_module(&generate_dll(&DllSpec::from_calib_x64(
            c, i,
        ))));
        x86.push(analyze_module(&generate_dll(&DllSpec::from_calib_x86(
            c, i,
        ))));
    }
    println!("{}", render_table3(&x64, &x86));
    let undecided: usize = x64.iter().map(|a| a.filters_undecided).sum();
    println!(
        "x64 totals: {} filters, {} survive symbolic execution, {} undecided (manual verification)",
        x64.iter().map(|a| a.filters_before).sum::<usize>(),
        x64.iter().map(|a| a.filters_after).sum::<usize>(),
        undecided
    );
}
