//! Regenerate the **§VII-C fault-rate experiment** (the paper's
//! figure-equivalent series): handled-AV rates under browsing, asm.js and
//! probing workloads, the rate-based detector's verdicts, and the
//! mapped-only-AV policy's effect on each workload.

use cr_defense::policy::{asmjs_under_policy, probing_under_policy};
use cr_defense::RateDetector;
use cr_targets::browsers::firefox;
use cr_vm::NullHook;

fn main() {
    cr_bench::banner("§VII-C — access-violation rates and defenses (Firefox)");
    let det = RateDetector::default();

    // Workload 1: browsing.
    eprintln!("[rates] browsing ...");
    let mut sim = firefox::build();
    let t0 = sim.proc.vtime;
    for _ in 0..40 {
        sim.proc.call(sim.render_page, &[], 100_000, &mut NullHook);
    }
    let r = det.analyze(&sim.proc.fault_log, t0, sim.proc.vtime);
    println!(
        "  browsing (40 pages):   {:>6} AVs  {:>9.1} AV/s  peak/window {:>4}  alarm: {}",
        r.handled_faults, r.faults_per_second, r.peak_window, r.alarm
    );

    // Workload 2: asm.js stress.
    eprintln!("[rates] asm.js ...");
    let mut sim = firefox::build();
    let t0 = sim.proc.vtime;
    for _ in 0..10 {
        sim.proc
            .call(sim.asmjs_bench, &[], 1_000_000, &mut NullHook);
        sim.proc.run(200_000, &mut NullHook); // gaps between bursts
    }
    let r = det.analyze(&sim.proc.fault_log, t0, sim.proc.vtime);
    println!(
        "  asm.js (10 runs):      {:>6} AVs  {:>9.1} AV/s  peak/window {:>4}  alarm: {}",
        r.handled_faults, r.faults_per_second, r.peak_window, r.alarm
    );
    assert!(!r.alarm, "asm.js must stay under the detection threshold");

    // Workload 3: probing attack.
    eprintln!("[rates] probing ...");
    let mut sim = firefox::build();
    let t0 = sim.proc.vtime;
    for i in 0..300u64 {
        firefox::probe(&mut sim, 0x9000_0000_0000 + i * 0x1000, &mut NullHook);
    }
    let r = det.analyze(&sim.proc.fault_log, t0, sim.proc.vtime);
    println!(
        "  probing (300 probes):  {:>6} AVs  {:>9.1} AV/s  peak/window {:>4}  alarm: {}",
        r.handled_faults, r.faults_per_second, r.peak_window, r.alarm
    );
    assert!(r.alarm, "probing must trip the detector");

    // Mapped-only-AV policy.
    println!("\nmapped-only-AV policy (strict_unmapped_policy):");
    let relaxed = asmjs_under_policy(false);
    let strict = asmjs_under_policy(true);
    println!(
        "  asm.js:   policy off → survived={} handled={}   policy on → survived={} handled={}",
        relaxed.survived, relaxed.handled_faults, strict.survived, strict.handled_faults
    );
    let relaxed = probing_under_policy(false, 10);
    let strict = probing_under_policy(true, 10);
    println!(
        "  probing:  policy off → survived={} probes={}      policy on → survived={} probes={}",
        relaxed.survived, relaxed.probes_before_crash, strict.survived, strict.probes_before_crash
    );
    assert!(strict.probes_before_crash == 0 && !strict.survived);
}
