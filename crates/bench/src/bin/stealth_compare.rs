//! Crash-**tolerant** vs crash-**resistant** probing (the paper's §I
//! motivation): both defeat information hiding, but the classic restart-
//! based brute force leaves a trail of crashes ("thousands of crashes in
//! a short amount of time may easily raise alarms"), while a memory
//! oracle leaves none.
//!
//! Crash-tolerant attacker: corrupts a pointer the server dereferences in
//! user mode (lighttpd's request path), sends a request, and watches the
//! worker die; a supervisor restarts the server and the attacker moves to
//! the next address — the BROP-style loop.
//!
//! Crash-resistant attacker: the same scan through the `read` memory
//! oracle.

use cr_targets::servers::lighttpd;
use cr_vm::NullHook;

const WINDOW: u64 = 0x60_0000_0000;
const PAGES: u64 = 24;
const SECRET_SLOT: u64 = 17;

fn main() {
    cr_bench::banner("§I — crash-tolerant vs crash-resistant probing (lighttpd)");
    let secret = WINDOW + SECRET_SLOT * 0x1000;

    // ---- crash-tolerant: corrupt a user-mode-dereferenced pointer --------
    let t = lighttpd::target();
    let mut crashes = 0u64;
    let mut restarts = 0u64;
    let mut found_tolerant = None;
    let mut p = t.boot(&mut NullHook);
    p.mem.map(secret, 0x1000, cr_vm::Prot::R);
    // The path string must "parse" when mapped: leave zeros (NUL = empty
    // path → open fails gracefully; the deref itself is the probe).
    for i in 0..PAGES {
        let addr = WINDOW + i * 0x1000;
        // Attacker write primitive: corrupt the touched path pointer.
        let path_field = cr_targets::servers::DATA_BASE + 0x20;
        p.mem.write_u64(path_field, addr).unwrap();
        let conn = p.net.client_connect(t.port).unwrap();
        p.run(300_000, &mut NullHook);
        p.net.client_send(conn, b"GET /\n\n");
        p.run(1_500_000, &mut NullHook);
        if p.crash().is_some() {
            crashes += 1;
            // Supervisor restarts the server; the attacker carries on.
            p = t.boot(&mut NullHook);
            p.mem.map(secret, 0x1000, cr_vm::Prot::R);
            restarts += 1;
        } else {
            found_tolerant = Some(addr);
            break;
        }
    }
    println!(
        "crash-tolerant:  found {:?} after {} crashes / {} restarts — loud",
        found_tolerant.map(|a| format!("{a:#x}")),
        crashes,
        restarts
    );
    assert_eq!(found_tolerant, Some(secret));
    assert_eq!(crashes, SECRET_SLOT);

    // ---- crash-resistant: the read memory oracle ---------------------------
    use cr_exploits::MemoryOracle;
    let mut oracle = cr_exploits::nginx::NginxOracle::new();
    oracle.proc().mem.map(secret, 0x1000, cr_vm::Prot::RW);
    let found = cr_exploits::find_region(&mut oracle, WINDOW, WINDOW + PAGES * 0x1000, 0x1000);
    println!(
        "crash-resistant: found {:?} after {} probes / 0 crashes — silent",
        found.map(|a| format!("{a:#x}")),
        oracle.probes()
    );
    assert_eq!(found, Some(secret));
    assert!(!oracle.crashed());

    println!(
        "\nsame result, but the crash-resistant attacker is invisible to \
         crash-count monitoring ({} vs 0 crashes)",
        crashes
    );
}
