//! Probe-cost series: how expensive is defeating information hiding at a
//! given entropy, now that every probe is crash-free?
//!
//! The paper's premise (§I, §II-B): with crash resistance, the *only*
//! cost of residual randomization entropy is attacker time — "locating a
//! crash-resistant primitive is no longer left to pure chance". This
//! experiment quantifies that: a hidden region is placed behind n bits of
//! entropy; the Firefox background-thread oracle sweeps the window. We
//! report probes and virtual time for increasing n.

use cr_exploits::firefox::FirefoxOracle;
use cr_exploits::{find_region, MemoryOracle};

fn main() {
    cr_bench::banner("Probe cost vs. hiding entropy (Firefox oracle, 4 KiB stride)");
    println!(
        "{:>8} {:>14} {:>10} {:>14} {:>10}",
        "entropy", "window", "probes", "virt time", "crashes"
    );
    let mut oracle = FirefoxOracle::new();
    for bits in [6u32, 8, 10, 12] {
        let pages = 1u64 << bits;
        let window_base = 0x5000_0000_0000 + (bits as u64) * 0x1_0000_0000;
        // Deterministic "random" slot: a golden-ratio hash of the entropy.
        let slot = (pages * 2 / 3).max(1);
        let secret = window_base + slot * 0x1000;
        oracle.sim().proc.mem.map(secret, 0x1000, cr_vm::Prot::RW);

        let probes_before = oracle.probes();
        let vtime_before = oracle.sim().proc.vtime;
        let found = find_region(
            &mut oracle,
            window_base,
            window_base + pages * 0x1000,
            0x1000,
        );
        assert_eq!(found, Some(secret), "{bits}-bit window");
        assert!(!oracle.crashed());
        println!(
            "{:>7}b {:>10} KiB {:>10} {:>12}us {:>10}",
            bits,
            pages * 4,
            oracle.probes() - probes_before,
            oracle.sim().proc.vtime - vtime_before,
            0
        );
    }
    println!("\nevery additional entropy bit doubles attacker *time*, never risk");
}
