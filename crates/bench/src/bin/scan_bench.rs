//! Traceless-scanner bench: per-module scan throughput plus the
//! static/dynamic site-agreement table, as machine-readable JSON
//! written to `BENCH_static.json`.
//!
//! The corpus is every calibrated server target plus every bundled
//! harness-less corpus module. Two measurements:
//!
//! 1. **throughput** — full [`cr_scan::scan_elf`] per module (CFG
//!    recovery, temporal reachability, per-site dataflow), best of
//!    `SCAN_BENCH_ROUNDS` (default 3) to shed scheduling noise;
//! 2. **agreement** — for each server, [`cr_scan::cross_validate`]
//!    against the dynamic taint observer: matched / static-only /
//!    taint-only site counts and static-side recall.
//!
//! Asserts the correctness invariants while it measures: static
//! recall must be 100% against every taint-confirmed site set, and
//! report bytes must be identical across repeated scans. Wall-time
//! numbers are recorded, never asserted — timing belongs in the JSON,
//! not in CI pass/fail.

use serde::Serialize;
use std::time::Instant;

#[derive(serde::Serialize)]
struct ModuleRow {
    module: String,
    functions: usize,
    instructions: usize,
    sites: usize,
    constant: usize,
    memory: usize,
    unknown: usize,
    init_only: usize,
    serving: usize,
    both: usize,
    unreached: usize,
    /// Best-of-rounds wall time for one full scan, microseconds.
    wall_us: u64,
    /// Syscall sites resolved per second at the best-of-rounds wall.
    sites_per_sec: f64,
    /// Instructions walked per second at the best-of-rounds wall.
    insts_per_sec: f64,
}

#[derive(serde::Serialize)]
struct AgreementRow {
    module: String,
    matched: usize,
    static_only: usize,
    taint_only: usize,
    recall: f64,
}

#[derive(serde::Serialize)]
struct StaticReport {
    rounds: usize,
    modules: Vec<ModuleRow>,
    agreement: Vec<AgreementRow>,
    total_sites: usize,
    total_instructions: usize,
    total_wall_us: u64,
    sites_per_sec: f64,
    /// Static recall was 1.0 against every dynamic site set.
    recall_100: bool,
    /// Repeated scans produced byte-identical reports.
    deterministic: bool,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    cr_bench::banner("scan bench — traceless static discovery vs the taint observer");
    let rounds = env_usize("SCAN_BENCH_ROUNDS", 3).max(1);
    let out_path = std::env::var("SCAN_BENCH_OUT").unwrap_or_else(|_| "BENCH_static.json".into());

    let servers = cr_targets::all_servers();
    let mut corpus: Vec<(&str, &cr_image::ElfImage)> =
        servers.iter().map(|t| (t.name, &t.image)).collect();
    let modules = cr_targets::corpus::modules();
    for m in &modules {
        corpus.push((m.name, &m.image));
    }

    let mut rows = Vec::with_capacity(corpus.len());
    let mut deterministic = true;
    eprintln!(
        "[scan_bench] scanning {} module(s) x {rounds} round(s) ...",
        corpus.len()
    );
    for (name, image) in &corpus {
        let mut wall = u64::MAX;
        let mut report = None;
        for _ in 0..rounds {
            let start = Instant::now();
            let r = cr_scan::scan_elf(name, image);
            wall = wall.min(start.elapsed().as_micros() as u64);
            if let Some(prev) = &report {
                if cr_scan::ScanReport::to_json(prev) != r.to_json() {
                    eprintln!("[scan_bench] DETERMINISM FAILURE on {name}");
                    deterministic = false;
                }
            }
            report = Some(r);
        }
        let report = report.expect("at least one round");
        let c = report.counts();
        let secs = wall.max(1) as f64 / 1e6;
        rows.push(ModuleRow {
            module: report.module.clone(),
            functions: report.functions,
            instructions: report.instructions,
            sites: c.sites,
            constant: c.constant,
            memory: c.memory,
            unknown: c.unknown,
            init_only: c.init_only,
            serving: c.serving,
            both: c.both,
            unreached: c.unreached,
            wall_us: wall,
            sites_per_sec: c.sites as f64 / secs,
            insts_per_sec: report.instructions as f64 / secs,
        });
    }

    eprintln!(
        "[scan_bench] cross-validating {} server(s) ...",
        servers.len()
    );
    let mut agreement = Vec::with_capacity(servers.len());
    let mut recall_100 = true;
    for t in &servers {
        let (_, a) = cr_scan::cross_validate(t);
        if a.recall() < 1.0 || !a.taint_only.is_empty() {
            eprintln!(
                "[scan_bench] RECALL FAILURE on {}: missed {:x?}",
                t.name, a.taint_only
            );
            recall_100 = false;
        }
        agreement.push(AgreementRow {
            module: a.module.clone(),
            matched: a.matched.len(),
            static_only: a.static_only.len(),
            taint_only: a.taint_only.len(),
            recall: a.recall(),
        });
    }

    let total_sites: usize = rows.iter().map(|r| r.sites).sum();
    let total_instructions: usize = rows.iter().map(|r| r.instructions).sum();
    let total_wall_us: u64 = rows.iter().map(|r| r.wall_us).sum();
    let report = StaticReport {
        rounds,
        modules: rows,
        agreement,
        total_sites,
        total_instructions,
        total_wall_us,
        sites_per_sec: total_sites as f64 / (total_wall_us.max(1) as f64 / 1e6),
        recall_100,
        deterministic,
    };
    let json = report.to_json();
    println!("{json}");
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench report");
    eprintln!("[scan_bench] wrote {out_path}");

    assert!(
        recall_100,
        "static recall must be 100% on the calibrated corpus"
    );
    assert!(
        deterministic,
        "scan reports must be byte-identical across runs"
    );
    assert!(total_sites > 0, "the corpus must contain syscall sites");
}
