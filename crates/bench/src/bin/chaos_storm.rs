//! Chaos storm: the smoke campaign under every built-in fault plan,
//! serial and sharded, as machine-readable JSON.
//!
//! For each plan this runs the campaign at `jobs = 1` and
//! `jobs = CHAOS_JOBS` (default 8) and asserts the chaos layer's core
//! invariants while it measures:
//!
//! * the deterministic report halves are **byte-identical** across
//!   worker counts — fault injection is keyed on task identity, not
//!   scheduling;
//! * per-class error counts equal the simulated expectation for the
//!   injected faults;
//! * with one retry, every built-in plan recovers: `degraded` stays
//!   `false`.

use cr_campaign::{expected_error_counts, run_campaign, CampaignSpec, EngineConfig};
use cr_chaos::{FaultInjector, FaultPlan, Site, BUILTIN_PLANS};
use serde::Serialize;
use std::sync::Arc;

#[derive(serde::Serialize)]
struct PlanStats {
    plan: String,
    serial_wall_us: u64,
    sharded_wall_us: u64,
    faults_fired: u64,
    errors: cr_campaign::ErrorCounts,
    backoff_ms: u64,
    degraded: bool,
    deterministic: bool,
    accounted: bool,
}

#[derive(serde::Serialize)]
struct StormReport {
    tasks: usize,
    jobs: usize,
    plans: Vec<PlanStats>,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    cr_bench::banner("chaos storm — smoke campaign under every built-in fault plan");
    let jobs = env_usize("CHAOS_JOBS", 8);
    let spec = CampaignSpec::smoke(2017);

    let mut plans = Vec::new();
    for name in BUILTIN_PLANS {
        let plan = FaultPlan::builtin(name).expect("built-in plan");
        let run = |jobs: usize| {
            let injector = Arc::new(FaultInjector::new(plan.clone()));
            let cfg = EngineConfig {
                jobs,
                injector: Some(injector.clone()),
                ..EngineConfig::default()
            };
            let report = run_campaign(&spec, &cfg).expect("in-memory campaign");
            (report, injector, cfg)
        };

        eprintln!("[chaos_storm] plan {name} ...");
        let (serial, _, serial_cfg) = run(1);
        let (sharded, inj, _) = run(jobs);

        let expected = expected_error_counts(&spec, &serial_cfg);
        let deterministic = serial.results_json() == sharded.results_json();
        let accounted = serial.errors == expected && sharded.errors == expected;
        let stats = PlanStats {
            plan: name.to_string(),
            serial_wall_us: serial.metrics.total_wall_us,
            sharded_wall_us: sharded.metrics.total_wall_us,
            faults_fired: Site::ALL.iter().map(|&s| inj.fired_count(s)).sum(),
            errors: serial.errors,
            backoff_ms: serial.metrics.backoff_ms,
            degraded: serial.degraded || sharded.degraded,
            deterministic,
            accounted,
        };
        assert!(deterministic, "plan {name}: reports differ across jobs");
        assert!(
            accounted,
            "plan {name}: error counts do not match simulation"
        );
        assert!(
            !stats.degraded,
            "plan {name}: a retry must recover every task"
        );
        plans.push(stats);
    }

    let report = StormReport {
        tasks: spec.tasks.len(),
        jobs,
        plans,
    };
    println!("{}", report.to_json());
}
