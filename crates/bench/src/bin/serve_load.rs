//! Serve-layer load bench: cold-vs-warm request cost and concurrent
//! client throughput against an in-process resident server, as
//! machine-readable JSON written to `BENCH_serve.json`.
//!
//! One server, `SERVE_LOAD_CLIENTS` concurrent client connections
//! (default 8, the acceptance floor), `SERVE_LOAD_REQUESTS` requests
//! each (default 4). The first request is the cold one — it populates
//! the process-wide warm state (resident parsed image, module
//! summaries, verdicts, solver memo) — and every subsequent request
//! measures the warm path.
//!
//! Asserts the serve determinism contract while it measures: every
//! completed request's result document must be byte-identical, warm
//! requests must never reach the solver, and no request may execute
//! more than once. Wall-time numbers are recorded, never asserted.
//!
//! A second phase scales the same warm workload across a supervised
//! fleet at 1/2/4/8 workers (`fleet` entries in the report): eight
//! distinct single-module specs spread over the consistent-hash ring,
//! hammered by the same client pool, byte-identity and exactly-once
//! delivery asserted throughout. Monotonic throughput scaling across
//! worker counts is a *soft* invariant: recorded as `fleet_monotonic`
//! and warned about, never asserted (timing stays out of CI pass/fail).
//! Set `SERVE_LOAD_FLEET=0` to skip.

use cr_fleet::{Fleet, FleetConfig};
use cr_serve::{Client, ServeConfig, Server};
use serde::Serialize;
use std::time::Instant;

#[derive(serde::Serialize)]
struct ServeLoadReport {
    clients: usize,
    requests_per_client: usize,
    total_requests: usize,
    cold_us: u64,
    /// One warm request with no concurrent load: the pure cache win.
    warm_solo_us: u64,
    /// Client-observed warm latencies under full concurrency —
    /// queueing delay included, which is the point of a load bench.
    warm_p50_us: u64,
    warm_p95_us: u64,
    warm_max_us: u64,
    /// Completed warm requests per second across all clients.
    throughput_rps: f64,
    /// Wall time of the concurrent warm phase.
    warm_phase_us: u64,
    /// Cold latency over solo warm latency: what the warm state buys.
    cold_vs_warm: f64,
    busy_rejections: u64,
    requests_completed: u64,
    frames_sent: u64,
    solver_calls_warm: u64,
    deterministic: bool,
    /// Fleet scaling points (1/2/4/8 workers over the warm workload);
    /// empty when the fleet phase is skipped.
    fleet: Vec<FleetScalePoint>,
    /// Soft invariant: fleet throughput never dropped more than 10%
    /// when workers were added (warned, never asserted — timing).
    fleet_monotonic: bool,
}

/// One fleet worker-count measurement.
#[derive(serde::Serialize)]
struct FleetScalePoint {
    workers: usize,
    total_requests: usize,
    /// Completed warm requests per second across all clients.
    throughput_rps: f64,
    p50_us: u64,
    p95_us: u64,
    /// Requests that coalesced onto an in-flight identical admission.
    coalesced: u64,
    /// Dispatch attempts that failed over mid-measurement (healthy
    /// runs should show 0).
    failovers: u64,
    /// Workers killed by the supervisor mid-measurement.
    kills: u64,
    /// Worker restarts mid-measurement.
    restarts: u64,
    /// Every result byte-identical to its one-shot reference.
    deterministic: bool,
    /// Delivery ledger held exactly one Result per request.
    exactly_once: bool,
}

/// Eight distinct single-module SEH specs: distinct consistent-hash
/// route keys, so the mix spreads across every ring size measured.
fn fleet_specs() -> Vec<String> {
    cr_targets::browsers::CALIBRATION
        .iter()
        .take(8)
        .map(|c| {
            format!(
                r#"{{"name":"fleet-load-{0}","seed":2017,"tasks":[{{"SehAnalysis":"{0}"}}]}}"#,
                c.name
            )
        })
        .collect()
}

/// One fleet scaling point: start a `workers`-node fleet, warm every
/// spec once, then drive the client pool over the spec mix.
fn fleet_point(
    workers: usize,
    clients: usize,
    requests_per_client: usize,
    specs: &[String],
    references: &[Vec<u8>],
) -> FleetScalePoint {
    let fleet = Fleet::start(FleetConfig {
        workers,
        admit_capacity: clients * 4,
        ..FleetConfig::default()
    })
    .expect("fleet starts");
    let addr = fleet.addr().to_string();

    // Warm-up: every spec once, so each owner node (and, via
    // replication, every sibling) is warm before the clock starts.
    for (spec, reference) in specs.iter().zip(references) {
        let mut client = Client::connect(&addr).expect("warm-up connect");
        let response = client
            .request_with_retry(spec, 50)
            .expect("warm-up request");
        assert!(response.completed(), "warm-up error={:?}", response.error);
        assert_eq!(response.result.as_deref(), Some(reference.as_slice()));
    }

    let phase_started = Instant::now();
    let results: Vec<(Vec<u64>, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = Client::connect(&addr).expect("fleet connect");
                    let mut latencies = Vec::with_capacity(requests_per_client);
                    let mut identical = true;
                    for r in 0..requests_per_client {
                        let n = (c + r) % specs.len();
                        let started = Instant::now();
                        let response = client
                            .request_with_retry(&specs[n], 50)
                            .expect("fleet request transport");
                        latencies.push(started.elapsed().as_micros() as u64);
                        assert!(
                            response.completed(),
                            "fleet request rejected: busy={:?} error={:?}",
                            response.busy,
                            response.error
                        );
                        identical &= response.result.as_deref() == Some(references[n].as_slice());
                    }
                    (latencies, identical)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet client thread"))
            .collect()
    });
    let phase_us = phase_started.elapsed().as_micros() as u64;

    let mut latencies: Vec<u64> = Vec::new();
    let mut deterministic = true;
    for (lat, identical) in results {
        latencies.extend(lat);
        deterministic &= identical;
    }
    latencies.sort_unstable();
    let live_exactly_once = fleet
        .delivery_counts()
        .iter()
        .all(|&(_, deliveries)| deliveries == 1);
    let stats = fleet.join();
    let exactly_once = live_exactly_once && stats.ledger_violations == 0;
    let total_requests = latencies.len();
    FleetScalePoint {
        workers,
        total_requests,
        throughput_rps: total_requests as f64 / (phase_us.max(1) as f64 / 1e6),
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        coalesced: stats.coalesced,
        failovers: stats.failovers,
        kills: stats.kills,
        restarts: stats.restarts,
        deterministic,
        exactly_once,
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

// Two SEH modules: the fully cacheable workload, so the warm path
// exercises exactly the resident-image + summary + verdict caches.
const SPEC: &str = r#"{"name":"serve-load","seed":2017,"tasks":[{"SehAnalysis":"xmllite"},{"SehAnalysis":"jscript9"}]}"#;

fn main() {
    cr_bench::banner("serve load — cold vs warm latency, concurrent client throughput");
    let clients = env_usize("SERVE_LOAD_CLIENTS", 8);
    let requests_per_client = env_usize("SERVE_LOAD_REQUESTS", 4);
    let out_path = std::env::var("SERVE_LOAD_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());

    let server = Server::bind(ServeConfig {
        // Deep enough that backpressure is visible but not dominant.
        admit_capacity: clients * 2,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("clean drain"));

    // Cold request: populates every layer of the warm state.
    eprintln!("[serve_load] cold request ...");
    let mut warmup = Client::connect(&addr).expect("connect");
    let started = Instant::now();
    let cold = warmup.request(SPEC).expect("cold request");
    let cold_us = started.elapsed().as_micros() as u64;
    assert!(cold.completed(), "cold error={:?}", cold.error);
    let reference = cold.result.clone().expect("cold result document");

    // Warm phase: `clients` threads hammering the same spec.
    eprintln!(
        "[serve_load] warm phase: {clients} client(s) x {requests_per_client} request(s) ..."
    );
    let solver_before = cr_symex::SolverCounters::snapshot();
    let phase_started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("warm connect");
                let mut latencies = Vec::with_capacity(requests_per_client);
                let mut identical = true;
                for _ in 0..requests_per_client {
                    let started = Instant::now();
                    let response = client
                        .request_with_retry(SPEC, 50)
                        .expect("warm request transport");
                    latencies.push(started.elapsed().as_micros() as u64);
                    assert!(
                        response.completed(),
                        "warm request rejected: busy={:?} error={:?}",
                        response.busy,
                        response.error
                    );
                    identical &= response.result.as_deref() == Some(reference.as_slice());
                }
                (latencies, identical)
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    let mut deterministic = true;
    for w in workers {
        let (lat, identical) = w.join().expect("client thread");
        latencies.extend(lat);
        deterministic &= identical;
    }
    let warm_phase_us = phase_started.elapsed().as_micros() as u64;
    // Scoped delta, not an absolute read: the invariant is about this
    // phase's activity only.
    let solver_calls_warm = solver_before.delta().solver_calls;

    // One more warm request with the server otherwise idle: the pure
    // per-request warm cost, no queueing delay.
    let started = Instant::now();
    let solo = warmup.request(SPEC).expect("solo warm request");
    let warm_solo_us = started.elapsed().as_micros() as u64;
    assert!(solo.completed(), "solo error={:?}", solo.error);
    deterministic &= solo.result.as_deref() == Some(reference.as_slice());

    for ((conn, req), n) in handle.execution_counts() {
        assert_eq!(n, 1, "request ({conn},{req}) executed {n} times");
    }

    // Drain and collect lifetime stats.
    let mut closer = Client::connect(&addr).expect("closer connect");
    closer.shutdown().expect("shutdown ack");
    let stats = runner.join().expect("server thread");
    assert_eq!(
        stats.exec_violations, 0,
        "retired execution-ledger entries must each be exactly one"
    );

    // Fleet scaling phase: the same warm workload behind 1/2/4/8
    // supervised workers.
    let fleet_points = if env_usize("SERVE_LOAD_FLEET", 1) != 0 {
        let specs = fleet_specs();
        eprintln!(
            "[serve_load] fleet phase: computing {} one-shot references ...",
            specs.len()
        );
        let references: Vec<Vec<u8>> = specs
            .iter()
            .map(|spec| {
                let parsed = cr_campaign::CampaignSpec::from_json(spec).expect("fleet spec parses");
                cr_campaign::run_campaign(&parsed, &cr_campaign::EngineConfig::default())
                    .expect("fleet reference run")
                    .results_json()
                    .into_bytes()
            })
            .collect();
        [1usize, 2, 4, 8]
            .iter()
            .map(|&w| {
                eprintln!("[serve_load] fleet phase: {w} worker(s) ...");
                let point = fleet_point(w, clients, requests_per_client, &specs, &references);
                eprintln!(
                    "[serve_load]   {w} worker(s): {:.0} rps (p50 {} us)",
                    point.throughput_rps, point.p50_us
                );
                point
            })
            .collect()
    } else {
        Vec::new()
    };

    // Soft scaling invariant: adding workers should not lose
    // throughput. Timing is hardware- and load-dependent, so a
    // violation warns (and is recorded in the JSON) but never fails
    // the bench; 10% slack sheds run-to-run scheduler noise.
    let mut fleet_monotonic = true;
    for pair in fleet_points.windows(2) {
        if pair[1].throughput_rps < pair[0].throughput_rps * 0.9 {
            eprintln!(
                "[serve_load] WARN: throughput dropped {}w -> {}w ({:.0} -> {:.0} rps)",
                pair[0].workers, pair[1].workers, pair[0].throughput_rps, pair[1].throughput_rps
            );
            fleet_monotonic = false;
        }
    }

    latencies.sort_unstable();
    let total_requests = latencies.len();
    let warm_p50_us = percentile(&latencies, 0.50);
    let report = ServeLoadReport {
        clients,
        requests_per_client,
        total_requests,
        cold_us,
        warm_solo_us,
        warm_p50_us,
        warm_p95_us: percentile(&latencies, 0.95),
        warm_max_us: latencies.last().copied().unwrap_or(0),
        throughput_rps: total_requests as f64 / (warm_phase_us.max(1) as f64 / 1e6),
        warm_phase_us,
        cold_vs_warm: cold_us as f64 / warm_solo_us.max(1) as f64,
        busy_rejections: stats.busy_rejections,
        requests_completed: stats.requests_completed,
        frames_sent: stats.frames_sent,
        solver_calls_warm,
        deterministic,
        fleet: fleet_points,
        fleet_monotonic,
    };
    let json = report.to_json();
    println!("{json}");
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench report");
    eprintln!("[serve_load] wrote {out_path}");

    assert!(
        deterministic,
        "every warm result must be byte-identical to the cold one"
    );
    assert_eq!(
        solver_calls_warm, 0,
        "warm requests must never reach the solver"
    );
    assert_eq!(
        stats.requests_completed,
        (total_requests + 2) as u64,
        "every admitted request must complete ({stats:?})"
    );
    for point in &report.fleet {
        assert!(
            point.deterministic,
            "fleet results at {} worker(s) must be byte-identical",
            point.workers
        );
        assert!(
            point.exactly_once,
            "fleet delivery at {} worker(s) must be exactly-once",
            point.workers
        );
    }
}
