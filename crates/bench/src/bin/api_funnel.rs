//! Regenerate the **§V-B Windows API funnel**: corpus → pointer-taking →
//! fuzz survivors → on execution path → JS-reachable → usable (zero).

use cr_core::api_fuzzer::run_funnel;
use cr_core::report::render_funnel;

/// Generated corpus size; with the 12 curated functions the total is
/// 20,672 — the paper's MSDN extraction count.
const GENERATED: usize = 20_660;

fn main() {
    cr_bench::banner("§V-B — Windows API crash-resistance funnel (IE 11)");
    eprintln!("[api_funnel] building ie-sim with a {GENERATED}-function corpus ...");
    let mut sim = cr_targets::browsers::ie::build_with_corpus(GENERATED, 2017);
    eprintln!("[api_funnel] fuzzing + browsing + classifying ...");
    let report = run_funnel(&mut sim, 3);
    println!("{}", render_funnel(&report));
    println!(
        "negative result reproduced: {} usable Windows API primitives",
        report.usable
    );
}
