//! Campaign scaling bench: serial vs sharded wall time, cold vs warm
//! content-addressed cache, as machine-readable JSON.
//!
//! Three runs over the same SEH campaign (a slice of the §V-C module
//! population, `CAMPAIGN_MODULES` wide, default 24):
//!
//! 1. **serial cold** — `jobs = 1`, fresh cache directory;
//! 2. **sharded cold** — `jobs = CAMPAIGN_JOBS` (default 8), another
//!    fresh cache directory;
//! 3. **sharded warm** — same jobs, rerun against run 2's cache.
//!
//! Asserts the paper-level invariants while it measures: serial and
//! sharded runs must produce byte-identical deterministic reports, and
//! the warm rerun must not invoke the SAT solver at all.

use cr_campaign::{run_campaign, CampaignSpec, CampaignTask, EngineConfig};
use serde::Serialize;
use std::path::PathBuf;

#[derive(serde::Serialize)]
struct RunStats {
    wall_us: u64,
    filter_hits: u64,
    filter_misses: u64,
    module_hits: u64,
    module_misses: u64,
    hit_rate: f64,
    solver_calls: u64,
}

#[derive(serde::Serialize)]
struct ScaleReport {
    modules: usize,
    jobs: usize,
    serial_cold: RunStats,
    sharded_cold: RunStats,
    sharded_warm: RunStats,
    sharded_speedup: f64,
    warm_speedup: f64,
    deterministic: bool,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    cr_bench::banner("campaign scaling — serial vs sharded, cold vs warm cache");
    let modules = env_usize("CAMPAIGN_MODULES", 24);
    let jobs = env_usize("CAMPAIGN_JOBS", 8);

    let specs = cr_targets::browsers::full_population_specs();
    let tasks: Vec<CampaignTask> = specs
        .iter()
        .take(modules)
        .map(|s| CampaignTask::SehAnalysis(s.name.clone()))
        .collect();
    let spec = CampaignSpec {
        name: "campaign-scale".into(),
        seed: 2017,
        tasks,
    };

    let scratch = std::env::temp_dir().join(format!("cr-campaign-scale-{}", std::process::id()));
    let serial_dir = scratch.join("serial");
    let sharded_dir = scratch.join("sharded");

    let run = |jobs: usize, dir: PathBuf| {
        let before = cr_symex::solver_calls();
        let report = run_campaign(
            &spec,
            &EngineConfig {
                jobs,
                retries: 0,
                cache_dir: Some(dir),
                ..EngineConfig::default()
            },
        )
        .expect("campaign cache I/O");
        let m = report.metrics.clone();
        let results = report.results_json();
        (m, results, cr_symex::solver_calls() - before)
    };

    eprintln!("[campaign_scale] serial cold ({modules} modules) ...");
    let (serial_m, serial_results, serial_solver) = run(1, serial_dir);
    eprintln!("[campaign_scale] sharded cold (jobs={jobs}) ...");
    let (cold_m, cold_results, cold_solver) = run(jobs, sharded_dir.clone());
    eprintln!("[campaign_scale] sharded warm ...");
    let (warm_m, warm_results, warm_solver) = run(jobs, sharded_dir);

    let stats = |m: &cr_campaign::CampaignMetrics, solver: u64| RunStats {
        wall_us: m.total_wall_us,
        filter_hits: m.cache.filter_hits,
        filter_misses: m.cache.filter_misses,
        module_hits: m.cache.module_hits,
        module_misses: m.cache.module_misses,
        hit_rate: m.cache.hit_rate(),
        solver_calls: solver,
    };
    let deterministic = serial_results == cold_results && cold_results == warm_results;
    let report = ScaleReport {
        modules,
        jobs,
        serial_cold: stats(&serial_m, serial_solver),
        sharded_cold: stats(&cold_m, cold_solver),
        sharded_warm: stats(&warm_m, warm_solver),
        sharded_speedup: serial_m.total_wall_us as f64 / cold_m.total_wall_us.max(1) as f64,
        warm_speedup: cold_m.total_wall_us as f64 / warm_m.total_wall_us.max(1) as f64,
        deterministic,
    };
    println!("{}", report.to_json());

    let _ = std::fs::remove_dir_all(&scratch);
    assert!(
        deterministic,
        "serial and sharded reports must be byte-identical"
    );
    assert_eq!(warm_solver, 0, "warm rerun must not touch the SAT solver");
}
