//! Campaign scaling bench: serial vs sharded wall time, cold vs warm
//! content-addressed cache, as machine-readable JSON.
//!
//! Three runs over the same SEH campaign (a slice of the §V-C module
//! population, `CAMPAIGN_MODULES` wide, default 24):
//!
//! 1. **serial cold** — `jobs = 1`, fresh cache directory;
//! 2. **sharded cold** — `jobs = CAMPAIGN_JOBS` (default 8), another
//!    fresh cache directory;
//! 3. **sharded warm** — same jobs, rerun against run 2's cache;
//! 4. **sharded cold, traced** — run 2 again under an active cr-trace
//!    session, to price the observability spine. Because a single cold
//!    run's wall time is scheduling-noise-dominated at the default
//!    workload, the `trace_overhead` ratio compares best-of-N wall
//!    times from `CAMPAIGN_PRICE_ROUNDS` (default 3) alternating
//!    untraced/traced cold pairs; expect it near 1.0 (within ~5%) on a
//!    quiet machine.
//!
//! Asserts the paper-level invariants while it measures: serial,
//! sharded, and traced runs must produce byte-identical deterministic
//! reports, and the warm rerun must not invoke the SAT solver at all.

use cr_campaign::{run_campaign, CampaignSpec, CampaignTask, EngineConfig};
use serde::Serialize;
use std::path::PathBuf;

#[derive(serde::Serialize)]
struct RunStats {
    wall_us: u64,
    filter_hits: u64,
    filter_misses: u64,
    module_hits: u64,
    module_misses: u64,
    hit_rate: f64,
    solver_calls: u64,
}

#[derive(serde::Serialize)]
struct ScaleReport {
    modules: usize,
    jobs: usize,
    serial_cold: RunStats,
    sharded_cold: RunStats,
    sharded_warm: RunStats,
    sharded_cold_traced: RunStats,
    trace_events: usize,
    trace_dropped: u64,
    /// Traced / untraced best-of-N sharded-cold wall ratio (1.0 = free).
    trace_overhead: f64,
    /// How many untraced/traced cold pairs fed `trace_overhead`.
    price_rounds: usize,
    sharded_speedup: f64,
    warm_speedup: f64,
    deterministic: bool,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    cr_bench::banner("campaign scaling — serial vs sharded, cold vs warm cache");
    let modules = env_usize("CAMPAIGN_MODULES", 24);
    let jobs = env_usize("CAMPAIGN_JOBS", 8);
    let price_rounds = env_usize("CAMPAIGN_PRICE_ROUNDS", 3).max(1);

    let specs = cr_targets::browsers::full_population_specs();
    let tasks: Vec<CampaignTask> = specs
        .iter()
        .take(modules)
        .map(|s| CampaignTask::SehAnalysis(s.name.clone()))
        .collect();
    let spec = CampaignSpec::builder()
        .name("campaign-scale")
        .seed(2017)
        .tasks(tasks)
        .build()
        .expect("scale spec is valid");

    let scratch = std::env::temp_dir().join(format!("cr-campaign-scale-{}", std::process::id()));
    let serial_dir = scratch.join("serial");
    let sharded_dir = scratch.join("sharded");

    let run = |jobs: usize, dir: PathBuf| {
        let before = cr_symex::solver_calls();
        let report = run_campaign(
            &spec,
            &EngineConfig {
                jobs,
                retries: 0,
                cache_dir: Some(dir),
                ..EngineConfig::default()
            },
        )
        .expect("campaign cache I/O");
        let m = report.metrics.clone();
        let results = report.results_json();
        (m, results, cr_symex::solver_calls() - before)
    };

    eprintln!("[campaign_scale] serial cold ({modules} modules) ...");
    let (serial_m, serial_results, serial_solver) = run(1, serial_dir);
    eprintln!("[campaign_scale] sharded cold (jobs={jobs}) ...");
    let (cold_m, cold_results, cold_solver) = run(jobs, sharded_dir.clone());
    eprintln!("[campaign_scale] sharded warm ...");
    let (warm_m, warm_results, warm_solver) = run(jobs, sharded_dir);

    // Price the tracing spine. One cold run's wall time swings far more
    // than the spine costs, so run paired cold runs — flipping which of
    // untraced/traced goes first each round to cancel in-pair ordering
    // drift — and compare the best (minimum) wall on each side, the
    // standard noise-resistant estimator for a near-zero overhead.
    eprintln!("[campaign_scale] pricing the trace spine ({price_rounds} cold pair(s)) ...");
    let mut untraced_best = cold_m.total_wall_us;
    let mut traced_best = u64::MAX;
    let mut traced_first = None;
    let run_traced = |round: usize, traced_best: &mut u64, traced_first: &mut Option<_>| {
        cr_trace::start();
        let (m, results, solver) = run(jobs, scratch.join(format!("price-traced-{round}")));
        let trace = cr_trace::finish();
        *traced_best = (*traced_best).min(m.total_wall_us);
        if traced_first.is_none() {
            *traced_first = Some((m, results, solver, trace));
        }
    };
    for round in 0..price_rounds {
        if round % 2 == 0 {
            let (m, _, _) = run(jobs, scratch.join(format!("price-untraced-{round}")));
            untraced_best = untraced_best.min(m.total_wall_us);
            run_traced(round, &mut traced_best, &mut traced_first);
        } else {
            run_traced(round, &mut traced_best, &mut traced_first);
            let (m, _, _) = run(jobs, scratch.join(format!("price-untraced-{round}")));
            untraced_best = untraced_best.min(m.total_wall_us);
        }
    }
    let (traced_m, traced_results, traced_solver, trace) =
        traced_first.expect("at least one traced round ran");

    let stats = |m: &cr_campaign::CampaignMetrics, solver: u64| RunStats {
        wall_us: m.total_wall_us,
        filter_hits: m.cache.filter_hits,
        filter_misses: m.cache.filter_misses,
        module_hits: m.cache.module_hits,
        module_misses: m.cache.module_misses,
        hit_rate: m.cache.hit_rate(),
        solver_calls: solver,
    };
    let deterministic = serial_results == cold_results
        && cold_results == warm_results
        && cold_results == traced_results;
    let report = ScaleReport {
        modules,
        jobs,
        serial_cold: stats(&serial_m, serial_solver),
        sharded_cold: stats(&cold_m, cold_solver),
        sharded_warm: stats(&warm_m, warm_solver),
        sharded_cold_traced: stats(&traced_m, traced_solver),
        trace_events: trace.events.len(),
        trace_dropped: trace.dropped,
        trace_overhead: traced_best as f64 / untraced_best.max(1) as f64,
        price_rounds,
        sharded_speedup: serial_m.total_wall_us as f64 / cold_m.total_wall_us.max(1) as f64,
        warm_speedup: cold_m.total_wall_us as f64 / warm_m.total_wall_us.max(1) as f64,
        deterministic,
    };
    println!("{}", report.to_json());

    let _ = std::fs::remove_dir_all(&scratch);
    assert!(
        deterministic,
        "serial, sharded, and traced reports must be byte-identical"
    );
    assert_eq!(warm_solver, 0, "warm rerun must not touch the SAT solver");
    assert!(
        !trace.events.is_empty(),
        "the traced run must produce events"
    );
}
