//! Decision-procedure throughput bench: the interned pipeline (term
//! arena, watched-literal DPLL, normalized-query memo) vs the retained
//! reference pipeline (Rc-pointer blaster, scan-all DPLL), as
//! machine-readable JSON written to `BENCH_solver.json`.
//!
//! The corpus is `SOLVER_BENCH_QUERIES` (default 400) filter-style
//! constraint sets — exception-code pins, masked-flag tests, small
//! adder/xor chains over 32-bit variables — generated from a fixed
//! xorshift seed so every run prices the same work. Three measurements,
//! each best-of-`SOLVER_BENCH_ROUNDS` (default 3) to shed scheduling
//! noise:
//!
//! 1. **reference cold** — every query through [`cr_symex::check_reference`];
//! 2. **interned cold** — every query through [`cr_symex::check`] after
//!    [`cr_symex::reset_query_memo`], so each query is blasted and
//!    solved for real;
//! 3. **memo warm** — the same corpus again without a reset: every
//!    query must be answered from the normalized-query memo.
//!
//! Asserts the correctness invariants while it measures: the two
//! pipelines must agree on every verdict (`verdict_parity`), SAT models
//! must satisfy their constraints, and the warm pass must hit the memo
//! once per query. Wall-time ratios are recorded, never asserted —
//! timing belongs in the JSON, not in CI pass/fail.
//!
//! A fourth measurement prices the path explorer (the `paths` section):
//! the loopy/multi-branch filter family explored with incremental
//! push/pop solving vs the same exploration re-blasting every path from
//! scratch ([`FilterExplorer`]'s `incremental(false)` differential
//! mode). Verdicts — merged and per-path — must agree between modes;
//! the wall ratio lands in `incremental_speedup`.
//!
//! A fifth measurement sweeps the parallel fork scheduler (the
//! `paths.parallel` section): the same family batched at 1/2/4/8
//! exploration workers. Full-report byte-identity across worker counts
//! is asserted in-binary; the ≥2× @4-workers wall floor is asserted
//! only when `available_parallelism()` actually provides the cores
//! (recorded in `cores`/`timing_asserted`).

use cr_core::seh::PeCode;
use cr_image::FilterRef;
use cr_symex::{
    BinOp, BoolExpr, CmpOp, ExplorationReport, Expr, FilterExplorer, SatResult, SolverCounters,
};
use serde::Serialize;
use std::time::Instant;

#[derive(serde::Serialize)]
struct PassStats {
    /// Best-of-rounds wall time for the full corpus, microseconds.
    wall_us: u64,
    /// Queries decided per second at the best-of-rounds wall time.
    queries_per_sec: f64,
    solver_calls: u64,
    memo_lookups: u64,
    memo_hits: u64,
}

#[derive(serde::Serialize)]
struct PathsPassStats {
    /// Best-of-rounds wall time for exploring the whole family, µs.
    wall_us: u64,
    solver_calls: u64,
    memo_lookups: u64,
    memo_hits: u64,
}

/// One worker-count level of the `paths.parallel` thread sweep.
#[derive(serde::Serialize)]
struct ParallelLevel {
    jobs: usize,
    /// Best-of-rounds wall time for the whole batched family, µs.
    wall_us: u64,
    solver_calls: u64,
    memo_lookups: u64,
    memo_hits: u64,
    /// Scheduler tasks executed (roots + stolen subtrees).
    tasks: u64,
    /// Subtree hand-offs published to the shared queue.
    published: u64,
    /// Instructions re-executed rebuilding stolen path prefixes.
    replay_steps: u64,
    /// Fresh exploration instructions executed.
    run_steps: u64,
    /// jobs=1 wall / this level's wall (>1 = parallel faster).
    speedup_vs_1: f64,
}

/// One measured sweep level before serialization: (jobs, best wall µs,
/// (solver_calls, memo_lookups, memo_hits) deltas, scheduler stats,
/// last round's reports).
type SweepLevel = (
    usize,
    u64,
    (u64, u64, u64),
    cr_symex::ParallelStats,
    Vec<ExplorationReport>,
);

/// The `paths.parallel` section: the same loopy family batched through
/// the deterministic fork scheduler at 1/2/4/8 workers.
#[derive(serde::Serialize)]
struct ParallelReport {
    /// `std::thread::available_parallelism()` on the recording machine
    /// — speedups are only meaningful (and only asserted) when it
    /// covers the worker count.
    cores: usize,
    rounds: usize,
    levels: Vec<ParallelLevel>,
    /// jobs=1 wall / jobs=4 wall.
    parallel_speedup_4: f64,
    /// Merged verdicts identical across every worker count.
    verdict_parity: bool,
    /// Full `ExplorationReport`s byte-identical across 1/2/4/8 jobs.
    reports_byte_identical: bool,
    /// Whether the ≥2× @4-workers floor was asserted (needs ≥4 cores).
    timing_asserted: bool,
}

/// The `paths` section: incremental exploration vs per-path re-blast
/// over the loopy filter family.
#[derive(serde::Serialize)]
struct PathsReport {
    filters: usize,
    paths: usize,
    rounds: usize,
    incremental: PathsPassStats,
    independent: PathsPassStats,
    /// Independent / incremental wall ratio (>1 = incremental faster).
    incremental_speedup: f64,
    incremental_beats_independent: bool,
    /// Merged and per-path verdicts identical across both modes.
    verdict_parity: bool,
    /// Worker thread sweep over the batched explorer.
    parallel: ParallelReport,
}

#[derive(serde::Serialize)]
struct SolverReport {
    queries: usize,
    rounds: usize,
    sat: usize,
    unsat: usize,
    unknown: usize,
    reference_cold: PassStats,
    interned_cold: PassStats,
    memo_warm: PassStats,
    /// Reference-cold / interned-cold wall ratio (>1 = interned faster).
    cold_speedup: f64,
    /// Interned-cold / memo-warm wall ratio (>1 = memo pays off).
    warm_speedup: f64,
    /// Both pipelines returned the same verdict for every query.
    verdict_parity: bool,
    /// Path-explorer pricing over the loopy filter family.
    paths: PathsReport,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic xorshift64* — the corpus must be identical run to run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One filter-style query: the kinds of constraint sets
/// `SymExec::analyze_filter` emits, scaled to a corpus.
fn gen_query(rng: &mut Rng, i: usize) -> Vec<BoolExpr> {
    // The normalized-query memo alpha-renames variables, so unique
    // names alone don't make queries distinct — every query also gets a
    // wide random constant pin (the `salt` constraint below) so cold
    // passes genuinely blast and solve each one.
    let code = Expr::var(&format!("code{i}"), 32);
    let flags = Expr::var(&format!("flags{i}"), 32);
    let salt = BoolExpr::cmp(
        CmpOp::Ne,
        32,
        Expr::bin(BinOp::Xor, flags.clone(), Expr::c(rng.below(1 << 32))),
        Expr::c(0),
    );
    let mut cs = vec![salt];
    match rng.below(4) {
        0 => {
            // AV pin + severity test: SAT or UNSAT depending on k.
            let k = [0xC000_0005u64, 0xC000_0094, 0x8000_0003][rng.below(3) as usize];
            cs.push(BoolExpr::cmp(
                CmpOp::Eq,
                32,
                code.clone(),
                Expr::c(0xC000_0005),
            ));
            cs.push(BoolExpr::cmp(CmpOp::Eq, 32, code, Expr::c(k)));
        }
        1 => {
            // Masked flag bit both set and clear: UNSAT.
            let m = 1u64 << rng.below(8);
            let masked = Expr::bin(BinOp::And, flags, Expr::c(m));
            cs.push(BoolExpr::cmp(CmpOp::Ne, 32, masked.clone(), Expr::c(0)));
            cs.push(BoolExpr::cmp(CmpOp::Eq, 32, masked, Expr::c(0)));
        }
        2 => {
            // Shifted-severity pin: `(code >> 30) == s` with a code pin.
            let s = rng.below(4);
            let sev = Expr::bin(BinOp::Shr, code.clone(), Expr::c(30));
            cs.push(BoolExpr::cmp(CmpOp::Eq, 32, code, Expr::c(0xC000_0005)));
            cs.push(BoolExpr::cmp(CmpOp::Eq, 32, sev, Expr::c(s)));
        }
        _ => {
            // Small arithmetic chain: `((code + k1) ^ k2) & 0xFF == t`.
            let k1 = rng.below(1 << 16);
            let k2 = rng.below(1 << 16);
            let t = rng.below(256);
            let chain = Expr::bin(
                BinOp::And,
                Expr::bin(
                    BinOp::Xor,
                    Expr::bin(BinOp::Add, code, Expr::c(k1)),
                    Expr::c(k2),
                ),
                Expr::c(0xFF),
            );
            cs.push(BoolExpr::cmp(CmpOp::Eq, 32, chain, Expr::c(t)));
            cs.push(BoolExpr::cmp(
                CmpOp::Ult,
                32,
                flags,
                Expr::c(16 + rng.below(240)),
            ));
        }
    }
    cs
}

/// Run every query through `f`, returning wall micros and verdicts.
fn run_pass(
    corpus: &[Vec<BoolExpr>],
    f: &dyn Fn(&[BoolExpr]) -> SatResult,
) -> (u64, Vec<SatResult>) {
    let start = Instant::now();
    let verdicts: Vec<SatResult> = corpus.iter().map(|q| f(q)).collect();
    (start.elapsed().as_micros() as u64, verdicts)
}

fn same_verdict(a: &SatResult, b: &SatResult) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
}

fn main() {
    cr_bench::banner("solver bench — interned arena + watched DPLL + query memo vs reference");
    let queries = env_usize("SOLVER_BENCH_QUERIES", 400);
    let rounds = env_usize("SOLVER_BENCH_ROUNDS", 3).max(1);
    let out_path = std::env::var("SOLVER_BENCH_OUT").unwrap_or_else(|_| "BENCH_solver.json".into());

    let mut rng = Rng(0x5EED_2017_D5A1_7E57);
    let corpus: Vec<Vec<BoolExpr>> = (0..queries).map(|i| gen_query(&mut rng, i)).collect();

    // Scoped snapshot/delta over the process-global solver counters:
    // each pass measures only its own activity even if anything else in
    // the process touched the solver.
    let counters = SolverCounters::snapshot;
    let delta = |b: SolverCounters| {
        let d = b.delta();
        (d.solver_calls, d.memo_lookups, d.memo_hits)
    };

    // Pass 1: reference pipeline, best of N rounds.
    eprintln!("[solver_bench] reference cold ({queries} queries x {rounds} rounds) ...");
    let ref_before = counters();
    let mut ref_wall = u64::MAX;
    let mut ref_verdicts = Vec::new();
    for _ in 0..rounds {
        let (w, v) = run_pass(&corpus, &|q| cr_symex::check_reference(q));
        ref_wall = ref_wall.min(w);
        ref_verdicts = v;
    }
    let ref_delta = delta(ref_before);

    // Pass 2: interned pipeline, memo reset before every round so each
    // round blasts and solves every query from scratch.
    eprintln!("[solver_bench] interned cold ...");
    let cold_before = counters();
    let mut cold_wall = u64::MAX;
    let mut cold_verdicts = Vec::new();
    for _ in 0..rounds {
        cr_symex::reset_query_memo();
        let (w, v) = run_pass(&corpus, &|q| cr_symex::check(q));
        cold_wall = cold_wall.min(w);
        cold_verdicts = v;
    }
    let cold_delta = delta(cold_before);

    // Pass 3: same corpus, memo left warm from the last cold round.
    eprintln!("[solver_bench] memo warm ...");
    let warm_before = counters();
    let mut warm_wall = u64::MAX;
    let mut warm_verdicts = Vec::new();
    for _ in 0..rounds {
        let (w, v) = run_pass(&corpus, &|q| cr_symex::check(q));
        warm_wall = warm_wall.min(w);
        warm_verdicts = v;
    }
    let warm_delta = delta(warm_before);

    // Pass 4: the path explorer over the loopy family, incremental
    // push/pop vs per-path re-blast. The memo is reset before every
    // round so both modes start cold and neither inherits the other's
    // normalized-query entries.
    eprintln!("[solver_bench] path exploration (loopy family, incremental vs independent) ...");
    let image = cr_targets::browsers::generate_loopy_dll();
    let pe_code = PeCode::new(&image);
    let mut filter_rvas: Vec<u32> = image
        .runtime_functions
        .iter()
        .flat_map(|rf| rf.unwind.scopes.iter())
        .filter_map(|s| match s.filter {
            FilterRef::Function(rva) => Some(rva),
            FilterRef::CatchAll => None,
        })
        .collect();
    filter_rvas.sort_unstable();
    filter_rvas.dedup();
    let explore_mode = |incremental: bool| -> (u64, (u64, u64, u64), Vec<ExplorationReport>) {
        let explorer = FilterExplorer::builder().incremental(incremental).build();
        let before = counters();
        let mut wall = u64::MAX;
        let mut reports = Vec::new();
        for _ in 0..rounds {
            cr_symex::reset_query_memo();
            let start = Instant::now();
            let out: Vec<ExplorationReport> = filter_rvas
                .iter()
                .map(|&rva| explorer.explore(&pe_code, image.image_base + u64::from(rva)))
                .collect();
            wall = wall.min(start.elapsed().as_micros() as u64);
            reports = out;
        }
        (wall, delta(before), reports)
    };
    let (inc_wall, inc_delta, inc_reports) = explore_mode(true);
    let (ind_wall, ind_delta, ind_reports) = explore_mode(false);
    let mut paths_parity = inc_reports.len() == ind_reports.len();
    for (i, (a, b)) in inc_reports.iter().zip(&ind_reports).enumerate() {
        if a.verdict != b.verdict
            || a.paths.len() != b.paths.len()
            || a.paths
                .iter()
                .zip(&b.paths)
                .any(|(p, q)| p.verdict != q.verdict)
        {
            eprintln!(
                "[solver_bench] PATH PARITY FAILURE filter {i}: \
                 incremental={:?} independent={:?}",
                a.verdict, b.verdict
            );
            paths_parity = false;
        }
    }
    // Pass 5: the `paths.parallel` thread sweep — the same family
    // batched through the fork scheduler at 1/2/4/8 workers. Determinism
    // is asserted in-binary (full report equality against jobs=1);
    // wall-clock speedup is recorded always but asserted only when the
    // machine actually has the cores to show it.
    eprintln!("[solver_bench] path exploration thread sweep (jobs 1/2/4/8) ...");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let entries: Vec<u64> = filter_rvas
        .iter()
        .map(|&rva| image.image_base + u64::from(rva))
        .collect();
    let sweep: Vec<SweepLevel> = [1usize, 2, 4, 8]
        .iter()
        .map(|&jobs| {
            let explorer = FilterExplorer::builder().jobs(jobs).build();
            let before = counters();
            let mut wall = u64::MAX;
            let mut last = None;
            for _ in 0..rounds {
                cr_symex::reset_query_memo();
                let start = Instant::now();
                let out = explorer.explore_batch(&pe_code, &entries);
                wall = wall.min(start.elapsed().as_micros() as u64);
                last = Some(out);
            }
            let (reports, stats) = last.expect("rounds >= 1");
            (jobs, wall, delta(before), stats, reports)
        })
        .collect();
    let (base_wall, base_reports) = (sweep[0].1, &sweep[0].4);
    let mut sweep_parity = true;
    let mut byte_identical = true;
    for (jobs, _, _, _, reports) in &sweep[1..] {
        if reports
            .iter()
            .zip(base_reports.iter())
            .any(|(a, b)| a.verdict != b.verdict)
        {
            eprintln!("[solver_bench] PARALLEL PARITY FAILURE at jobs={jobs}");
            sweep_parity = false;
        }
        if reports != base_reports {
            eprintln!("[solver_bench] PARALLEL DETERMINISM FAILURE at jobs={jobs}");
            byte_identical = false;
        }
    }
    let wall_at = |jobs: usize| sweep.iter().find(|l| l.0 == jobs).map_or(u64::MAX, |l| l.1);
    let parallel_speedup_4 = base_wall as f64 / wall_at(4).max(1) as f64;
    let timing_asserted = cores >= 4;
    let parallel_report = ParallelReport {
        cores,
        rounds,
        levels: sweep
            .iter()
            .map(|(jobs, wall, d, stats, _)| ParallelLevel {
                jobs: *jobs,
                wall_us: *wall,
                solver_calls: d.0,
                memo_lookups: d.1,
                memo_hits: d.2,
                tasks: stats.tasks,
                published: stats.published,
                replay_steps: stats.replay_steps,
                run_steps: stats.run_steps,
                speedup_vs_1: base_wall as f64 / (*wall).max(1) as f64,
            })
            .collect(),
        parallel_speedup_4,
        verdict_parity: sweep_parity,
        reports_byte_identical: byte_identical,
        timing_asserted,
    };

    let paths_stats = |wall: u64, d: (u64, u64, u64)| PathsPassStats {
        wall_us: wall,
        solver_calls: d.0,
        memo_lookups: d.1,
        memo_hits: d.2,
    };
    let paths_report = PathsReport {
        filters: filter_rvas.len(),
        paths: inc_reports.iter().map(|r| r.paths.len()).sum(),
        rounds,
        incremental: paths_stats(inc_wall, inc_delta),
        independent: paths_stats(ind_wall, ind_delta),
        incremental_speedup: ind_wall as f64 / inc_wall.max(1) as f64,
        incremental_beats_independent: inc_wall < ind_wall,
        verdict_parity: paths_parity,
        parallel: parallel_report,
    };

    let mut sat = 0;
    let mut unsat = 0;
    let mut unknown = 0;
    let mut parity = true;
    for (i, (n, r)) in cold_verdicts.iter().zip(&ref_verdicts).enumerate() {
        match n {
            SatResult::Sat(m) => {
                sat += 1;
                for c in &corpus[i] {
                    assert!(
                        c.eval(&|name| m.get(name)),
                        "query {i}: SAT model fails constraint"
                    );
                }
            }
            SatResult::Unsat => unsat += 1,
            SatResult::Unknown(_) => unknown += 1,
        }
        if !same_verdict(n, r) {
            eprintln!("[solver_bench] PARITY FAILURE query {i}: interned={n:?} reference={r:?}");
            parity = false;
        }
        if !same_verdict(n, &warm_verdicts[i]) {
            eprintln!(
                "[solver_bench] MEMO FAILURE query {i}: cold={n:?} warm={:?}",
                warm_verdicts[i]
            );
            parity = false;
        }
    }

    let stats = |wall: u64, d: (u64, u64, u64)| PassStats {
        wall_us: wall,
        queries_per_sec: queries as f64 / (wall.max(1) as f64 / 1e6),
        solver_calls: d.0,
        memo_lookups: d.1,
        memo_hits: d.2,
    };
    let report = SolverReport {
        queries,
        rounds,
        sat,
        unsat,
        unknown,
        reference_cold: stats(ref_wall, ref_delta),
        interned_cold: stats(cold_wall, cold_delta),
        memo_warm: stats(warm_wall, warm_delta),
        cold_speedup: ref_wall as f64 / cold_wall.max(1) as f64,
        warm_speedup: cold_wall as f64 / warm_wall.max(1) as f64,
        verdict_parity: parity,
        paths: paths_report,
    };
    let json = report.to_json();
    println!("{json}");
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench report");
    eprintln!("[solver_bench] wrote {out_path}");

    assert!(
        parity,
        "interned and reference pipelines must agree on every verdict"
    );
    assert_eq!(
        report.memo_warm.memo_hits,
        (queries * rounds) as u64,
        "every warm-pass query must be answered from the normalized-query memo"
    );
    assert_eq!(
        report.memo_warm.memo_lookups, report.memo_warm.memo_hits,
        "warm-pass lookups must all hit"
    );
    assert!(unknown == 0, "corpus queries must stay in budget");
    assert!(
        report.paths.verdict_parity,
        "incremental and independent exploration must agree on every path verdict"
    );
    assert!(
        report.paths.parallel.verdict_parity,
        "parallel exploration must agree with sequential on every merged verdict"
    );
    assert!(
        report.paths.parallel.reports_byte_identical,
        "exploration reports must be byte-identical across jobs 1/2/4/8"
    );
    // Wall-clock floors are hardware-dependent: on a box with <4 cores a
    // 4-worker sweep cannot beat sequential, so the ≥2× floor is only a
    // hard assert when the parallelism exists (`timing_asserted` records
    // which regime produced the JSON).
    if report.paths.parallel.timing_asserted {
        assert!(
            report.paths.parallel.parallel_speedup_4 >= 2.0,
            "4-worker exploration must be >=2x sequential on a >=4-core machine \
             (got {:.2})",
            report.paths.parallel.parallel_speedup_4
        );
    } else {
        eprintln!(
            "[solver_bench] {} core(s): recording parallel_speedup_4={:.2} without asserting the 2x floor",
            report.paths.parallel.cores, report.paths.parallel.parallel_speedup_4
        );
    }
}
