//! Regenerate **§VII-A — locating the primitives of previous work**
//! (Gawlik et al.'s two memory oracles):
//!
//! * the Internet Explorer primitive (a catch-all exception handler in
//!   jscript9) **is** found automatically by the `.pdata` analysis;
//! * its post-security-update variant (the filter delegates to a
//!   configuration helper) survives symbolic execution only as
//!   *undecided* — requiring manual verification, as in the paper;
//! * the Firefox primitive (a vectored exception handler registered at
//!   runtime) is **not** found — VEH state never appears in any scope
//!   table. "This is not a fundamental limitation of the approach."

use cr_core::seh::{analyze_module, FilterClass};
use cr_image::FilterRef;

fn main() {
    cr_bench::banner("§VII-A — locating the primitives of previous work");

    // --- IE: the MUTX::Enter catch-all scope ------------------------------
    let sim = cr_targets::browsers::ie::build();
    let jscript9 = sim.proc.module("jscript9.dll").expect("loaded").clone();
    let analysis = analyze_module(&jscript9.image);
    let mutx_va = jscript9.export("MUTX_Enter");
    let found = analysis
        .functions
        .iter()
        .find(|f| f.begin_va == mutx_va)
        .expect("MUTX function analyzed");
    assert!(found.survives());
    let catch_all = found
        .scopes
        .iter()
        .any(|s| matches!(s.class, FilterClass::CatchAll));
    println!(
        "IE MUTX::Enter @ {:#x}: located automatically — scope filter field = 0x1 (catch-all): {}",
        mutx_va, catch_all
    );
    assert!(catch_all);

    // --- IE post-update: filter calls a config helper ----------------------
    let undecided: Vec<_> = analysis
        .scopes
        .iter()
        .filter(|s| matches!(s.class, FilterClass::Undecided { .. }))
        .collect();
    println!(
        "post-update variant: {} filter(s) flagged for manual verification ({})",
        undecided.len(),
        undecided
            .first()
            .map(|s| match &s.class {
                FilterClass::Undecided { reason } => reason.as_str(),
                _ => unreachable!(),
            })
            .unwrap_or("-")
    );
    assert!(!undecided.is_empty());

    // --- Firefox: runtime-registered VEH is invisible statically -----------
    let fx = cr_targets::browsers::firefox::build();
    let ntdll = fx.proc.module("ntdll.dll").expect("loaded").clone();
    let handler_rva = (fx.veh_handler - ntdll.base) as u32;
    let statically_visible = ntdll.image.runtime_functions.iter().any(|rf| {
        rf.unwind
            .scopes
            .iter()
            .any(|s| s.filter == FilterRef::Function(handler_rva))
    });
    println!(
        "Firefox VEH handler @ {:#x}: appears in scope tables: {} — registered at runtime: {}",
        fx.veh_handler,
        statically_visible,
        fx.proc.veh_handlers().contains(&fx.veh_handler)
    );
    assert!(
        !statically_visible,
        "static analysis must miss the VEH oracle"
    );
    assert!(fx.proc.veh_handlers().contains(&fx.veh_handler));

    println!("\n§VII-A reproduced: IE found automatically, Firefox missed (VEH limitation)");
}
