//! # cr-defense — countermeasures against crash-resistant probing
//!
//! Implements and evaluates the paper's §VII-C defenses:
//!
//! * [`RateDetector`] — anomaly detection on the rate of handled access
//!   violations. The paper's measurements: normal browsing produces
//!   essentially zero AVs, asm.js-heavy workloads produce bounded bursts
//!   (groups of up to 20), while probing attacks generate thousands per
//!   second — "several orders of magnitude more frequent".
//! * [`audit_filters`] — "improving exception filtering": reports which
//!   guarded scopes use catch-all or overly broad filters that could be
//!   narrowed without losing functionality.
//! * The **mapped-only-AV policy** lives in the OS layer
//!   (`WinProc::strict_unmapped_policy`); [`policy`] contains its
//!   evaluation helpers: the asm.js optimization keeps working (faults on
//!   mapped guard pages) while probing dies on the first unmapped touch.

pub mod policy;
pub mod rate;
pub mod rerand;

pub use rate::{RateDetector, RateReport};
pub use rerand::{scan_under_rerand, MovingRegion, RerandOutcome};

use cr_core::seh::{FilterClass, ModuleSehAnalysis};

/// One filter-hardening recommendation.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct FilterFinding {
    /// Module the scope belongs to.
    pub module: String,
    /// Guarded region begin.
    pub begin_va: u64,
    /// Why the scope is risky.
    pub reason: &'static str,
}

/// Audit a module's SEH population for scopes that accept access
/// violations and could be narrowed (the §VII-C "improving exception
/// filtering" recommendation).
pub fn audit_filters(analysis: &ModuleSehAnalysis) -> Vec<FilterFinding> {
    let mut findings = Vec::new();
    for scope in &analysis.scopes {
        let reason = match &scope.class {
            FilterClass::CatchAll => Some("catch-all filter (filter field = 1)"),
            FilterClass::AcceptsAv { .. } => {
                Some("filter accepts access violations; narrow the accepted codes")
            }
            FilterClass::Undecided { .. } => {
                Some("filter delegates its decision; audit the helper manually")
            }
            FilterClass::RejectsAv => None,
        };
        if let Some(reason) = reason {
            findings.push(FilterFinding {
                module: analysis.module.clone(),
                begin_va: scope.begin_va,
                reason,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::seh::analyze_module;
    use cr_targets::browsers::{calib, generate_dll, DllSpec};

    #[test]
    fn audit_flags_all_surviving_scopes() {
        let c = calib("user32").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x64(c, 0));
        let a = analyze_module(&img);
        let findings = audit_filters(&a);
        // Every AV-capable scope is flagged; rejecting scopes are not.
        let surviving: usize = a.scopes.iter().filter(|s| s.class.survives()).count();
        assert_eq!(findings.len(), surviving);
        assert!(findings.iter().any(|f| f.reason.contains("catch-all")));
    }
}
