//! Runtime re-randomization against probing (paper §II-B).
//!
//! "Employing runtime re-randomization can substantially decrease the
//! success probability of either the scanning itself or the following
//! attack step" — the hidden region is a moving target. This module
//! evaluates that claim: a defender relocates the hidden region every
//! `period` probes; the attacker scans a window. The measurement is the
//! probability that, at the moment the attacker *finishes* locating the
//! region, it is still where she found it — the window in which the
//! follow-up attack (e.g. overwriting a return address on the located
//! SafeStack) actually works.

use cr_exploits::{MemoryOracle, ProbeResult};
use cr_vm::Prot;

/// A defender that moves a hidden region deterministically among slots.
pub struct MovingRegion {
    /// Candidate slot base addresses.
    pub slots: Vec<u64>,
    /// Region size.
    pub size: u64,
    /// Probes between relocations.
    pub period: u64,
    current: usize,
    probe_count: u64,
    relocations: u64,
}

impl std::fmt::Debug for MovingRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MovingRegion")
            .field("slots", &self.slots.len())
            .field("period", &self.period)
            .finish()
    }
}

impl MovingRegion {
    /// Create the defender and map the region into slot `start`.
    pub fn new(
        mem: &mut cr_vm::Memory,
        slots: Vec<u64>,
        size: u64,
        period: u64,
        start: usize,
    ) -> MovingRegion {
        assert!(!slots.is_empty());
        let current = start % slots.len();
        mem.map(slots[current], size, Prot::RW);
        MovingRegion {
            slots,
            size,
            period,
            current,
            probe_count: 0,
            relocations: 0,
        }
    }

    /// Current region base.
    pub fn current_base(&self) -> u64 {
        self.slots[self.current]
    }

    /// Number of relocations performed.
    pub fn relocations(&self) -> u64 {
        self.relocations
    }

    /// Account one attacker probe; relocate if the period elapsed.
    /// (A deterministic rotation keeps the experiment reproducible.)
    pub fn on_probe(&mut self, mem: &mut cr_vm::Memory) {
        self.probe_count += 1;
        if self.probe_count.is_multiple_of(self.period) {
            mem.unmap(self.slots[self.current], self.size);
            self.current = (self.current + 1) % self.slots.len();
            mem.map(self.slots[self.current], self.size, Prot::RW);
            self.relocations += 1;
        }
    }
}

/// Outcome of one scan-then-attack attempt under re-randomization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct RerandOutcome {
    /// Whether the scan reported a location at all.
    pub located: bool,
    /// Whether the located address was still the region when the scan
    /// finished (the follow-up attack would succeed).
    pub still_valid: bool,
    /// Probes spent.
    pub probes: u64,
}

/// Drive `oracle` over the slot window while the defender relocates every
/// `period` probes. `mem_access` lets the harness reach the target
/// process's memory between probes.
pub fn scan_under_rerand<O, F>(
    oracle: &mut O,
    defender: &mut MovingRegion,
    mut mem_access: F,
    stride: u64,
) -> RerandOutcome
where
    O: MemoryOracle,
    F: FnMut(&mut O) -> *mut cr_vm::Memory,
{
    let window_start = *defender.slots.iter().min().expect("nonempty");
    let window_end = defender.slots.iter().max().expect("nonempty") + defender.size;
    let before = oracle.probes();
    let mut found = None;
    let mut addr = window_start;
    while addr < window_end {
        let verdict = oracle.probe(addr);
        // SAFETY: the pointer returned by `mem_access` is the live memory
        // of the oracle's own process; we only use it between probes,
        // never concurrently.
        let mem = unsafe { &mut *mem_access(oracle) };
        defender.on_probe(mem);
        if verdict == ProbeResult::Mapped {
            found = Some(addr);
            break;
        }
        addr += stride;
    }
    let still_valid = match found {
        None => false,
        Some(a) => a >= defender.current_base() && a < defender.current_base() + defender.size,
    };
    RerandOutcome {
        located: found.is_some(),
        still_valid,
        probes: oracle.probes() - before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_exploits::ie::IeOracle;
    use proptest::prelude::*;

    fn slots() -> Vec<u64> {
        (0..8u64).map(|i| 0x4A_0000_0000 + i * 0x10_0000).collect()
    }

    #[test]
    fn static_region_is_always_located_and_valid() {
        let mut o = IeOracle::new();
        let mut d = MovingRegion::new(&mut o.sim().proc.mem, slots(), 0x1000, u64::MAX, 3);
        let out = scan_under_rerand(
            &mut o,
            &mut d,
            |o| &mut o.sim().proc.mem as *mut _,
            0x10_0000,
        );
        assert!(out.located && out.still_valid);
        assert_eq!(d.relocations(), 0);
    }

    #[test]
    fn fast_rerandomization_defeats_the_follow_up() {
        // The region starts in a high slot and relocates every 2 probes
        // while the scanner sweeps upward: whatever the scan reports is
        // stale (or the region keeps dodging the sweep entirely).
        let mut any_stale_or_missed = false;
        let mut o = IeOracle::new();
        for trial in 0..4u64 {
            let base_slots: Vec<u64> = slots()
                .iter()
                .map(|s| s + (trial + 1) * 0x1_0000_0000)
                .collect();
            let start = base_slots.len() - 1;
            let mut d = MovingRegion::new(&mut o.sim().proc.mem, base_slots, 0x1000, 2, start);
            let out = scan_under_rerand(
                &mut o,
                &mut d,
                |o| &mut o.sim().proc.mem as *mut _,
                0x10_0000,
            );
            assert!(d.relocations() > 0, "defender must have moved");
            if !out.located || !out.still_valid {
                any_stale_or_missed = true;
            }
        }
        assert!(
            any_stale_or_missed,
            "re-randomization must defeat at least some scan+attack attempts"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // The whole experiment is deterministic in its parameters: the
        // defender rotates (never draws entropy), the scanner sweeps a
        // fixed window, so two identical setups must agree on every
        // observable — outcome, relocation count, final region base.
        #[test]
        fn rerand_experiment_is_deterministic(
            period in 1u64..8,
            start in 0usize..8,
            stride_slots in 1u64..4,
        ) {
            let run = || {
                let mut o = IeOracle::new();
                let mut d =
                    MovingRegion::new(&mut o.sim().proc.mem, slots(), 0x1000, period, start);
                let out = scan_under_rerand(
                    &mut o,
                    &mut d,
                    |o| &mut o.sim().proc.mem as *mut _,
                    stride_slots * 0x10_0000,
                );
                (out, d.relocations(), d.current_base())
            };
            prop_assert_eq!(run(), run());
        }
    }
}
