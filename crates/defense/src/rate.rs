//! Rate-based access-violation anomaly detection (paper §VII-C).
//!
//! A sliding window over the process's exception dispatch log. The paper
//! crawled 40,000 websites without observing a single handled AV, saw
//! asm.js stress tests produce bursts of up to ~20 faults with long gaps,
//! and measured probing attacks at thousands of faults per second. A
//! simple rate threshold therefore separates attack from benign use; an
//! attacker slowing below the threshold becomes impractically slow.

use cr_os::windows::FaultEvent;
use cr_os::STEPS_PER_MS;

/// Sliding-window fault-rate detector.
///
/// # Examples
///
/// ```
/// use cr_defense::RateDetector;
/// use cr_os::windows::FaultEvent;
///
/// // Twenty handled faults in one tight burst (asm.js-style): no alarm.
/// let log: Vec<FaultEvent> = (0..20)
///     .map(|i| FaultEvent { vtime: 1000 + i, rip: 0x1000, addr: Some(0x7000), mapped: true, handled: true })
///     .collect();
/// let report = RateDetector::default().analyze(&log, 0, 1_000_000);
/// assert!(!report.alarm);
/// assert_eq!(report.peak_window, 20);
/// ```
#[derive(Debug, Clone)]
pub struct RateDetector {
    /// Window length in virtual milliseconds.
    pub window_ms: u64,
    /// Handled-AV count per window that triggers the alarm.
    pub threshold: usize,
}

impl Default for RateDetector {
    fn default() -> Self {
        // Calibrated from the asm.js measurements: bursts of 20 within a
        // window are benign; probing produces hundreds+.
        RateDetector {
            window_ms: 100,
            threshold: 50,
        }
    }
}

/// Detector verdict over a fault log.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RateReport {
    /// Total handled access violations.
    pub handled_faults: usize,
    /// Peak faults within one window.
    pub peak_window: usize,
    /// Mean fault rate (faults per second of virtual time).
    pub faults_per_second: f64,
    /// Whether the alarm fired.
    pub alarm: bool,
    /// Virtual time of the first alarm, if any.
    pub alarm_at: Option<u64>,
}

impl RateDetector {
    /// Analyze a fault log spanning `[start_vtime, end_vtime)`.
    pub fn analyze(&self, log: &[FaultEvent], start_vtime: u64, end_vtime: u64) -> RateReport {
        let window = self.window_ms * STEPS_PER_MS;
        let mut handled: Vec<u64> = log.iter().filter(|f| f.handled).map(|f| f.vtime).collect();
        // Merged logs (e.g. multi-thread dispatch order) are not
        // guaranteed sorted; the window sweep assumes monotone vtimes.
        handled.sort_unstable();
        let mut peak = 0usize;
        let mut alarm_at = None;
        let mut lo = 0usize;
        for hi in 0..handled.len() {
            while handled[hi] - handled[lo] > window {
                lo += 1;
            }
            let count = hi - lo + 1;
            if count > peak {
                peak = count;
            }
            if count >= self.threshold && alarm_at.is_none() {
                alarm_at = Some(handled[hi]);
            }
        }
        let span_s = (end_vtime.saturating_sub(start_vtime)) as f64 / 1_000_000.0;
        RateReport {
            handled_faults: handled.len(),
            peak_window: peak,
            faults_per_second: if span_s > 0.0 {
                handled.len() as f64 / span_s
            } else {
                0.0
            },
            alarm: alarm_at.is_some(),
            alarm_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_targets::browsers::firefox;
    use cr_vm::NullHook;

    fn report_of(log: &[FaultEvent], end: u64) -> RateReport {
        RateDetector::default().analyze(log, 0, end)
    }

    #[test]
    fn browsing_stays_silent() {
        let mut sim = firefox::build();
        let t0 = sim.proc.vtime;
        for _ in 0..20 {
            sim.proc.call(sim.render_page, &[], 100_000, &mut NullHook);
        }
        let r = report_of(&sim.proc.fault_log, sim.proc.vtime - t0);
        assert_eq!(r.handled_faults, 0, "40k-website crawl found zero AVs");
        assert!(!r.alarm);
    }

    #[test]
    fn asmjs_bursts_stay_below_threshold() {
        let mut sim = firefox::build();
        let t0 = sim.proc.vtime;
        for _ in 0..5 {
            sim.proc
                .call(sim.asmjs_bench, &[], 1_000_000, &mut NullHook);
            // Breaks between bursts (the paper's observation).
            sim.proc.run(200_000, &mut NullHook);
        }
        let r = report_of(&sim.proc.fault_log, sim.proc.vtime - t0);
        assert_eq!(r.handled_faults, 100, "5 bursts of 20");
        assert!(r.peak_window >= 20, "bursts are visible");
        assert!(!r.alarm, "asm.js must not trip the detector: {r:?}");
    }

    #[test]
    fn out_of_order_log_does_not_underflow() {
        // Regression: `handled[hi] - handled[lo]` wrapped when the log
        // arrived unsorted (later vtime first). The sweep must sort.
        let mk = |vtime| FaultEvent {
            vtime,
            rip: 0x1000,
            addr: Some(0x7000),
            mapped: false,
            handled: true,
        };
        let log = vec![mk(900_000), mk(100), mk(450_000), mk(200), mk(150)];
        let r = report_of(&log, 1_000_000);
        assert_eq!(r.handled_faults, 5);
        assert_eq!(r.peak_window, 3, "the three early faults share a window");
        assert!(!r.alarm);
        // Same events pre-sorted must agree exactly.
        let sorted = vec![mk(100), mk(150), mk(200), mk(450_000), mk(900_000)];
        assert_eq!(report_of(&sorted, 1_000_000), r);
    }

    #[test]
    fn probing_attack_trips_the_alarm() {
        let mut sim = firefox::build();
        let t0 = sim.proc.vtime;
        // Scan an unmapped window via the background oracle: every probe
        // is a handled AV in quick succession.
        for i in 0..120u64 {
            firefox::probe(&mut sim, 0x9000_0000_0000 + i * 0x1000, &mut NullHook);
        }
        let r = report_of(&sim.proc.fault_log, sim.proc.vtime - t0);
        assert!(r.handled_faults >= 120);
        assert!(r.alarm, "probing must trip the detector: {r:?}");
        assert!(
            r.peak_window > 2 * 20,
            "probing rate dwarfs the asm.js peak: {}",
            r.peak_window
        );
    }
}
