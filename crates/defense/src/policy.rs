//! Evaluation of the mapped-only-AV policy (paper §VII-C, "Restricting
//! access violations").
//!
//! The policy: an access violation on *unmapped* memory terminates the
//! process without consulting any handler, while permission faults on
//! mapped memory (guard-page tricks like the Firefox/asm.js optimization)
//! remain recoverable. The enforcement lives in the OS layer
//! (`WinProc::strict_unmapped_policy`); this module provides the
//! experiment: with the policy on, the asm.js optimization keeps working,
//! but a probing attack dies at the **first** unmapped touch —
//! information hiding regains its "one guess then crash" guarantee.

use cr_targets::browsers::firefox::{self, FirefoxSim};
use cr_vm::NullHook;

/// Outcome of evaluating one workload under the policy.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct PolicyOutcome {
    /// Whether the process survived the workload.
    pub survived: bool,
    /// Handled faults during the workload.
    pub handled_faults: usize,
    /// Probes the attacker managed before dying (attack workload only).
    pub probes_before_crash: u64,
}

/// Run the asm.js workload under the policy.
pub fn asmjs_under_policy(strict: bool) -> PolicyOutcome {
    let mut sim = firefox::build();
    sim.proc.strict_unmapped_policy = strict;
    for _ in 0..3 {
        sim.proc
            .call(sim.asmjs_bench, &[], 1_000_000, &mut NullHook);
    }
    PolicyOutcome {
        survived: sim.proc.alive(),
        handled_faults: sim.proc.fault_log.iter().filter(|f| f.handled).count(),
        probes_before_crash: 0,
    }
}

/// Run a probing attack over unmapped memory under the policy.
pub fn probing_under_policy(strict: bool, probes: u64) -> PolicyOutcome {
    let mut sim = firefox::build();
    sim.proc.strict_unmapped_policy = strict;
    let mut done = 0;
    for i in 0..probes {
        if firefox::probe(&mut sim, 0x9100_0000_0000 + i * 0x1000, &mut NullHook).is_none() {
            break;
        }
        done += 1;
    }
    PolicyOutcome {
        survived: sim.proc.alive(),
        handled_faults: sim.proc.fault_log.iter().filter(|f| f.handled).count(),
        probes_before_crash: done,
    }
}

/// Convenience: a fresh simulator with the policy pre-set.
pub fn firefox_with_policy(strict: bool) -> FirefoxSim {
    let mut sim = firefox::build();
    sim.proc.strict_unmapped_policy = strict;
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_preserves_asmjs_optimization() {
        let relaxed = asmjs_under_policy(false);
        let strict = asmjs_under_policy(true);
        assert!(relaxed.survived && strict.survived);
        assert_eq!(
            relaxed.handled_faults, strict.handled_faults,
            "guard-page faults still handled"
        );
        assert_eq!(strict.handled_faults, 60, "3 bursts of 20");
    }

    #[test]
    fn firefox_with_policy_presets_the_flag() {
        assert!(firefox_with_policy(true).proc.strict_unmapped_policy);
        assert!(!firefox_with_policy(false).proc.strict_unmapped_policy);
    }

    #[test]
    fn strict_and_relaxed_outcomes_diverge_only_under_attack() {
        // The benign workload's PolicyOutcome is identical under both
        // modes; the attack workload's differs in every field: the
        // relaxed run survives with one handled fault per probe, the
        // strict run dies at probe zero with nothing handled.
        assert_eq!(asmjs_under_policy(false), asmjs_under_policy(true));
        let relaxed = probing_under_policy(false, 6);
        let strict = probing_under_policy(true, 6);
        assert_eq!(
            (
                relaxed.survived,
                relaxed.probes_before_crash,
                relaxed.handled_faults
            ),
            (true, 6, 6)
        );
        assert_eq!(
            (
                strict.survived,
                strict.probes_before_crash,
                strict.handled_faults
            ),
            (false, 0, 0)
        );
    }

    #[test]
    fn policy_kills_probing_at_first_unmapped_touch() {
        let relaxed = probing_under_policy(false, 10);
        assert!(
            relaxed.survived,
            "without the policy the oracle probes freely"
        );
        assert_eq!(relaxed.probes_before_crash, 10);

        let strict = probing_under_policy(true, 10);
        assert!(!strict.survived, "the first unmapped probe is fatal");
        assert_eq!(strict.probes_before_crash, 0);
        assert_eq!(strict.handled_faults, 0);
    }
}
