//! `crash-resist` — command-line front end for the discovery framework.
//!
//! ```text
//! crash-resist discover <server>       Table-I pipeline on one server
//! crash-resist analyze <dll>           SEH analysis of a system DLL
//! crash-resist cfg <server>            static CFG + syscall sites
//! crash-resist funnel [corpus-size]    §V-B Windows API funnel
//! crash-resist poc <oracle> <addr>     probe one address via a §VI oracle
//! crash-resist list                    available targets
//! ```

use cr_core::seh::{analyze_module, FilterClass};
use cr_core::static_cfg;
use cr_core::syscall_finder::{discover_server, Classification};
use cr_exploits::{MemoryOracle, ProbeResult};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("discover") => cmd_discover(args.get(1).map(String::as_str)),
        Some("analyze") => cmd_analyze(args.get(1).map(String::as_str)),
        Some("cfg") => cmd_cfg(args.get(1).map(String::as_str)),
        Some("funnel") => cmd_funnel(args.get(1).and_then(|s| s.parse().ok())),
        Some("poc") => cmd_poc(args.get(1).map(String::as_str), args.get(2).map(String::as_str)),
        Some("list") => cmd_list(),
        _ => {
            print!("{}", HELP);
            2
        }
    };
    std::process::exit(code);
}

const HELP: &str = "\
crash-resist — discovery of crash-resistant primitives (DSN'17 reproduction)

USAGE:
    crash-resist discover <server>       run the Table-I pipeline on one server
    crash-resist analyze <dll>           SEH analysis of a calibrated system DLL
    crash-resist cfg <server>            static CFG recovery + syscall sites
    crash-resist funnel [corpus-size]    run the §V-B Windows API funnel
    crash-resist poc <oracle> <hexaddr>  probe an address with a §VI oracle
    crash-resist list                    list available servers/DLLs/oracles
";

fn cmd_list() -> i32 {
    println!("servers:  nginx cherokee lighttpd memcached postgresql");
    print!("dlls:    ");
    for c in cr_targets::browsers::CALIBRATION {
        print!(" {}", c.name);
    }
    println!();
    println!("oracles:  ie firefox nginx");
    0
}

fn cmd_discover(name: Option<&str>) -> i32 {
    let Some(name) = name else {
        eprintln!("usage: crash-resist discover <server>");
        return 2;
    };
    let Some(target) = cr_targets::all_servers().into_iter().find(|t| t.name == name) else {
        eprintln!("unknown server {name:?} (try `crash-resist list`)");
        return 2;
    };
    eprintln!("discovering crash-resistant primitives in {name} ...");
    let report = discover_server(&target);
    for f in &report.findings {
        let verdict = match f.classification {
            Classification::CrashesOnInvalidation => "crashes-on-invalidation",
            Classification::Usable { service_after: true } => "USABLE",
            Classification::Usable { service_after: false } => "usable(FALSE-POSITIVE)",
            Classification::NotRetriggered => "not-retriggered",
        };
        println!(
            "{:<12} arg{} sources={:x?} net-tainted={} efaults={} -> {}",
            f.syscall_name, f.arg_index, f.sources, f.tainted_by_input, f.efaults_observed, verdict
        );
    }
    println!("{} usable primitive(s)", report.usable().len());
    0
}

fn cmd_analyze(name: Option<&str>) -> i32 {
    let Some(name) = name else {
        eprintln!("usage: crash-resist analyze <dll>");
        return 2;
    };
    let Some((i, c)) = cr_targets::browsers::CALIBRATION
        .iter()
        .enumerate()
        .find(|(_, c)| c.name == name)
    else {
        eprintln!("unknown dll {name:?} (try `crash-resist list`)");
        return 2;
    };
    let img = cr_targets::browsers::generate_dll(&cr_targets::browsers::DllSpec::from_calib_x64(c, i));
    let a = analyze_module(&img);
    println!(
        "{}: {} guarded functions, {} AV-capable after symbolic execution",
        a.module, a.guarded_before, a.guarded_after
    );
    println!(
        "filters: {} unique, {} survive, {} undecided",
        a.filters_before, a.filters_after, a.filters_undecided
    );
    for f in a.functions.iter().filter(|f| f.survives()).take(10) {
        for s in f.scopes.iter().filter(|s| s.class.survives()) {
            let why = match &s.class {
                FilterClass::CatchAll => "catch-all".to_string(),
                FilterClass::AcceptsAv { witness } => format!("accepts AV (witness {witness:#x})"),
                FilterClass::Undecided { reason } => format!("undecided: {reason}"),
                FilterClass::RejectsAv => unreachable!(),
            };
            println!("  candidate {:#x}..{:#x}  {}", s.begin_va, s.end_va, why);
        }
    }
    0
}

fn cmd_cfg(name: Option<&str>) -> i32 {
    let Some(name) = name else {
        eprintln!("usage: crash-resist cfg <server>");
        return 2;
    };
    let Some(target) = cr_targets::all_servers().into_iter().find(|t| t.name == name) else {
        eprintln!("unknown server {name:?}");
        return 2;
    };
    let seg = &target.image.segments[0];
    let src = (seg.vaddr, seg.data.as_slice());
    let cfg = static_cfg::analyze(&src, &[target.image.entry]);
    println!(
        "{name}: {} functions, {} instructions, {} static syscall sites",
        cfg.functions.len(),
        cfg.inst_count(),
        cfg.syscall_sites().len()
    );
    for site in cfg.syscall_sites() {
        println!("  syscall @ {site:#x}");
    }
    0
}

fn cmd_funnel(corpus: Option<usize>) -> i32 {
    let corpus = corpus.unwrap_or(2_000);
    eprintln!("building ie-sim with a {corpus}-function corpus ...");
    let mut sim = cr_targets::browsers::ie::build_with_corpus(corpus, 2017);
    let report = cr_core::api_fuzzer::run_funnel(&mut sim, 2);
    print!("{}", cr_core::report::render_funnel(&report));
    0
}

fn cmd_poc(oracle: Option<&str>, addr: Option<&str>) -> i32 {
    let (Some(oracle), Some(addr)) = (oracle, addr) else {
        eprintln!("usage: crash-resist poc <ie|firefox|nginx> <hexaddr>");
        return 2;
    };
    let Ok(addr) = u64::from_str_radix(addr.trim_start_matches("0x"), 16) else {
        eprintln!("bad address {addr:?}");
        return 2;
    };
    let (verdict, probes, crashed) = match oracle {
        "ie" => {
            let mut o = cr_exploits::ie::IeOracle::new();
            (o.probe(addr), o.probes(), o.crashed())
        }
        "firefox" => {
            let mut o = cr_exploits::firefox::FirefoxOracle::new();
            (o.probe(addr), o.probes(), o.crashed())
        }
        "nginx" => {
            let mut o = cr_exploits::nginx::NginxOracle::new();
            (o.probe(addr), o.probes(), o.crashed())
        }
        other => {
            eprintln!("unknown oracle {other:?}");
            return 2;
        }
    };
    println!(
        "{addr:#x}: {}  (probes: {probes}, crashes: {})",
        match verdict {
            ProbeResult::Mapped => "MAPPED",
            ProbeResult::Unmapped => "unmapped",
            ProbeResult::Inconclusive => "inconclusive",
        },
        if crashed { "YES" } else { "0" }
    );
    0
}
