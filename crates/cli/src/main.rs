//! `crash-resist` — command-line front end for the discovery framework.
//!
//! ```text
//! crash-resist discover <server>       Table-I pipeline on one server
//! crash-resist analyze <dll>           SEH analysis of a system DLL
//! crash-resist cfg <server>            static CFG + syscall sites
//! crash-resist funnel [corpus-size]    §V-B Windows API funnel
//! crash-resist poc <oracle> <addr>     probe one address via a §VI oracle
//! crash-resist campaign [options]      sharded multi-task campaign
//! crash-resist list                    available targets
//! ```
//!
//! Exit codes: `0` success, `1` runtime failure (e.g. a campaign task
//! kept panicking), `2` usage error, `3` unknown target name.

use cr_campaign::{run_campaign, CampaignSpec, EngineConfig, TaskResult};
use cr_core::seh::{analyze_module, FilterClass};
use cr_core::static_cfg;
use cr_core::syscall_finder::{discover_server, Classification};
use cr_exploits::{MemoryOracle, ProbeResult};
use std::path::PathBuf;

/// Success.
const EXIT_OK: i32 = 0;
/// A task or analysis failed at runtime.
const EXIT_RUNTIME: i32 = 1;
/// Malformed invocation (bad flag, missing operand, unparseable file).
const EXIT_USAGE: i32 = 2;
/// Syntactically fine, but the named server/DLL/oracle does not exist.
const EXIT_UNKNOWN_TARGET: i32 = 3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("discover") => cmd_discover(args.get(1).map(String::as_str)),
        Some("analyze") => cmd_analyze(args.get(1).map(String::as_str)),
        Some("cfg") => cmd_cfg(args.get(1).map(String::as_str)),
        Some("funnel") => cmd_funnel(args.get(1).map(String::as_str)),
        Some("poc") => cmd_poc(
            args.get(1).map(String::as_str),
            args.get(2).map(String::as_str),
        ),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("list") => cmd_list(),
        None | Some("help" | "-h" | "--help") => {
            print!("{}", HELP);
            EXIT_OK
        }
        Some(other) => {
            eprintln!("unknown command {other:?}");
            eprint!("{}", HELP);
            EXIT_USAGE
        }
    };
    std::process::exit(code);
}

const HELP: &str = "\
crash-resist — discovery of crash-resistant primitives (DSN'17 reproduction)

USAGE:
    crash-resist discover <server>       run the Table-I pipeline on one server
    crash-resist analyze <dll>           SEH analysis of a calibrated system DLL
    crash-resist cfg <server>            static CFG recovery + syscall sites
    crash-resist funnel [corpus-size]    run the §V-B Windows API funnel
    crash-resist poc <oracle> <hexaddr>  probe an address with a §VI oracle
    crash-resist campaign [options]      run a sharded discovery campaign
    crash-resist list                    list available servers/DLLs/oracles

CAMPAIGN OPTIONS:
    --spec FILE     JSON campaign spec (default: the built-in full campaign)
    --jobs N        worker threads (default 1)
    --cache DIR     persist the content-addressed analysis cache here
    --seed S        RNG seed for rand-driven workloads (default 2017)
    --retries R     extra attempts for a panicking task (default 1)
    --json          emit the full report as JSON instead of a summary

ENVIRONMENT:
    CR_SEED         default seed when --seed is not given

EXIT CODES:
    0 success   1 runtime failure   2 usage error   3 unknown target
";

/// Seed precedence: explicit flag, then `CR_SEED`, then the default.
fn effective_seed(flag: Option<u64>) -> u64 {
    flag.or_else(|| std::env::var("CR_SEED").ok().and_then(|s| s.parse().ok()))
        .unwrap_or(cr_campaign::DEFAULT_SEED)
}

fn cmd_list() -> i32 {
    let servers: Vec<&str> = cr_targets::all_servers().iter().map(|t| t.name).collect();
    let dlls: Vec<&str> = cr_targets::browsers::CALIBRATION
        .iter()
        .map(|c| c.name)
        .collect();
    println!("servers:  {}", servers.join(" "));
    println!("dlls:     {}", dlls.join(" "));
    println!("oracles:  ie firefox nginx");
    EXIT_OK
}

fn cmd_discover(name: Option<&str>) -> i32 {
    let Some(name) = name else {
        eprintln!("usage: crash-resist discover <server>");
        return EXIT_USAGE;
    };
    let Some(target) = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == name)
    else {
        eprintln!("unknown server {name:?} (try `crash-resist list`)");
        return EXIT_UNKNOWN_TARGET;
    };
    eprintln!("discovering crash-resistant primitives in {name} ...");
    let report = discover_server(&target);
    for f in &report.findings {
        let verdict = match f.classification {
            Classification::CrashesOnInvalidation => "crashes-on-invalidation",
            Classification::Usable {
                service_after: true,
            } => "USABLE",
            Classification::Usable {
                service_after: false,
            } => "usable(FALSE-POSITIVE)",
            Classification::NotRetriggered => "not-retriggered",
        };
        println!(
            "{:<12} arg{} sources={:x?} net-tainted={} efaults={} -> {}",
            f.syscall_name, f.arg_index, f.sources, f.tainted_by_input, f.efaults_observed, verdict
        );
    }
    println!("{} usable primitive(s)", report.usable().len());
    EXIT_OK
}

fn cmd_analyze(name: Option<&str>) -> i32 {
    let Some(name) = name else {
        eprintln!("usage: crash-resist analyze <dll>");
        return EXIT_USAGE;
    };
    let Some((i, c)) = cr_targets::browsers::CALIBRATION
        .iter()
        .enumerate()
        .find(|(_, c)| c.name == name)
    else {
        eprintln!("unknown dll {name:?} (try `crash-resist list`)");
        return EXIT_UNKNOWN_TARGET;
    };
    let img =
        cr_targets::browsers::generate_dll(&cr_targets::browsers::DllSpec::from_calib_x64(c, i));
    let a = analyze_module(&img);
    println!(
        "{}: {} guarded functions, {} AV-capable after symbolic execution",
        a.module, a.guarded_before, a.guarded_after
    );
    println!(
        "filters: {} unique, {} survive, {} undecided",
        a.filters_before, a.filters_after, a.filters_undecided
    );
    for f in a.functions.iter().filter(|f| f.survives()).take(10) {
        for s in f.scopes.iter().filter(|s| s.class.survives()) {
            let why = match &s.class {
                FilterClass::CatchAll => "catch-all".to_string(),
                FilterClass::AcceptsAv { witness } => format!("accepts AV (witness {witness:#x})"),
                FilterClass::Undecided { reason } => format!("undecided: {reason}"),
                FilterClass::RejectsAv => unreachable!(),
            };
            println!("  candidate {:#x}..{:#x}  {}", s.begin_va, s.end_va, why);
        }
    }
    EXIT_OK
}

fn cmd_cfg(name: Option<&str>) -> i32 {
    let Some(name) = name else {
        eprintln!("usage: crash-resist cfg <server>");
        return EXIT_USAGE;
    };
    let Some(target) = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == name)
    else {
        eprintln!("unknown server {name:?} (try `crash-resist list`)");
        return EXIT_UNKNOWN_TARGET;
    };
    let seg = &target.image.segments[0];
    let src = (seg.vaddr, seg.data.as_slice());
    let cfg = static_cfg::analyze(&src, &[target.image.entry]);
    println!(
        "{name}: {} functions, {} instructions, {} static syscall sites",
        cfg.functions.len(),
        cfg.inst_count(),
        cfg.syscall_sites().len()
    );
    for site in cfg.syscall_sites() {
        println!("  syscall @ {site:#x}");
    }
    EXIT_OK
}

fn cmd_funnel(corpus: Option<&str>) -> i32 {
    let corpus = match corpus {
        None => 2_000,
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("bad corpus size {s:?}");
                return EXIT_USAGE;
            }
        },
    };
    let seed = effective_seed(None);
    eprintln!("building ie-sim with a {corpus}-function corpus (seed {seed}) ...");
    let mut sim = cr_targets::browsers::ie::build_with_corpus(corpus, seed);
    let report = cr_core::api_fuzzer::run_funnel(&mut sim, 2);
    print!("{}", cr_core::report::render_funnel(&report));
    EXIT_OK
}

fn cmd_poc(oracle: Option<&str>, addr: Option<&str>) -> i32 {
    let (Some(oracle), Some(addr)) = (oracle, addr) else {
        eprintln!("usage: crash-resist poc <ie|firefox|nginx> <hexaddr>");
        return EXIT_USAGE;
    };
    let Ok(addr) = u64::from_str_radix(addr.trim_start_matches("0x"), 16) else {
        eprintln!("bad address {addr:?}");
        return EXIT_USAGE;
    };
    let (verdict, probes, crashed) = match oracle {
        "ie" => {
            let mut o = cr_exploits::ie::IeOracle::new();
            (o.probe(addr), o.probes(), o.crashed())
        }
        "firefox" => {
            let mut o = cr_exploits::firefox::FirefoxOracle::new();
            (o.probe(addr), o.probes(), o.crashed())
        }
        "nginx" => {
            let mut o = cr_exploits::nginx::NginxOracle::new();
            (o.probe(addr), o.probes(), o.crashed())
        }
        other => {
            eprintln!("unknown oracle {other:?} (try `crash-resist list`)");
            return EXIT_UNKNOWN_TARGET;
        }
    };
    println!(
        "{addr:#x}: {}  (probes: {probes}, crashes: {})",
        match verdict {
            ProbeResult::Mapped => "MAPPED",
            ProbeResult::Unmapped => "unmapped",
            ProbeResult::Inconclusive => "inconclusive",
        },
        if crashed { "YES" } else { "0" }
    );
    EXIT_OK
}

fn cmd_campaign(args: &[String]) -> i32 {
    let mut spec_path: Option<PathBuf> = None;
    let mut jobs = 1usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut seed_flag: Option<u64> = None;
    let mut retries = 1u32;
    let mut json = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            flag @ ("--spec" | "--jobs" | "--cache" | "--seed" | "--retries") => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{flag} needs a value");
                    return EXIT_USAGE;
                };
                let ok = match flag {
                    "--spec" => {
                        spec_path = Some(PathBuf::from(v));
                        true
                    }
                    "--cache" => {
                        cache_dir = Some(PathBuf::from(v));
                        true
                    }
                    "--jobs" => v.parse().map(|n| jobs = n).is_ok(),
                    "--seed" => v.parse().map(|s| seed_flag = Some(s)).is_ok(),
                    "--retries" => v.parse().map(|r| retries = r).is_ok(),
                    _ => unreachable!(),
                };
                if !ok {
                    eprintln!("bad {flag} value {v:?} (want a non-negative integer)");
                    return EXIT_USAGE;
                }
                i += 2;
            }
            other => {
                eprintln!("unknown campaign option {other:?}");
                return EXIT_USAGE;
            }
        }
    }

    let mut spec = match &spec_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    return EXIT_USAGE;
                }
            };
            match CampaignSpec::from_json(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bad spec {}: {e}", path.display());
                    return EXIT_USAGE;
                }
            }
        }
        None => CampaignSpec::builtin(effective_seed(seed_flag)),
    };
    // An explicit seed (flag or CR_SEED) overrides the spec file's.
    if seed_flag.is_some() || std::env::var("CR_SEED").is_ok() {
        spec.seed = effective_seed(seed_flag);
    }

    let cfg = EngineConfig {
        jobs,
        retries,
        cache_dir,
    };
    eprintln!(
        "campaign {:?}: {} task(s) on {} worker(s), seed {} ...",
        spec.name,
        spec.tasks.len(),
        cfg.jobs.max(1),
        spec.seed
    );
    let report = match run_campaign(&spec, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign cache error: {e}");
            return EXIT_RUNTIME;
        }
    };

    if json {
        use serde::Serialize;
        println!("{}", report.to_json());
    } else {
        for rec in &report.records {
            match (&rec.result, &rec.error) {
                (Some(res), _) => println!("  {:<18} {}", rec.label, summarize(res)),
                (None, Some(err)) => println!("  {:<18} FAILED: {err}", rec.label),
                (None, None) => println!("  {:<18} FAILED", rec.label),
            }
        }
        let m = &report.metrics;
        println!(
            "{} ok, {} failed in {:.1} ms wall ({:.1} ms of task time, {} worker(s))",
            m.succeeded,
            m.failed,
            m.total_wall_us as f64 / 1e3,
            m.task_wall_us as f64 / 1e3,
            m.jobs
        );
        println!(
            "cache: {}/{} filter hits, {}/{} module hits ({:.0}% overall)",
            m.cache.filter_hits,
            m.cache.filter_hits + m.cache.filter_misses,
            m.cache.module_hits,
            m.cache.module_hits + m.cache.module_misses,
            m.cache.hit_rate() * 100.0
        );
    }
    if report.metrics.failed > 0 {
        EXIT_RUNTIME
    } else {
        EXIT_OK
    }
}

fn summarize(res: &TaskResult) -> String {
    match res {
        TaskResult::Server {
            observed_syscalls,
            findings,
            usable,
            ..
        } => {
            format!("{observed_syscalls} syscalls, {findings} findings, {usable} usable")
        }
        TaskResult::Seh { summary, .. } => format!(
            "{} -> {} guarded, {} -> {} filters ({} undecided)",
            summary.guarded_before,
            summary.guarded_after,
            summary.filters_before,
            summary.filters_after,
            summary.filters_undecided
        ),
        TaskResult::Funnel {
            total,
            crash_resistant,
            js_reachable,
            usable,
            ..
        } => {
            format!("{total} APIs, {crash_resistant} crash-resistant, {js_reachable} JS-reachable, {usable} usable")
        }
        TaskResult::Poc {
            oracle,
            mapped,
            probes,
            located,
            crashed,
        } => format!(
            "{oracle}: {} in {probes} probes ({mapped} mapped){}",
            if *located {
                "located hidden region"
            } else {
                "hidden region NOT found"
            },
            if *crashed { ", CRASHED" } else { "" }
        ),
    }
}
