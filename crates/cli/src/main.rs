//! `crash-resist` — command-line front end for the discovery framework.
//!
//! ```text
//! crash-resist discover <server>       Table-I pipeline on one server
//! crash-resist analyze <dll>           SEH analysis of a system DLL
//! crash-resist explore <dll>           per-path filter exploration report
//! crash-resist cfg <server>            static CFG + syscall sites
//! crash-resist scan <module>           traceless syscall-site scan + temporal tags
//! crash-resist funnel [corpus-size]    §V-B Windows API funnel
//! crash-resist poc <oracle> <addr>     probe one address via a §VI oracle
//! crash-resist campaign [options]      sharded multi-task campaign
//! crash-resist arena [options]         probing strategies × detectors matrix
//! crash-resist chaos [options]         campaign under an injected fault plan
//! crash-resist serve [options]         long-lived analysis server (framed TCP)
//! crash-resist fleet [options]         supervised multi-worker serve fleet
//! crash-resist client [options]        send campaign requests to a server
//! crash-resist report <trace>...       render stage latencies from trace files
//! crash-resist list                    available targets
//! ```
//!
//! All machine-readable output (`--json`, `--summary-json`) is framed
//! in the versioned [`cr_campaign::Report`] envelope
//! (`{"schema_version":1,"kind":…,"results":…,"metrics":…}`), and
//! `campaign`/`chaos` accept `--trace FILE` to capture a structured
//! execution trace (`report` renders it).
//!
//! Exit codes: `0` success, `1` runtime failure (e.g. a campaign task
//! kept panicking, or a chaos invariant broke), `2` usage error, `3`
//! unknown target name, `4` campaign completed but degraded (some
//! tasks produced no result).

use cr_campaign::{
    expected_error_counts, run_campaign, AnalysisCache, CampaignSpec, EngineConfig, ErrorCounts,
    Report, ReportKind, TaskResult,
};
use cr_chaos::{FaultInjector, FaultPlan, Site, BUILTIN_PLANS};
use cr_core::seh::{analyze_module, FilterClass, PeCode};
use cr_core::static_cfg;
use cr_core::syscall_finder::{discover_server, Classification};
use cr_exploits::{MemoryOracle, ProbeResult};
use cr_image::FilterRef;
use cr_symex::{FilterExplorer, FilterVerdict};
use std::path::PathBuf;

/// Success.
const EXIT_OK: i32 = 0;
/// A task or analysis failed at runtime.
const EXIT_RUNTIME: i32 = 1;
/// Malformed invocation (bad flag, missing operand, unparseable file).
const EXIT_USAGE: i32 = 2;
/// Syntactically fine, but the named server/DLL/oracle does not exist.
const EXIT_UNKNOWN_TARGET: i32 = 3;
/// The campaign completed and the report is sound, but at least one
/// task has no result: coverage is partial.
const EXIT_DEGRADED: i32 = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("discover") => cmd_discover(args.get(1).map(String::as_str)),
        Some("analyze") => cmd_analyze(args.get(1).map(String::as_str)),
        Some("explore") => cmd_explore(&args[1..]),
        Some("cfg") => cmd_cfg(args.get(1).map(String::as_str)),
        Some("scan") => cmd_scan(&args[1..]),
        Some("funnel") => cmd_funnel(args.get(1).map(String::as_str)),
        Some("poc") => cmd_poc(
            args.get(1).map(String::as_str),
            args.get(2).map(String::as_str),
        ),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("arena") => cmd_arena(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        None | Some("help" | "-h" | "--help") => {
            print!("{}", HELP);
            EXIT_OK
        }
        Some(other) => {
            eprintln!(
                "unknown command {other:?} (expected one of: {})",
                VERBS.join(" ")
            );
            eprint!("{}", HELP);
            EXIT_USAGE
        }
    };
    std::process::exit(code);
}

/// Every verb `main` dispatches on; `help` must mention each (the
/// `help_lists_every_verb` test pins this) and the unknown-command
/// path lists them.
const VERBS: [&str; 15] = [
    "discover", "analyze", "explore", "cfg", "scan", "funnel", "poc", "campaign", "arena", "chaos",
    "serve", "fleet", "client", "report", "list",
];

const HELP: &str = "\
crash-resist — discovery of crash-resistant primitives (DSN'17 reproduction)

USAGE:
    crash-resist discover <server>       run the Table-I pipeline on one server
    crash-resist analyze <dll>           SEH analysis of a calibrated system DLL
    crash-resist explore <dll>           per-path filter exploration (see EXPLORE OPTIONS)
    crash-resist cfg <server>            static CFG recovery + syscall sites
    crash-resist scan <module>           traceless syscall-site scan (see SCAN OPTIONS)
    crash-resist funnel [corpus-size]    run the §V-B Windows API funnel
    crash-resist poc <oracle> <hexaddr>  probe an address with a §VI oracle
    crash-resist campaign [options]      run a sharded discovery campaign
    crash-resist arena [options]         probing strategies vs the detector roster
    crash-resist chaos [options]         run a campaign under a fault plan
    crash-resist serve [options]         run the long-lived analysis server
    crash-resist fleet [options]         run a supervised serve fleet + invariant suite
    crash-resist client [options]        send campaign requests to a server
    crash-resist report <trace>...       per-stage latencies + timeline from traces
    crash-resist list [--json]           list available servers/DLLs/oracles

EXPLORE OPTIONS:
    <dll>           a calibrated DLL name or the loopy family (see `list`)
    --independent   re-blast every path from scratch instead of incremental
                    push/pop solving (differential reference mode)
    --jobs N        exploration worker threads (default 1); any N yields a
                    byte-identical report via the canonical fork-order merge
    --json          emit per-filter path verdicts as a versioned JSON envelope

SCAN OPTIONS:
    <module>        a server target or corpus module name (see `list`)
    --all           scan every server and corpus module instead of one
    --cross-validate  also run the taint observer and report site agreement
                      (servers only — corpus modules have no harness)
    --json          emit the scan report(s) as a versioned JSON envelope

CAMPAIGN OPTIONS:
    --spec FILE     JSON campaign spec (default: the built-in full campaign)
    --jobs N        worker threads (default 1)
    --symex-jobs N  exploration threads inside each symex task (default 1);
                    same-image filters are batched so warmup amortizes
    --cache DIR     persist the content-addressed analysis cache here
    --seed S        RNG seed for rand-driven workloads (default 2017)
    --retries R     extra attempts for a failing task (default 1)
    --deadline-ms D per-attempt virtual-time deadline (default 200)
    --trace FILE    write a structured execution trace (JSONL) here
    --json          emit the full report as JSON instead of a summary

ARENA OPTIONS (campaign options above; the default spec is the full
    4-strategy matrix — linear, bisect, stealth, burst — each judged by
    the rate threshold, windowed CUSUM, and syscall-filter detectors):
    --json          emit the matrix + headline invariants as a versioned
                    JSON envelope (deterministic: byte-identical at any
                    --jobs count, so it diffs against a golden)

CHAOS OPTIONS (campaign options above, plus):
    --plan NAME     built-in fault plan (default mayhem; see `list`)
    --summary-json  emit a compact machine-checkable summary as JSON

SERVE OPTIONS:
    --addr A        bind address (default 127.0.0.1:0 — ephemeral port)
    --jobs N        campaign worker threads per request (default 1)
    --retries R     extra attempts for a failing task (default 1)
    --deadline-ms D per-attempt virtual-time deadline (default 200)
    --request-deadline-ms D  wall-clock deadline per request (default none)
    --capacity N    admission queue depth; beyond it requests get Busy (default 8)
    --cache DIR     load the analysis cache at start, persist it on drain
    --plan NAME     arm a fault plan on the serve sites (try: wire)
    --seed S        fault plan seed (default 2017)
    --stats-json    on shutdown, emit lifetime stats as a JSON envelope

FLEET OPTIONS:
    --workers N     serve workers behind the router (default 3)
    --requests N    distinct campaign requests to drive through (default 4)
    --plan NAME     arm a fault plan on the fleet sites (try: fleet)
    --seed S        fault plan seed (default 2017)
    --kill-request K  kill the serving worker mid-request at admission K
    --rolling-restart  rotate every worker under load, then re-verify
    --summary-json  emit the invariant verdict + stats as a JSON envelope

CLIENT OPTIONS:
    --addr A        server address (required)
    --spec FILE     campaign spec JSON (default: the built-in smoke spec)
    --seed S        override the spec seed
    --jobs N        ask the server to run this request on N workers
    --retries R     per-task retry count for this request
    --deadline-ms D wall-clock deadline for this request, server-side
    --repeat N      send the request N times over one connection (default 1)
    --busy-retries N  retry a Busy rejection up to N times (default 3)
    --json          print the final deterministic result document
    --stats         print each request's Done payload (advisory stats)
    --shutdown      ask the server to drain and exit (alone: no request)

REPORT OPTIONS:
    --json          emit the stage statistics as JSON instead of tables

ENVIRONMENT:
    CR_SEED         default seed when --seed is not given

EXIT CODES:
    0 success           1 runtime failure / broken chaos invariant
    2 usage error       3 unknown target
    4 campaign completed but degraded (some tasks have no result)
";

/// Seed precedence: explicit flag, then `CR_SEED`, then the default.
fn effective_seed(flag: Option<u64>) -> u64 {
    flag.or_else(|| std::env::var("CR_SEED").ok().and_then(|s| s.parse().ok()))
        .unwrap_or(cr_campaign::DEFAULT_SEED)
}

fn cmd_list(args: &[String]) -> i32 {
    let json = match args {
        [] => false,
        [flag] if flag == "--json" => true,
        _ => {
            eprintln!("usage: crash-resist list [--json]");
            return EXIT_USAGE;
        }
    };
    let servers: Vec<&str> = cr_targets::all_servers().iter().map(|t| t.name).collect();
    let dlls: Vec<&str> = cr_targets::browsers::CALIBRATION
        .iter()
        .map(|c| c.name)
        .collect();
    let oracles = ["ie", "firefox", "nginx"];
    if json {
        use serde::Serialize;
        let mut results = String::from("{\"servers\":");
        servers.write_json(&mut results);
        results.push_str(",\"dlls\":");
        dlls.write_json(&mut results);
        results.push_str(",\"oracles\":");
        oracles.write_json(&mut results);
        results.push_str(",\"plans\":");
        BUILTIN_PLANS.write_json(&mut results);
        results.push('}');
        println!(
            "{}",
            Report::builder(ReportKind::List)
                .results(results)
                .build()
                .to_json()
        );
    } else {
        println!("servers:  {}", servers.join(" "));
        println!("dlls:     {}", dlls.join(" "));
        println!("oracles:  {}", oracles.join(" "));
        println!("plans:    {}", BUILTIN_PLANS.join(" "));
    }
    EXIT_OK
}

fn cmd_discover(name: Option<&str>) -> i32 {
    let Some(name) = name else {
        eprintln!("usage: crash-resist discover <server>");
        return EXIT_USAGE;
    };
    let Some(target) = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == name)
    else {
        eprintln!("unknown server {name:?} (try `crash-resist list`)");
        return EXIT_UNKNOWN_TARGET;
    };
    eprintln!("discovering crash-resistant primitives in {name} ...");
    let report = discover_server(&target);
    for f in &report.findings {
        let verdict = match f.classification {
            Classification::CrashesOnInvalidation => "crashes-on-invalidation",
            Classification::Usable {
                service_after: true,
            } => "USABLE",
            Classification::Usable {
                service_after: false,
            } => "usable(FALSE-POSITIVE)",
            Classification::NotRetriggered => "not-retriggered",
        };
        println!(
            "{:<12} arg{} sources={:x?} net-tainted={} efaults={} -> {}",
            f.syscall_name, f.arg_index, f.sources, f.tainted_by_input, f.efaults_observed, verdict
        );
    }
    println!("{} usable primitive(s)", report.usable().len());
    EXIT_OK
}

fn cmd_analyze(name: Option<&str>) -> i32 {
    let Some(name) = name else {
        eprintln!("usage: crash-resist analyze <dll>");
        return EXIT_USAGE;
    };
    let Some((i, c)) = cr_targets::browsers::CALIBRATION
        .iter()
        .enumerate()
        .find(|(_, c)| c.name == name)
    else {
        eprintln!("unknown dll {name:?} (try `crash-resist list`)");
        return EXIT_UNKNOWN_TARGET;
    };
    let img =
        cr_targets::browsers::generate_dll(&cr_targets::browsers::DllSpec::from_calib_x64(c, i));
    let a = analyze_module(&img);
    println!(
        "{}: {} guarded functions, {} AV-capable after symbolic execution",
        a.module, a.guarded_before, a.guarded_after
    );
    println!(
        "filters: {} unique, {} survive, {} undecided",
        a.filters_before, a.filters_after, a.filters_undecided
    );
    for f in a.functions.iter().filter(|f| f.survives()).take(10) {
        for s in f.scopes.iter().filter(|s| s.class.survives()) {
            let why = match &s.class {
                FilterClass::CatchAll => "catch-all".to_string(),
                FilterClass::AcceptsAv { witness } => format!("accepts AV (witness {witness:#x})"),
                FilterClass::Undecided { reason } => format!("undecided: {reason}"),
                // `survives()` filters these out above, but render
                // them gracefully rather than crash if that coupling
                // ever loosens.
                FilterClass::RejectsAv => "rejects AV (proven crash-intolerant)".to_string(),
            };
            println!("  candidate {:#x}..{:#x}  {}", s.begin_va, s.end_va, why);
        }
    }
    EXIT_OK
}

/// `crash-resist explore`: run the path-enumerating [`FilterExplorer`]
/// over every `__except` filter of one generated module and report
/// per-filter path verdicts. `--independent` switches the solver to
/// the one-blast-per-path differential reference mode; `--json` frames
/// the deterministic per-filter records in a [`ReportKind::Explore`]
/// envelope with the aggregated solver counters as `metrics`.
fn cmd_explore(args: &[String]) -> i32 {
    let mut json = false;
    let mut independent = false;
    let mut jobs: usize = 1;
    let mut name: Option<&str> = None;
    let usage = "usage: crash-resist explore <dll> [--independent] [--jobs N] [--json]";
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--independent" => independent = true,
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer");
                    eprintln!("{usage}");
                    return EXIT_USAGE;
                };
                if n == 0 {
                    eprintln!("--jobs needs a positive integer");
                    eprintln!("{usage}");
                    return EXIT_USAGE;
                }
                jobs = n;
            }
            s if !s.starts_with('-') && name.is_none() => name = Some(s),
            other => {
                eprintln!("unexpected argument {other:?}");
                eprintln!("{usage}");
                return EXIT_USAGE;
            }
        }
    }
    let Some(name) = name else {
        eprintln!("{usage}");
        return EXIT_USAGE;
    };
    let image = if name == "loopy" {
        cr_targets::browsers::generate_loopy_dll()
    } else if let Some((i, c)) = cr_targets::browsers::CALIBRATION
        .iter()
        .enumerate()
        .find(|(_, c)| c.name == name)
    {
        cr_targets::browsers::generate_dll(&cr_targets::browsers::DllSpec::from_calib_x64(c, i))
    } else {
        eprintln!("unknown dll {name:?} (try `crash-resist list`, or \"loopy\")");
        return EXIT_UNKNOWN_TARGET;
    };

    let base = image.image_base;
    let code = PeCode::new(&image);
    let mut filter_rvas: Vec<u32> = image
        .runtime_functions
        .iter()
        .flat_map(|rf| rf.unwind.scopes.iter())
        .filter_map(|s| match s.filter {
            FilterRef::Function(rva) => Some(rva),
            FilterRef::CatchAll => None,
        })
        .collect();
    filter_rvas.sort_unstable();
    filter_rvas.dedup();

    // Reverse export map gives filters their calibrated names; unnamed
    // filters fall back to their RVA.
    let labels: std::collections::BTreeMap<u32, &str> = image
        .exports
        .iter()
        .map(|(n, &rva)| (rva, n.as_str()))
        .collect();
    let explorer = FilterExplorer::builder()
        .incremental(!independent)
        .jobs(jobs)
        .build();
    let label_of = |rva: u32| {
        labels
            .get(&rva)
            .map_or_else(|| format!("{rva:#x}"), |n| (*n).to_string())
    };
    // `--jobs 1` keeps the exact sequential per-filter loop; higher
    // values batch every filter through the parallel scheduler, whose
    // canonical merge makes the rows byte-identical either way.
    let rows: Vec<(String, cr_symex::ExplorationReport)> = if jobs == 1 {
        filter_rvas
            .iter()
            .map(|&rva| (label_of(rva), explorer.explore(&code, base + rva as u64)))
            .collect()
    } else {
        let entries: Vec<u64> = filter_rvas.iter().map(|&rva| base + rva as u64).collect();
        let (reports, _stats) = explorer.explore_batch(&code, &entries);
        filter_rvas
            .iter()
            .map(|&rva| label_of(rva))
            .zip(reports)
            .collect()
    };

    let verdict_word = |v: &FilterVerdict| match v {
        FilterVerdict::AcceptsAccessViolation { .. } => "accepts-av",
        FilterVerdict::RejectsAccessViolation => "rejects-av",
        FilterVerdict::Unknown(_) => "undecided",
    };
    if json {
        use serde::Serialize;
        let mut results = String::from("{\"module\":");
        image.name.write_json(&mut results);
        results.push_str(",\"mode\":");
        if independent {
            "independent"
        } else {
            "incremental"
        }
        .write_json(&mut results);
        results.push_str(",\"filters\":[");
        for (i, (label, r)) in rows.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            results.push_str("{\"filter\":");
            label.write_json(&mut results);
            results.push_str(",\"verdict\":");
            verdict_word(&r.verdict).write_json(&mut results);
            match &r.verdict {
                FilterVerdict::AcceptsAccessViolation { witness_code } => {
                    results.push_str(",\"witness\":");
                    format!("{witness_code:#x}").write_json(&mut results);
                }
                FilterVerdict::Unknown(reason) => {
                    results.push_str(",\"reason\":");
                    (*reason).write_json(&mut results);
                }
                FilterVerdict::RejectsAccessViolation => {}
            }
            results.push_str(",\"paths\":");
            (r.paths.len() as u64).write_json(&mut results);
            results.push_str(",\"completed\":");
            (r.completed_paths as u64).write_json(&mut results);
            results.push_str(",\"aborted\":");
            (r.aborted_paths.len() as u64).write_json(&mut results);
            results.push_str(",\"pruned\":");
            (r.pruned_branches as u64).write_json(&mut results);
            results.push_str(",\"steps\":");
            (r.steps as u64).write_json(&mut results);
            results.push('}');
        }
        results.push_str("],\"summary\":{\"accepts\":");
        let count = |w: &str| {
            rows.iter()
                .filter(|(_, r)| verdict_word(&r.verdict) == w)
                .count() as u64
        };
        count("accepts-av").write_json(&mut results);
        results.push_str(",\"rejects\":");
        count("rejects-av").write_json(&mut results);
        results.push_str(",\"undecided\":");
        count("undecided").write_json(&mut results);
        results.push_str("}}");
        // Solver counters ride in `metrics`: their values depend on
        // memo state shared with whatever else ran in this process.
        let mut metrics = String::from("{\"solver_calls\":");
        rows.iter()
            .map(|(_, r)| r.solver_calls)
            .sum::<u64>()
            .write_json(&mut metrics);
        metrics.push_str(",\"memo_lookups\":");
        rows.iter()
            .map(|(_, r)| r.memo_lookups)
            .sum::<u64>()
            .write_json(&mut metrics);
        metrics.push_str(",\"memo_hits\":");
        rows.iter()
            .map(|(_, r)| r.memo_hits)
            .sum::<u64>()
            .write_json(&mut metrics);
        metrics.push('}');
        println!(
            "{}",
            Report::builder(ReportKind::Explore)
                .results(results)
                .metrics(metrics)
                .build()
                .to_json()
        );
        return EXIT_OK;
    }

    println!(
        "{}: {} unique filter(s), {} mode",
        image.name,
        rows.len(),
        if independent {
            "independent"
        } else {
            "incremental"
        }
    );
    for (label, r) in &rows {
        let why = match &r.verdict {
            FilterVerdict::AcceptsAccessViolation { witness_code } => {
                format!("accepts AV (witness {witness_code:#x})")
            }
            FilterVerdict::RejectsAccessViolation => "rejects AV".to_string(),
            FilterVerdict::Unknown(reason) => format!("undecided: {reason}"),
        };
        println!(
            "  {label:<24} {why}  [{} path(s), {} completed, {} aborted, {} pruned, {} steps]",
            r.paths.len(),
            r.completed_paths,
            r.aborted_paths.len(),
            r.pruned_branches,
            r.steps
        );
    }
    EXIT_OK
}

fn cmd_cfg(name: Option<&str>) -> i32 {
    let Some(name) = name else {
        eprintln!("usage: crash-resist cfg <server>");
        return EXIT_USAGE;
    };
    let Some(target) = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == name)
    else {
        eprintln!("unknown server {name:?} (try `crash-resist list`)");
        return EXIT_UNKNOWN_TARGET;
    };
    let seg = &target.image.segments[0];
    let src = (seg.vaddr, seg.data.as_slice());
    let cfg = static_cfg::analyze(&src, &[target.image.entry]);
    println!(
        "{name}: {} functions, {} instructions, {} static syscall sites",
        cfg.functions.len(),
        cfg.inst_count(),
        cfg.syscall_sites().len()
    );
    for site in cfg.syscall_sites() {
        println!("  syscall @ {site:#x}");
    }
    EXIT_OK
}

/// `crash-resist scan`: run the traceless static backend over one
/// module (server target or harness-less corpus module) or, with
/// `--all`, the whole bundled corpus. `--cross-validate` additionally
/// runs the taint observer on server targets and reports site-level
/// agreement. `--json` frames everything in a [`ReportKind::Scan`]
/// envelope: `{"scans":[…],"agreements":[…]}`.
fn cmd_scan(args: &[String]) -> i32 {
    let mut json = false;
    let mut xval = false;
    let mut all = false;
    let mut module: Option<&str> = None;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--cross-validate" => xval = true,
            "--all" => all = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown scan option {flag:?}");
                return EXIT_USAGE;
            }
            name if module.is_none() => module = Some(name),
            extra => {
                eprintln!("unexpected scan operand {extra:?}");
                return EXIT_USAGE;
            }
        }
    }
    if all == module.is_some() {
        eprintln!("usage: crash-resist scan <module> [--cross-validate] [--json]");
        eprintln!("       crash-resist scan --all [--cross-validate] [--json]");
        return EXIT_USAGE;
    }

    let servers = cr_targets::all_servers();
    let mut scans: Vec<cr_scan::ScanReport> = Vec::new();
    let mut agreements: Vec<cr_scan::Agreement> = Vec::new();
    let mut scan_server = |t: &cr_targets::ServerTarget| {
        if xval {
            let (s, a) = cr_scan::cross_validate(t);
            scans.push(s);
            agreements.push(a);
        } else {
            scans.push(cr_scan::scan_elf(t.name, &t.image));
        }
    };
    if all {
        for t in &servers {
            scan_server(t);
        }
        // Corpus modules have no harness; they are the traceless-only
        // half of the sweep.
        for m in cr_targets::corpus::modules() {
            scans.push(cr_scan::scan_elf(m.name, &m.image));
        }
    } else {
        let name = module.expect("checked above");
        if let Some(t) = servers.iter().find(|t| t.name == name) {
            scan_server(t);
        } else if let Some(m) = cr_targets::corpus::module(name) {
            if xval {
                eprintln!(
                    "--cross-validate needs a dynamic harness; corpus module {name:?} has none"
                );
                return EXIT_USAGE;
            }
            scans.push(cr_scan::scan_elf(m.name, &m.image));
        } else {
            eprintln!("unknown module {name:?} (try `crash-resist list`)");
            return EXIT_UNKNOWN_TARGET;
        }
    }

    if json {
        use serde::Serialize;
        let mut results = String::from("{\"scans\":[");
        for (i, s) in scans.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            results.push_str(&s.to_json());
        }
        results.push_str("],\"agreements\":");
        agreements.write_json(&mut results);
        results.push('}');
        println!(
            "{}",
            Report::builder(ReportKind::Scan)
                .results(results)
                .build()
                .to_json()
        );
        return EXIT_OK;
    }

    for s in &scans {
        let c = s.counts();
        println!(
            "{}: {} syscall site(s) in {} function(s), {} instruction(s)",
            s.module, c.sites, s.functions, s.instructions
        );
        println!(
            "  numbers:  {} constant, {} memory-loaded, {} register, {} unknown",
            c.constant, c.memory, c.register, c.unknown
        );
        println!(
            "  temporal: {} init-only, {} serving, {} both, {} unreached",
            c.init_only, c.serving, c.both, c.unreached
        );
        if !all {
            for site in &s.sites {
                let what = site
                    .name()
                    .map(String::from)
                    .unwrap_or_else(|| format!("<{}>", site.number.tag()));
                println!("  {:#x}  {:<12} [{}]", site.va, what, site.temporal.tag());
            }
        }
    }
    for a in &agreements {
        println!(
            "agreement {}: {} matched, {} static-only, {} taint-only (recall {:.0}%)",
            a.module,
            a.matched.len(),
            a.static_only.len(),
            a.taint_only.len(),
            a.recall() * 100.0
        );
    }
    EXIT_OK
}

fn cmd_funnel(corpus: Option<&str>) -> i32 {
    let corpus = match corpus {
        None => 2_000,
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("bad corpus size {s:?}");
                return EXIT_USAGE;
            }
        },
    };
    let seed = effective_seed(None);
    eprintln!("building ie-sim with a {corpus}-function corpus (seed {seed}) ...");
    let mut sim = cr_targets::browsers::ie::build_with_corpus(corpus, seed);
    let report = cr_core::api_fuzzer::run_funnel(&mut sim, 2);
    print!("{}", cr_core::report::render_funnel(&report));
    EXIT_OK
}

fn cmd_poc(oracle: Option<&str>, addr: Option<&str>) -> i32 {
    let (Some(oracle), Some(addr)) = (oracle, addr) else {
        eprintln!("usage: crash-resist poc <ie|firefox|nginx> <hexaddr>");
        return EXIT_USAGE;
    };
    let Ok(addr) = u64::from_str_radix(addr.trim_start_matches("0x"), 16) else {
        eprintln!("bad address {addr:?}");
        return EXIT_USAGE;
    };
    let (verdict, probes, crashed) = match oracle {
        "ie" => {
            let mut o = cr_exploits::ie::IeOracle::new();
            (o.probe(addr), o.probes(), o.crashed())
        }
        "firefox" => {
            let mut o = cr_exploits::firefox::FirefoxOracle::new();
            (o.probe(addr), o.probes(), o.crashed())
        }
        "nginx" => {
            let mut o = cr_exploits::nginx::NginxOracle::new();
            (o.probe(addr), o.probes(), o.crashed())
        }
        other => {
            eprintln!("unknown oracle {other:?} (try `crash-resist list`)");
            return EXIT_UNKNOWN_TARGET;
        }
    };
    println!(
        "{addr:#x}: {}  (probes: {probes}, crashes: {})",
        match verdict {
            ProbeResult::Mapped => "MAPPED",
            ProbeResult::Unmapped => "unmapped",
            ProbeResult::Inconclusive => "inconclusive",
        },
        if crashed { "YES" } else { "0" }
    );
    EXIT_OK
}

/// Flags shared by the `campaign` and `chaos` verbs.
struct CampaignFlags {
    spec_path: Option<PathBuf>,
    jobs: usize,
    /// exploration worker threads inside each symex (SEH) task.
    symex_jobs: usize,
    cache_dir: Option<PathBuf>,
    seed_flag: Option<u64>,
    retries: u32,
    deadline_ms: Option<u64>,
    json: bool,
    /// write a structured execution trace (JSONL) here.
    trace: Option<PathBuf>,
    /// chaos only: built-in fault plan name.
    plan: String,
    /// chaos only: compact machine-checkable summary.
    summary_json: bool,
}

impl CampaignFlags {
    /// Parse `args`; `chaos` additionally accepts `--plan` and
    /// `--summary-json`. Prints the usage error itself and returns
    /// `Err(EXIT_USAGE)` so callers can `return` the code directly.
    fn parse(verb: &str, args: &[String], chaos: bool) -> Result<CampaignFlags, i32> {
        let mut f = CampaignFlags {
            spec_path: None,
            jobs: 1,
            symex_jobs: 1,
            cache_dir: None,
            seed_flag: None,
            retries: 1,
            deadline_ms: Some(cr_campaign::DEFAULT_DEADLINE_MS),
            json: false,
            trace: None,
            plan: "mayhem".to_string(),
            summary_json: false,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--json" => {
                    f.json = true;
                    i += 1;
                }
                "--summary-json" if chaos => {
                    f.summary_json = true;
                    i += 1;
                }
                flag @ ("--spec" | "--jobs" | "--symex-jobs" | "--cache" | "--seed"
                | "--retries" | "--deadline-ms" | "--trace") => {
                    let Some(v) = args.get(i + 1) else {
                        eprintln!("{flag} needs a value");
                        return Err(EXIT_USAGE);
                    };
                    let ok = match flag {
                        "--spec" => {
                            f.spec_path = Some(PathBuf::from(v));
                            true
                        }
                        "--cache" => {
                            f.cache_dir = Some(PathBuf::from(v));
                            true
                        }
                        "--trace" => {
                            f.trace = Some(PathBuf::from(v));
                            true
                        }
                        "--jobs" => v.parse().map(|n| f.jobs = n).is_ok(),
                        "--symex-jobs" => v.parse().map(|n: usize| f.symex_jobs = n.max(1)).is_ok(),
                        "--seed" => v.parse().map(|s| f.seed_flag = Some(s)).is_ok(),
                        "--retries" => v.parse().map(|r| f.retries = r).is_ok(),
                        "--deadline-ms" => v
                            .parse()
                            .map(|d| f.deadline_ms = if d == 0 { None } else { Some(d) })
                            .is_ok(),
                        _ => unreachable!(),
                    };
                    if !ok {
                        eprintln!("bad {flag} value {v:?} (want a non-negative integer)");
                        return Err(EXIT_USAGE);
                    }
                    i += 2;
                }
                "--plan" if chaos => {
                    let Some(v) = args.get(i + 1) else {
                        eprintln!("--plan needs a value");
                        return Err(EXIT_USAGE);
                    };
                    f.plan = v.clone();
                    i += 2;
                }
                other => {
                    eprintln!("unknown {verb} option {other:?}");
                    return Err(EXIT_USAGE);
                }
            }
        }
        Ok(f)
    }

    /// Resolve the campaign spec: `--spec FILE`, else `fallback`, with
    /// an explicit seed (flag or `CR_SEED`) overriding the spec's own.
    fn resolve_spec(
        &self,
        fallback: impl FnOnce(u64) -> CampaignSpec,
    ) -> Result<CampaignSpec, i32> {
        let mut spec = match &self.spec_path {
            Some(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    eprintln!("cannot read {}: {e}", path.display());
                    EXIT_USAGE
                })?;
                CampaignSpec::from_json(&text).map_err(|e| {
                    eprintln!("bad spec {}: {e}", path.display());
                    EXIT_USAGE
                })?
            }
            None => fallback(effective_seed(self.seed_flag)),
        };
        if self.seed_flag.is_some() || std::env::var("CR_SEED").is_ok() {
            spec.seed = effective_seed(self.seed_flag);
        }
        Ok(spec)
    }

    fn engine_config(&self, injector: Option<std::sync::Arc<FaultInjector>>) -> EngineConfig {
        EngineConfig {
            jobs: self.jobs,
            symex_jobs: self.symex_jobs,
            retries: self.retries,
            cache_dir: self.cache_dir.clone(),
            deadline_ms: self.deadline_ms,
            injector,
            ..EngineConfig::default()
        }
    }

    /// Begin trace collection when `--trace FILE` was given.
    fn start_trace(&self) {
        if self.trace.is_some() {
            cr_trace::start();
        }
    }

    /// Stop trace collection and write the JSONL file. Returns an exit
    /// code on I/O failure; `None` means nothing to do or success.
    fn finish_trace(&self) -> Option<i32> {
        let path = self.trace.as_ref()?;
        let trace = cr_trace::finish();
        if let Err(e) = std::fs::write(path, trace.to_jsonl()) {
            eprintln!("cannot write trace {}: {e}", path.display());
            return Some(EXIT_RUNTIME);
        }
        eprintln!(
            "trace: {} event(s) ({} dropped) -> {}",
            trace.events.len(),
            trace.dropped,
            path.display()
        );
        None
    }
}

fn cmd_campaign(args: &[String]) -> i32 {
    let flags = match CampaignFlags::parse("campaign", args, false) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let spec = match flags.resolve_spec(CampaignSpec::builtin) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let json = flags.json;
    let cfg = flags.engine_config(None);
    eprintln!(
        "campaign {:?}: {} task(s) on {} worker(s), seed {} ...",
        spec.name,
        spec.tasks.len(),
        cfg.jobs.max(1),
        spec.seed
    );
    flags.start_trace();
    let outcome = run_campaign(&spec, &cfg);
    if let Some(code) = flags.finish_trace() {
        return code;
    }
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign cache error: {e}");
            return EXIT_RUNTIME;
        }
    };

    if json {
        println!("{}", report.to_report().to_json());
    } else {
        for rec in &report.records {
            match (&rec.result, &rec.error) {
                (Some(res), _) => println!("  {:<18} {}", rec.label, summarize(res)),
                (None, Some(err)) => println!("  {:<18} FAILED: {err}", rec.label),
                (None, None) => println!("  {:<18} FAILED", rec.label),
            }
        }
        let m = &report.metrics;
        println!(
            "{} ok, {} failed in {:.1} ms wall ({:.1} ms of task time, {} worker(s))",
            m.succeeded,
            m.failed,
            m.total_wall_us as f64 / 1e3,
            m.task_wall_us as f64 / 1e3,
            m.jobs
        );
        println!(
            "cache: {}/{} filter hits, {}/{} module hits ({:.0}% overall)",
            m.cache.filter_hits,
            m.cache.filter_hits + m.cache.filter_misses,
            m.cache.module_hits,
            m.cache.module_hits + m.cache.module_misses,
            m.cache.hit_rate() * 100.0
        );
    }
    if report.degraded {
        EXIT_DEGRADED
    } else {
        EXIT_OK
    }
}

/// The default arena spec: every probing strategy, one task each, so
/// the campaign pool runs the full strategy × detector matrix.
fn arena_spec(seed: u64) -> CampaignSpec {
    let mut b = CampaignSpec::builder().name("arena-matrix").seed(seed);
    for s in cr_arena::StrategyKind::ALL {
        b = b.arena(s.name());
    }
    b.build().expect("arena spec is valid")
}

/// The headline §VII-C invariants, computed from the strategy rows
/// (reported, never asserted — `arena_bench` and the check script's
/// arena-smoke step are the asserting consumers).
fn arena_invariants(summaries: &[&cr_arena::ArenaSummary]) -> [(&'static str, bool); 4] {
    let cell = |strategy: &str, detector: &str| {
        summaries
            .iter()
            .find(|s| s.strategy == strategy)
            .and_then(|s| {
                s.pairs
                    .iter()
                    .find(|p| p.detector == detector)
                    .map(|p| (s.rounds, p))
            })
    };
    let stealth_evades_rate = cell("stealth", "rate").is_some_and(|(_, p)| p.detected_rounds == 0);
    let stealth_caught_by_cusum = cell("stealth", "cusum")
        .is_some_and(|(rounds, p)| rounds > 0 && p.detected_rounds == rounds);
    let escalation_len = cr_arena::ESCALATION.len() as u64;
    let filter_blocks_escalations = !summaries.is_empty()
        && summaries.iter().all(|s| {
            s.pairs
                .iter()
                .find(|p| p.detector == "filter")
                .is_some_and(|p| p.blocked_escalations == escalation_len * s.located_rounds as u64)
        });
    let zero_false_positives = !summaries.is_empty()
        && summaries
            .iter()
            .flat_map(|s| &s.pairs)
            .all(|p| p.false_positives == 0);
    [
        ("stealth_evades_rate", stealth_evades_rate),
        ("stealth_caught_by_cusum", stealth_caught_by_cusum),
        ("filter_blocks_escalations", filter_blocks_escalations),
        ("zero_false_positives", zero_false_positives),
    ]
}

/// `crash-resist arena`: run every probing strategy against the full
/// detector roster through the campaign engine and render the
/// strategy × detector matrix plus the headline invariants. The JSON
/// envelope carries only the deterministic half (`metrics` is null,
/// like `chaos --summary-json`), so it is byte-identical at any
/// `--jobs` count and diffs against a golden.
fn cmd_arena(args: &[String]) -> i32 {
    let flags = match CampaignFlags::parse("arena", args, false) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let spec = match flags.resolve_spec(arena_spec) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let cfg = flags.engine_config(None);
    eprintln!(
        "arena {:?}: {} strategy task(s) on {} worker(s), seed {} ...",
        spec.name,
        spec.tasks.len(),
        cfg.jobs.max(1),
        spec.seed
    );
    flags.start_trace();
    let outcome = run_campaign(&spec, &cfg);
    if let Some(code) = flags.finish_trace() {
        return code;
    }
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("arena cache error: {e}");
            return EXIT_RUNTIME;
        }
    };
    let summaries: Vec<&cr_arena::ArenaSummary> = report
        .records
        .iter()
        .filter_map(|r| match &r.result {
            Some(TaskResult::Arena { summary, .. }) => Some(summary),
            _ => None,
        })
        .collect();
    let invariants = arena_invariants(&summaries);
    if flags.json {
        use serde::Serialize;
        let mut results = String::from("{\"strategies\":[");
        for (i, s) in summaries.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            results.push_str(&s.to_json());
        }
        results.push_str("],\"invariants\":{");
        for (i, (name, holds)) in invariants.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            results.push('"');
            results.push_str(name);
            results.push_str("\":");
            holds.write_json(&mut results);
        }
        results.push_str("}}");
        println!(
            "{}",
            Report::builder(ReportKind::Arena)
                .results(results)
                .build()
                .to_json()
        );
    } else {
        for s in &summaries {
            println!(
                "  {:<8} {} round(s), {} probe(s) ({} dropped), located {}/{}",
                s.strategy, s.rounds, s.probes, s.dropped, s.located_rounds, s.rounds
            );
            for p in &s.pairs {
                println!(
                    "    {:<6} detected {}/{}, mean ttd {} ms, fp {}, blocked {}",
                    p.detector,
                    p.detected_rounds,
                    s.rounds,
                    p.time_to_detect_ms,
                    p.false_positives,
                    p.blocked_escalations
                );
            }
        }
        let line: Vec<String> = invariants
            .iter()
            .map(|(name, holds)| format!("{name}={holds}"))
            .collect();
        println!("invariants: {}", line.join(" "));
        for rec in &report.records {
            if rec.result.is_none() {
                match &rec.error {
                    Some(err) => println!("  {:<18} FAILED: {err}", rec.label),
                    None => println!("  {:<18} FAILED", rec.label),
                }
            }
        }
    }
    if report.degraded {
        EXIT_DEGRADED
    } else {
        EXIT_OK
    }
}

/// `crash-resist chaos`: run the campaign twice under a named fault
/// plan (a cold phase that also corrupts cache records on save, then a
/// warm phase over the damaged cache) and assert the chaos invariants:
///
/// 1. **completeness** — every spec task has a record, in order;
/// 2. **accounting** — observed per-class error counts equal the
///    simulated counts for the injected faults, and the warm phase's
///    `cache_corrupt` count equals the number of records the cold
///    phase corrupted;
/// 3. **determinism** — an identical rerun produces a byte-identical
///    deterministic report;
/// 4. **clean cache** — after the warm phase rewrites the store, a
///    final reload quarantines nothing.
fn cmd_chaos(args: &[String]) -> i32 {
    let flags = match CampaignFlags::parse("chaos", args, true) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let Some(plan) = FaultPlan::builtin(&flags.plan) else {
        eprintln!(
            "unknown fault plan {:?} (have: {})",
            flags.plan,
            BUILTIN_PLANS.join(" ")
        );
        return EXIT_UNKNOWN_TARGET;
    };
    let spec = match flags.resolve_spec(CampaignSpec::smoke) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let plan = plan.with_seed(effective_seed(flags.seed_flag));

    // The two-phase cache invariants need a persistent directory; use
    // a scratch one (removed afterwards) unless --cache was given. The
    // determinism rerun always gets its own fresh directory, so both
    // cold runs start from the same (empty) cache state.
    let scratch = std::env::temp_dir().join(format!("cr-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let cache_dir = match &flags.cache_dir {
        Some(d) => d.clone(),
        None => scratch.join("main"),
    };
    let rerun_dir = scratch.join("rerun");

    let run_phase = |plan: &FaultPlan,
                     dir: &PathBuf|
     -> Result<
        (cr_campaign::CampaignReport, std::sync::Arc<FaultInjector>),
        std::io::Error,
    > {
        let injector = std::sync::Arc::new(FaultInjector::new(plan.clone()));
        let mut cfg = flags.engine_config(Some(injector.clone()));
        cfg.cache_dir = Some(dir.clone());
        run_campaign(&spec, &cfg).map(|r| (r, injector))
    };

    eprintln!(
        "chaos plan {:?} (seed {}): {} task(s) on {} worker(s) ...",
        plan.name,
        plan.seed,
        spec.tasks.len(),
        flags.jobs.max(1)
    );

    flags.start_trace();
    let mut failures: Vec<String> = Vec::new();
    let outcome =
        (|| -> std::io::Result<(cr_campaign::CampaignReport, Vec<String>, ErrorCounts)> {
            let (cold, cold_inj) = run_phase(&plan, &cache_dir)?;
            let cfg_for_expect =
                flags.engine_config(Some(std::sync::Arc::new(FaultInjector::new(plan.clone()))));

            // I1: completeness — spec order, one record per task.
            if cold.records.len() != spec.tasks.len() {
                failures.push(format!(
                    "completeness: {} records for {} tasks",
                    cold.records.len(),
                    spec.tasks.len()
                ));
            }
            for (i, rec) in cold.records.iter().enumerate() {
                if rec.index != i || rec.label != spec.tasks[i].label() {
                    failures.push(format!("completeness: record {i} is {:?}", rec.label));
                }
            }

            // I2: accounting — every injected fault shows up in its class,
            // nothing else does. The cold phase starts from an empty cache,
            // so its quarantine count must be zero.
            let expected = expected_error_counts(&spec, &cfg_for_expect);
            if cold.errors != expected {
                failures.push(format!(
                    "accounting: observed {:?}, expected {:?}",
                    cold.errors, expected
                ));
            }

            // I3: determinism — identical rerun from an equally fresh
            // cache, byte-identical deterministic report.
            let (cold2, _) = run_phase(&plan, &rerun_dir)?;
            if cold.results_json() != cold2.results_json() {
                failures.push("determinism: rerun produced a different report".to_string());
            }

            // Warm phase: stop corrupting saves, run over the damaged
            // store. Every record the cold phase corrupted must be
            // quarantined and recomputed.
            let corrupted = cold_inj.fired_count(Site::CacheRecord);
            let warm_plan = plan.clone().without_site(Site::CacheRecord);
            let (warm, _) = run_phase(&warm_plan, &cache_dir)?;
            let mut warm_expected = expected_error_counts(
                &spec,
                &flags.engine_config(Some(std::sync::Arc::new(FaultInjector::new(
                    warm_plan.clone(),
                )))),
            );
            warm_expected.cache_corrupt += corrupted;
            if warm.errors != warm_expected {
                failures.push(format!(
                "accounting(warm): observed {:?}, expected {:?} ({corrupted} corrupted record(s))",
                warm.errors, warm_expected
            ));
            }

            // I4: the warm save rewrote the store cleanly.
            let reload = AnalysisCache::load(&cache_dir)?;
            if reload.quarantined() != 0 {
                failures.push(format!(
                    "clean-cache: final reload still quarantines {} line(s)",
                    reload.quarantined()
                ));
            }

            // Only the campaign-layer sites: the serve-layer sites can
            // never fire here, and listing them would churn the golden.
            let fired: Vec<String> = Site::CAMPAIGN
                .iter()
                .map(|&s| format!("{}:{}", s.name(), cold_inj.fired_count(s)))
                .collect();
            Ok((cold, fired, warm.errors))
        })();

    let _ = std::fs::remove_dir_all(&scratch);
    if let Some(code) = flags.finish_trace() {
        return code;
    }

    let (cold, fired, warm_errors) = match outcome {
        Ok(t) => t,
        Err(e) => {
            eprintln!("chaos cache error: {e}");
            return EXIT_RUNTIME;
        }
    };

    if flags.json {
        println!("{}", cold.to_report().to_json());
    }
    if flags.summary_json {
        use serde::Serialize;
        let mut results = String::from("{\"plan\":");
        plan.name.write_json(&mut results);
        results.push_str(",\"seed\":");
        plan.seed.write_json(&mut results);
        results.push_str(",\"tasks\":");
        cold.records.len().write_json(&mut results);
        results.push_str(",\"errors\":");
        cold.errors.write_json(&mut results);
        results.push_str(",\"warm_errors\":");
        warm_errors.write_json(&mut results);
        results.push_str(",\"degraded\":");
        cold.degraded.write_json(&mut results);
        results.push_str(",\"fired\":[");
        for (i, f) in fired.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            f.write_json(&mut results);
        }
        results.push_str("],\"invariants\":");
        if failures.is_empty() { "ok" } else { "BROKEN" }.write_json(&mut results);
        results.push('}');
        // The summary is the byte-deterministic half (the smoke golden
        // diffs it), so it rides in `results` with no `metrics`.
        println!(
            "{}",
            Report::builder(ReportKind::Chaos)
                .results(results)
                .build()
                .to_json()
        );
    }
    if !flags.json && !flags.summary_json {
        println!(
            "plan {:?}: {} fault(s) fired ({}), error classes {:?}",
            plan.name,
            fired
                .iter()
                .filter_map(|f| f.rsplit(':').next()?.parse::<u64>().ok())
                .sum::<u64>(),
            fired.join(" "),
            cold.errors
        );
    }

    for f in &failures {
        eprintln!("chaos invariant broken: {f}");
    }
    if !failures.is_empty() {
        EXIT_RUNTIME
    } else if cold.degraded {
        EXIT_DEGRADED
    } else {
        EXIT_OK
    }
}

/// `crash-resist report`: merge one or more `--trace` files and render
/// per-stage latency tables (p50/p95/max over span durations) plus a
/// campaign timeline of schedule spans. With `--json`, emits a
/// [`ReportKind::Report`] envelope: stage/event counts in `results`,
/// wall-clock latency statistics in `metrics`.
fn cmd_report(args: &[String]) -> i32 {
    let mut json = false;
    let mut files: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown report option {flag:?}");
                return EXIT_USAGE;
            }
            path => files.push(PathBuf::from(path)),
        }
    }
    if files.is_empty() {
        eprintln!("usage: crash-resist report <trace.jsonl>... [--json]");
        return EXIT_USAGE;
    }
    let mut traces = Vec::with_capacity(files.len());
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return EXIT_USAGE;
            }
        };
        match cr_trace::Trace::parse_jsonl(&text) {
            Ok(t) => traces.push(t),
            Err(e) => {
                eprintln!("bad trace {}: {e}", path.display());
                return EXIT_USAGE;
            }
        }
    }
    let n_files = traces.len();
    let merged = cr_trace::Trace::merge(traces);
    let stats = merged.stage_stats();
    let stage_names: Vec<&str> = merged.stages().iter().map(|s| s.name()).collect();
    // Decision-procedure counters from the advisory symex events.
    let solver_checks = merged.count_events(cr_trace::Stage::Symex, "solver.check");
    let solver_memo_hits =
        merged.count_events_with(cr_trace::Stage::Symex, "solver.check", "memo=hit");
    let solver_memo_misses =
        merged.count_events_with(cr_trace::Stage::Symex, "solver.check", "memo=miss");

    if json {
        use serde::Serialize;
        let mut results = String::from("{\"files\":");
        n_files.write_json(&mut results);
        results.push_str(",\"events\":");
        merged.events.len().write_json(&mut results);
        results.push_str(",\"dropped\":");
        merged.dropped.write_json(&mut results);
        results.push_str(",\"stages\":");
        stage_names.write_json(&mut results);
        results.push('}');
        let mut metrics = String::from("{\"stages\":[");
        for (i, s) in stats.iter().enumerate() {
            if i > 0 {
                metrics.push(',');
            }
            metrics.push_str("{\"stage\":");
            s.stage.name().write_json(&mut metrics);
            metrics.push_str(",\"events\":");
            s.events.write_json(&mut metrics);
            metrics.push_str(",\"spans\":");
            s.spans.write_json(&mut metrics);
            metrics.push_str(",\"p50_us\":");
            s.hist.p50().unwrap_or(0).write_json(&mut metrics);
            metrics.push_str(",\"p95_us\":");
            s.hist.p95().unwrap_or(0).write_json(&mut metrics);
            metrics.push_str(",\"max_us\":");
            s.hist.max().write_json(&mut metrics);
            metrics.push('}');
        }
        metrics.push_str("],\"solver\":{\"checks\":");
        solver_checks.write_json(&mut metrics);
        metrics.push_str(",\"memo_hits\":");
        solver_memo_hits.write_json(&mut metrics);
        metrics.push_str(",\"memo_misses\":");
        solver_memo_misses.write_json(&mut metrics);
        metrics.push_str("}}");
        println!(
            "{}",
            Report::builder(ReportKind::Report)
                .results(results)
                .metrics(metrics)
                .build()
                .to_json()
        );
        return EXIT_OK;
    }

    println!(
        "trace report: {n_files} file(s), {} event(s), {} dropped",
        merged.events.len(),
        merged.dropped
    );
    println!("stages: {}", stage_names.join(" "));
    println!(
        "{:<10} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "stage", "events", "spans", "p50_us", "p95_us", "max_us"
    );
    for s in &stats {
        println!(
            "{:<10} {:>7} {:>7} {:>9} {:>9} {:>9}",
            s.stage.name(),
            s.events,
            s.spans,
            s.hist.p50().unwrap_or(0),
            s.hist.p95().unwrap_or(0),
            s.hist.max()
        );
    }
    println!(
        "solver: checks={solver_checks} memo_hits={solver_memo_hits} memo_misses={solver_memo_misses}"
    );

    // Merged campaign timeline: scheduling spans across all runs, in
    // wall order within each run.
    const TIMELINE_ROWS: usize = 40;
    let mut rows: Vec<&cr_trace::Event> = merged
        .events
        .iter()
        .filter(|e| e.stage == cr_trace::Stage::Schedule && e.dur_us.is_some())
        .collect();
    rows.sort_by_key(|e| (e.run, e.wall_us, e.seq));
    println!("timeline ({} schedule span(s)):", rows.len());
    for e in rows.iter().take(TIMELINE_ROWS) {
        println!(
            "  [run {}] +{:>8}us  {:<12} {} ({}us)",
            e.run,
            e.wall_us,
            e.name,
            e.detail,
            e.dur_us.unwrap_or(0)
        );
    }
    if rows.len() > TIMELINE_ROWS {
        println!("  ... and {} more", rows.len() - TIMELINE_ROWS);
    }
    EXIT_OK
}

/// `crash-resist serve`: bind the resident analysis server and run it
/// until a client sends a Shutdown frame (the SIGTERM-equivalent —
/// portable `std` cannot trap signals). Prints `serving on ADDR` on
/// stdout once the listener is live, so scripts can scrape the
/// ephemeral port, then blocks until the drain completes.
fn cmd_serve(args: &[String]) -> i32 {
    let mut cfg = cr_serve::ServeConfig::default();
    let mut plan_name: Option<String> = None;
    let mut seed_flag: Option<u64> = None;
    let mut stats_json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats-json" => {
                stats_json = true;
                i += 1;
            }
            flag @ ("--addr"
            | "--jobs"
            | "--retries"
            | "--deadline-ms"
            | "--request-deadline-ms"
            | "--capacity"
            | "--cache"
            | "--plan"
            | "--seed") => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{flag} needs a value");
                    return EXIT_USAGE;
                };
                let ok = match flag {
                    "--addr" => {
                        cfg.addr = v.clone();
                        true
                    }
                    "--cache" => {
                        cfg.cache_dir = Some(PathBuf::from(v));
                        true
                    }
                    "--plan" => {
                        plan_name = Some(v.clone());
                        true
                    }
                    "--jobs" => v.parse().map(|n| cfg.jobs = n).is_ok(),
                    "--retries" => v.parse().map(|r| cfg.retries = r).is_ok(),
                    "--deadline-ms" => v
                        .parse()
                        .map(|d| cfg.deadline_ms = if d == 0 { None } else { Some(d) })
                        .is_ok(),
                    "--request-deadline-ms" => v
                        .parse()
                        .map(|d| cfg.request_deadline_ms = if d == 0 { None } else { Some(d) })
                        .is_ok(),
                    "--capacity" => v.parse().map(|c| cfg.admit_capacity = c).is_ok(),
                    "--seed" => v.parse().map(|s| seed_flag = Some(s)).is_ok(),
                    _ => unreachable!(),
                };
                if !ok {
                    eprintln!("bad {flag} value {v:?} (want a non-negative integer)");
                    return EXIT_USAGE;
                }
                i += 2;
            }
            other => {
                eprintln!("unknown serve option {other:?}");
                return EXIT_USAGE;
            }
        }
    }
    if let Some(name) = &plan_name {
        let Some(plan) = FaultPlan::builtin(name) else {
            eprintln!(
                "unknown fault plan {name:?} (have: {})",
                BUILTIN_PLANS.join(" ")
            );
            return EXIT_UNKNOWN_TARGET;
        };
        cfg.injector = Some(std::sync::Arc::new(FaultInjector::new(
            plan.with_seed(effective_seed(seed_flag)),
        )));
    }
    let server = match cr_serve::Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind server: {e}");
            return EXIT_RUNTIME;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            return EXIT_RUNTIME;
        }
    };
    println!("serving on {addr}");
    {
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
    match server.run() {
        Ok(stats) => {
            eprintln!(
                "drained: {} conn(s), {} request(s) admitted, {} completed, {} busy-rejected",
                stats.conns_accepted,
                stats.requests_admitted,
                stats.requests_completed,
                stats.busy_rejections
            );
            if stats_json {
                use serde::Serialize;
                println!(
                    "{}",
                    Report::builder(ReportKind::Serve)
                        .results(stats.to_json())
                        .build()
                        .to_json()
                );
            }
            EXIT_OK
        }
        Err(e) => {
            eprintln!("server failed: {e}");
            EXIT_RUNTIME
        }
    }
}

/// One spec of the fleet request mix: a single SEH module per
/// request, chosen round-robin from the calibration set so each
/// request has a distinct consistent-hash route key and the mix
/// spreads across workers.
fn fleet_spec(n: usize, seed: u64) -> cr_campaign::CampaignSpec {
    let calib = cr_targets::browsers::CALIBRATION;
    cr_campaign::CampaignSpec::builder()
        .name(format!("fleet-{n}"))
        .seed(seed)
        .seh(calib[n % calib.len()].name)
        .build()
        .expect("fleet spec is valid")
}

/// One request against the fleet front over a fresh connection;
/// returns the Result document on a clean `ok` completion.
fn fleet_request(addr: &str, payload: &str) -> Result<String, String> {
    let mut client = cr_serve::Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let response = client
        .request_with_retry(payload, 10)
        .map_err(|e| e.to_string())?;
    if let Some(err) = &response.error {
        return Err(format!("server error: {err}"));
    }
    if response.busy.is_some() {
        return Err("rejected busy after 10 retries".into());
    }
    let status = response.done_str("status").unwrap_or_default();
    if status != "ok" {
        return Err(format!("request finished with status {status:?}"));
    }
    let result = response
        .result
        .ok_or_else(|| "no result document".to_string())?;
    String::from_utf8(result).map_err(|_| "result document is not UTF-8".to_string())
}

/// `crash-resist fleet`: start an in-process supervised fleet, drive
/// a deterministic request mix through the router, and verify the
/// fleet invariants against one-shot campaign references computed in
/// the same process:
///
/// 1. every admitted request is answered (node kills, partitions and
///    rolling restarts included),
/// 2. every Result frame is byte-identical to the one-shot run of the
///    same spec, regardless of which worker answered,
/// 3. the delivery ledger holds exactly one Result per request.
///
/// The mix is sequential distinct specs first — admissions `1..=N`,
/// so `--kill-request K` lands deterministically — then a concurrent
/// burst of identical requests to exercise coalescing; with
/// `--rolling-restart` the distinct specs are re-driven while every
/// worker rotates through a graceful drain.
fn cmd_fleet(args: &[String]) -> i32 {
    let mut workers = 3usize;
    let mut requests = 4usize;
    let mut plan_name: Option<String> = None;
    let mut seed_flag: Option<u64> = None;
    let mut kill_request: Option<u64> = None;
    let mut rolling = false;
    let mut summary_json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rolling-restart" => {
                rolling = true;
                i += 1;
            }
            "--summary-json" => {
                summary_json = true;
                i += 1;
            }
            flag @ ("--workers" | "--requests" | "--plan" | "--seed" | "--kill-request") => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{flag} needs a value");
                    return EXIT_USAGE;
                };
                let ok = match flag {
                    "--plan" => {
                        plan_name = Some(v.clone());
                        true
                    }
                    "--workers" => v.parse().map(|n: usize| workers = n.max(1)).is_ok(),
                    "--requests" => v.parse().map(|n: usize| requests = n.max(1)).is_ok(),
                    "--seed" => v.parse().map(|s| seed_flag = Some(s)).is_ok(),
                    "--kill-request" => v.parse().map(|k| kill_request = Some(k)).is_ok(),
                    _ => unreachable!(),
                };
                if !ok {
                    eprintln!("bad {flag} value {v:?} (want a non-negative integer)");
                    return EXIT_USAGE;
                }
                i += 2;
            }
            other => {
                eprintln!("unknown fleet option {other:?}");
                return EXIT_USAGE;
            }
        }
    }
    let seed = effective_seed(seed_flag);
    let mut cfg = cr_fleet::FleetConfig {
        workers,
        kill_at_admission: kill_request,
        ..cr_fleet::FleetConfig::default()
    };
    if let Some(name) = &plan_name {
        let Some(plan) = FaultPlan::builtin(name) else {
            eprintln!(
                "unknown fault plan {name:?} (have: {})",
                BUILTIN_PLANS.join(" ")
            );
            return EXIT_UNKNOWN_TARGET;
        };
        cfg.injector = Some(std::sync::Arc::new(FaultInjector::new(
            plan.with_seed(seed),
        )));
    }

    // The byte-identity references: the same specs, run one-shot in
    // this process. The fleet must reproduce these exactly no matter
    // which worker answers or how often the admission failed over.
    let specs: Vec<cr_campaign::CampaignSpec> =
        (0..requests).map(|n| fleet_spec(n, seed)).collect();
    let mut references = Vec::with_capacity(requests);
    for spec in &specs {
        match run_campaign(spec, &EngineConfig::default()) {
            Ok(report) => references.push(report.results_json()),
            Err(e) => {
                eprintln!("cannot compute reference for {}: {e}", spec.name);
                return EXIT_RUNTIME;
            }
        }
    }

    let fleet = match cr_fleet::Fleet::start(cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot start fleet: {e}");
            return EXIT_RUNTIME;
        }
    };
    let addr = fleet.addr().to_string();
    eprintln!("fleet: {workers} worker(s) behind {addr}");

    let mut answered = 0usize;
    let mut expected = 0usize;
    let mut byte_identical = true;
    let mut check = |n: usize, outcome: Result<String, String>| match outcome {
        Ok(result) => {
            answered += 1;
            if result != references[n] {
                byte_identical = false;
                eprintln!(
                    "request {}: result differs from the one-shot reference",
                    n + 1
                );
            }
        }
        Err(e) => eprintln!("request {}: {e}", n + 1),
    };

    // Phase 1: sequential distinct specs — admissions 1..=requests.
    for (n, spec) in specs.iter().enumerate() {
        expected += 1;
        let payload = request_payload(spec, None, None, None);
        check(n, fleet_request(&addr, &payload));
    }

    // Phase 2 (--rolling-restart): re-drive the same specs while every
    // worker rotates through a graceful drain-and-respawn.
    if rolling {
        std::thread::scope(|s| {
            s.spawn(|| fleet.rolling_restart());
            for (n, spec) in specs.iter().enumerate() {
                expected += 1;
                let payload = request_payload(spec, None, None, None);
                check(n, fleet_request(&addr, &payload));
            }
        });
    }

    // Phase 3: a concurrent burst of byte-identical requests —
    // coalescing candidates; each still gets its own Result frame.
    const BURST: usize = 3;
    let burst_payload = request_payload(&specs[0], None, None, None);
    let burst: Vec<Result<String, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..BURST)
            .map(|_| s.spawn(|| fleet_request(&addr, &burst_payload)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("burst thread panicked".into()))
            })
            .collect()
    });
    for outcome in burst {
        expected += 1;
        check(0, outcome);
    }

    let live_exactly_once = fleet
        .delivery_counts()
        .iter()
        .all(|&(_, deliveries)| deliveries == 1);
    for (id, state, generation) in fleet.worker_states() {
        eprintln!("worker {id}: {} (generation {generation})", state.name());
    }
    let stats = fleet.join();
    // Closed connections retire their ledger entries into counters;
    // the invariant covers those too.
    let exactly_once = live_exactly_once && stats.ledger_violations == 0;
    let ok = answered == expected && byte_identical && exactly_once;
    eprintln!(
        "fleet verdict: answered {answered}/{expected}, byte_identical={byte_identical}, \
         exactly_once={exactly_once}, kills={}, failovers={}, restarts={}, coalesced={}",
        stats.kills, stats.failovers, stats.restarts, stats.coalesced
    );
    if summary_json {
        use serde::Serialize;
        let results = format!(
            "{{\"answered\":{answered},\"expected\":{expected},\
             \"byte_identical\":{byte_identical},\"exactly_once\":{exactly_once},\"ok\":{ok}}}"
        );
        println!(
            "{}",
            Report::builder(ReportKind::Fleet)
                .results(results)
                .metrics(stats.to_json())
                .build()
                .to_json()
        );
    }
    if ok {
        EXIT_OK
    } else {
        EXIT_RUNTIME
    }
}

/// Render the request payload: the spec document with the server-side
/// option keys (`jobs`, `retries`, `deadline_ms`) spliced in. The spec
/// parser ignores unknown top-level keys, so the same document also
/// feeds `campaign --spec` unchanged.
fn request_payload(
    spec: &cr_campaign::CampaignSpec,
    jobs: Option<usize>,
    retries: Option<u32>,
    deadline_ms: Option<u64>,
) -> String {
    use serde::Serialize;
    let mut doc = spec.to_json();
    doc.pop(); // strip the trailing '}' and splice the option keys
    if let Some(j) = jobs {
        doc.push_str(&format!(",\"jobs\":{j}"));
    }
    if let Some(r) = retries {
        doc.push_str(&format!(",\"retries\":{r}"));
    }
    if let Some(d) = deadline_ms {
        doc.push_str(&format!(",\"deadline_ms\":{d}"));
    }
    doc.push('}');
    doc
}

/// `crash-resist client`: connect to a resident server, send one
/// campaign request (optionally repeated over the same connection to
/// exercise the warm caches), and render the streamed response.
fn cmd_client(args: &[String]) -> i32 {
    let mut addr: Option<String> = None;
    let mut spec_path: Option<PathBuf> = None;
    let mut seed_flag: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut retries: Option<u32> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut repeat = 1usize;
    let mut repeat_given = false;
    let mut busy_retries = 3u32;
    let mut json = false;
    let mut stats = false;
    let mut shutdown = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--stats" => {
                stats = true;
                i += 1;
            }
            "--shutdown" => {
                shutdown = true;
                i += 1;
            }
            flag @ ("--addr" | "--spec" | "--seed" | "--jobs" | "--retries" | "--deadline-ms"
            | "--repeat" | "--busy-retries") => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{flag} needs a value");
                    return EXIT_USAGE;
                };
                let ok = match flag {
                    "--addr" => {
                        addr = Some(v.clone());
                        true
                    }
                    "--spec" => {
                        spec_path = Some(PathBuf::from(v));
                        true
                    }
                    "--seed" => v.parse().map(|s| seed_flag = Some(s)).is_ok(),
                    "--jobs" => v.parse().map(|n| jobs = Some(n)).is_ok(),
                    "--retries" => v.parse().map(|r| retries = Some(r)).is_ok(),
                    "--deadline-ms" => v.parse().map(|d| deadline_ms = Some(d)).is_ok(),
                    "--repeat" => v
                        .parse()
                        .map(|n: usize| {
                            repeat = n.max(1);
                            repeat_given = true;
                        })
                        .is_ok(),
                    "--busy-retries" => v.parse().map(|n| busy_retries = n).is_ok(),
                    _ => unreachable!(),
                };
                if !ok {
                    eprintln!("bad {flag} value {v:?} (want a non-negative integer)");
                    return EXIT_USAGE;
                }
                i += 2;
            }
            other => {
                eprintln!("unknown client option {other:?}");
                return EXIT_USAGE;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: crash-resist client --addr HOST:PORT [options]");
        return EXIT_USAGE;
    };
    let mut spec = match &spec_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    return EXIT_USAGE;
                }
            };
            match cr_campaign::CampaignSpec::from_json(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bad spec {}: {e}", path.display());
                    return EXIT_USAGE;
                }
            }
        }
        None => cr_campaign::CampaignSpec::smoke(effective_seed(seed_flag)),
    };
    if seed_flag.is_some() || std::env::var("CR_SEED").is_ok() {
        spec.seed = effective_seed(seed_flag);
    }
    let payload = request_payload(&spec, jobs, retries, deadline_ms);

    let mut client = match cr_serve::Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return EXIT_RUNTIME;
        }
    };
    eprintln!("connected to {addr} (protocol v{})", client.version);

    // A bare `client --addr X --shutdown` is an operator saying "stop
    // the server" — don't run a smoke campaign on the way out. Any
    // request-shaped flag restores the request loop before shutdown.
    let send_requests = !shutdown
        || spec_path.is_some()
        || repeat_given
        || json
        || stats
        || seed_flag.is_some()
        || jobs.is_some()
        || retries.is_some()
        || deadline_ms.is_some();

    let mut worst = EXIT_OK;
    let mut last: Option<cr_serve::Response> = None;
    for n in 1..=if send_requests { repeat } else { 0 } {
        let response = match client.request_with_retry(&payload, busy_retries) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("request {n} failed: {e}");
                return EXIT_RUNTIME;
            }
        };
        if let Some(err) = &response.error {
            eprintln!("request {n}: server error: {err}");
            worst = EXIT_RUNTIME;
        } else if response.busy.is_some() {
            eprintln!("request {n}: rejected busy after {busy_retries} retries");
            worst = EXIT_RUNTIME;
        } else if let Some(done) = &response.done {
            let status = response.done_str("status").unwrap_or_default();
            let degraded = cr_campaign::json::Json::parse(done)
                .ok()
                .and_then(|d| d.get("degraded")?.as_bool())
                .unwrap_or(false);
            eprintln!(
                "request {n}: {status} in {} us (solver_calls={}, parse={}, degraded={degraded})",
                response.done_u64("wall_us").unwrap_or(0),
                response.done_u64("solver_calls").unwrap_or(0),
                response.done_str("parse").unwrap_or_default(),
            );
            if stats {
                println!("{done}");
            }
            if status != "ok" {
                worst = EXIT_RUNTIME;
            } else if degraded && worst == EXIT_OK {
                worst = EXIT_DEGRADED;
            }
        }
        last = Some(response);
    }
    if json {
        match last.as_ref().and_then(|r| r.result.as_ref()) {
            Some(result) => match std::str::from_utf8(result) {
                Ok(doc) => println!("{doc}"),
                Err(_) => {
                    eprintln!("result document is not UTF-8");
                    return EXIT_RUNTIME;
                }
            },
            None => {
                eprintln!("no result document to print");
                if worst == EXIT_OK {
                    worst = EXIT_RUNTIME;
                }
            }
        }
    }
    if shutdown {
        if let Err(e) = client.shutdown() {
            eprintln!("shutdown failed: {e}");
            return EXIT_RUNTIME;
        }
        eprintln!("server acknowledged shutdown");
    }
    worst
}

fn summarize(res: &TaskResult) -> String {
    match res {
        TaskResult::Server {
            observed_syscalls,
            findings,
            usable,
            ..
        } => {
            format!("{observed_syscalls} syscalls, {findings} findings, {usable} usable")
        }
        TaskResult::Seh { summary, .. } => format!(
            "{} -> {} guarded, {} -> {} filters ({} undecided)",
            summary.guarded_before,
            summary.guarded_after,
            summary.filters_before,
            summary.filters_after,
            summary.filters_undecided
        ),
        TaskResult::Funnel {
            total,
            crash_resistant,
            js_reachable,
            usable,
            ..
        } => {
            format!("{total} APIs, {crash_resistant} crash-resistant, {js_reachable} JS-reachable, {usable} usable")
        }
        TaskResult::Scan { summary, .. } => format!(
            "{} sites ({} constant, {} memory-loaded), {} serving-reachable, {} init-only",
            summary.sites, summary.constant, summary.memory, summary.serving, summary.init_only
        ),
        TaskResult::Arena { summary, .. } => {
            let cells: Vec<String> = summary
                .pairs
                .iter()
                .map(|p| format!("{} {}/{}", p.detector, p.detected_rounds, summary.rounds))
                .collect();
            format!(
                "{} probe(s), located {}/{}, {}",
                summary.probes,
                summary.located_rounds,
                summary.rounds,
                cells.join(", ")
            )
        }
        TaskResult::Poc {
            oracle,
            mapped,
            probes,
            located,
            crashed,
        } => format!(
            "{oracle}: {} in {probes} probes ({mapped} mapped){}",
            if *located {
                "located hidden region"
            } else {
                "hidden region NOT found"
            },
            if *crashed { ", CRASHED" } else { "" }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::{HELP, VERBS};

    #[test]
    fn help_lists_every_verb() {
        for verb in VERBS {
            assert!(
                HELP.contains(&format!("crash-resist {verb}")),
                "HELP must document verb {verb:?}"
            );
        }
    }

    #[test]
    fn request_payload_splices_option_keys() {
        let spec = cr_campaign::CampaignSpec::smoke(7);
        let bare = super::request_payload(&spec, None, None, None);
        assert_eq!(bare, {
            use serde::Serialize;
            spec.to_json()
        });
        let full = super::request_payload(&spec, Some(4), Some(2), Some(1500));
        assert!(full.ends_with(",\"jobs\":4,\"retries\":2,\"deadline_ms\":1500}"));
        // The spliced document still parses as the same spec: option
        // keys are invisible to the campaign layer.
        assert_eq!(cr_campaign::CampaignSpec::from_json(&full).unwrap(), spec);
    }
}
