//! Exit-code contract of the `crash-resist` binary:
//! `0` success, `1` runtime failure, `2` usage error, `3` unknown
//! target. Only fast code paths are exercised — no analysis runs.

use std::process::Command;

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_crash-resist"))
        .args(args)
        .env_remove("CR_SEED")
        .output()
        .expect("spawn crash-resist");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_paths_exit_zero() {
    for args in [&[] as &[&str], &["help"], &["--help"]] {
        let (code, stdout, _) = run(args);
        assert_eq!(code, 0, "{args:?}");
        assert!(stdout.contains("USAGE"), "{args:?}");
    }
}

#[test]
fn usage_errors_exit_two() {
    let cases: &[&[&str]] = &[
        &["bogus-verb"],
        &["discover"],
        &["analyze"],
        &["cfg"],
        &["poc"],
        &["poc", "ie", "not-hex"],
        &["funnel", "not-a-number"],
        &["campaign", "--bogus-flag"],
        &["campaign", "--jobs"],
        &["campaign", "--jobs", "many"],
        &["campaign", "--spec", "/nonexistent/spec.json"],
        &["arena", "--bogus-flag"],
        // --summary-json and --plan are chaos-only; arena must reject them.
        &["arena", "--summary-json"],
        &["arena", "--plan", "mayhem"],
    ];
    for args in cases {
        let (code, _, stderr) = run(args);
        assert_eq!(code, 2, "{args:?} -> stderr: {stderr}");
    }
}

#[test]
fn unknown_targets_exit_three() {
    let cases: &[&[&str]] = &[
        &["discover", "apache"],
        &["analyze", "no-such-dll"],
        &["cfg", "apache"],
        &["poc", "chrome", "1000"],
    ];
    for args in cases {
        let (code, _, stderr) = run(args);
        assert_eq!(code, 3, "{args:?} -> stderr: {stderr}");
        assert!(stderr.contains("unknown"), "{args:?}");
    }
}

#[test]
fn list_rows_are_aligned() {
    let (code, stdout, _) = run(&["list"]);
    assert_eq!(code, 0);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4);
    // Every row's first name starts in the same column.
    let cols: Vec<usize> = lines
        .iter()
        .map(|l| {
            let after = l.split_once(':').expect("label").1;
            l.len() - after.trim_start().len()
        })
        .collect();
    assert!(
        cols.windows(2).all(|w| w[0] == w[1]),
        "misaligned list: {stdout}"
    );
    assert!(lines[1].contains("user32"));
    assert!(lines[3].contains("mayhem"));
}

#[test]
fn chaos_usage_and_unknown_plan_exit_codes() {
    let cases: &[&[&str]] = &[
        &["chaos", "--bogus-flag"],
        &["chaos", "--plan"],
        &["chaos", "--jobs", "many"],
    ];
    for args in cases {
        let (code, _, stderr) = run(args);
        assert_eq!(code, 2, "{args:?} -> stderr: {stderr}");
    }
    let (code, _, stderr) = run(&["chaos", "--plan", "no-such-plan"]);
    assert_eq!(code, 3, "stderr: {stderr}");
    assert!(stderr.contains("unknown fault plan"));
}

#[test]
fn campaign_rejects_summary_json_flag() {
    // --summary-json is chaos-only; campaign must reject it.
    let (code, _, stderr) = run(&["campaign", "--summary-json"]);
    assert_eq!(code, 2, "stderr: {stderr}");
}

#[test]
fn campaign_rejects_malformed_spec_files() {
    let dir = std::env::temp_dir().join(format!("cr-cli-spec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    std::fs::write(&path, "{\"tasks\": [{\"Nope\": 1}]}").unwrap();
    let (code, _, stderr) = run(&["campaign", "--spec", path.to_str().unwrap()]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("bad spec"));
    std::fs::remove_dir_all(&dir).unwrap();
}
