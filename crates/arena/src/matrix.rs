//! The strategies × detectors grid.
//!
//! [`run_strategy`] drives one strategy for a configured number of
//! seeded rounds and judges every round with every detector, folding
//! the verdicts into one integer-only [`ArenaSummary`] per strategy
//! (detection rate, mean virtual time-to-detect, false positives on
//! the shared benign workload, blocked escalation syscalls).
//! [`run_matrix`] sweeps all four strategies.
//!
//! Summaries carry integers exclusively — virtual milliseconds, round
//! counts — so renders are byte-identical across hosts and worker
//! counts for a given seed.

use crate::detectors::{Cusum, DetectorKind, SyscallFilter};
use crate::strategies::{self, run_benign, run_round, DropFn, ProbeSession, StrategyKind};
use cr_defense::RateDetector;
use cr_os::STEPS_PER_MS;

/// Arena run parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaConfig {
    /// Base seed; each (strategy, round) derives its own stream.
    pub seed: u64,
    /// Seeded rounds per strategy.
    pub rounds: usize,
    /// Module whose static scan generates the syscall filter.
    pub filter_module: String,
}

impl Default for ArenaConfig {
    fn default() -> Self {
        ArenaConfig {
            seed: 2017,
            rounds: 3,
            filter_module: "vsftpd".into(),
        }
    }
}

/// One (strategy, detector) cell of the grid.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ArenaPair {
    /// Detector name.
    pub detector: String,
    /// Rounds in which the detector caught the strategy.
    pub detected_rounds: usize,
    /// Mean virtual time-to-detect over caught rounds, in ms (0 when
    /// never caught).
    pub time_to_detect_ms: u64,
    /// Alarms (or blocked benign syscalls, for the filter) on the
    /// benign browsing workload.
    pub false_positives: u64,
    /// Escalation syscalls blocked across all rounds (filter only;
    /// always 0 for log-based detectors).
    pub blocked_escalations: u64,
}

/// Per-strategy summary over all rounds and detectors.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ArenaSummary {
    /// Strategy name.
    pub strategy: String,
    /// Rounds driven.
    pub rounds: usize,
    /// Probes attempted across all rounds (dropped ones included).
    pub probes: u64,
    /// Probes swallowed by the chaos drop predicate.
    pub dropped: u64,
    /// Rounds in which the secret region was located.
    pub located_rounds: usize,
    /// One cell per detector, in [`DetectorKind::ALL`] order.
    pub pairs: Vec<ArenaPair>,
}

impl ArenaSummary {
    /// The cell for `detector`, if present.
    pub fn pair(&self, detector: DetectorKind) -> Option<&ArenaPair> {
        self.pairs.iter().find(|p| p.detector == detector.name())
    }
}

/// Derive the per-round seed stream from the base seed.
fn round_seed(base: u64, kind: StrategyKind, round: usize) -> u64 {
    let k = StrategyKind::ALL.iter().position(|x| *x == kind).unwrap() as u64;
    base ^ (k << 32) ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Detector verdict on one session: caught, and at which virtual time.
fn judge(
    detector: DetectorKind,
    filter: &SyscallFilter,
    s: &ProbeSession,
) -> (bool, Option<u64>, u64) {
    match detector {
        DetectorKind::Rate => {
            let r = RateDetector::default().analyze(&s.log, s.start_vtime, s.end_vtime);
            (r.alarm, r.alarm_at, 0)
        }
        DetectorKind::Cusum => {
            let r = Cusum::default().analyze(&s.log, s.start_vtime, s.end_vtime);
            (r.alarm, r.alarm_at, 0)
        }
        DetectorKind::Filter => {
            let blocked = filter.blocked(&s.escalation).len() as u64;
            // Enforcement fires at escalation time — session end.
            (blocked > 0, (blocked > 0).then_some(s.end_vtime), blocked)
        }
    }
}

/// False positives of `detector` on the benign browsing session: an
/// alarm for the log-based detectors, blocked footprint syscalls for
/// the filter.
fn benign_false_positives(
    detector: DetectorKind,
    filter: &SyscallFilter,
    benign: &ProbeSession,
) -> u64 {
    match detector {
        DetectorKind::Rate => u64::from(
            RateDetector::default()
                .analyze(&benign.log, benign.start_vtime, benign.end_vtime)
                .alarm,
        ),
        DetectorKind::Cusum => u64::from(
            Cusum::default()
                .analyze(&benign.log, benign.start_vtime, benign.end_vtime)
                .alarm,
        ),
        DetectorKind::Filter => filter.blocked(&strategies::BENIGN_SYSCALLS).len() as u64,
    }
}

/// Drive `kind` for `cfg.rounds` seeded rounds and judge each with
/// every detector. The drop predicate models the `arena.probe.drop`
/// chaos site; pass `&mut |_| false` for the honest run.
pub fn run_strategy(kind: StrategyKind, cfg: &ArenaConfig, drop: DropFn<'_>) -> ArenaSummary {
    let filter = SyscallFilter::for_module(&cfg.filter_module);
    let benign = run_benign();

    let sessions: Vec<ProbeSession> = (0..cfg.rounds)
        .map(|r| run_round(kind, round_seed(cfg.seed, kind, r), drop))
        .collect();

    let pairs = DetectorKind::ALL
        .into_iter()
        .map(|d| {
            let mut detected = 0usize;
            let mut ttd_sum = 0u64;
            let mut blocked = 0u64;
            for s in &sessions {
                let (caught, at, b) = judge(d, &filter, s);
                blocked += b;
                if caught {
                    detected += 1;
                    ttd_sum +=
                        at.unwrap_or(s.end_vtime).saturating_sub(s.start_vtime) / STEPS_PER_MS;
                }
            }
            ArenaPair {
                detector: d.name().to_string(),
                detected_rounds: detected,
                time_to_detect_ms: if detected > 0 {
                    ttd_sum / detected as u64
                } else {
                    0
                },
                false_positives: benign_false_positives(d, &filter, &benign),
                blocked_escalations: blocked,
            }
        })
        .collect();

    ArenaSummary {
        strategy: kind.name().to_string(),
        rounds: cfg.rounds,
        probes: sessions.iter().map(|s| s.probes).sum(),
        dropped: sessions.iter().map(|s| s.dropped).sum(),
        located_rounds: sessions.iter().filter(|s| s.located).count(),
        pairs,
    }
}

/// Run the full 4×3 grid with no chaos drops.
pub fn run_matrix(cfg: &ArenaConfig) -> Vec<ArenaSummary> {
    StrategyKind::ALL
        .into_iter()
        .map(|k| run_strategy(k, cfg, &mut |_| false))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    fn cell(s: &ArenaSummary, d: DetectorKind) -> &ArenaPair {
        s.pair(d).expect("cell present")
    }

    #[test]
    fn matrix_matches_the_calibrated_story() {
        let cfg = ArenaConfig {
            rounds: 2,
            ..ArenaConfig::default()
        };
        let matrix = run_matrix(&cfg);
        assert_eq!(matrix.len(), 4);
        for s in &matrix {
            assert_eq!(
                s.located_rounds, s.rounds,
                "{}: honest runs locate",
                s.strategy
            );
            // CUSUM catches everything; the filter blocks every
            // escalation with zero benign false positives.
            assert_eq!(
                cell(s, DetectorKind::Cusum).detected_rounds,
                s.rounds,
                "{}",
                s.strategy
            );
            let f = cell(s, DetectorKind::Filter);
            assert_eq!(f.detected_rounds, s.rounds, "{}", s.strategy);
            assert_eq!(f.blocked_escalations, 3 * s.rounds as u64, "{}", s.strategy);
            for p in &s.pairs {
                assert_eq!(p.false_positives, 0, "{}/{}", s.strategy, p.detector);
            }
        }
        let by_name = |n: &str| matrix.iter().find(|s| s.strategy == n).unwrap();
        // The naive rate threshold catches the loud strategies…
        assert_eq!(
            cell(by_name("linear"), DetectorKind::Rate).detected_rounds,
            2
        );
        assert_eq!(
            cell(by_name("burst"), DetectorKind::Rate).detected_rounds,
            2
        );
        // …but both low-rate strategies slip past it.
        assert_eq!(
            cell(by_name("bisect"), DetectorKind::Rate).detected_rounds,
            0
        );
        assert_eq!(
            cell(by_name("stealth"), DetectorKind::Rate).detected_rounds,
            0
        );
        // Headline: stealth is still caught — by accumulation.
        let stealth = by_name("stealth");
        assert!(cell(stealth, DetectorKind::Cusum).time_to_detect_ms > 0);
    }

    #[test]
    fn summaries_render_deterministically() {
        let cfg = ArenaConfig {
            rounds: 1,
            ..ArenaConfig::default()
        };
        let a = run_strategy(StrategyKind::Bisect, &cfg, &mut |_| false);
        let b = run_strategy(StrategyKind::Bisect, &cfg, &mut |_| false);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().starts_with("{\"strategy\":\"bisect\""));
    }

    #[test]
    fn chaos_drops_degrade_without_nondeterminism() {
        let cfg = ArenaConfig {
            rounds: 1,
            ..ArenaConfig::default()
        };
        // Drop the first 16 probes of the round.
        let a = run_strategy(StrategyKind::Bisect, &cfg, &mut |i| i < 16);
        let b = run_strategy(StrategyKind::Bisect, &cfg, &mut |i| i < 16);
        assert_eq!(a, b);
        assert_eq!(a.dropped, 16);
    }
}
