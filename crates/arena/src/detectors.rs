//! The arena's detector roster.
//!
//! Three detectors, three detection philosophies:
//!
//! * **rate** — the paper's §VII-C sliding-window rate threshold,
//!   wrapping [`cr_defense::RateDetector`] unchanged;
//! * **cusum** — a windowed CUSUM anomaly scorer: fault counts are
//!   bucketed per virtual-time window and the cumulative excess over a
//!   drift allowance accumulates, so a *sustained* low rate (stealth
//!   probing) eventually alarms even though no single window crosses the
//!   naive threshold;
//! * **filter** — a seccomp-style syscall allowlist generated
//!   automatically from cr-scan's static observations, split into
//!   init-phase and serving-phase lists per the SysPart temporal tags.
//!
//! All detection clocks are virtual-time only; nothing here reads wall
//! time.

use cr_os::windows::FaultEvent;
use cr_os::STEPS_PER_MS;
use cr_scan::{ScanReport, Temporal};
use std::collections::BTreeSet;

/// The three detectors, in a stable order (new kinds append).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// Sliding-window rate threshold (§VII-C).
    Rate,
    /// Windowed CUSUM anomaly scorer.
    Cusum,
    /// Serving-phase syscall-allowlist filter.
    Filter,
}

impl DetectorKind {
    /// Every detector, in a stable order.
    pub const ALL: [DetectorKind; 3] = [
        DetectorKind::Rate,
        DetectorKind::Cusum,
        DetectorKind::Filter,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::Rate => "rate",
            DetectorKind::Cusum => "cusum",
            DetectorKind::Filter => "filter",
        }
    }
}

/// Windowed CUSUM anomaly scorer over a fault log.
///
/// Faults are counted per `bucket_ms` virtual-time bucket; the score
/// accumulates `max(0, score + count - drift)` per bucket and alarms at
/// `threshold`. Calibration: the benign asm.js burst (20 faults, then
/// ≥2 empty buckets) nets `(20 - drift) - 2·drift ≤ 0` per cycle, so
/// `drift = 7` keeps benign cycles from accumulating while stealth's
/// ~10 faults per bucket accrue `+3` each bucket and cross
/// `threshold = 20` after ~7 buckets.
#[derive(Debug, Clone)]
pub struct Cusum {
    /// Bucket length in virtual milliseconds.
    pub bucket_ms: u64,
    /// Per-bucket fault allowance subtracted from the score.
    pub drift: u64,
    /// Score at which the alarm fires.
    pub threshold: u64,
}

impl Default for Cusum {
    fn default() -> Self {
        Cusum {
            bucket_ms: 100,
            drift: 7,
            threshold: 20,
        }
    }
}

/// CUSUM verdict over a fault log.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct CusumReport {
    /// Buckets swept (including empty ones).
    pub buckets: usize,
    /// Peak score reached.
    pub peak_score: u64,
    /// Whether the alarm fired.
    pub alarm: bool,
    /// Virtual time of the alarming bucket's end, if any.
    pub alarm_at: Option<u64>,
}

impl Cusum {
    /// Analyze a fault log spanning `[start_vtime, end_vtime)`.
    pub fn analyze(&self, log: &[FaultEvent], start_vtime: u64, end_vtime: u64) -> CusumReport {
        let bucket = self.bucket_ms * STEPS_PER_MS;
        let mut times: Vec<u64> = log
            .iter()
            .filter(|f| f.handled && f.vtime >= start_vtime)
            .map(|f| f.vtime - start_vtime)
            .collect();
        times.sort_unstable();
        let span = end_vtime.saturating_sub(start_vtime);
        let buckets = (span.max(1)).div_ceil(bucket) as usize;
        let mut score = 0u64;
        let mut peak = 0u64;
        let mut alarm_at = None;
        let mut next = 0usize;
        for b in 0..buckets as u64 {
            let end = (b + 1) * bucket;
            let mut count = 0u64;
            while next < times.len() && times[next] < end {
                count += 1;
                next += 1;
            }
            score = (score + count).saturating_sub(self.drift);
            peak = peak.max(score);
            if score >= self.threshold && alarm_at.is_none() {
                alarm_at = Some(start_vtime + end);
            }
        }
        CusumReport {
            buckets,
            peak_score: peak,
            alarm: alarm_at.is_some(),
            alarm_at,
        }
    }
}

/// A seccomp-style allowlist pair generated from one module's static
/// scan: syscall numbers proven constant at sites tagged init-reachable
/// vs serving-reachable (SysPart's split). Serving-phase enforcement
/// blocks any number outside the serving list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallFilter {
    /// Module the filter was generated from.
    pub module: String,
    /// Init-phase allowlist (`init-only` ∪ `both` sites).
    pub init: BTreeSet<u64>,
    /// Serving-phase allowlist (`serving` ∪ `both` sites).
    pub serving: BTreeSet<u64>,
}

impl SyscallFilter {
    /// Generate the allowlist pair from a scan report. Only sites with
    /// a proven-constant number contribute (an unproven number cannot
    /// be allowlisted); unreached sites contribute nothing.
    pub fn from_scan(report: &ScanReport) -> SyscallFilter {
        let mut init = BTreeSet::new();
        let mut serving = BTreeSet::new();
        for site in &report.sites {
            let Some(nr) = site.nr() else { continue };
            match site.temporal {
                Temporal::InitOnly => {
                    init.insert(nr);
                }
                Temporal::Serving => {
                    serving.insert(nr);
                }
                Temporal::Both => {
                    init.insert(nr);
                    serving.insert(nr);
                }
                Temporal::Unreached => {}
            }
        }
        SyscallFilter {
            module: report.module.clone(),
            init,
            serving,
        }
    }

    /// Generate the filter for a named target or corpus module by
    /// running the static scan (mirrors the campaign's module lookup).
    ///
    /// # Panics
    ///
    /// Panics when the module is unknown.
    pub fn for_module(name: &str) -> SyscallFilter {
        let image = cr_targets::all_servers()
            .into_iter()
            .find(|t| t.name == name)
            .map(|t| t.image)
            .or_else(|| cr_targets::corpus::module(name).map(|m| m.image))
            .unwrap_or_else(|| panic!("unknown filter module {name:?}"));
        SyscallFilter::from_scan(&cr_scan::scan_elf(name, &image))
    }

    /// Whether serving-phase enforcement blocks syscall `nr`.
    pub fn blocks_serving(&self, nr: u64) -> bool {
        !self.serving.contains(&nr)
    }

    /// The subset of `nrs` the serving-phase filter blocks.
    pub fn blocked(&self, nrs: &[u64]) -> Vec<u64> {
        nrs.iter()
            .copied()
            .filter(|&n| self.blocks_serving(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{BENIGN_SYSCALLS, ESCALATION};

    fn ev(vtime: u64) -> FaultEvent {
        FaultEvent {
            vtime,
            rip: 0x1000,
            addr: Some(0x7000),
            mapped: false,
            handled: true,
        }
    }

    #[test]
    fn benign_bursts_never_accumulate() {
        // 5 asm.js-style cycles: 20 faults tight, then a 300ms gap.
        let mut log = Vec::new();
        for cycle in 0..5u64 {
            let base = cycle * 400_000;
            log.extend((0..20).map(|i| ev(base + i * 100)));
        }
        let r = Cusum::default().analyze(&log, 0, 2_000_000);
        assert!(!r.alarm, "{r:?}");
        assert_eq!(r.peak_score, 13, "single-burst peak is 20 - drift");
    }

    #[test]
    fn sustained_low_rate_accumulates_to_alarm() {
        // 10 faults per 100ms bucket, sustained: under the rate
        // threshold forever, but CUSUM accrues +3 per bucket.
        let log: Vec<FaultEvent> = (0..100).map(|i| ev(i * 10_000)).collect();
        let r = Cusum::default().analyze(&log, 0, 1_000_000);
        assert!(r.alarm, "{r:?}");
        assert_eq!(r.alarm_at, Some(700_000), "alarms on the 7th bucket");
    }

    #[test]
    fn cusum_handles_unsorted_logs() {
        let mut log: Vec<FaultEvent> = (0..100).map(|i| ev(i * 10_000)).collect();
        log.reverse();
        let sorted = Cusum::default().analyze(&log, 0, 1_000_000);
        log.reverse();
        assert_eq!(Cusum::default().analyze(&log, 0, 1_000_000), sorted);
    }

    #[test]
    fn vsftpd_filter_splits_phases_and_blocks_escalation() {
        let f = SyscallFilter::for_module("vsftpd");
        // Serving phase: accept/read/write/close (write is `both`).
        for nr in [0, 1, 3, 43] {
            assert!(!f.blocks_serving(nr), "serving allowlist must hold {nr}");
        }
        // Socket setup is init-only: blocked once serving.
        assert!(f.init.contains(&41), "socket is init-phase");
        assert!(f.blocks_serving(41), "socket blocked while serving");
        // Escalation syscalls are outside both allowlists.
        assert_eq!(f.blocked(&ESCALATION), ESCALATION.to_vec());
        // …and the benign footprint passes untouched.
        assert!(f.blocked(&BENIGN_SYSCALLS).is_empty());
    }
}
