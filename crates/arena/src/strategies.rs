//! Seedable probing strategies driven against the firefox-sim oracle.
//!
//! Every strategy sweeps the same unmapped probe window for a hidden
//! secret region whose slot is drawn from a seeded RNG, using the
//! background-thread memory oracle of §VI-B (each unmapped touch is one
//! handled AV in the process fault log). The strategies differ only in
//! probe *scheduling* — exactly the axis the §VII-C rate detector keys
//! on:
//!
//! * **linear** — consecutive page-stride probes at full speed;
//! * **bisect** — coarse region-stride pass, then boundary refinement
//!   (an order of magnitude fewer faults than linear);
//! * **stealth** — linear order, but idling ~10 virtual ms between
//!   probes to stay under any per-window rate threshold;
//! * **burst** — bursts of rapid probes separated by seconds of idle
//!   (an attacker hiding in asm.js-shaped traffic).
//!
//! Probes are counted in the session even when a chaos drop predicate
//! swallows them, so degraded runs stay deterministic. A strategy that
//! locates the secret "escalates" by attempting the [`ESCALATION`]
//! syscalls — the serving-phase allowlist filter judges those.

use cr_os::windows::FaultEvent;
use cr_targets::browsers::firefox::{self, FirefoxSim};
use cr_vm::NullHook;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base of the unmapped probe window each strategy sweeps.
pub const PROBE_BASE: u64 = 0x9200_0000_0000;
/// Pages in the probe window.
pub const PROBE_PAGES: u64 = 256;
/// Pages in the hidden secret region (slot-aligned to its own size).
pub const SECRET_PAGES: u64 = 8;
/// Secret slots are drawn from this coarse-slot range (late in the
/// window, so the linear sweep always accumulates enough faults to
/// characterize it).
pub const SECRET_SLOTS: std::ops::Range<u64> = 26..32;
/// Escalation syscalls a located attacker attempts: `execve`, `unlink`,
/// `chmod` — none of which a serving-phase network daemon issues.
pub const ESCALATION: [u64; 3] = [59, 87, 90];
/// Syscall footprint of the benign browsing workload: `read`, `write`,
/// `close`.
pub const BENIGN_SYSCALLS: [u64; 3] = [0, 1, 3];
/// Virtual steps a stealth probe idles between touches (~10 ms).
pub const STEALTH_IDLE_STEPS: u64 = 10_000;
/// Probes per burst for the burst-then-idle strategy.
pub const BURST_LEN: u64 = 60;
/// Virtual steps a burst strategy idles between bursts (~2 s).
pub const BURST_IDLE_STEPS: u64 = 2_000_000;

/// The four probing strategies, in a stable order (new kinds append).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Consecutive page-stride probes at full speed.
    Linear,
    /// Coarse region-stride pass, then boundary refinement.
    Bisect,
    /// Linear order with ~10 virtual ms idle between probes.
    Stealth,
    /// Bursts of rapid probes separated by seconds of idle.
    Burst,
}

impl StrategyKind {
    /// Every strategy, in a stable order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::Linear,
        StrategyKind::Bisect,
        StrategyKind::Stealth,
        StrategyKind::Burst,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Linear => "linear",
            StrategyKind::Bisect => "bisect",
            StrategyKind::Stealth => "stealth",
            StrategyKind::Burst => "burst",
        }
    }

    /// Inverse of [`StrategyKind::name`].
    pub fn parse_name(name: &str) -> Option<StrategyKind> {
        StrategyKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One finished probing (or benign) session against a fresh sim.
#[derive(Debug, Clone)]
pub struct ProbeSession {
    /// Strategy name (`"benign"` for the browsing workload).
    pub strategy: &'static str,
    /// Base address of the hidden secret region (0 for benign).
    pub secret: u64,
    /// Virtual time at session start.
    pub start_vtime: u64,
    /// Virtual time at session end.
    pub end_vtime: u64,
    /// Probes attempted (dropped ones included).
    pub probes: u64,
    /// Probes swallowed by the chaos drop predicate.
    pub dropped: u64,
    /// Whether the strategy located the secret region.
    pub located: bool,
    /// Syscall numbers attempted after locating (empty otherwise).
    pub escalation: Vec<u64>,
    /// Fault log accumulated during the session.
    pub log: Vec<FaultEvent>,
}

/// Predicate deciding whether probe `index` is dropped (chaos site
/// `arena.probe.drop`). The honest run is `|_| false`.
pub type DropFn<'a> = &'a mut dyn FnMut(u64) -> bool;

struct Prober<'a> {
    sim: FirefoxSim,
    probes: u64,
    dropped: u64,
    drop: DropFn<'a>,
}

impl Prober<'_> {
    /// Probe one window page. `None` when the chaos predicate swallowed
    /// the probe (strategies treat that as "unmapped" and move on).
    fn page(&mut self, page: u64) -> Option<bool> {
        let index = self.probes;
        self.probes += 1;
        if (self.drop)(index) {
            self.dropped += 1;
            return None;
        }
        firefox::probe(&mut self.sim, PROBE_BASE + page * 0x1000, &mut NullHook)
    }

    fn idle(&mut self, steps: u64) {
        self.sim.proc.run(steps, &mut NullHook);
    }
}

/// Run one seeded round of `kind`: build a fresh sim, hide the secret
/// region at a seeded slot, drive the strategy until it locates the
/// region or exhausts the window.
pub fn run_round(kind: StrategyKind, seed: u64, drop: DropFn<'_>) -> ProbeSession {
    let mut rng = StdRng::seed_from_u64(seed);
    let slot_page = rng.gen_range(SECRET_SLOTS) * SECRET_PAGES;
    let secret = PROBE_BASE + slot_page * 0x1000;

    let mut sim = firefox::build();
    sim.proc
        .mem
        .map(secret, SECRET_PAGES * 0x1000, cr_vm::Prot::RW);
    let log_start = sim.proc.fault_log.len();
    let start_vtime = sim.proc.vtime;

    let mut p = Prober {
        sim,
        probes: 0,
        dropped: 0,
        drop,
    };
    let located = match kind {
        StrategyKind::Linear => (0..PROBE_PAGES).any(|page| p.page(page) == Some(true)),
        StrategyKind::Bisect => bisect(&mut p),
        StrategyKind::Stealth => (0..PROBE_PAGES).any(|page| {
            p.idle(STEALTH_IDLE_STEPS);
            p.page(page) == Some(true)
        }),
        StrategyKind::Burst => (0..PROBE_PAGES).any(|page| {
            if page > 0 && page % BURST_LEN == 0 {
                p.idle(BURST_IDLE_STEPS);
            }
            p.page(page) == Some(true)
        }),
    };

    ProbeSession {
        strategy: kind.name(),
        secret,
        start_vtime,
        end_vtime: p.sim.proc.vtime,
        probes: p.probes,
        dropped: p.dropped,
        located,
        escalation: if located {
            ESCALATION.to_vec()
        } else {
            Vec::new()
        },
        log: p.sim.proc.fault_log[log_start..].to_vec(),
    }
}

/// Binary-search-style probing: coarse pass at the secret region's
/// stride, then refine both boundaries at page stride.
fn bisect(p: &mut Prober<'_>) -> bool {
    let mut hit = None;
    for page in (0..PROBE_PAGES).step_by(SECRET_PAGES as usize) {
        if p.page(page) == Some(true) {
            hit = Some(page);
            break;
        }
    }
    let Some(hit) = hit else { return false };
    // Refine downward until the first unmapped page…
    let mut page = hit;
    while page > 0 && p.page(page - 1) == Some(true) {
        page -= 1;
    }
    // …and upward past the region's end.
    let mut page = hit;
    while page + 1 < PROBE_PAGES && p.page(page + 1) == Some(true) {
        page += 1;
    }
    true
}

/// The benign browsing workload of §VII-C: page renders (zero AVs) plus
/// asm.js-style bursts of ~20 handled guard-page faults with long gaps.
/// Detectors must stay silent over this session.
pub fn run_benign() -> ProbeSession {
    let mut sim = firefox::build();
    let log_start = sim.proc.fault_log.len();
    let start_vtime = sim.proc.vtime;
    for _ in 0..20 {
        sim.proc.call(sim.render_page, &[], 100_000, &mut NullHook);
    }
    for _ in 0..3 {
        sim.proc
            .call(sim.asmjs_bench, &[], 1_000_000, &mut NullHook);
        // The paper observed *long* gaps between asm.js stress bursts;
        // ~400 virtual ms keeps one burst per CUSUM drain cycle.
        sim.proc.run(400_000, &mut NullHook);
    }
    ProbeSession {
        strategy: "benign",
        secret: 0,
        start_vtime,
        end_vtime: sim.proc.vtime,
        probes: 0,
        dropped: 0,
        located: false,
        escalation: Vec::new(),
        log: sim.proc.fault_log[log_start..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest(kind: StrategyKind, seed: u64) -> ProbeSession {
        run_round(kind, seed, &mut |_| false)
    }

    #[test]
    fn every_strategy_locates_the_secret() {
        for kind in StrategyKind::ALL {
            let s = honest(kind, 7);
            assert!(s.located, "{} must locate the secret", kind.name());
            assert_eq!(s.escalation, ESCALATION, "{}", kind.name());
            assert!(s.dropped == 0 && s.probes > 0);
            assert!(
                s.log.iter().all(|f| f.handled),
                "{}: crash-resistant probing never crashes",
                kind.name()
            );
        }
    }

    #[test]
    fn bisect_needs_an_order_of_magnitude_fewer_probes() {
        let lin = honest(StrategyKind::Linear, 3);
        let bis = honest(StrategyKind::Bisect, 3);
        assert_eq!(lin.secret, bis.secret, "same seed, same slot");
        assert!(
            bis.probes * 4 < lin.probes,
            "{} vs {}",
            bis.probes,
            lin.probes
        );
    }

    #[test]
    fn rounds_are_seed_deterministic() {
        let a = honest(StrategyKind::Stealth, 42);
        let b = honest(StrategyKind::Stealth, 42);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.secret, b.secret);
        assert_eq!(a.end_vtime - a.start_vtime, b.end_vtime - b.start_vtime);
        assert_eq!(a.log.len(), b.log.len());
    }

    #[test]
    fn dropping_every_probe_blinds_the_strategy() {
        let s = run_round(StrategyKind::Linear, 7, &mut |_| true);
        assert!(!s.located);
        assert_eq!(s.dropped, s.probes);
        assert_eq!(s.log.len(), 0, "dropped probes never touch memory");
        assert!(s.escalation.is_empty());
    }

    #[test]
    fn benign_workload_has_only_burst_faults() {
        let b = run_benign();
        assert_eq!(b.log.len(), 60, "3 asm.js bursts of 20");
        assert!(b.log.iter().all(|f| f.handled && f.mapped));
        assert!(!b.located && b.escalation.is_empty());
    }
}
