//! `cr-arena` — the adversarial defense arena (paper §VII-C at scale).
//!
//! The paper's countermeasure story pits one rate-based detector against
//! one linear probe loop. The arena generalizes both axes and runs the
//! full grid:
//!
//! * [`strategies`] — four seedable probing strategies driven against
//!   the firefox-sim memory oracle (linear scan, binary-search probing,
//!   low-and-slow stealth, burst-then-idle), plus the benign browsing
//!   workload used for false-positive calibration;
//! * [`detectors`] — three detectors: the paper's rate threshold
//!   (wrapping [`cr_defense::RateDetector`]), a windowed CUSUM anomaly
//!   scorer, and a syscall-allowlist filter derived automatically from
//!   cr-scan's SysPart-style temporal tags (init-phase vs serving-phase
//!   allowlists);
//! * [`matrix`] — the strategies × detectors grid, emitting per-pair
//!   detection-rate / time-to-detect / false-positive tables.
//!
//! Everything is deterministic: strategies are seeded, detection clocks
//! are virtual-time only, and summaries carry integers exclusively, so a
//! matrix run renders byte-identically regardless of host or worker
//! count. The calibrated headline: low-and-slow stealth evades the naive
//! rate threshold but is caught by CUSUM, and the generated
//! serving-phase syscall filter blocks every strategy's escalation
//! syscalls with zero false positives on the benign browsing workload.

pub mod detectors;
pub mod matrix;
pub mod strategies;

pub use detectors::{Cusum, CusumReport, DetectorKind, SyscallFilter};
pub use matrix::{run_matrix, run_strategy, ArenaConfig, ArenaPair, ArenaSummary};
pub use strategies::{run_benign, run_round, ProbeSession, StrategyKind, ESCALATION};
