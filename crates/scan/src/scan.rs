//! The traceless scanner: enumerate syscall sites in an ELF image,
//! resolve their provenance, and tag them temporally.
//!
//! [`scan_elf`] is the entry point. It walks every executable segment
//! with the cr-isa decoder via [`cr_core::static_cfg`] (entry point
//! plus every code symbol as CFG roots), finds each `syscall`
//! instruction, and runs the backward dataflow of
//! [`crate::dataflow`] to answer two questions per site:
//!
//! 1. **Which syscall is this?** The `rax` origin, collapsed onto the
//!    four-point number lattice (constant / register-copied /
//!    memory-loaded / unknown). An indirect load is reported as
//!    exactly that — the scanner never guesses a number it cannot
//!    prove.
//! 2. **Where do the pointer arguments come from?** For sites with a
//!    proven constant number, each pointer-carrying argument register
//!    (per the Linux ABI table in `cr_os`) gets its own origin;
//!    memory-loaded origins carry the statically recovered source cell
//!    when the address arithmetic folds, which is what the
//!    cross-validator matches against cr-taint's dynamic provenance.
//!
//! On top of that, a SysPart-style **temporal classification** walks
//! instruction-level reachability twice — once from the image entry
//! point stopping at the serving-loop roots, once from the serving
//! roots themselves — and tags every site [`Temporal::InitOnly`],
//! [`Temporal::Serving`], [`Temporal::Both`] or
//! [`Temporal::Unreached`]. Serving roots come from cr-targets'
//! calibrated loop markers ([`cr_targets::SERVING_LOOP_SYMBOLS`]),
//! matched against the image symbol table.
//!
//! The report is fully deterministic: all collections are
//! order-stable, and [`ScanReport::to_json`] renders canonical JSON
//! byte-identical across runs, worker counts and cache states.

use crate::dataflow::{self, Origin};
use cr_core::static_cfg::{self, StaticCfg};
use cr_core::syscall_finder::ARG_REGS;
use cr_image::ElfImage;
use cr_isa::{decode, Inst, Reg};
use cr_os::linux::syscall as sys;
use cr_symex::CodeSource;
use cr_trace::{span, Stage};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Instruction budget for one reachability walk — generous for the
/// calibrated corpus, bounded for adversarial images.
const REACH_BUDGET: usize = 1 << 20;

/// [`CodeSource`] over the executable segments of an ELF image.
/// Reads stop at segment boundaries; non-executable bytes read as
/// zero-length (the decoder then fails cleanly instead of wandering
/// into data).
pub struct SegSource<'a> {
    segs: Vec<(u64, &'a [u8])>,
}

impl<'a> SegSource<'a> {
    /// Code view of `image` (RX segments only).
    pub fn new(image: &'a ElfImage) -> SegSource<'a> {
        let mut segs: Vec<(u64, &[u8])> = image
            .segments
            .iter()
            .filter(|s| s.perm.x)
            .map(|s| (s.vaddr, s.data.as_slice()))
            .collect();
        segs.sort_by_key(|&(va, _)| va);
        SegSource { segs }
    }

    /// Whether `va` falls inside an executable segment.
    pub fn contains(&self, va: u64) -> bool {
        self.segs
            .iter()
            .any(|&(base, data)| va >= base && va < base + data.len() as u64)
    }
}

impl CodeSource for SegSource<'_> {
    fn read_code(&self, va: u64, buf: &mut [u8]) -> usize {
        for &(base, data) in &self.segs {
            if va >= base && va < base + data.len() as u64 {
                let off = (va - base) as usize;
                let n = buf.len().min(data.len() - off);
                buf[..n].copy_from_slice(&data[off..off + n]);
                return n;
            }
        }
        0
    }
}

/// When a syscall site can execute, relative to the serving loop
/// (SysPart's init/serving split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Temporal {
    /// Reachable only before the serving loop is entered.
    InitOnly,
    /// Reachable only from the serving loop.
    Serving,
    /// Reachable from both phases (shared helpers).
    Both,
    /// Not reachable from entry or any serving root (dead code or
    /// indirect-only paths).
    Unreached,
}

impl Temporal {
    /// Stable machine-readable tag.
    pub fn tag(self) -> &'static str {
        match self {
            Temporal::InitOnly => "init-only",
            Temporal::Serving => "serving",
            Temporal::Both => "both",
            Temporal::Unreached => "unreached",
        }
    }
}

impl Serialize for Temporal {
    fn write_json(&self, out: &mut String) {
        self.tag().write_json(out);
    }
}

impl Serialize for Origin {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"class\":");
        self.tag().write_json(out);
        match self {
            Origin::Constant(v) => {
                out.push_str(",\"value\":");
                v.write_json(out);
            }
            Origin::RegisterCopied(r) => {
                out.push_str(",\"reg\":");
                r.to_string().write_json(out);
            }
            Origin::MemoryLoaded { addr } => {
                out.push_str(",\"addr\":");
                addr.write_json(out);
            }
            Origin::Computed | Origin::Unknown => {}
        }
        out.push('}');
    }
}

/// The statically resolved origin of one pointer-carrying syscall
/// argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgOrigin {
    /// Argument index (0-based, Linux ABI order).
    pub index: usize,
    /// The register carrying the argument.
    pub reg: Reg,
    /// Where its value comes from.
    pub origin: Origin,
}

impl Serialize for ArgOrigin {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"index\":");
        self.index.write_json(out);
        out.push_str(",\"reg\":");
        self.reg.to_string().write_json(out);
        out.push_str(",\"origin\":");
        self.origin.write_json(out);
        out.push('}');
    }
}

/// One statically discovered syscall site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallSite {
    /// Virtual address of the `syscall` instruction.
    pub va: u64,
    /// Entry of the function the site was recovered in.
    pub function: u64,
    /// Origin of the syscall number (`rax`), on the four-point number
    /// lattice — [`Origin::Computed`] never appears here.
    pub number: Origin,
    /// Per-argument origins for pointer-carrying registers; only
    /// populated when the number is a proven constant (without it the
    /// ABI table cannot say which registers carry pointers).
    pub args: Vec<ArgOrigin>,
    /// Init/serving reachability tag.
    pub temporal: Temporal,
}

impl SyscallSite {
    /// The proven syscall number, if the dataflow resolved one.
    pub fn nr(&self) -> Option<u64> {
        self.number.constant()
    }

    /// Kernel name of the proven number (`None` while the number is
    /// unproven).
    pub fn name(&self) -> Option<&'static str> {
        self.nr().map(sys::name)
    }
}

impl Serialize for SyscallSite {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"va\":");
        self.va.write_json(out);
        out.push_str(",\"function\":");
        self.function.write_json(out);
        out.push_str(",\"number\":");
        self.number.write_json(out);
        out.push_str(",\"name\":");
        self.name().map(|s| s.to_string()).write_json(out);
        out.push_str(",\"args\":");
        self.args.write_json(out);
        out.push_str(",\"temporal\":");
        self.temporal.write_json(out);
        out.push('}');
    }
}

/// Aggregate counters over a scan, used by the report section and the
/// bench table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ScanCounts {
    /// Total sites found.
    pub sites: usize,
    /// Sites whose number is a proven constant.
    pub constant: usize,
    /// Sites whose number is loaded from memory.
    pub memory: usize,
    /// Sites whose number is a live-in register copy.
    pub register: usize,
    /// Sites whose number is unresolvable.
    pub unknown: usize,
    /// Sites tagged init-only.
    pub init_only: usize,
    /// Sites tagged serving-reachable.
    pub serving: usize,
    /// Sites tagged reachable from both phases.
    pub both: usize,
    /// Sites reachable from neither walk.
    pub unreached: usize,
}

/// The result of statically scanning one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Module name (target or corpus module).
    pub module: String,
    /// SHA-256 of the ELF bytes the scan ran over (cache key).
    pub image_hash: String,
    /// Image entry point.
    pub entry: u64,
    /// Serving-loop roots that matched the calibrated markers:
    /// symbol name → virtual address.
    pub serving_roots: BTreeMap<String, u64>,
    /// Number of functions recovered by the CFG walk.
    pub functions: usize,
    /// Number of instructions decoded across all functions.
    pub instructions: usize,
    /// Whether any function contains indirect control flow the static
    /// walk could not follow (recall caveat).
    pub has_indirect_flow: bool,
    /// All discovered sites, sorted by virtual address.
    pub sites: Vec<SyscallSite>,
}

impl ScanReport {
    /// Aggregate counters for this scan.
    pub fn counts(&self) -> ScanCounts {
        let mut c = ScanCounts {
            sites: self.sites.len(),
            ..ScanCounts::default()
        };
        for s in &self.sites {
            match s.number {
                Origin::Constant(_) => c.constant += 1,
                Origin::MemoryLoaded { .. } => c.memory += 1,
                Origin::RegisterCopied(_) => c.register += 1,
                _ => c.unknown += 1,
            }
            match s.temporal {
                Temporal::InitOnly => c.init_only += 1,
                Temporal::Serving => c.serving += 1,
                Temporal::Both => c.both += 1,
                Temporal::Unreached => c.unreached += 1,
            }
        }
        c
    }

    /// Site virtual addresses, sorted (the shape the cross-validator
    /// compares against the dynamic side).
    pub fn site_vas(&self) -> Vec<u64> {
        self.sites.iter().map(|s| s.va).collect()
    }

    /// Canonical JSON rendering — byte-identical for identical inputs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

impl Serialize for ScanReport {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"module\":");
        self.module.write_json(out);
        out.push_str(",\"image_hash\":");
        self.image_hash.write_json(out);
        out.push_str(",\"entry\":");
        self.entry.write_json(out);
        out.push_str(",\"serving_roots\":");
        self.serving_roots.write_json(out);
        out.push_str(",\"functions\":");
        self.functions.write_json(out);
        out.push_str(",\"instructions\":");
        self.instructions.write_json(out);
        out.push_str(",\"has_indirect_flow\":");
        self.has_indirect_flow.write_json(out);
        out.push_str(",\"counts\":");
        self.counts().write_json(out);
        out.push_str(",\"sites\":");
        self.sites.write_json(out);
        out.push('}');
    }
}

/// SHA-256 of the serialized image — the content-address under which
/// scan results are cached.
pub fn elf_content_hash(image: &ElfImage) -> String {
    cr_core::sha256_hex(&image.to_bytes())
}

/// Serving-loop roots of `image`: symbols whose name matches one of
/// cr-targets' calibrated loop markers and whose address lands in an
/// executable segment.
pub fn serving_roots(image: &ElfImage) -> BTreeMap<String, u64> {
    let code = SegSource::new(image);
    image
        .symbols
        .iter()
        .filter(|(name, &va)| {
            cr_targets::SERVING_LOOP_SYMBOLS.contains(&name.as_str()) && code.contains(va)
        })
        .map(|(name, &va)| (name.clone(), va))
        .collect()
}

/// Scan `image`, deriving serving roots from the calibrated loop
/// markers in its symbol table.
pub fn scan_elf(module: &str, image: &ElfImage) -> ScanReport {
    let roots = serving_roots(image);
    scan_elf_with(module, image, &roots)
}

/// Scan `image` with an explicit serving-root set (symbol name →
/// address). The CFG walk roots at the entry point plus every code
/// symbol, so functions only reachable through indirect calls are
/// still enumerated.
pub fn scan_elf_with(module: &str, image: &ElfImage, roots: &BTreeMap<String, u64>) -> ScanReport {
    let mut sp = span(Stage::Scan, "scan.module");
    let code = SegSource::new(image);
    let mut entries: Vec<u64> = vec![image.entry];
    entries.extend(
        image
            .symbols
            .values()
            .copied()
            .filter(|&va| code.contains(va)),
    );
    entries.sort_unstable();
    entries.dedup();
    let cfg = static_cfg::analyze(&code, &entries);

    let serving = reachable(&code, roots.values().copied(), &BTreeSet::new());
    let stop: BTreeSet<u64> = roots.values().copied().collect();
    let init = reachable(&code, std::iter::once(image.entry), &stop);

    let sites = collect_sites(&cfg, &serving, &init);
    let report = ScanReport {
        module: module.to_string(),
        image_hash: elf_content_hash(image),
        entry: image.entry,
        serving_roots: roots.clone(),
        functions: cfg.functions.len(),
        instructions: cfg.inst_count(),
        has_indirect_flow: cfg.functions.values().any(|f| f.has_indirect_flow),
        sites,
    };
    sp.set_detail(|| {
        let c = report.counts();
        format!(
            "module={} sites={} constant={} serving={}",
            report.module,
            c.sites,
            c.constant,
            c.serving + c.both
        )
    });
    report
}

/// Resolve every syscall site in `cfg` and tag it against the two
/// reachability sets. A site can occur in several recovered functions
/// (a serving-loop symbol roots its own function *and* sits inside the
/// entry function) and in several overlapping blocks of one function;
/// [`dataflow::resolve_before`] and a cross-function meet keep the
/// answer sound — a disagreement between vantage points degrades to
/// [`Origin::Unknown`] rather than picking a plausible value.
fn collect_sites(
    cfg: &StaticCfg,
    serving: &BTreeSet<u64>,
    init: &BTreeSet<u64>,
) -> Vec<SyscallSite> {
    // va → functions (by entry) that contain the site.
    let mut homes: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (&entry, f) in &cfg.functions {
        for &va in &f.syscall_sites {
            homes.entry(va).or_default().push(entry);
        }
    }
    homes
        .into_iter()
        .map(|(va, fns)| {
            let resolve = |reg: Reg| {
                fns.iter()
                    .map(|entry| dataflow::resolve_before(&cfg.functions[entry], va, reg))
                    .reduce(Origin::meet)
                    .unwrap_or(Origin::Unknown)
            };
            let number = resolve(Reg::Rax).number_class();
            let args = match number {
                Origin::Constant(nr) => sys::pointer_args(nr)
                    .iter()
                    .map(|&ai| ArgOrigin {
                        index: ai,
                        reg: ARG_REGS[ai],
                        origin: resolve(ARG_REGS[ai]),
                    })
                    .collect(),
                _ => Vec::new(),
            };
            let temporal = match (serving.contains(&va), init.contains(&va)) {
                (true, true) => Temporal::Both,
                (true, false) => Temporal::Serving,
                (false, true) => Temporal::InitOnly,
                (false, false) => Temporal::Unreached,
            };
            SyscallSite {
                va,
                function: fns[0],
                number,
                args,
                temporal,
            }
        })
        .collect()
}

/// Instruction-granular reachability: every instruction VA reachable
/// from `roots` by decoding forward, following direct jumps, both arms
/// of conditional branches, and direct calls (with fallthrough).
/// Walks stop at returns, traps and indirect jumps, at decode
/// failures, at members of `stop` (used to fence off the serving loop
/// during the init walk), and at the instruction budget.
fn reachable(
    code: &dyn CodeSource,
    roots: impl Iterator<Item = u64>,
    stop: &BTreeSet<u64>,
) -> BTreeSet<u64> {
    let mut seen = BTreeSet::new();
    let mut work: Vec<u64> = roots.collect();
    let mut budget = REACH_BUDGET;
    while let Some(va) = work.pop() {
        if budget == 0 || seen.contains(&va) || stop.contains(&va) {
            continue;
        }
        budget -= 1;
        let mut buf = [0u8; 16];
        let n = code.read_code(va, &mut buf);
        let Ok(d) = decode(&buf[..n]) else { continue };
        seen.insert(va);
        let next = va.wrapping_add(d.len as u64);
        let mut push = |t: u64| {
            if !seen.contains(&t) && !stop.contains(&t) {
                work.push(t);
            }
        };
        match d.inst {
            Inst::Ret | Inst::Ud2 | Inst::Hlt | Inst::JmpRm(_) => {}
            Inst::JmpRel(rel) => push(next.wrapping_add(rel as i64 as u64)),
            Inst::Jcc { rel, .. } => {
                push(next.wrapping_add(rel as i64 as u64));
                push(next);
            }
            Inst::CallRel(rel) => {
                push(next.wrapping_add(rel as i64 as u64));
                push(next);
            }
            _ => push(next),
        }
    }
    seen
}
