//! Static/dynamic cross-validation.
//!
//! For a calibrated server target both backends can analyze, run the
//! traceless scanner over the ELF and the taint observer over the live
//! workload, then compare **site addresses** (the virtual address of
//! each `syscall` instruction):
//!
//! * **matched** — both backends report the site. Dynamic observation
//!   proves the site executes; static discovery proves we would have
//!   found it without a harness.
//! * **static-only** — the scanner found it, the workload never
//!   executed it. Expected (coverage of the test workload is partial);
//!   these are the sites only the traceless backend can see.
//! * **taint-only** — the workload executed a site the scanner missed.
//!   On the calibrated corpus this set must be **empty** (static-side
//!   recall 100%); any entry is a scanner defect (e.g. unfollowed
//!   indirect control flow).
//!
//! The comparison is structured end to end: the dynamic side comes
//! from [`cr_core::syscall_finder::SiteProvenance`] (public records,
//! not re-parsed report text), the static side from
//! [`crate::ScanReport`] sites.

use crate::scan::{scan_elf, ScanReport};
use cr_core::syscall_finder::{observe_server, SiteProvenance};
use cr_targets::ServerTarget;
use serde::Serialize;

/// Site-level agreement between the static scanner and the taint
/// observer on one target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agreement {
    /// Target both backends analyzed.
    pub module: String,
    /// Sites found by both backends.
    pub matched: Vec<u64>,
    /// Sites only the static scanner found (never executed by the
    /// workload).
    pub static_only: Vec<u64>,
    /// Sites only the dynamic observer saw — scanner misses; must be
    /// empty on the calibrated corpus.
    pub taint_only: Vec<u64>,
}

impl Agreement {
    /// Static-side recall against the taint-confirmed sites:
    /// `matched / (matched + taint_only)`; 1.0 when the dynamic side
    /// saw nothing.
    pub fn recall(&self) -> f64 {
        let confirmed = self.matched.len() + self.taint_only.len();
        if confirmed == 0 {
            1.0
        } else {
            self.matched.len() as f64 / confirmed as f64
        }
    }
}

impl Serialize for Agreement {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"module\":");
        self.module.write_json(out);
        out.push_str(",\"matched\":");
        self.matched.write_json(out);
        out.push_str(",\"static_only\":");
        self.static_only.write_json(out);
        out.push_str(",\"taint_only\":");
        self.taint_only.write_json(out);
        out.push_str(",\"recall\":");
        self.recall().write_json(out);
        out.push('}');
    }
}

/// Compare a scan report against dynamically observed sites. Both
/// inputs are structured; the output vectors are sorted.
pub fn compare(scan: &ScanReport, dynamic: &[SiteProvenance]) -> Agreement {
    let static_vas = scan.site_vas();
    let mut matched = Vec::new();
    let mut taint_only = Vec::new();
    for s in dynamic {
        if static_vas.binary_search(&s.va).is_ok() {
            matched.push(s.va);
        } else {
            taint_only.push(s.va);
        }
    }
    let static_only: Vec<u64> = static_vas
        .iter()
        .copied()
        .filter(|va| !matched.contains(va))
        .collect();
    Agreement {
        module: scan.module.clone(),
        matched,
        static_only,
        taint_only,
    }
}

/// Run both backends on one calibrated target and report site-level
/// agreement, together with the static report that produced it.
pub fn cross_validate(target: &ServerTarget) -> (ScanReport, Agreement) {
    let scan = scan_elf(target.name, &target.image);
    let dynamic = observe_server(target).site_provenances();
    let agreement = compare(&scan, &dynamic);
    (scan, agreement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn site(va: u64) -> SiteProvenance {
        SiteProvenance {
            va,
            syscall: 0,
            hits: 1,
            tainted_by_input: false,
            sources: BTreeSet::new(),
            labels: BTreeSet::new(),
        }
    }

    #[test]
    fn compare_partitions_sites() {
        let scan = ScanReport {
            module: "m".into(),
            image_hash: String::new(),
            entry: 0,
            serving_roots: Default::default(),
            functions: 0,
            instructions: 0,
            has_indirect_flow: false,
            sites: [0x10, 0x20, 0x30]
                .into_iter()
                .map(|va| crate::SyscallSite {
                    va,
                    function: 0,
                    number: crate::Origin::Unknown,
                    args: Vec::new(),
                    temporal: crate::Temporal::Unreached,
                })
                .collect(),
        };
        let dynamic = [site(0x20), site(0x40)];
        let a = compare(&scan, &dynamic);
        assert_eq!(a.matched, vec![0x20]);
        assert_eq!(a.static_only, vec![0x10, 0x30]);
        assert_eq!(a.taint_only, vec![0x40]);
        assert_eq!(a.recall(), 0.5);
    }

    #[test]
    fn empty_dynamic_side_means_full_recall() {
        let scan = ScanReport {
            module: "m".into(),
            image_hash: String::new(),
            entry: 0,
            serving_roots: Default::default(),
            functions: 0,
            instructions: 0,
            has_indirect_flow: false,
            sites: Vec::new(),
        };
        assert_eq!(compare(&scan, &[]).recall(), 1.0);
    }
}
