//! Backward intraprocedural dataflow over a recovered CFG.
//!
//! Given a [`FunctionCfg`] and a program point (block, instruction
//! index), [`Resolver::resolve`] answers "where does the value in this
//! register come from?" by walking the instruction stream backwards,
//! following predecessors across basic-block boundaries and meeting the
//! per-path answers. The answer is an [`Origin`] from a small
//! provenance lattice:
//!
//! * [`Origin::Constant`] — a `mov reg, imm` (or a chain of copies /
//!   foldable arithmetic over constants) reaches the point; the value
//!   is statically known.
//! * [`Origin::MemoryLoaded`] — the last definition is a load; when
//!   the effective address itself resolves to a constant, the source
//!   cell is reported (the memory-resident-pointer idiom the paper's
//!   corruption monitor attacks).
//! * [`Origin::RegisterCopied`] — the definition is a register copy
//!   whose source cannot be resolved further (live-in value, bounded
//!   search).
//! * [`Origin::Computed`] — the definition is arithmetic over at least
//!   one non-constant operand (pointer arithmetic, `lea` with a
//!   dynamic base, partial-width writes).
//! * [`Origin::Unknown`] — nothing can be said: conflicting paths,
//!   call-clobbered registers, exhausted search budget. The resolver
//!   **never guesses**: an indirect or unresolvable definition is
//!   reported as what it is, not as a plausible constant.
//!
//! The walk is conservative about calls: a `call` clobbers the System V
//! caller-saved set, so any query that crosses one resolves to
//! [`Origin::Unknown`] for those registers rather than assuming the
//! callee preserved them.

use cr_core::static_cfg::FunctionCfg;
use cr_isa::{AluOp, Inst, Mem, Reg, Rm, ShiftOp, Width};
use std::collections::{BTreeMap, BTreeSet};

/// Where a register value at a program point comes from (see module
/// docs for the lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Statically known constant value.
    Constant(u64),
    /// Copied from this register; the copy chain left the resolvable
    /// window (live-in value or bounded search).
    RegisterCopied(Reg),
    /// Loaded from memory; `addr` is the source cell when the
    /// effective address is statically constant.
    MemoryLoaded {
        /// Statically resolved load address, if any.
        addr: Option<u64>,
    },
    /// Result of arithmetic over at least one non-constant operand.
    Computed,
    /// Unresolvable: conflicting paths, call clobber, or budget.
    Unknown,
}

impl Origin {
    /// Short machine-readable tag (`constant` / `register` / `memory`
    /// / `computed` / `unknown`).
    pub fn tag(&self) -> &'static str {
        match self {
            Origin::Constant(_) => "constant",
            Origin::RegisterCopied(_) => "register",
            Origin::MemoryLoaded { .. } => "memory",
            Origin::Computed => "computed",
            Origin::Unknown => "unknown",
        }
    }

    /// The constant value, if this origin is [`Origin::Constant`].
    pub fn constant(&self) -> Option<u64> {
        match self {
            Origin::Constant(v) => Some(*v),
            _ => None,
        }
    }

    /// Conservative meet: agreeing origins survive, any disagreement
    /// is [`Origin::Unknown`].
    pub fn meet(self, other: Origin) -> Origin {
        if self == other {
            self
        } else {
            Origin::Unknown
        }
    }

    /// Collapse onto the four-point syscall-*number* lattice of the
    /// static-discovery literature (constant / register-copied /
    /// memory-loaded / unknown): arithmetic results carry no number we
    /// could trust, so [`Origin::Computed`] degrades to
    /// [`Origin::Unknown`] instead of being guessed at.
    pub fn number_class(self) -> Origin {
        match self {
            Origin::Computed => Origin::Unknown,
            other => other,
        }
    }
}

/// Registers clobbered by a `call` under the System V AMD64 ABI (plus
/// `rax` as the return slot). A resolution crossing a call gives up on
/// these instead of assuming the callee preserves them.
const CALL_CLOBBERED: [Reg; 9] = [
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
];

/// `syscall` itself clobbers `rax` (return value), `rcx` and `r11`.
const SYSCALL_CLOBBERED: [Reg; 3] = [Reg::Rax, Reg::Rcx, Reg::R11];

/// Bound on distinct `(block, register)` resolution states visited per
/// query — defends against pathological CFGs; exhaustion resolves to
/// [`Origin::Unknown`], never to a guess.
const RESOLVE_BUDGET: usize = 512;

/// Backward resolver over one function. Construction precomputes the
/// predecessor map; queries share the budget.
pub struct Resolver<'a> {
    f: &'a FunctionCfg,
    preds: BTreeMap<u64, Vec<u64>>,
    budget: usize,
}

impl<'a> Resolver<'a> {
    /// Resolver for `f` with a fresh budget.
    pub fn new(f: &'a FunctionCfg) -> Resolver<'a> {
        let mut preds: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (&start, block) in &f.blocks {
            for &succ in &block.successors {
                preds.entry(succ).or_default().push(start);
            }
        }
        Resolver {
            f,
            preds,
            budget: RESOLVE_BUDGET,
        }
    }

    /// The origin of `reg` immediately before `f.blocks[&block].insts[idx]`
    /// executes. `idx == insts.len()` asks at the end of the block.
    pub fn resolve(&mut self, block: u64, idx: usize, reg: Reg) -> Origin {
        let mut visiting = BTreeSet::new();
        self.resolve_in(block, idx, reg, &mut visiting)
            .unwrap_or(Origin::Unknown)
    }

    /// Path-sensitive backward walk. `None` means this path only led
    /// around a cycle without finding a definition — the caller's meet
    /// ignores it (a loop that does not touch `reg` is transparent).
    fn resolve_in(
        &mut self,
        block: u64,
        upto: usize,
        reg: Reg,
        visiting: &mut BTreeSet<(u64, Reg)>,
    ) -> Option<Origin> {
        if self.budget == 0 {
            return Some(Origin::Unknown);
        }
        self.budget -= 1;
        let Some(b) = self.f.blocks.get(&block) else {
            return Some(Origin::Unknown);
        };
        for j in (0..upto.min(b.insts.len())).rev() {
            let (va, inst) = b.insts[j];
            if defines(&inst, reg) {
                let next_va = b.insts.get(j + 1).map(|&(v, _)| v).unwrap_or(b.end);
                return Some(self.def_origin(block, j, va, next_va, &inst, reg, visiting));
            }
        }
        // No definition in this block: meet over the predecessors.
        if !visiting.insert((block, reg)) {
            return None; // cycle — transparent to the meet
        }
        let preds = self.preds.get(&block).cloned().unwrap_or_default();
        let result = if preds.is_empty() {
            // Function entry (or an unreached block): the value is
            // live-in and nothing more can be said.
            Some(Origin::Unknown)
        } else {
            let mut acc: Option<Origin> = None;
            for p in preds {
                let len = self.f.blocks.get(&p).map(|b| b.insts.len()).unwrap_or(0);
                match self.resolve_in(p, len, reg, visiting) {
                    None => {}
                    Some(o) => {
                        acc = Some(match acc {
                            None => o,
                            Some(prev) if prev == o => prev,
                            Some(_) => Origin::Unknown, // conflicting paths
                        });
                    }
                }
            }
            acc
        };
        visiting.remove(&(block, reg));
        result
    }

    /// Origin produced by the defining instruction `inst` (at `va`,
    /// with the following instruction at `next_va` for rip-relative
    /// addressing), given that [`defines`] already matched `reg`.
    #[allow(clippy::too_many_arguments)]
    fn def_origin(
        &mut self,
        block: u64,
        idx: usize,
        _va: u64,
        next_va: u64,
        inst: &Inst,
        reg: Reg,
        visiting: &mut BTreeSet<(u64, Reg)>,
    ) -> Origin {
        let before = |r: &mut Self, src: Reg, visiting: &mut BTreeSet<(u64, Reg)>| {
            r.resolve_in(block, idx, src, visiting)
                .unwrap_or(Origin::Unknown)
        };
        match *inst {
            Inst::MovRI { imm, .. } => Origin::Constant(imm),
            Inst::MovRmI { imm, width, .. } => match width {
                Width::B8 => Origin::Constant(imm as i64 as u64),
                Width::B4 => Origin::Constant(imm as u32 as u64),
                Width::B1 => Origin::Computed, // partial-width write
            },
            Inst::MovRRm {
                src: Rm::Reg(s),
                width,
                ..
            } => match width {
                Width::B1 => Origin::Computed,
                w => match before(self, s, visiting) {
                    Origin::Constant(v) => Origin::Constant(v & w.mask()),
                    Origin::MemoryLoaded { addr } => Origin::MemoryLoaded { addr },
                    Origin::Computed => Origin::Computed,
                    _ => Origin::RegisterCopied(s),
                },
            },
            Inst::MovRRm {
                src: Rm::Mem(m), ..
            } => Origin::MemoryLoaded {
                addr: self.static_addr(block, idx, next_va, &m, visiting),
            },
            Inst::Movzx {
                src: Rm::Mem(m), ..
            } => Origin::MemoryLoaded {
                addr: self.static_addr(block, idx, next_va, &m, visiting),
            },
            Inst::Movzx {
                src: Rm::Reg(s),
                src_width,
                ..
            } => match before(self, s, visiting) {
                Origin::Constant(v) => Origin::Constant(v & src_width.mask()),
                _ => Origin::Computed,
            },
            Inst::Lea { mem, .. } => match self.static_addr(block, idx, next_va, &mem, visiting) {
                Some(a) => Origin::Constant(a),
                None => Origin::Computed,
            },
            // The zeroing idioms produce a constant regardless of the
            // previous value.
            Inst::AluRRm {
                op: op @ (AluOp::Xor | AluOp::Sub),
                dst,
                src: Rm::Reg(s),
                width,
            } if s == dst && width != Width::B1 => {
                let _ = op;
                Origin::Constant(0)
            }
            Inst::AluRmR {
                op: AluOp::Xor | AluOp::Sub,
                dst: Rm::Reg(d),
                src,
                width,
            } if src == d && width != Width::B1 => Origin::Constant(0),
            Inst::AluRRm {
                op,
                dst,
                src,
                width,
            } => self.fold_alu(block, idx, op, dst, src, width, visiting),
            Inst::AluRmR {
                op,
                dst: Rm::Reg(d),
                src,
                width,
            } => self.fold_alu(block, idx, op, d, Rm::Reg(src), width, visiting),
            Inst::AluRmI {
                op,
                dst: Rm::Reg(d),
                imm,
                width,
            } => match (width, before(self, d, visiting)) {
                (Width::B1, _) => Origin::Computed,
                (w, Origin::Constant(a)) => match alu_const(op, a, imm as i64 as u64, w) {
                    Some(v) => Origin::Constant(v),
                    None => Origin::Computed,
                },
                _ => Origin::Computed,
            },
            Inst::ShiftRI { op, dst, amount } => match before(self, dst, visiting) {
                Origin::Constant(a) => Origin::Constant(match op {
                    ShiftOp::Shl => a.wrapping_shl(amount as u32),
                    ShiftOp::Shr => a.wrapping_shr(amount as u32),
                    ShiftOp::Sar => (a as i64).wrapping_shr(amount as u32) as u64,
                }),
                _ => Origin::Computed,
            },
            Inst::Neg(r) => match before(self, r, visiting) {
                Origin::Constant(a) => Origin::Constant(a.wrapping_neg()),
                _ => Origin::Computed,
            },
            Inst::Not(r) => match before(self, r, visiting) {
                Origin::Constant(a) => Origin::Constant(!a),
                _ => Origin::Computed,
            },
            Inst::Imul {
                src: Rm::Reg(s), ..
            } => match (before(self, reg, visiting), before(self, s, visiting)) {
                (Origin::Constant(a), Origin::Constant(b)) => Origin::Constant(a.wrapping_mul(b)),
                _ => Origin::Computed,
            },
            Inst::Imul { .. } => Origin::Computed,
            Inst::Cmov {
                src: Rm::Reg(s), ..
            } => {
                // Condition-dependent: only a definitive answer when
                // both alternatives agree.
                let kept = before(self, reg, visiting);
                let moved = before(self, s, visiting);
                if kept == moved {
                    kept
                } else {
                    Origin::Unknown
                }
            }
            Inst::Cmov { .. } => Origin::Unknown,
            Inst::Xchg(a, b) => {
                let other = if reg == a { b } else { a };
                before(self, other, visiting)
            }
            Inst::Pop(_) => Origin::MemoryLoaded { addr: None },
            Inst::Setcc { .. } => Origin::Computed, // partial-width write
            // Call/syscall/cpuid clobbers: `defines` only matched if
            // `reg` is in the clobber set, and a clobbered value is
            // exactly what we refuse to guess.
            Inst::CallRel(_) | Inst::CallRm(_) | Inst::Syscall | Inst::Cpuid => Origin::Unknown,
            _ => Origin::Unknown,
        }
    }

    /// Constant-fold a register-destination ALU op when both operands
    /// resolve; otherwise the result is [`Origin::Computed`].
    #[allow(clippy::too_many_arguments)]
    fn fold_alu(
        &mut self,
        block: u64,
        idx: usize,
        op: AluOp,
        dst: Reg,
        src: Rm,
        width: Width,
        visiting: &mut BTreeSet<(u64, Reg)>,
    ) -> Origin {
        if width == Width::B1 {
            return Origin::Computed;
        }
        let a = self
            .resolve_in(block, idx, dst, visiting)
            .unwrap_or(Origin::Unknown);
        let b = match src {
            Rm::Reg(s) => self
                .resolve_in(block, idx, s, visiting)
                .unwrap_or(Origin::Unknown),
            Rm::Mem(_) => Origin::Unknown,
        };
        match (a, b) {
            (Origin::Constant(x), Origin::Constant(y)) => match alu_const(op, x, y, width) {
                Some(v) => Origin::Constant(v),
                None => Origin::Computed,
            },
            _ => Origin::Computed,
        }
    }

    /// Statically evaluate an effective address, if every component
    /// resolves to a constant.
    fn static_addr(
        &mut self,
        block: u64,
        idx: usize,
        next_va: u64,
        m: &Mem,
        visiting: &mut BTreeSet<(u64, Reg)>,
    ) -> Option<u64> {
        if m.rip {
            return Some(next_va.wrapping_add(m.disp as i64 as u64));
        }
        let mut addr = m.disp as i64 as u64;
        if let Some(base) = m.base {
            match self.resolve_in(block, idx, base, visiting) {
                Some(Origin::Constant(v)) => addr = addr.wrapping_add(v),
                _ => return None,
            }
        }
        if let Some((index, scale)) = m.index {
            match self.resolve_in(block, idx, index, visiting) {
                Some(Origin::Constant(v)) => addr = addr.wrapping_add(v.wrapping_mul(scale as u64)),
                _ => return None,
            }
        }
        Some(addr)
    }
}

/// Resolve `reg` immediately before the instruction at `va`, meeting
/// over **every** block occurrence of that address. The CFG walk can
/// produce overlapping blocks (a block decoded early may run straight
/// through an address that a later-discovered jump also targets); each
/// occurrence sees a different family of incoming paths, so only the
/// meet of all of them is sound.
pub fn resolve_before(f: &FunctionCfg, va: u64, reg: Reg) -> Origin {
    let mut acc: Option<Origin> = None;
    for (&start, block) in &f.blocks {
        for (idx, &(iva, _)) in block.insts.iter().enumerate() {
            if iva != va {
                continue;
            }
            let o = Resolver::new(f).resolve(start, idx, reg);
            acc = Some(match acc {
                None => o,
                Some(prev) => prev.meet(o),
            });
        }
    }
    acc.unwrap_or(Origin::Unknown)
}

/// Whether `inst` (re)defines `reg`. Partial-width writes count as
/// definitions (the old full-width value is gone for our purposes);
/// calls and `syscall` define their clobber sets.
pub fn defines(inst: &Inst, reg: Reg) -> bool {
    match *inst {
        Inst::MovRI { dst, .. }
        | Inst::MovRRm { dst, .. }
        | Inst::Movzx { dst, .. }
        | Inst::Lea { dst, .. }
        | Inst::AluRRm { dst, .. }
        | Inst::ShiftRI { dst, .. }
        | Inst::Imul { dst, .. }
        | Inst::Cmov { dst, .. }
        | Inst::Setcc { dst, .. } => {
            dst == reg
                && !matches!(
                    inst,
                    Inst::AluRRm { op, .. } if !op.writes_dst()
                )
        }
        Inst::MovRmR {
            dst: Rm::Reg(d), ..
        } => d == reg,
        Inst::MovRmI {
            dst: Rm::Reg(d), ..
        } => d == reg,
        Inst::AluRmR {
            dst: Rm::Reg(d),
            op,
            ..
        }
        | Inst::AluRmI {
            dst: Rm::Reg(d),
            op,
            ..
        } => d == reg && op.writes_dst(),
        Inst::Neg(r) | Inst::Not(r) | Inst::Pop(r) => r == reg,
        Inst::Xchg(a, b) => a == reg || b == reg,
        Inst::CallRel(_) | Inst::CallRm(_) => CALL_CLOBBERED.contains(&reg),
        Inst::Syscall => SYSCALL_CLOBBERED.contains(&reg),
        Inst::Cpuid => matches!(reg, Reg::Rax | Reg::Rbx | Reg::Rcx | Reg::Rdx),
        _ => false,
    }
}

/// Constant-fold one ALU op at `width` (results of 32-bit ops are
/// zero-extended, matching the hardware). `None` for ops that do not
/// write (`cmp`/`test` never reach here) — kept total for safety.
fn alu_const(op: AluOp, a: u64, b: u64, width: Width) -> Option<u64> {
    let v = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Xor => a ^ b,
        AluOp::Cmp | AluOp::Test => return None,
    };
    Some(v & width.mask())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::static_cfg::analyze_function;
    use cr_isa::{Asm, Cond, Mem as M};

    fn resolve_rax_at_syscall(build: impl FnOnce(&mut Asm)) -> Origin {
        resolve_at_syscall(build, Reg::Rax)
    }

    fn resolve_at_syscall(build: impl FnOnce(&mut Asm), reg: Reg) -> Origin {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let code = a.assemble().unwrap().code;
        let f = analyze_function(&(0x1000u64, code.as_slice()), 0x1000);
        let va = *f.syscall_sites.first().expect("one syscall site");
        resolve_before(&f, va, reg)
    }

    #[test]
    fn immediate_is_constant() {
        let o = resolve_rax_at_syscall(|a| {
            a.mov_ri(Reg::Rax, 60);
            a.syscall();
            a.ret();
        });
        assert_eq!(o, Origin::Constant(60));
    }

    #[test]
    fn copy_chain_resolves_to_constant() {
        let o = resolve_rax_at_syscall(|a| {
            a.mov_ri(Reg::Rbx, 1);
            a.mov_rr(Reg::Rax, Reg::Rbx);
            a.syscall();
            a.ret();
        });
        assert_eq!(o, Origin::Constant(1));
    }

    #[test]
    fn clobbered_then_reset_takes_the_last_write() {
        let o = resolve_rax_at_syscall(|a| {
            a.mov_ri(Reg::Rax, 2);
            a.zero(Reg::Rax);
            a.mov_ri(Reg::Rax, 3);
            a.syscall();
            a.ret();
        });
        assert_eq!(o, Origin::Constant(3));
    }

    #[test]
    fn zeroing_idiom_is_constant_zero() {
        let o = resolve_rax_at_syscall(|a| {
            a.mov_ri(Reg::Rax, 99);
            a.zero(Reg::Rax);
            a.syscall();
            a.ret();
        });
        assert_eq!(o, Origin::Constant(0));
    }

    #[test]
    fn cross_block_constant_survives_the_join() {
        // The number is set in the block *before* the branch; both arms
        // reach the syscall without touching rax.
        let o = resolve_rax_at_syscall(|a| {
            a.mov_ri(Reg::Rax, 39);
            a.cmp_ri(Reg::Rdi, 0);
            let site = a.fresh();
            a.jcc(Cond::E, site);
            a.mov_ri(Reg::Rbx, 7);
            a.bind(site);
            a.syscall();
            a.ret();
        });
        assert_eq!(o, Origin::Constant(39));
    }

    #[test]
    fn conflicting_paths_meet_to_unknown() {
        let o = resolve_rax_at_syscall(|a| {
            let (two, site) = (a.fresh(), a.fresh());
            a.cmp_ri(Reg::Rdi, 0);
            a.jcc(Cond::E, two);
            a.mov_ri(Reg::Rax, 1);
            a.jmp(site);
            a.bind(two);
            a.mov_ri(Reg::Rax, 2);
            a.bind(site);
            a.syscall();
            a.ret();
        });
        assert_eq!(o, Origin::Unknown);
    }

    #[test]
    fn agreeing_paths_meet_to_their_constant() {
        let o = resolve_rax_at_syscall(|a| {
            let (two, site) = (a.fresh(), a.fresh());
            a.cmp_ri(Reg::Rdi, 0);
            a.jcc(Cond::E, two);
            a.mov_ri(Reg::Rax, 5);
            a.jmp(site);
            a.bind(two);
            a.mov_ri(Reg::Rax, 5);
            a.bind(site);
            a.syscall();
            a.ret();
        });
        assert_eq!(o, Origin::Constant(5));
    }

    #[test]
    fn indirect_load_is_memory_with_resolved_cell() {
        // The load_field idiom: mov rsi, FIELD; mov rsi, [rsi].
        let o = resolve_at_syscall(
            |a| {
                a.mov_ri(Reg::Rsi, 0x60_0010);
                a.load(Reg::Rsi, M::base(Reg::Rsi));
                a.mov_ri(Reg::Rax, 0);
                a.syscall();
                a.ret();
            },
            Reg::Rsi,
        );
        assert_eq!(
            o,
            Origin::MemoryLoaded {
                addr: Some(0x60_0010)
            }
        );
    }

    #[test]
    fn number_loaded_from_memory_is_never_guessed() {
        let o = resolve_rax_at_syscall(|a| {
            a.mov_ri(Reg::Rbx, 0x60_0000);
            a.load(Reg::Rax, M::base(Reg::Rbx));
            a.syscall();
            a.ret();
        });
        assert_eq!(
            o,
            Origin::MemoryLoaded {
                addr: Some(0x60_0000)
            }
        );
        assert!(o.constant().is_none(), "a loaded number has no value");
        assert_eq!(o.number_class().tag(), "memory");
    }

    #[test]
    fn call_clobbers_the_number() {
        let o = resolve_rax_at_syscall(|a| {
            let helper = a.fresh();
            a.mov_ri(Reg::Rax, 1);
            a.call_label(helper);
            a.syscall();
            a.ret();
            a.bind(helper);
            a.ret();
        });
        assert_eq!(o, Origin::Unknown, "call-crossing values are not guessed");
    }

    #[test]
    fn callee_saved_registers_survive_calls() {
        let o = resolve_at_syscall(
            |a| {
                let helper = a.fresh();
                a.mov_ri(Reg::Rbx, 42);
                a.call_label(helper);
                a.mov_rr(Reg::Rax, Reg::Rbx);
                a.syscall();
                a.ret();
                a.bind(helper);
                a.ret();
            },
            Reg::Rax,
        );
        assert_eq!(o, Origin::Constant(42));
    }

    #[test]
    fn loop_back_edge_is_transparent_when_untouched() {
        // A loop that never writes rax must not obscure the constant
        // set before it.
        let o = resolve_rax_at_syscall(|a| {
            a.mov_ri(Reg::Rax, 11);
            let top = a.here();
            a.sub_ri(Reg::Rdi, 1);
            a.cmp_ri(Reg::Rdi, 0);
            a.jcc(Cond::Ne, top);
            a.syscall();
            a.ret();
        });
        assert_eq!(o, Origin::Constant(11));
    }

    #[test]
    fn arithmetic_folds_over_constants() {
        let o = resolve_rax_at_syscall(|a| {
            a.mov_ri(Reg::Rax, 40);
            a.add_ri(Reg::Rax, 2);
            a.syscall();
            a.ret();
        });
        assert_eq!(o, Origin::Constant(42));
    }

    #[test]
    fn arithmetic_over_unresolved_operand_is_computed() {
        let o = resolve_at_syscall(
            |a| {
                a.mov_ri(Reg::Rsi, 0x60_0010);
                a.load(Reg::Rsi, M::base(Reg::Rsi));
                a.add_rr(Reg::Rsi, Reg::R14);
                a.mov_ri(Reg::Rax, 0);
                a.syscall();
                a.ret();
            },
            Reg::Rsi,
        );
        assert_eq!(o, Origin::Computed);
    }
}
