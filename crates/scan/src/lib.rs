//! # cr-scan — traceless static syscall-site discovery
//!
//! The discovery pipeline's static backend. Where cr-taint needs a
//! bootable target plus a driven workload, cr-scan needs only bytes:
//! it decodes every executable segment of an ELF image, enumerates
//! `syscall` sites, and answers the paper's two provenance questions
//! (which syscall? where do the pointer arguments come from?) by
//! backward dataflow alone — the B-Side recipe. A SysPart-style
//! reachability pass then splits the sites temporally into init-phase
//! and serving-phase, using the calibrated serving-loop markers from
//! cr-targets, so the campaign ranker can prefer primitives an
//! attacker can still trigger after startup.
//!
//! Three modules:
//!
//! * [`dataflow`] — the provenance lattice ([`Origin`]) and the
//!   cycle-safe backward resolver over `cr_core::static_cfg` CFGs.
//! * [`scan`] — the scanner proper: [`scan_elf`] produces a
//!   deterministic [`ScanReport`] of [`SyscallSite`]s with
//!   [`Temporal`] tags.
//! * [`xval`] — static/dynamic cross-validation: [`cross_validate`]
//!   runs both backends on a calibrated target and reports site-level
//!   [`Agreement`] (matched / static-only / taint-only).
//!
//! Everything here is deterministic: same image, same report bytes —
//! across runs, worker counts and cache states.

pub mod dataflow;
pub mod scan;
pub mod xval;

pub use dataflow::Origin;
pub use scan::{
    elf_content_hash, scan_elf, scan_elf_with, serving_roots, ArgOrigin, ScanCounts, ScanReport,
    SegSource, SyscallSite, Temporal,
};
pub use xval::{compare, cross_validate, Agreement};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    // The scanner consumes arbitrary binaries; nothing in the decode →
    // CFG → dataflow → reachability pipeline may panic on garbage.
    proptest! {
        #[test]
        fn scanner_never_panics_on_arbitrary_code(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut image = cr_image::ElfImage {
                entry: 0x40_0000,
                segments: vec![cr_image::ElfSegment {
                    vaddr: 0x40_0000,
                    memsz: bytes.len() as u64,
                    data: bytes,
                    perm: cr_image::SegPerm::RX,
                }],
                symbols: std::collections::BTreeMap::new(),
            };
            // Give half the cases a serving root pointing into the
            // garbage, so the temporal walk is exercised too.
            image
                .symbols
                .insert("accept_loop".into(), 0x40_0000 + image.segments[0].memsz / 2);
            let report = crate::scan_elf("fuzz", &image);
            // Determinism while we're here: same bytes, same report.
            prop_assert_eq!(report.to_json(), crate::scan_elf("fuzz", &image).to_json());
        }
    }
}
