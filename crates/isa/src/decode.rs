//! Instruction decoder (disassembler front-end).
//!
//! Decodes the machine-code subset produced by [`crate::encode`]. The
//! decoder is what the discovery pipeline uses to lift raw bytes from
//! ELF/PE images back into [`Inst`] values for static analysis, taint
//! propagation and symbolic execution.

use crate::inst::{AluOp, Cond, Inst, Mem, Rm, ShiftOp, Width};
use crate::Reg;

/// A successfully decoded instruction plus its encoded length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The decoded instruction.
    pub inst: Inst,
    /// Number of bytes the encoding occupies.
    pub len: usize,
}

/// Errors produced while decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-instruction.
    Truncated,
    /// The (first) opcode byte is not part of the supported subset.
    UnknownOpcode(u8),
    /// A two-byte (`0F xx`) opcode is not part of the supported subset.
    UnknownOpcode0F(u8),
    /// A ModRM opcode extension is invalid for the opcode.
    BadExtension {
        /// The opcode byte.
        opcode: u8,
        /// The `/digit` extension found.
        ext: u8,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            DecodeError::UnknownOpcode0F(b) => write!(f, "unknown opcode 0f {b:#04x}"),
            DecodeError::BadExtension { opcode, ext } => {
                write!(f, "invalid extension /{ext} for opcode {opcode:#04x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 4;
        Ok(i32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 8)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }
}

#[derive(Clone, Copy, Default)]
struct Rex {
    w: bool,
    r: bool,
    x: bool,
    b: bool,
}

/// Result of parsing a ModRM (+SIB +disp) sequence.
struct ModRm {
    /// The `reg` field, REX.R applied.
    reg: u8,
    /// The `r/m` operand.
    rm: Rm,
}

fn parse_modrm(cur: &mut Cursor<'_>, rex: Rex) -> Result<ModRm, DecodeError> {
    let modrm = cur.u8()?;
    let mode = modrm >> 6;
    let reg = (modrm >> 3) & 7 | (rex.r as u8) << 3;
    let rm3 = modrm & 7;

    if mode == 0b11 {
        let r = Reg::from_encoding(rm3 | (rex.b as u8) << 3);
        return Ok(ModRm {
            reg,
            rm: Rm::Reg(r),
        });
    }

    // Memory operand.
    if mode == 0b00 && rm3 == 0b101 {
        // RIP-relative.
        let disp = cur.i32()?;
        return Ok(ModRm {
            reg,
            rm: Rm::Mem(Mem::rip(disp)),
        });
    }

    let (base, index) = if rm3 == 0b100 {
        // SIB byte follows.
        let sib = cur.u8()?;
        let scale = 1u8 << (sib >> 6);
        let idx3 = (sib >> 3) & 7;
        let base3 = sib & 7;
        let index = if idx3 == 0b100 && !rex.x {
            None
        } else {
            Some((Reg::from_encoding(idx3 | (rex.x as u8) << 3), scale))
        };
        let base = if base3 == 0b101 && mode == 0b00 {
            None // disp32, no base
        } else {
            Some(Reg::from_encoding(base3 | (rex.b as u8) << 3))
        };
        (base, index)
    } else {
        (Some(Reg::from_encoding(rm3 | (rex.b as u8) << 3)), None)
    };

    let disp = match mode {
        0b00 => {
            if base.is_none() {
                cur.i32()?
            } else {
                0
            }
        }
        0b01 => cur.i8()? as i32,
        0b10 => cur.i32()?,
        _ => unreachable!(),
    };

    Ok(ModRm {
        reg,
        rm: Rm::Mem(Mem {
            base,
            index,
            disp,
            rip: false,
        }),
    })
}

fn alu_from_mr_opcode(op: u8) -> Option<AluOp> {
    match op & !1 {
        0x00 => Some(AluOp::Add),
        0x08 => Some(AluOp::Or),
        0x20 => Some(AluOp::And),
        0x28 => Some(AluOp::Sub),
        0x30 => Some(AluOp::Xor),
        0x38 => Some(AluOp::Cmp),
        0x84 => Some(AluOp::Test),
        _ => None,
    }
}

fn alu_from_ext(ext: u8) -> Option<AluOp> {
    match ext {
        0 => Some(AluOp::Add),
        1 => Some(AluOp::Or),
        4 => Some(AluOp::And),
        5 => Some(AluOp::Sub),
        6 => Some(AluOp::Xor),
        7 => Some(AluOp::Cmp),
        _ => None,
    }
}

/// Decode one instruction from `bytes`.
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] if `bytes` ends mid-instruction and
/// an opcode error for bytes outside the supported subset.
pub fn decode(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let mut rex = Rex::default();
    let mut b = cur.u8()?;
    if (0x40..=0x4F).contains(&b) {
        rex = Rex {
            w: b & 8 != 0,
            r: b & 4 != 0,
            x: b & 2 != 0,
            b: b & 1 != 0,
        };
        b = cur.u8()?;
    }
    let wq = if rex.w { Width::B8 } else { Width::B4 };

    let inst = match b {
        // mov
        0x88..=0x8B => {
            let width = if b & 1 == 0 { Width::B1 } else { wq };
            let m = parse_modrm(&mut cur, rex)?;
            let reg = Reg::from_encoding(m.reg);
            if b & 2 != 0 {
                Inst::MovRRm {
                    dst: reg,
                    src: m.rm,
                    width,
                }
            } else {
                Inst::MovRmR {
                    dst: m.rm,
                    src: reg,
                    width,
                }
            }
        }
        0xB8..=0xBF => {
            let dst = Reg::from_encoding((b - 0xB8) | (rex.b as u8) << 3);
            if rex.w {
                Inst::MovRI {
                    dst,
                    imm: cur.u64()?,
                }
            } else {
                // mov r32, imm32 zero-extends.
                Inst::MovRI {
                    dst,
                    imm: cur.i32()? as u32 as u64,
                }
            }
        }
        0xC6 => {
            let m = parse_modrm(&mut cur, rex)?;
            if m.reg & 7 != 0 {
                return Err(DecodeError::BadExtension {
                    opcode: b,
                    ext: m.reg & 7,
                });
            }
            Inst::MovRmI {
                dst: m.rm,
                imm: cur.i8()? as i32,
                width: Width::B1,
            }
        }
        0xC7 => {
            let m = parse_modrm(&mut cur, rex)?;
            if m.reg & 7 != 0 {
                return Err(DecodeError::BadExtension {
                    opcode: b,
                    ext: m.reg & 7,
                });
            }
            Inst::MovRmI {
                dst: m.rm,
                imm: cur.i32()?,
                width: wq,
            }
        }
        0x8D => {
            let m = parse_modrm(&mut cur, rex)?;
            match m.rm {
                Rm::Mem(mem) => Inst::Lea {
                    dst: Reg::from_encoding(m.reg),
                    mem,
                },
                Rm::Reg(_) => return Err(DecodeError::BadExtension { opcode: b, ext: 0 }),
            }
        }
        // ALU, register direction forms
        0x00 | 0x01 | 0x08 | 0x09 | 0x20 | 0x21 | 0x28 | 0x29 | 0x30 | 0x31 | 0x38 | 0x39
        | 0x84 | 0x85 => {
            let op = alu_from_mr_opcode(b).expect("listed opcode");
            let width = if b & 1 == 0 { Width::B1 } else { wq };
            let m = parse_modrm(&mut cur, rex)?;
            Inst::AluRmR {
                op,
                dst: m.rm,
                src: Reg::from_encoding(m.reg),
                width,
            }
        }
        0x02 | 0x03 | 0x0A | 0x0B | 0x22 | 0x23 | 0x2A | 0x2B | 0x32 | 0x33 | 0x3A | 0x3B => {
            let op = alu_from_mr_opcode(b & !0x02).expect("listed opcode");
            let width = if b & 1 == 0 { Width::B1 } else { wq };
            let m = parse_modrm(&mut cur, rex)?;
            Inst::AluRRm {
                op,
                dst: Reg::from_encoding(m.reg),
                src: m.rm,
                width,
            }
        }
        0x80 => {
            let m = parse_modrm(&mut cur, rex)?;
            let op = alu_from_ext(m.reg & 7).ok_or(DecodeError::BadExtension {
                opcode: b,
                ext: m.reg & 7,
            })?;
            Inst::AluRmI {
                op,
                dst: m.rm,
                imm: cur.i8()? as i32,
                width: Width::B1,
            }
        }
        0x81 => {
            let m = parse_modrm(&mut cur, rex)?;
            let op = alu_from_ext(m.reg & 7).ok_or(DecodeError::BadExtension {
                opcode: b,
                ext: m.reg & 7,
            })?;
            Inst::AluRmI {
                op,
                dst: m.rm,
                imm: cur.i32()?,
                width: wq,
            }
        }
        0x83 => {
            // imm8 sign-extended form (accepted for leniency; we never emit it).
            let m = parse_modrm(&mut cur, rex)?;
            let op = alu_from_ext(m.reg & 7).ok_or(DecodeError::BadExtension {
                opcode: b,
                ext: m.reg & 7,
            })?;
            Inst::AluRmI {
                op,
                dst: m.rm,
                imm: cur.i8()? as i32,
                width: wq,
            }
        }
        0xF6 => {
            let m = parse_modrm(&mut cur, rex)?;
            if m.reg & 7 != 0 {
                return Err(DecodeError::BadExtension {
                    opcode: b,
                    ext: m.reg & 7,
                });
            }
            Inst::AluRmI {
                op: AluOp::Test,
                dst: m.rm,
                imm: cur.i8()? as i32,
                width: Width::B1,
            }
        }
        0xF7 => {
            let m = parse_modrm(&mut cur, rex)?;
            match m.reg & 7 {
                0 => Inst::AluRmI {
                    op: AluOp::Test,
                    dst: m.rm,
                    imm: cur.i32()?,
                    width: wq,
                },
                2 | 3 => {
                    let r = match m.rm {
                        Rm::Reg(r) => r,
                        Rm::Mem(_) => return Err(DecodeError::BadExtension { opcode: b, ext: 8 }),
                    };
                    if m.reg & 7 == 2 {
                        Inst::Not(r)
                    } else {
                        Inst::Neg(r)
                    }
                }
                e => return Err(DecodeError::BadExtension { opcode: b, ext: e }),
            }
        }
        0x87 => {
            let m = parse_modrm(&mut cur, rex)?;
            match m.rm {
                Rm::Reg(r) => Inst::Xchg(Reg::from_encoding(m.reg), r),
                Rm::Mem(_) => return Err(DecodeError::BadExtension { opcode: b, ext: 8 }),
            }
        }
        0xC1 => {
            let m = parse_modrm(&mut cur, rex)?;
            let op = match m.reg & 7 {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                e => return Err(DecodeError::BadExtension { opcode: b, ext: e }),
            };
            let dst = match m.rm {
                Rm::Reg(r) => r,
                Rm::Mem(_) => return Err(DecodeError::BadExtension { opcode: b, ext: 8 }),
            };
            Inst::ShiftRI {
                op,
                dst,
                amount: cur.u8()?,
            }
        }
        0x50..=0x57 => Inst::Push(Reg::from_encoding((b - 0x50) | (rex.b as u8) << 3)),
        0x58..=0x5F => Inst::Pop(Reg::from_encoding((b - 0x58) | (rex.b as u8) << 3)),
        0xE8 => Inst::CallRel(cur.i32()?),
        0xE9 => Inst::JmpRel(cur.i32()?),
        0xEB => Inst::JmpRel(cur.i8()? as i32),
        0xFF => {
            let m = parse_modrm(&mut cur, rex)?;
            match m.reg & 7 {
                2 => Inst::CallRm(m.rm),
                4 => Inst::JmpRm(m.rm),
                e => return Err(DecodeError::BadExtension { opcode: b, ext: e }),
            }
        }
        0xC3 => Inst::Ret,
        0xCC => Inst::Int3,
        0x90 => Inst::Nop,
        0xF4 => Inst::Hlt,
        0x0F => {
            let b2 = cur.u8()?;
            match b2 {
                0x05 => Inst::Syscall,
                0x0B => Inst::Ud2,
                0xA2 => Inst::Cpuid,
                0xB6 => {
                    let m = parse_modrm(&mut cur, rex)?;
                    Inst::Movzx {
                        dst: Reg::from_encoding(m.reg),
                        src: m.rm,
                        src_width: Width::B1,
                    }
                }
                0xAF => {
                    let m = parse_modrm(&mut cur, rex)?;
                    Inst::Imul {
                        dst: Reg::from_encoding(m.reg),
                        src: m.rm,
                    }
                }
                0x40..=0x4F => {
                    let cond =
                        Cond::from_encoding(b2 - 0x40).ok_or(DecodeError::UnknownOpcode0F(b2))?;
                    let m = parse_modrm(&mut cur, rex)?;
                    Inst::Cmov {
                        cond,
                        dst: Reg::from_encoding(m.reg),
                        src: m.rm,
                    }
                }
                0x80..=0x8F => {
                    let cond =
                        Cond::from_encoding(b2 - 0x80).ok_or(DecodeError::UnknownOpcode0F(b2))?;
                    Inst::Jcc {
                        cond,
                        rel: cur.i32()?,
                    }
                }
                0x90..=0x9F => {
                    let cond =
                        Cond::from_encoding(b2 - 0x90).ok_or(DecodeError::UnknownOpcode0F(b2))?;
                    let m = parse_modrm(&mut cur, rex)?;
                    match m.rm {
                        Rm::Reg(r) => Inst::Setcc { cond, dst: r },
                        Rm::Mem(_) => return Err(DecodeError::BadExtension { opcode: b2, ext: 8 }),
                    }
                }
                _ => return Err(DecodeError::UnknownOpcode0F(b2)),
            }
        }
        _ => return Err(DecodeError::UnknownOpcode(b)),
    };

    Ok(Decoded { inst, len: cur.pos })
}

/// Linear-sweep disassembly of a byte buffer starting at virtual address
/// `va`. Stops at the first undecodable byte sequence.
///
/// Returns `(va, inst, len)` triples.
pub fn disassemble(bytes: &[u8], va: u64) -> Vec<(u64, Inst, usize)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match decode(&bytes[off..]) {
            Ok(d) => {
                out.push((va + off as u64, d.inst, d.len));
                off += d.len;
            }
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use Reg::*;

    fn roundtrip(i: Inst) {
        let bytes = encode(&i).expect("encodable");
        let d = decode(&bytes).expect("decodable");
        assert_eq!(d.inst, i, "bytes: {bytes:02x?}");
        assert_eq!(d.len, bytes.len());
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip(Inst::MovRRm {
            dst: Rax,
            src: Rm::Reg(Rbx),
            width: Width::B8,
        });
        roundtrip(Inst::MovRRm {
            dst: R9,
            src: Rm::Mem(Mem::base_disp(R13, -8)),
            width: Width::B8,
        });
        roundtrip(Inst::MovRmR {
            dst: Rm::Mem(Mem::base_index(Rbx, R14, 4, 0x1000)),
            src: R8,
            width: Width::B4,
        });
        roundtrip(Inst::MovRI {
            dst: R15,
            imm: u64::MAX,
        });
        roundtrip(Inst::MovRmI {
            dst: Rm::Mem(Mem::rip(-16)),
            imm: -1,
            width: Width::B8,
        });
        roundtrip(Inst::Lea {
            dst: Rcx,
            mem: Mem::base_disp(Rsp, 0x40),
        });
        roundtrip(Inst::Movzx {
            dst: Rdx,
            src: Rm::Mem(Mem::base(Rdi)),
            src_width: Width::B1,
        });
    }

    #[test]
    fn roundtrip_alu() {
        for op in [
            AluOp::Add,
            AluOp::Or,
            AluOp::And,
            AluOp::Sub,
            AluOp::Xor,
            AluOp::Cmp,
        ] {
            roundtrip(Inst::AluRRm {
                op,
                dst: Rax,
                src: Rm::Reg(R11),
                width: Width::B8,
            });
            roundtrip(Inst::AluRmR {
                op,
                dst: Rm::Mem(Mem::base(Rsi)),
                src: Rdx,
                width: Width::B8,
            });
            roundtrip(Inst::AluRmI {
                op,
                dst: Rm::Reg(Rbp),
                imm: 0x7FFF_0000,
                width: Width::B8,
            });
        }
        roundtrip(Inst::AluRmR {
            op: AluOp::Test,
            dst: Rm::Reg(Rax),
            src: Rax,
            width: Width::B8,
        });
        roundtrip(Inst::AluRmI {
            op: AluOp::Test,
            dst: Rm::Reg(Rdi),
            imm: 1,
            width: Width::B4,
        });
    }

    #[test]
    fn roundtrip_control() {
        roundtrip(Inst::CallRel(0x1234));
        roundtrip(Inst::CallRm(Rm::Reg(Rax)));
        roundtrip(Inst::CallRm(Rm::Mem(Mem::rip(0x200))));
        roundtrip(Inst::JmpRel(-0x1234));
        roundtrip(Inst::JmpRm(Rm::Reg(R10)));
        for cond in Cond::ALL {
            roundtrip(Inst::Jcc { cond, rel: 0x40 });
            roundtrip(Inst::Setcc { cond, dst: Rcx });
        }
        roundtrip(Inst::Ret);
    }

    #[test]
    fn roundtrip_misc() {
        for i in [
            Inst::Syscall,
            Inst::Int3,
            Inst::Nop,
            Inst::Ud2,
            Inst::Hlt,
            Inst::Cpuid,
        ] {
            roundtrip(i);
        }
        roundtrip(Inst::Push(Rdi));
        roundtrip(Inst::Pop(R15));
        for op in [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar] {
            roundtrip(Inst::ShiftRI {
                op,
                dst: Rbx,
                amount: 17,
            });
        }
    }

    #[test]
    fn short_jmp_decodes() {
        // EB FE = jmp -2 (tight self loop)
        let d = decode(&[0xEB, 0xFE]).unwrap();
        assert_eq!(d.inst, Inst::JmpRel(-2));
        assert_eq!(d.len, 2);
    }

    #[test]
    fn imm8_alu_form_decodes() {
        // 48 83 C0 01 = add rax, 1
        let d = decode(&[0x48, 0x83, 0xC0, 0x01]).unwrap();
        assert_eq!(
            d.inst,
            Inst::AluRmI {
                op: AluOp::Add,
                dst: Rm::Reg(Rax),
                imm: 1,
                width: Width::B8
            }
        );
    }

    #[test]
    fn truncation_reported() {
        assert_eq!(decode(&[0x48]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xE8, 0x00]), Err(DecodeError::Truncated));
    }

    #[test]
    fn unknown_opcode_reported() {
        assert_eq!(decode(&[0x06]), Err(DecodeError::UnknownOpcode(0x06)));
        assert_eq!(
            decode(&[0x0F, 0xFF]),
            Err(DecodeError::UnknownOpcode0F(0xFF))
        );
    }

    #[test]
    fn linear_sweep() {
        let mut code = Vec::new();
        code.extend(encode(&Inst::Push(Rbp)).unwrap());
        code.extend(
            encode(&Inst::MovRRm {
                dst: Rbp,
                src: Rm::Reg(Rsp),
                width: Width::B8,
            })
            .unwrap(),
        );
        code.extend(encode(&Inst::Ret).unwrap());
        let insts = disassemble(&code, 0x40_0000);
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[0].0, 0x40_0000);
        assert_eq!(insts[2].1, Inst::Ret);
    }
}
