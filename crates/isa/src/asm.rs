//! Two-pass assembler with labels.
//!
//! [`Asm`] is the builder used by `cr-targets` to author the synthetic
//! server and DLL binaries. It supports forward references through
//! [`Label`]s and exports a symbol table so images and analyses can refer
//! to functions by name.

use crate::encode::{encode, EncodeError};
use crate::inst::{AluOp, Cond, Inst, Mem, Rm, ShiftOp, Width};
use crate::Reg;
use std::collections::BTreeMap;

/// An abstract code location, resolved at assembly time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(usize);

#[derive(Debug, Clone)]
enum Item {
    /// A fully determined instruction.
    Fixed(Inst),
    /// `call label` (rel32).
    CallLabel(Label),
    /// `jmp label` (rel32).
    JmpLabel(Label),
    /// `jcc label` (rel32).
    JccLabel(Cond, Label),
    /// `lea reg, [rip + label]`.
    LeaLabel(Reg, Label),
    /// `movabs reg, absolute-address-of-label`.
    MovLabelAddr(Reg, Label),
    /// Raw bytes (inline data, strings, tables).
    Bytes(Vec<u8>),
    /// Pad with `int3` to the given alignment.
    Align(usize),
}

impl Item {
    /// Encoded size; `Align` is resolved during layout.
    fn size(&self, offset: usize) -> usize {
        match self {
            Item::Fixed(i) => encode(i).map(|v| v.len()).unwrap_or(0),
            Item::CallLabel(_) | Item::JmpLabel(_) => 5,
            Item::JccLabel(..) => 6,
            Item::LeaLabel(..) => 7,
            Item::MovLabelAddr(..) => 10,
            Item::Bytes(b) => b.len(),
            Item::Align(a) => (a - offset % a) % a,
        }
    }
}

/// Output of [`Asm::assemble`].
#[derive(Debug, Clone)]
pub struct Assembled {
    /// The machine code, positioned at [`Assembled::base`].
    pub code: Vec<u8>,
    /// Virtual address of `code[0]`.
    pub base: u64,
    /// Named symbols (functions, data anchors) → virtual address.
    pub symbols: BTreeMap<String, u64>,
}

impl Assembled {
    /// Look up a symbol's virtual address.
    ///
    /// # Panics
    ///
    /// Panics if the symbol was never defined; synthetic targets treat a
    /// missing symbol as a build bug.
    pub fn sym(&self, name: &str) -> u64 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("undefined symbol {name:?}"))
    }
}

/// Errors from [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(Label),
    /// An instruction failed to encode.
    Encode(EncodeError),
    /// A rel32 displacement overflowed (program too large).
    DisplacementOverflow,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} referenced but never bound"),
            AsmError::Encode(e) => write!(f, "encode error: {e}"),
            AsmError::DisplacementOverflow => write!(f, "rel32 displacement overflow"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}

/// A two-pass assembler for the supported x86-64 subset.
///
/// # Examples
///
/// ```
/// use cr_isa::{Asm, Reg, Cond};
///
/// let mut a = Asm::new(0x40_0000);
/// a.global("entry");
/// a.mov_ri(Reg::Rax, 0);
/// let done = a.fresh();
/// a.cmp_ri(Reg::Rdi, 0);
/// a.jcc(Cond::E, done);
/// a.mov_ri(Reg::Rax, 1);
/// a.bind(done);
/// a.ret();
/// let image = a.assemble()?;
/// assert_eq!(image.sym("entry"), 0x40_0000);
/// # Ok::<(), cr_isa::AsmError>(())
/// ```
#[derive(Debug)]
pub struct Asm {
    base: u64,
    items: Vec<Item>,
    /// label index → item index it is bound before.
    bindings: Vec<Option<usize>>,
    symbols: Vec<(String, Label)>,
}

impl Asm {
    /// Create an assembler whose output will live at virtual address `base`.
    pub fn new(base: u64) -> Asm {
        Asm {
            base,
            items: Vec::new(),
            bindings: Vec::new(),
            symbols: Vec::new(),
        }
    }

    /// Allocate a fresh, unbound label.
    pub fn fresh(&mut self) -> Label {
        self.bindings.push(None);
        Label(self.bindings.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.bindings[label.0].is_none(), "label bound twice");
        self.bindings[label.0] = Some(self.items.len());
    }

    /// Bind a fresh label here and return it.
    pub fn here(&mut self) -> Label {
        let l = self.fresh();
        self.bind(l);
        l
    }

    /// Define a named symbol at the current position.
    pub fn global(&mut self, name: &str) -> Label {
        let l = self.here();
        self.symbols.push((name.to_string(), l));
        l
    }

    /// Attach a name to an existing label.
    pub fn name(&mut self, name: &str, label: Label) {
        self.symbols.push((name.to_string(), label));
    }

    /// Append a raw instruction.
    pub fn inst(&mut self, i: Inst) -> &mut Asm {
        self.items.push(Item::Fixed(i));
        self
    }

    /// Append raw bytes (inline data).
    pub fn bytes(&mut self, b: &[u8]) -> &mut Asm {
        self.items.push(Item::Bytes(b.to_vec()));
        self
    }

    /// Pad with `int3` to `align` bytes.
    pub fn align(&mut self, align: usize) -> &mut Asm {
        assert!(align.is_power_of_two());
        self.items.push(Item::Align(align));
        self
    }

    // ---- convenience mnemonics ------------------------------------------

    /// `mov dst, src` (register to register, 64-bit).
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.inst(Inst::MovRRm {
            dst,
            src: Rm::Reg(src),
            width: Width::B8,
        })
    }

    /// `movabs dst, imm`.
    pub fn mov_ri(&mut self, dst: Reg, imm: u64) -> &mut Asm {
        self.inst(Inst::MovRI { dst, imm })
    }

    /// `mov dst, qword [mem]`.
    pub fn load(&mut self, dst: Reg, mem: Mem) -> &mut Asm {
        self.inst(Inst::MovRRm {
            dst,
            src: Rm::Mem(mem),
            width: Width::B8,
        })
    }

    /// `mov dst, byte [mem]` zero-extended.
    pub fn load_u8(&mut self, dst: Reg, mem: Mem) -> &mut Asm {
        self.inst(Inst::Movzx {
            dst,
            src: Rm::Mem(mem),
            src_width: Width::B1,
        })
    }

    /// `mov qword [mem], src`.
    pub fn store(&mut self, mem: Mem, src: Reg) -> &mut Asm {
        self.inst(Inst::MovRmR {
            dst: Rm::Mem(mem),
            src,
            width: Width::B8,
        })
    }

    /// `mov byte [mem], src`.
    pub fn store_u8(&mut self, mem: Mem, src: Reg) -> &mut Asm {
        self.inst(Inst::MovRmR {
            dst: Rm::Mem(mem),
            src,
            width: Width::B1,
        })
    }

    /// `mov qword [mem], imm32` (sign-extended).
    pub fn store_i(&mut self, mem: Mem, imm: i32) -> &mut Asm {
        self.inst(Inst::MovRmI {
            dst: Rm::Mem(mem),
            imm,
            width: Width::B8,
        })
    }

    /// `lea dst, [mem]`.
    pub fn lea(&mut self, dst: Reg, mem: Mem) -> &mut Asm {
        self.inst(Inst::Lea { dst, mem })
    }

    /// `lea dst, [rip + label]` — position-independent address of a label.
    pub fn lea_label(&mut self, dst: Reg, label: Label) -> &mut Asm {
        self.items.push(Item::LeaLabel(dst, label));
        self
    }

    /// `movabs dst, &label` — absolute address of a label.
    pub fn mov_label_addr(&mut self, dst: Reg, label: Label) -> &mut Asm {
        self.items.push(Item::MovLabelAddr(dst, label));
        self
    }

    /// `add dst, src`.
    pub fn add_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.inst(Inst::AluRRm {
            op: AluOp::Add,
            dst,
            src: Rm::Reg(src),
            width: Width::B8,
        })
    }

    /// `add dst, imm32`.
    pub fn add_ri(&mut self, dst: Reg, imm: i32) -> &mut Asm {
        self.inst(Inst::AluRmI {
            op: AluOp::Add,
            dst: Rm::Reg(dst),
            imm,
            width: Width::B8,
        })
    }

    /// `sub dst, src`.
    pub fn sub_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.inst(Inst::AluRRm {
            op: AluOp::Sub,
            dst,
            src: Rm::Reg(src),
            width: Width::B8,
        })
    }

    /// `sub dst, imm32`.
    pub fn sub_ri(&mut self, dst: Reg, imm: i32) -> &mut Asm {
        self.inst(Inst::AluRmI {
            op: AluOp::Sub,
            dst: Rm::Reg(dst),
            imm,
            width: Width::B8,
        })
    }

    /// `and dst, imm32`.
    pub fn and_ri(&mut self, dst: Reg, imm: i32) -> &mut Asm {
        self.inst(Inst::AluRmI {
            op: AluOp::And,
            dst: Rm::Reg(dst),
            imm,
            width: Width::B8,
        })
    }

    /// `xor dst, dst` — the canonical zeroing idiom.
    pub fn zero(&mut self, dst: Reg) -> &mut Asm {
        self.inst(Inst::AluRmR {
            op: AluOp::Xor,
            dst: Rm::Reg(dst),
            src: dst,
            width: Width::B8,
        })
    }

    /// `cmp a, b`.
    pub fn cmp_rr(&mut self, a: Reg, b: Reg) -> &mut Asm {
        self.inst(Inst::AluRRm {
            op: AluOp::Cmp,
            dst: a,
            src: Rm::Reg(b),
            width: Width::B8,
        })
    }

    /// `cmp a, imm32`.
    pub fn cmp_ri(&mut self, a: Reg, imm: i32) -> &mut Asm {
        self.inst(Inst::AluRmI {
            op: AluOp::Cmp,
            dst: Rm::Reg(a),
            imm,
            width: Width::B8,
        })
    }

    /// `cmp qword [mem], imm32`.
    pub fn cmp_mi(&mut self, mem: Mem, imm: i32) -> &mut Asm {
        self.inst(Inst::AluRmI {
            op: AluOp::Cmp,
            dst: Rm::Mem(mem),
            imm,
            width: Width::B8,
        })
    }

    /// `test a, a`.
    pub fn test_rr(&mut self, a: Reg) -> &mut Asm {
        self.inst(Inst::AluRmR {
            op: AluOp::Test,
            dst: Rm::Reg(a),
            src: a,
            width: Width::B8,
        })
    }

    /// `shl dst, n`.
    pub fn shl(&mut self, dst: Reg, n: u8) -> &mut Asm {
        self.inst(Inst::ShiftRI {
            op: ShiftOp::Shl,
            dst,
            amount: n,
        })
    }

    /// `shr dst, n`.
    pub fn shr(&mut self, dst: Reg, n: u8) -> &mut Asm {
        self.inst(Inst::ShiftRI {
            op: ShiftOp::Shr,
            dst,
            amount: n,
        })
    }

    /// `push r`.
    pub fn push(&mut self, r: Reg) -> &mut Asm {
        self.inst(Inst::Push(r))
    }

    /// `pop r`.
    pub fn pop(&mut self, r: Reg) -> &mut Asm {
        self.inst(Inst::Pop(r))
    }

    /// `call label`.
    pub fn call_label(&mut self, label: Label) -> &mut Asm {
        self.items.push(Item::CallLabel(label));
        self
    }

    /// `call r`.
    pub fn call_reg(&mut self, r: Reg) -> &mut Asm {
        self.inst(Inst::CallRm(Rm::Reg(r)))
    }

    /// `jmp label`.
    pub fn jmp(&mut self, label: Label) -> &mut Asm {
        self.items.push(Item::JmpLabel(label));
        self
    }

    /// `jmp r`.
    pub fn jmp_reg(&mut self, r: Reg) -> &mut Asm {
        self.inst(Inst::JmpRm(Rm::Reg(r)))
    }

    /// `jcc label`.
    pub fn jcc(&mut self, cond: Cond, label: Label) -> &mut Asm {
        self.items.push(Item::JccLabel(cond, label));
        self
    }

    /// `setcc dst` (low byte).
    pub fn setcc(&mut self, cond: Cond, dst: Reg) -> &mut Asm {
        self.inst(Inst::Setcc { cond, dst })
    }

    /// `ret`.
    pub fn ret(&mut self) -> &mut Asm {
        self.inst(Inst::Ret)
    }

    /// `syscall`.
    pub fn syscall(&mut self) -> &mut Asm {
        self.inst(Inst::Syscall)
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Asm {
        self.inst(Inst::Nop)
    }

    /// `ud2`.
    pub fn ud2(&mut self) -> &mut Asm {
        self.inst(Inst::Ud2)
    }

    /// `int3`.
    pub fn int3(&mut self) -> &mut Asm {
        self.inst(Inst::Int3)
    }

    /// `hlt`.
    pub fn hlt(&mut self) -> &mut Asm {
        self.inst(Inst::Hlt)
    }

    /// `cpuid` (hypercall marker).
    pub fn cpuid(&mut self) -> &mut Asm {
        self.inst(Inst::Cpuid)
    }

    // ---- assembly --------------------------------------------------------

    /// Run both passes and produce the final machine code.
    ///
    /// # Errors
    ///
    /// Fails if a referenced label was never bound, an instruction cannot
    /// be encoded, or a displacement overflows rel32.
    pub fn assemble(self) -> Result<Assembled, AsmError> {
        // Pass 1: layout.
        let mut offsets = Vec::with_capacity(self.items.len() + 1);
        let mut off = 0usize;
        for item in &self.items {
            offsets.push(off);
            off += item.size(off);
        }
        offsets.push(off);

        let label_off = |l: Label| -> Result<usize, AsmError> {
            let idx = self.bindings[l.0].ok_or(AsmError::UnboundLabel(l))?;
            Ok(offsets[idx])
        };

        // Pass 2: emit.
        let mut code = Vec::with_capacity(off);
        for (i, item) in self.items.iter().enumerate() {
            let here = offsets[i];
            let next = offsets[i + 1];
            match item {
                Item::Fixed(inst) => code.extend(encode(inst)?),
                Item::CallLabel(l) => {
                    let rel = rel32(label_off(*l)?, next)?;
                    code.extend(encode(&Inst::CallRel(rel))?);
                }
                Item::JmpLabel(l) => {
                    let rel = rel32(label_off(*l)?, next)?;
                    code.extend(encode(&Inst::JmpRel(rel))?);
                }
                Item::JccLabel(c, l) => {
                    let rel = rel32(label_off(*l)?, next)?;
                    code.extend(encode(&Inst::Jcc { cond: *c, rel })?);
                }
                Item::LeaLabel(r, l) => {
                    let rel = rel32(label_off(*l)?, next)?;
                    code.extend(encode(&Inst::Lea {
                        dst: *r,
                        mem: Mem::rip(rel),
                    })?);
                }
                Item::MovLabelAddr(r, l) => {
                    let addr = self.base + label_off(*l)? as u64;
                    code.extend(encode(&Inst::MovRI { dst: *r, imm: addr })?);
                }
                Item::Bytes(b) => code.extend_from_slice(b),
                Item::Align(_) => {
                    code.resize(code.len() + (next - here), 0xCC);
                }
            }
            debug_assert_eq!(code.len(), next, "layout/emit size mismatch at item {i}");
        }

        let mut symbols = BTreeMap::new();
        for (name, l) in &self.symbols {
            let o = label_off(*l)?;
            symbols.insert(name.clone(), self.base + o as u64);
        }
        Ok(Assembled {
            code,
            base: self.base,
            symbols,
        })
    }
}

fn rel32(target: usize, next: usize) -> Result<i32, AsmError> {
    let rel = target as i64 - next as i64;
    i32::try_from(rel).map_err(|_| AsmError::DisplacementOverflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::disassemble;
    use Reg::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new(0x1000);
        let top = a.here();
        a.sub_ri(Rdi, 1);
        let out = a.fresh();
        a.cmp_ri(Rdi, 0);
        a.jcc(Cond::E, out);
        a.jmp(top);
        a.bind(out);
        a.ret();
        let asm = a.assemble().unwrap();
        let insts = disassemble(&asm.code, 0x1000);
        assert_eq!(insts.last().unwrap().1, Inst::Ret);
        // The jcc must skip exactly over the jmp (5 bytes).
        let jcc = insts
            .iter()
            .find(|(_, i, _)| matches!(i, Inst::Jcc { .. }))
            .unwrap();
        match jcc.1 {
            Inst::Jcc { rel, .. } => assert_eq!(rel, 5),
            _ => unreachable!(),
        }
    }

    #[test]
    fn symbols_resolve() {
        let mut a = Asm::new(0x40_0000);
        a.global("start");
        a.nop();
        a.global("after_nop");
        a.ret();
        let asm = a.assemble().unwrap();
        assert_eq!(asm.sym("start"), 0x40_0000);
        assert_eq!(asm.sym("after_nop"), 0x40_0001);
    }

    #[test]
    fn unbound_label_fails() {
        let mut a = Asm::new(0);
        let l = a.fresh();
        a.jmp(l);
        assert!(matches!(a.assemble(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn align_pads_with_int3() {
        let mut a = Asm::new(0);
        a.nop();
        a.align(16);
        a.global("aligned");
        a.ret();
        let asm = a.assemble().unwrap();
        assert_eq!(asm.sym("aligned"), 16);
        assert!(asm.code[1..16].iter().all(|&b| b == 0xCC));
    }

    #[test]
    fn lea_label_is_rip_relative() {
        let mut a = Asm::new(0x2000);
        let data = a.fresh();
        a.lea_label(Rax, data);
        a.ret();
        a.bind(data);
        a.bytes(b"hello");
        let asm = a.assemble().unwrap();
        // lea rax, [rip + 1] (ret is 1 byte): 48 8D 05 01 00 00 00
        assert_eq!(&asm.code[..7], &[0x48, 0x8D, 0x05, 0x01, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn mov_label_addr_absolute() {
        let mut a = Asm::new(0x7000);
        let tgt = a.fresh();
        a.mov_label_addr(Rcx, tgt);
        a.bind(tgt);
        a.ret();
        let asm = a.assemble().unwrap();
        let d = crate::decode::decode(&asm.code).unwrap();
        assert_eq!(
            d.inst,
            Inst::MovRI {
                dst: Rcx,
                imm: 0x7000 + 10
            }
        );
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new(0);
        let l = a.fresh();
        a.bind(l);
        a.bind(l);
    }
}
