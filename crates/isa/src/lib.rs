//! # cr-isa — x86-64 subset assembler and disassembler
//!
//! Instruction-level substrate for the crash-resistant-primitive discovery
//! framework. Provides:
//!
//! * an instruction model ([`Inst`], [`Mem`], [`Reg`], …),
//! * an encoder ([`encode`]) and two-pass assembler with labels ([`Asm`]),
//! * a decoder ([`decode`]) and linear-sweep disassembler ([`disassemble`]).
//!
//! The subset covers everything the synthetic targets and analyses need:
//! loads/stores with full ModRM/SIB/RIP-relative addressing, the ALU group,
//! shifts, stack operations, calls/jumps/conditional branches, `syscall`,
//! and a handful of system opcodes.
//!
//! # Examples
//!
//! ```
//! use cr_isa::{Asm, Reg, decode};
//!
//! let mut a = Asm::new(0x40_0000);
//! a.mov_ri(Reg::Rax, 60); // exit
//! a.zero(Reg::Rdi);
//! a.syscall();
//! let image = a.assemble()?;
//! let first = decode(&image.code)?;
//! assert_eq!(first.inst.to_string(), "movabs rax, 0x3c");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod asm;
mod decode;
mod encode;
mod inst;
mod reg;

pub use asm::{Asm, AsmError, Assembled, Label};
pub use decode::{decode, disassemble, DecodeError, Decoded};
pub use encode::{encode, EncodeError};
pub use inst::{AluOp, Cond, Inst, Mem, Rm, ShiftOp, Width};
pub use reg::Reg;
