//! Instruction encoder (assembler back-end).
//!
//! Produces standard x86-64 machine code for the subset in [`Inst`].
//! Every encoding emitted here is decodable by [`crate::decode`], and the
//! two are exercised against each other by round-trip property tests.

use crate::inst::{AluOp, Inst, Mem, Rm, Width};
use crate::Reg;

/// Errors produced while encoding a single instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit the encodable range for the operand width.
    ImmOutOfRange {
        /// The offending immediate.
        imm: i64,
        /// The width it had to fit.
        width: Width,
    },
    /// The instruction form is not encodable (e.g. `movzx` from dword).
    UnsupportedForm(&'static str),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { imm, width } => {
                write!(f, "immediate {imm:#x} out of range for {width} operand")
            }
            EncodeError::UnsupportedForm(what) => write!(f, "unsupported instruction form: {what}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Working buffer for one instruction encoding.
struct Enc {
    rex_w: bool,
    rex_r: bool,
    rex_x: bool,
    rex_b: bool,
    /// Force emission of a REX prefix even if all bits are zero
    /// (required to address `spl`/`bpl`/`sil`/`dil`).
    rex_force: bool,
    opcode: Vec<u8>,
    modrm: Option<u8>,
    sib: Option<u8>,
    disp: Vec<u8>,
    imm: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc {
            rex_w: false,
            rex_r: false,
            rex_x: false,
            rex_b: false,
            rex_force: false,
            opcode: Vec::new(),
            modrm: None,
            sib: None,
            disp: Vec::new(),
            imm: Vec::new(),
        }
    }

    fn op(&mut self, bytes: &[u8]) -> &mut Enc {
        self.opcode.extend_from_slice(bytes);
        self
    }

    fn w(&mut self, width: Width) -> &mut Enc {
        if width == Width::B8 {
            self.rex_w = true;
        }
        self
    }

    /// Set the ModRM `reg` field (either a register or an opcode extension).
    fn reg_field(&mut self, enc: u8, ext: bool) -> &mut Enc {
        let m = self.modrm.unwrap_or(0);
        self.modrm = Some(m | ((enc & 7) << 3));
        if ext {
            self.rex_r = true;
        }
        self
    }

    fn rm_reg(&mut self, r: Reg) -> &mut Enc {
        let m = self.modrm.unwrap_or(0);
        self.modrm = Some(m | 0b11 << 6 | r.low3());
        if r.needs_ext() {
            self.rex_b = true;
        }
        self
    }

    fn rm_mem(&mut self, mem: Mem) -> &mut Enc {
        let m = self.modrm.unwrap_or(0);
        if mem.rip {
            debug_assert!(mem.base.is_none() && mem.index.is_none());
            self.modrm = Some(m | 0b101);
            self.disp.extend_from_slice(&mem.disp.to_le_bytes());
            return self;
        }
        match (mem.base, mem.index) {
            (None, None) => {
                // Absolute disp32 via SIB with no base, no index.
                self.modrm = Some(m | 0b100);
                self.sib = Some((0b100 << 3) | 0b101);
                self.disp.extend_from_slice(&mem.disp.to_le_bytes());
            }
            (Some(base), None) if base.low3() != 0b100 => {
                let (mode, disp) = Self::disp_mode(base, mem.disp);
                self.modrm = Some(m | mode << 6 | base.low3());
                if base.needs_ext() {
                    self.rex_b = true;
                }
                self.disp.extend_from_slice(&disp);
            }
            (Some(base), index) => {
                // base.low3 == 100 (rsp/r12) always needs a SIB byte, and any
                // indexed form goes through SIB too.
                let (mode, disp) = Self::disp_mode(base, mem.disp);
                self.modrm = Some(m | mode << 6 | 0b100);
                let (idx3, scale_bits) = match index {
                    None => (0b100, 0),
                    Some((i, s)) => {
                        if i.needs_ext() {
                            self.rex_x = true;
                        }
                        (i.low3(), s.trailing_zeros() as u8)
                    }
                };
                self.sib = Some(scale_bits << 6 | idx3 << 3 | base.low3());
                if base.needs_ext() {
                    self.rex_b = true;
                }
                self.disp.extend_from_slice(&disp);
            }
            (None, Some((index, scale))) => {
                // Index without base: SIB with base=101, mod=00, disp32.
                self.modrm = Some(m | 0b100);
                if index.needs_ext() {
                    self.rex_x = true;
                }
                self.sib = Some((scale.trailing_zeros() as u8) << 6 | index.low3() << 3 | 0b101);
                self.disp.extend_from_slice(&mem.disp.to_le_bytes());
            }
        }
        self
    }

    /// Pick the shortest mod encoding for `[base + disp]`.
    fn disp_mode(base: Reg, disp: i32) -> (u8, Vec<u8>) {
        // base.low3 == 101 (rbp/r13) cannot use mod=00.
        if disp == 0 && base.low3() != 0b101 {
            (0b00, Vec::new())
        } else if (-128..=127).contains(&disp) {
            (0b01, vec![disp as i8 as u8])
        } else {
            (0b10, disp.to_le_bytes().to_vec())
        }
    }

    fn rm(&mut self, rm: Rm) -> &mut Enc {
        match rm {
            Rm::Reg(r) => self.rm_reg(r),
            Rm::Mem(m) => self.rm_mem(m),
        }
    }

    fn imm8(&mut self, v: i8) -> &mut Enc {
        self.imm.push(v as u8);
        self
    }

    fn imm32(&mut self, v: i32) -> &mut Enc {
        self.imm.extend_from_slice(&v.to_le_bytes());
        self
    }

    fn imm64(&mut self, v: u64) -> &mut Enc {
        self.imm.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Force a REX prefix when accessing the low byte of rsp/rbp/rsi/rdi.
    fn byte_reg(&mut self, r: Reg, width: Width) -> &mut Enc {
        if width == Width::B1 && (4..8).contains(&r.encoding()) {
            self.rex_force = true;
        }
        self
    }

    fn finish(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(15);
        let rex = 0x40u8
            | (self.rex_w as u8) << 3
            | (self.rex_r as u8) << 2
            | (self.rex_x as u8) << 1
            | self.rex_b as u8;
        if rex != 0x40 || self.rex_force {
            out.push(rex);
        }
        out.extend_from_slice(&self.opcode);
        if let Some(m) = self.modrm {
            out.push(m);
        }
        if let Some(s) = self.sib {
            out.push(s);
        }
        out.extend_from_slice(&self.disp);
        out.extend_from_slice(&self.imm);
        out
    }
}

fn alu_opcode_rm_dir(op: AluOp, width: Width) -> u8 {
    // "reg <- reg op r/m" direction (RM).
    let base = match op {
        AluOp::Add => 0x02,
        AluOp::Or => 0x0A,
        AluOp::And => 0x22,
        AluOp::Sub => 0x2A,
        AluOp::Xor => 0x32,
        AluOp::Cmp => 0x3A,
        AluOp::Test => 0x84, // test has only MR form; operands commute
    };
    if width == Width::B1 {
        base
    } else {
        base | 0x01
    }
}

fn alu_opcode_mr_dir(op: AluOp, width: Width) -> u8 {
    // "r/m <- r/m op reg" direction (MR).
    let base = match op {
        AluOp::Add => 0x00,
        AluOp::Or => 0x08,
        AluOp::And => 0x20,
        AluOp::Sub => 0x28,
        AluOp::Xor => 0x30,
        AluOp::Cmp => 0x38,
        AluOp::Test => 0x84,
    };
    if width == Width::B1 {
        base
    } else {
        base | 0x01
    }
}

/// Encode one instruction to machine code.
///
/// # Errors
///
/// Returns [`EncodeError`] if an immediate is out of range for the operand
/// width or the form is not encodable.
pub fn encode(inst: &Inst) -> Result<Vec<u8>, EncodeError> {
    let mut e = Enc::new();
    match *inst {
        Inst::MovRRm { dst, src, width } => {
            e.w(width)
                .op(&[if width == Width::B1 { 0x8A } else { 0x8B }])
                .byte_reg(dst, width)
                .reg_field(dst.low3(), dst.needs_ext())
                .rm(src);
            if let Rm::Reg(r) = src {
                e.byte_reg(r, width);
            }
        }
        Inst::MovRmR { dst, src, width } => {
            e.w(width)
                .op(&[if width == Width::B1 { 0x88 } else { 0x89 }])
                .byte_reg(src, width)
                .reg_field(src.low3(), src.needs_ext())
                .rm(dst);
            if let Rm::Reg(r) = dst {
                e.byte_reg(r, width);
            }
        }
        Inst::MovRI { dst, imm } => {
            e.rex_w = true;
            if dst.needs_ext() {
                e.rex_b = true;
            }
            e.op(&[0xB8 + dst.low3()]).imm64(imm);
        }
        Inst::MovRmI { dst, imm, width } => match width {
            Width::B1 => {
                if !(-128..=127).contains(&imm) {
                    return Err(EncodeError::ImmOutOfRange {
                        imm: imm as i64,
                        width,
                    });
                }
                e.op(&[0xC6]).reg_field(0, false).rm(dst).imm8(imm as i8);
                if let Rm::Reg(r) = dst {
                    e.byte_reg(r, width);
                }
            }
            _ => {
                e.w(width)
                    .op(&[0xC7])
                    .reg_field(0, false)
                    .rm(dst)
                    .imm32(imm);
            }
        },
        Inst::Movzx {
            dst,
            src,
            src_width,
        } => {
            if src_width != Width::B1 {
                return Err(EncodeError::UnsupportedForm("movzx from non-byte source"));
            }
            e.w(Width::B8)
                .op(&[0x0F, 0xB6])
                .reg_field(dst.low3(), dst.needs_ext())
                .rm(src);
            if let Rm::Reg(r) = src {
                e.byte_reg(r, Width::B1);
            }
        }
        Inst::Lea { dst, mem } => {
            e.w(Width::B8)
                .op(&[0x8D])
                .reg_field(dst.low3(), dst.needs_ext())
                .rm_mem(mem);
        }
        Inst::AluRRm {
            op,
            dst,
            src,
            width,
        } => {
            e.w(width)
                .op(&[alu_opcode_rm_dir(op, width)])
                .byte_reg(dst, width)
                .reg_field(dst.low3(), dst.needs_ext())
                .rm(src);
            if let Rm::Reg(r) = src {
                e.byte_reg(r, width);
            }
        }
        Inst::AluRmR {
            op,
            dst,
            src,
            width,
        } => {
            e.w(width)
                .op(&[alu_opcode_mr_dir(op, width)])
                .byte_reg(src, width)
                .reg_field(src.low3(), src.needs_ext())
                .rm(dst);
            if let Rm::Reg(r) = dst {
                e.byte_reg(r, width);
            }
        }
        Inst::AluRmI {
            op,
            dst,
            imm,
            width,
        } => match (op, width) {
            (AluOp::Test, Width::B1) => {
                if !(-128..=127).contains(&imm) {
                    return Err(EncodeError::ImmOutOfRange {
                        imm: imm as i64,
                        width,
                    });
                }
                e.op(&[0xF6]).reg_field(0, false).rm(dst).imm8(imm as i8);
            }
            (AluOp::Test, _) => {
                e.w(width)
                    .op(&[0xF7])
                    .reg_field(0, false)
                    .rm(dst)
                    .imm32(imm);
            }
            (_, Width::B1) => {
                if !(-128..=127).contains(&imm) {
                    return Err(EncodeError::ImmOutOfRange {
                        imm: imm as i64,
                        width,
                    });
                }
                e.op(&[0x80])
                    .reg_field(op.ext(), false)
                    .rm(dst)
                    .imm8(imm as i8);
                if let Rm::Reg(r) = dst {
                    e.byte_reg(r, width);
                }
            }
            _ => {
                e.w(width)
                    .op(&[0x81])
                    .reg_field(op.ext(), false)
                    .rm(dst)
                    .imm32(imm);
            }
        },
        Inst::ShiftRI { op, dst, amount } => {
            e.w(Width::B8)
                .op(&[0xC1])
                .reg_field(op.ext(), false)
                .rm_reg(dst)
                .imm8(amount as i8);
        }
        Inst::Neg(r) => {
            e.w(Width::B8).op(&[0xF7]).reg_field(3, false).rm_reg(r);
        }
        Inst::Not(r) => {
            e.w(Width::B8).op(&[0xF7]).reg_field(2, false).rm_reg(r);
        }
        Inst::Imul { dst, src } => {
            e.w(Width::B8)
                .op(&[0x0F, 0xAF])
                .reg_field(dst.low3(), dst.needs_ext())
                .rm(src);
        }
        Inst::Cmov { cond, dst, src } => {
            e.w(Width::B8)
                .op(&[0x0F, 0x40 + cond.encoding()])
                .reg_field(dst.low3(), dst.needs_ext())
                .rm(src);
        }
        Inst::Xchg(a, b) => {
            e.w(Width::B8)
                .op(&[0x87])
                .reg_field(a.low3(), a.needs_ext())
                .rm_reg(b);
        }
        Inst::Push(r) => {
            if r.needs_ext() {
                e.rex_b = true;
            }
            e.op(&[0x50 + r.low3()]);
        }
        Inst::Pop(r) => {
            if r.needs_ext() {
                e.rex_b = true;
            }
            e.op(&[0x58 + r.low3()]);
        }
        Inst::CallRel(rel) => {
            e.op(&[0xE8]).imm32(rel);
        }
        Inst::CallRm(rm) => {
            e.op(&[0xFF]).reg_field(2, false).rm(rm);
        }
        Inst::JmpRel(rel) => {
            e.op(&[0xE9]).imm32(rel);
        }
        Inst::JmpRm(rm) => {
            e.op(&[0xFF]).reg_field(4, false).rm(rm);
        }
        Inst::Jcc { cond, rel } => {
            e.op(&[0x0F, 0x80 + cond.encoding()]).imm32(rel);
        }
        Inst::Setcc { cond, dst } => {
            e.op(&[0x0F, 0x90 + cond.encoding()])
                .reg_field(0, false)
                .rm_reg(dst)
                .byte_reg(dst, Width::B1);
        }
        Inst::Ret => {
            e.op(&[0xC3]);
        }
        Inst::Syscall => {
            e.op(&[0x0F, 0x05]);
        }
        Inst::Int3 => {
            e.op(&[0xCC]);
        }
        Inst::Nop => {
            e.op(&[0x90]);
        }
        Inst::Ud2 => {
            e.op(&[0x0F, 0x0B]);
        }
        Inst::Hlt => {
            e.op(&[0xF4]);
        }
        Inst::Cpuid => {
            e.op(&[0x0F, 0xA2]);
        }
    }
    Ok(e.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, ShiftOp};
    use Reg::*;

    fn enc(i: Inst) -> Vec<u8> {
        encode(&i).expect("encodable")
    }

    #[test]
    fn mov_reg_reg() {
        // mov rax, rbx => REX.W 8B C3  (RM direction)
        assert_eq!(
            enc(Inst::MovRRm {
                dst: Rax,
                src: Rm::Reg(Rbx),
                width: Width::B8
            }),
            vec![0x48, 0x8B, 0xC3]
        );
        // mov r15, rax => REX.WR 8B F8
        assert_eq!(
            enc(Inst::MovRRm {
                dst: R15,
                src: Rm::Reg(Rax),
                width: Width::B8
            }),
            vec![0x4C, 0x8B, 0xF8]
        );
    }

    #[test]
    fn mov_load_store() {
        // mov rax, [rbx] => 48 8B 03
        assert_eq!(
            enc(Inst::MovRRm {
                dst: Rax,
                src: Rm::Mem(Mem::base(Rbx)),
                width: Width::B8
            }),
            vec![0x48, 0x8B, 0x03]
        );
        // mov [rbp], rax needs disp8=0: 48 89 45 00
        assert_eq!(
            enc(Inst::MovRmR {
                dst: Rm::Mem(Mem::base(Rbp)),
                src: Rax,
                width: Width::B8
            }),
            vec![0x48, 0x89, 0x45, 0x00]
        );
        // mov [rsp], rax needs SIB: 48 89 04 24
        assert_eq!(
            enc(Inst::MovRmR {
                dst: Rm::Mem(Mem::base(Rsp)),
                src: Rax,
                width: Width::B8
            }),
            vec![0x48, 0x89, 0x04, 0x24]
        );
        // r13 behaves like rbp (low3 = 101): mov rax, [r13] => 49 8B 45 00
        assert_eq!(
            enc(Inst::MovRRm {
                dst: Rax,
                src: Rm::Mem(Mem::base(R13)),
                width: Width::B8
            }),
            vec![0x49, 0x8B, 0x45, 0x00]
        );
        // r12 behaves like rsp: mov rax, [r12] => 49 8B 04 24
        assert_eq!(
            enc(Inst::MovRRm {
                dst: Rax,
                src: Rm::Mem(Mem::base(R12)),
                width: Width::B8
            }),
            vec![0x49, 0x8B, 0x04, 0x24]
        );
    }

    #[test]
    fn rip_relative() {
        // mov rax, [rip+0x100] => 48 8B 05 00 01 00 00
        assert_eq!(
            enc(Inst::MovRRm {
                dst: Rax,
                src: Rm::Mem(Mem::rip(0x100)),
                width: Width::B8
            }),
            vec![0x48, 0x8B, 0x05, 0x00, 0x01, 0x00, 0x00]
        );
    }

    #[test]
    fn sib_index() {
        // mov rax, [rbx + rcx*8 + 0x10] => 48 8B 44 CB 10
        assert_eq!(
            enc(Inst::MovRRm {
                dst: Rax,
                src: Rm::Mem(Mem::base_index(Rbx, Rcx, 8, 0x10)),
                width: Width::B8
            }),
            vec![0x48, 0x8B, 0x44, 0xCB, 0x10]
        );
    }

    #[test]
    fn movabs() {
        let bytes = enc(Inst::MovRI {
            dst: Rdi,
            imm: 0x1122_3344_5566_7788,
        });
        assert_eq!(bytes[0], 0x48);
        assert_eq!(bytes[1], 0xBF);
        assert_eq!(&bytes[2..], 0x1122_3344_5566_7788u64.to_le_bytes());
    }

    #[test]
    fn push_pop() {
        assert_eq!(enc(Inst::Push(Rbp)), vec![0x55]);
        assert_eq!(enc(Inst::Push(R12)), vec![0x41, 0x54]);
        assert_eq!(enc(Inst::Pop(Rbp)), vec![0x5D]);
    }

    #[test]
    fn control_flow() {
        assert_eq!(enc(Inst::CallRel(0x10)), vec![0xE8, 0x10, 0, 0, 0]);
        assert_eq!(enc(Inst::JmpRel(-5)), vec![0xE9, 0xFB, 0xFF, 0xFF, 0xFF]);
        assert_eq!(
            enc(Inst::Jcc {
                cond: Cond::E,
                rel: 8
            }),
            vec![0x0F, 0x84, 0x08, 0, 0, 0]
        );
        assert_eq!(enc(Inst::Ret), vec![0xC3]);
        assert_eq!(enc(Inst::Syscall), vec![0x0F, 0x05]);
    }

    #[test]
    fn alu_imm() {
        // cmp rax, 0 => 48 81 F8 00000000 (or 83 short form; we always use 81)
        assert_eq!(
            enc(Inst::AluRmI {
                op: AluOp::Cmp,
                dst: Rm::Reg(Rax),
                imm: 0,
                width: Width::B8
            }),
            vec![0x48, 0x81, 0xF8, 0, 0, 0, 0]
        );
        // xor rax, rax MR form => 48 31 C0
        assert_eq!(
            enc(Inst::AluRmR {
                op: AluOp::Xor,
                dst: Rm::Reg(Rax),
                src: Rax,
                width: Width::B8
            }),
            vec![0x48, 0x31, 0xC0]
        );
    }

    #[test]
    fn shifts() {
        // shl rax, 3 => 48 C1 E0 03
        assert_eq!(
            enc(Inst::ShiftRI {
                op: ShiftOp::Shl,
                dst: Rax,
                amount: 3
            }),
            vec![0x48, 0xC1, 0xE0, 0x03]
        );
    }

    #[test]
    fn byte_ops_force_rex_for_sil() {
        // mov sil, al must carry a bare REX prefix.
        let b = enc(Inst::MovRmR {
            dst: Rm::Reg(Rsi),
            src: Rax,
            width: Width::B1,
        });
        assert_eq!(b, vec![0x40, 0x88, 0xC6]);
    }

    #[test]
    fn imm_range_checked() {
        let err = encode(&Inst::MovRmI {
            dst: Rm::Reg(Rax),
            imm: 300,
            width: Width::B1,
        });
        assert!(matches!(err, Err(EncodeError::ImmOutOfRange { .. })));
    }

    #[test]
    fn movzx_dword_rejected() {
        let err = encode(&Inst::Movzx {
            dst: Rax,
            src: Rm::Reg(Rbx),
            src_width: Width::B4,
        });
        assert!(matches!(err, Err(EncodeError::UnsupportedForm(_))));
    }
}
