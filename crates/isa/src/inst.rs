//! Instruction and operand model for the x86-64 subset.

use crate::Reg;
use std::fmt;

/// Operand width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 8-bit (`byte`).
    B1,
    /// 32-bit (`dword`). Writes to a 32-bit register zero the upper half.
    B4,
    /// 64-bit (`qword`).
    B8,
}

impl Width {
    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            Width::B1 => 1,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// Mask covering the width (e.g. `0xFFFF_FFFF` for [`Width::B4`]).
    #[inline]
    pub fn mask(self) -> u64 {
        match self {
            Width::B1 => 0xFF,
            Width::B4 => 0xFFFF_FFFF,
            Width::B8 => u64::MAX,
        }
    }

    /// Sign bit position for the width.
    #[inline]
    pub fn sign_bit(self) -> u64 {
        match self {
            Width::B1 => 1 << 7,
            Width::B4 => 1 << 31,
            Width::B8 => 1 << 63,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Width::B1 => "byte",
            Width::B4 => "dword",
            Width::B8 => "qword",
        })
    }
}

/// A memory operand: `[base + index*scale + disp]` or `[rip + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register and scale (1, 2, 4 or 8), if any.
    pub index: Option<(Reg, u8)>,
    /// Signed 32-bit displacement.
    pub disp: i32,
    /// RIP-relative addressing (`[rip + disp]`); excludes base/index.
    pub rip: bool,
}

impl Mem {
    /// `[base]`
    pub fn base(base: Reg) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp: 0,
            rip: false,
        }
    }

    /// `[base + disp]`
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp,
            rip: false,
        }
    }

    /// `[base + index*scale + disp]`
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8, or if `index` is `rsp`
    /// (not encodable as an index register).
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i32) -> Mem {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "invalid SIB scale {scale}");
        assert!(index != Reg::Rsp, "rsp cannot be an index register");
        Mem {
            base: Some(base),
            index: Some((index, scale)),
            disp,
            rip: false,
        }
    }

    /// `[rip + disp]` — displacement is relative to the *end* of the
    /// containing instruction.
    pub fn rip(disp: i32) -> Mem {
        Mem {
            base: None,
            index: None,
            disp,
            rip: true,
        }
    }

    /// `[disp]` — absolute 32-bit address (encoded via SIB with no base).
    pub fn abs(disp: i32) -> Mem {
        Mem {
            base: None,
            index: None,
            disp,
            rip: false,
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if self.rip {
            write!(f, "rip")?;
            wrote = true;
        }
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{i}*{s}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp < 0 {
                    write!(f, " - {:#x}", -(self.disp as i64))?;
                } else {
                    write!(f, " + {:#x}", self.disp)?;
                }
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// ALU operation selector for the common two-operand arithmetic group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `add`
    Add,
    /// `or`
    Or,
    /// `and`
    And,
    /// `sub`
    Sub,
    /// `xor`
    Xor,
    /// `cmp` — like `sub` but discards the result.
    Cmp,
    /// `test` — like `and` but discards the result.
    Test,
}

impl AluOp {
    /// The `/digit` ModRM reg-field extension for the `0x81` imm form.
    pub(crate) fn ext(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Or => 1,
            AluOp::And => 4,
            AluOp::Sub => 5,
            AluOp::Xor => 6,
            AluOp::Cmp => 7,
            AluOp::Test => 0, // test uses opcode 0xF7 /0
        }
    }

    /// Whether the destination is written (false for `cmp`/`test`).
    #[inline]
    pub fn writes_dst(self) -> bool {
        !matches!(self, AluOp::Cmp | AluOp::Test)
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Sub => "sub",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
            AluOp::Test => "test",
        }
    }
}

/// Shift operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
}

impl ShiftOp {
    pub(crate) fn ext(self) -> u8 {
        match self {
            ShiftOp::Shl => 4,
            ShiftOp::Shr => 5,
            ShiftOp::Sar => 7,
        }
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

/// Condition code for `jcc`/`setcc`, with hardware encoding as discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow.
    O = 0x0,
    /// Not overflow.
    No = 0x1,
    /// Below (unsigned <, CF=1).
    B = 0x2,
    /// Above or equal (unsigned >=).
    Ae = 0x3,
    /// Equal (ZF=1).
    E = 0x4,
    /// Not equal.
    Ne = 0x5,
    /// Below or equal (unsigned <=).
    Be = 0x6,
    /// Above (unsigned >).
    A = 0x7,
    /// Sign (SF=1).
    S = 0x8,
    /// Not sign.
    Ns = 0x9,
    /// Less (signed <).
    L = 0xC,
    /// Greater or equal (signed >=).
    Ge = 0xD,
    /// Less or equal (signed <=).
    Le = 0xE,
    /// Greater (signed >).
    G = 0xF,
}

impl Cond {
    /// All supported condition codes.
    pub const ALL: [Cond; 14] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// Hardware encoding nibble.
    #[inline]
    pub fn encoding(self) -> u8 {
        self as u8
    }

    /// Decode from the hardware encoding nibble, if supported.
    pub fn from_encoding(enc: u8) -> Option<Cond> {
        Cond::ALL.into_iter().find(|c| c.encoding() == enc)
    }

    /// The logically inverted condition.
    pub fn invert(self) -> Cond {
        // Conditions come in even/odd pairs.
        Cond::from_encoding(self.encoding() ^ 1).expect("paired condition")
    }

    /// Mnemonic suffix (`e` for `je`, etc.).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::O => "o",
            Cond::No => "no",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }
}

/// A register-or-memory operand (the `r/m` slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rm {
    /// Register operand.
    Reg(Reg),
    /// Memory operand.
    Mem(Mem),
}

impl From<Reg> for Rm {
    fn from(r: Reg) -> Rm {
        Rm::Reg(r)
    }
}

impl From<Mem> for Rm {
    fn from(m: Mem) -> Rm {
        Rm::Mem(m)
    }
}

impl fmt::Display for Rm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rm::Reg(r) => write!(f, "{r}"),
            Rm::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// A decoded (or to-be-encoded) instruction of the supported subset.
///
/// The subset covers everything the synthetic targets and the discovery
/// pipeline need: data movement, the ALU group, stack ops, control flow,
/// `syscall`, and a few system opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
// Field names follow x86 conventions (`dst`, `src`, `width`, `imm`, …) and
// are described in each variant's doc comment.
#[allow(missing_docs)]
pub enum Inst {
    /// `mov reg, r/m` (load or register move).
    MovRRm { dst: Reg, src: Rm, width: Width },
    /// `mov r/m, reg` (store or register move).
    MovRmR { dst: Rm, src: Reg, width: Width },
    /// `mov r64, imm64` (`movabs`).
    MovRI { dst: Reg, imm: u64 },
    /// `mov r/m, imm32` (sign-extended for 64-bit width).
    MovRmI { dst: Rm, imm: i32, width: Width },
    /// `movzx r64, byte/dword r/m` — zero-extending load.
    Movzx { dst: Reg, src: Rm, src_width: Width },
    /// `lea reg, [mem]`.
    Lea { dst: Reg, mem: Mem },
    /// ALU op `op reg, r/m` (result in register; RM direction).
    AluRRm {
        op: AluOp,
        dst: Reg,
        src: Rm,
        width: Width,
    },
    /// ALU op `op r/m, reg` (result in r/m; MR direction).
    AluRmR {
        op: AluOp,
        dst: Rm,
        src: Reg,
        width: Width,
    },
    /// ALU op `op r/m, imm32`.
    AluRmI {
        op: AluOp,
        dst: Rm,
        imm: i32,
        width: Width,
    },
    /// Shift by immediate.
    ShiftRI { op: ShiftOp, dst: Reg, amount: u8 },
    /// `neg r64` — two's-complement negation.
    Neg(Reg),
    /// `not r64` — bitwise complement.
    Not(Reg),
    /// `imul r64, r/m64` — signed multiply (truncated).
    Imul { dst: Reg, src: Rm },
    /// `cmovcc r64, r/m64` — conditional move.
    Cmov { cond: Cond, dst: Reg, src: Rm },
    /// `xchg r64, r64` — register swap.
    Xchg(Reg, Reg),
    /// `push r64`.
    Push(Reg),
    /// `pop r64`.
    Pop(Reg),
    /// `call rel32` — target is relative to the next instruction.
    CallRel(i32),
    /// `call r/m64`.
    CallRm(Rm),
    /// `jmp rel32`.
    JmpRel(i32),
    /// `jmp r/m64`.
    JmpRm(Rm),
    /// `jcc rel32`.
    Jcc { cond: Cond, rel: i32 },
    /// `setcc r8` (low byte of a register).
    Setcc { cond: Cond, dst: Reg },
    /// `ret`.
    Ret,
    /// `syscall` — traps into the OS personality.
    Syscall,
    /// `int3` breakpoint.
    Int3,
    /// `nop`.
    Nop,
    /// `ud2` — undefined instruction (guaranteed illegal-opcode fault).
    Ud2,
    /// `hlt` — used by targets as a "spin forever / yield" marker.
    Hlt,
    /// `cpuid` — repurposed as a hypercall marker for test monitors.
    Cpuid,
}

impl Inst {
    /// Whether this instruction terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::CallRel(_)
                | Inst::CallRm(_)
                | Inst::JmpRel(_)
                | Inst::JmpRm(_)
                | Inst::Jcc { .. }
                | Inst::Ret
                | Inst::Ud2
                | Inst::Hlt
        )
    }

    /// The memory operand this instruction dereferences, if any.
    ///
    /// `lea` computes an address without dereferencing, so it returns `None`.
    pub fn mem_operand(&self) -> Option<Mem> {
        let rm = match self {
            Inst::MovRRm { src, .. } => Some(*src),
            Inst::MovRmR { dst, .. } => Some(*dst),
            Inst::MovRmI { dst, .. } => Some(*dst),
            Inst::Movzx { src, .. } => Some(*src),
            Inst::AluRRm { src, .. } => Some(*src),
            Inst::AluRmR { dst, .. } => Some(*dst),
            Inst::AluRmI { dst, .. } => Some(*dst),
            Inst::Imul { src, .. } | Inst::Cmov { src, .. } => Some(*src),
            Inst::CallRm(rm) | Inst::JmpRm(rm) => Some(*rm),
            _ => None,
        };
        match rm {
            Some(Rm::Mem(m)) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::MovRRm { dst, src, width } => write!(f, "mov {dst}, {width} {src}"),
            Inst::MovRmR { dst, src, width } => write!(f, "mov {width} {dst}, {src}"),
            Inst::MovRI { dst, imm } => write!(f, "movabs {dst}, {imm:#x}"),
            Inst::MovRmI { dst, imm, width } => write!(f, "mov {width} {dst}, {imm:#x}"),
            Inst::Movzx {
                dst,
                src,
                src_width,
            } => write!(f, "movzx {dst}, {src_width} {src}"),
            Inst::Lea { dst, mem } => write!(f, "lea {dst}, {mem}"),
            Inst::AluRRm {
                op,
                dst,
                src,
                width,
            } => {
                write!(f, "{} {dst}, {width} {src}", op.mnemonic())
            }
            Inst::AluRmR {
                op,
                dst,
                src,
                width,
            } => {
                write!(f, "{} {width} {dst}, {src}", op.mnemonic())
            }
            Inst::AluRmI {
                op,
                dst,
                imm,
                width,
            } => {
                write!(f, "{} {width} {dst}, {imm:#x}", op.mnemonic())
            }
            Inst::ShiftRI { op, dst, amount } => write!(f, "{} {dst}, {amount}", op.mnemonic()),
            Inst::Neg(r) => write!(f, "neg {r}"),
            Inst::Not(r) => write!(f, "not {r}"),
            Inst::Imul { dst, src } => write!(f, "imul {dst}, {src}"),
            Inst::Cmov { cond, dst, src } => write!(f, "cmov{} {dst}, {src}", cond.suffix()),
            Inst::Xchg(a, b) => write!(f, "xchg {a}, {b}"),
            Inst::Push(r) => write!(f, "push {r}"),
            Inst::Pop(r) => write!(f, "pop {r}"),
            Inst::CallRel(rel) => write!(f, "call {rel:+#x}"),
            Inst::CallRm(rm) => write!(f, "call {rm}"),
            Inst::JmpRel(rel) => write!(f, "jmp {rel:+#x}"),
            Inst::JmpRm(rm) => write!(f, "jmp {rm}"),
            Inst::Jcc { cond, rel } => write!(f, "j{} {rel:+#x}", cond.suffix()),
            Inst::Setcc { cond, dst } => write!(f, "set{} {dst}b", cond.suffix()),
            Inst::Ret => write!(f, "ret"),
            Inst::Syscall => write!(f, "syscall"),
            Inst::Int3 => write!(f, "int3"),
            Inst::Nop => write!(f, "nop"),
            Inst::Ud2 => write!(f, "ud2"),
            Inst::Hlt => write!(f, "hlt"),
            Inst::Cpuid => write!(f, "cpuid"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_invert_pairs() {
        assert_eq!(Cond::E.invert(), Cond::Ne);
        assert_eq!(Cond::Ne.invert(), Cond::E);
        assert_eq!(Cond::L.invert(), Cond::Ge);
        assert_eq!(Cond::A.invert(), Cond::Be);
        for c in Cond::ALL {
            assert_eq!(c.invert().invert(), c);
        }
    }

    #[test]
    fn width_props() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B4.mask(), 0xFFFF_FFFF);
        assert_eq!(Width::B8.sign_bit(), 1 << 63);
    }

    #[test]
    fn mem_display() {
        let m = Mem::base_index(Reg::Rax, Reg::Rcx, 8, 0x10);
        assert_eq!(m.to_string(), "[rax + rcx*8 + 0x10]");
        assert_eq!(Mem::rip(-4).to_string(), "[rip - 0x4]");
    }

    #[test]
    #[should_panic(expected = "invalid SIB scale")]
    fn bad_scale_panics() {
        let _ = Mem::base_index(Reg::Rax, Reg::Rcx, 3, 0);
    }

    #[test]
    fn mem_operand_extraction() {
        let i = Inst::MovRRm {
            dst: Reg::Rax,
            src: Rm::Mem(Mem::base(Reg::Rdi)),
            width: Width::B8,
        };
        assert_eq!(i.mem_operand(), Some(Mem::base(Reg::Rdi)));
        let lea = Inst::Lea {
            dst: Reg::Rax,
            mem: Mem::base(Reg::Rdi),
        };
        assert_eq!(lea.mem_operand(), None);
        let rr = Inst::MovRRm {
            dst: Reg::Rax,
            src: Rm::Reg(Reg::Rbx),
            width: Width::B8,
        };
        assert_eq!(rr.mem_operand(), None);
    }

    #[test]
    fn terminators() {
        assert!(Inst::Ret.is_terminator());
        assert!(Inst::Jcc {
            cond: Cond::E,
            rel: 0
        }
        .is_terminator());
        assert!(!Inst::Nop.is_terminator());
        assert!(!Inst::Syscall.is_terminator());
    }
}
