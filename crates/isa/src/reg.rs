//! General-purpose register model for the x86-64 subset.

use std::fmt;

/// A 64-bit general-purpose register.
///
/// The discriminant is the hardware encoding (0–15) used in ModRM/SIB
/// bytes and in the `REX.B`/`REX.R`/`REX.X` extension bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; syscall number / return value.
    Rax = 0,
    /// Counter; 4th syscall argument (`r10` in the kernel ABI is used
    /// instead at syscall boundaries, but `rcx` is clobbered by `syscall`).
    Rcx = 1,
    /// 3rd function / syscall argument.
    Rdx = 2,
    /// Callee-saved.
    Rbx = 3,
    /// Stack pointer.
    Rsp = 4,
    /// Frame pointer (callee-saved).
    Rbp = 5,
    /// 2nd function / syscall argument.
    Rsi = 6,
    /// 1st function / syscall argument.
    Rdi = 7,
    /// 5th function argument.
    R8 = 8,
    /// 6th function argument.
    R9 = 9,
    /// 4th syscall argument in the kernel ABI.
    R10 = 10,
    /// Scratch.
    R11 = 11,
    /// Callee-saved.
    R12 = 12,
    /// Callee-saved.
    R13 = 13,
    /// Callee-saved.
    R14 = 14,
    /// Callee-saved.
    R15 = 15,
}

impl Reg {
    /// All sixteen registers in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The hardware encoding (0–15).
    #[inline]
    pub fn encoding(self) -> u8 {
        self as u8
    }

    /// The low three bits of the encoding, as placed in ModRM/SIB fields.
    #[inline]
    pub fn low3(self) -> u8 {
        self.encoding() & 0b111
    }

    /// Whether the register needs a REX extension bit (encodings 8–15).
    #[inline]
    pub fn needs_ext(self) -> bool {
        self.encoding() >= 8
    }

    /// Decode a register from its hardware encoding.
    ///
    /// # Panics
    ///
    /// Panics if `enc > 15`.
    #[inline]
    pub fn from_encoding(enc: u8) -> Reg {
        Reg::ALL[enc as usize]
    }

    /// The conventional AT&T-free name (e.g. `rax`).
    pub fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_encoding(r.encoding()), r);
        }
    }

    #[test]
    fn low3_and_ext() {
        assert_eq!(Reg::Rax.low3(), 0);
        assert_eq!(Reg::R8.low3(), 0);
        assert!(!Reg::Rdi.needs_ext());
        assert!(Reg::R8.needs_ext());
        assert!(Reg::R15.needs_ext());
        assert_eq!(Reg::R13.low3(), 0b101);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::Rsp.to_string(), "rsp");
        assert_eq!(Reg::R10.to_string(), "r10");
    }
}
