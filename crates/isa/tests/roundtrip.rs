//! Property tests: every encodable instruction decodes back to itself.

use cr_isa::{decode, encode, AluOp, Cond, Inst, Mem, Reg, Rm, ShiftOp, Width};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::from_encoding)
}

fn arb_index_reg() -> impl Strategy<Value = Reg> {
    // rsp is not encodable as an index register.
    arb_reg().prop_filter("rsp cannot be index", |r| *r != Reg::Rsp)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B1), Just(Width::B4), Just(Width::B8)]
}

fn arb_mem() -> impl Strategy<Value = Mem> {
    prop_oneof![
        // [base + disp]
        (arb_reg(), any::<i32>()).prop_map(|(b, d)| Mem::base_disp(b, d)),
        // [base + index*scale + disp]
        (
            arb_reg(),
            arb_index_reg(),
            prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
            any::<i32>()
        )
            .prop_map(|(b, i, s, d)| Mem::base_index(b, i, s, d)),
        // [rip + disp]
        any::<i32>().prop_map(Mem::rip),
        // [disp32]
        any::<i32>().prop_map(Mem::abs),
    ]
}

fn arb_rm() -> impl Strategy<Value = Rm> {
    prop_oneof![arb_reg().prop_map(Rm::Reg), arb_mem().prop_map(Rm::Mem)]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::Cmp),
        Just(AluOp::Test),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    proptest::sample::select(&Cond::ALL[..])
}

/// Immediates that fit the width's encodable immediate field.
fn imm_for(width: Width) -> BoxedStrategy<i32> {
    match width {
        Width::B1 => (-128i32..=127).boxed(),
        _ => any::<i32>().boxed(),
    }
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), arb_rm(), arb_width()).prop_map(|(dst, src, width)| Inst::MovRRm {
            dst,
            src,
            width
        }),
        (arb_rm(), arb_reg(), arb_width()).prop_map(|(dst, src, width)| Inst::MovRmR {
            dst,
            src,
            width
        }),
        (arb_reg(), any::<u64>()).prop_map(|(dst, imm)| Inst::MovRI { dst, imm }),
        (arb_rm(), arb_width()).prop_flat_map(|(dst, width)| {
            imm_for(width).prop_map(move |imm| Inst::MovRmI { dst, imm, width })
        }),
        (arb_reg(), arb_rm()).prop_map(|(dst, src)| Inst::Movzx {
            dst,
            src,
            src_width: Width::B1
        }),
        (arb_reg(), arb_mem()).prop_map(|(dst, mem)| Inst::Lea { dst, mem }),
        (arb_alu(), arb_reg(), arb_rm(), arb_width()).prop_filter_map(
            "test has no RM direction encoding distinct from MR",
            |(op, dst, src, width)| {
                if op == AluOp::Test {
                    None
                } else {
                    Some(Inst::AluRRm {
                        op,
                        dst,
                        src,
                        width,
                    })
                }
            }
        ),
        (arb_alu(), arb_rm(), arb_reg(), arb_width()).prop_map(|(op, dst, src, width)| {
            Inst::AluRmR {
                op,
                dst,
                src,
                width,
            }
        }),
        (arb_alu(), arb_rm(), arb_width()).prop_flat_map(|(op, dst, width)| {
            imm_for(width).prop_map(move |imm| Inst::AluRmI {
                op,
                dst,
                imm,
                width,
            })
        }),
        (
            prop_oneof![Just(ShiftOp::Shl), Just(ShiftOp::Shr), Just(ShiftOp::Sar)],
            arb_reg(),
            0u8..64
        )
            .prop_map(|(op, dst, amount)| Inst::ShiftRI { op, dst, amount }),
        arb_reg().prop_map(Inst::Neg),
        arb_reg().prop_map(Inst::Not),
        (arb_reg(), arb_rm()).prop_map(|(dst, src)| Inst::Imul { dst, src }),
        (arb_cond(), arb_reg(), arb_rm()).prop_map(|(cond, dst, src)| Inst::Cmov {
            cond,
            dst,
            src
        }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::Xchg(a, b)),
        arb_reg().prop_map(Inst::Push),
        arb_reg().prop_map(Inst::Pop),
        any::<i32>().prop_map(Inst::CallRel),
        arb_rm().prop_map(Inst::CallRm),
        any::<i32>().prop_map(Inst::JmpRel),
        arb_rm().prop_map(Inst::JmpRm),
        (arb_cond(), any::<i32>()).prop_map(|(cond, rel)| Inst::Jcc { cond, rel }),
        (arb_cond(), arb_reg()).prop_map(|(cond, dst)| Inst::Setcc { cond, dst }),
        Just(Inst::Ret),
        Just(Inst::Syscall),
        Just(Inst::Int3),
        Just(Inst::Nop),
        Just(Inst::Ud2),
        Just(Inst::Hlt),
        Just(Inst::Cpuid),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let bytes = encode(&inst).expect("generated instructions are encodable");
        prop_assert!(bytes.len() <= 15, "x86 instructions are at most 15 bytes");
        let d = decode(&bytes).expect("own encodings must decode");
        prop_assert_eq!(d.inst, inst);
        prop_assert_eq!(d.len, bytes.len());
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn decoded_length_in_bounds(bytes in proptest::collection::vec(any::<u8>(), 1..16)) {
        if let Ok(d) = decode(&bytes) {
            prop_assert!(d.len >= 1 && d.len <= bytes.len());
        }
    }
}
