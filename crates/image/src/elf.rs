//! Minimal ELF64 writer and parser.
//!
//! The writer produces a well-formed `ET_EXEC` image with `PT_LOAD`
//! segments, a `.symtab`/`.strtab` pair and section headers; the parser
//! reads exactly that (plus reasonable real-world variations). The Linux
//! discovery pipeline consumes these images: the loader maps segments, and
//! the syscall-oracle finder uses the symbol table to label call sites.

use crate::{ImageError, SegPerm};
use std::collections::BTreeMap;

const EI_NIDENT: usize = 16;
const ELFCLASS64: u8 = 2;
const ELFDATA2LSB: u8 = 1;
const ET_EXEC: u16 = 2;
const EM_X86_64: u16 = 62;
const PT_LOAD: u32 = 1;
const SHT_SYMTAB: u32 = 2;
const SHT_STRTAB: u32 = 3;
const SHT_PROGBITS: u32 = 1;

const PF_X: u32 = 1;
const PF_W: u32 = 2;
const PF_R: u32 = 4;

/// One loadable segment of an ELF image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElfSegment {
    /// Virtual address of the first byte.
    pub vaddr: u64,
    /// Raw contents; the memory size may exceed this (BSS-style).
    pub data: Vec<u8>,
    /// In-memory size (>= `data.len()`), the rest is zero-filled.
    pub memsz: u64,
    /// Access permissions.
    pub perm: SegPerm,
}

/// A parsed (or to-be-written) ELF64 executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElfImage {
    /// Entry point virtual address.
    pub entry: u64,
    /// Loadable segments.
    pub segments: Vec<ElfSegment>,
    /// Function/object symbols: name → virtual address.
    pub symbols: BTreeMap<String, u64>,
}

impl ElfImage {
    /// Look up a symbol address.
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not exist; target construction treats a
    /// missing symbol as a build bug.
    pub fn sym(&self, name: &str) -> u64 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("undefined ELF symbol {name:?}"))
    }

    /// Serialize to ELF64 bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        ElfWriter::new(self).write()
    }

    /// Parse an ELF64 executable.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] on malformed headers, wrong class/endianness,
    /// or out-of-bounds references.
    pub fn parse(bytes: &[u8]) -> Result<ElfImage, ImageError> {
        let mut span = cr_trace::span(cr_trace::Stage::Parse, "elf.parse");
        span.set_detail(|| format!("bytes={}", bytes.len()));
        let parsed = parse_elf(bytes);
        span.append_detail(|| format!("ok={}", parsed.is_ok()));
        parsed
    }
}

fn perm_to_pflags(p: SegPerm) -> u32 {
    let mut f = 0;
    if p.r {
        f |= PF_R;
    }
    if p.w {
        f |= PF_W;
    }
    if p.x {
        f |= PF_X;
    }
    f
}

fn pflags_to_perm(f: u32) -> SegPerm {
    SegPerm {
        r: f & PF_R != 0,
        w: f & PF_W != 0,
        x: f & PF_X != 0,
    }
}

struct ElfWriter<'a> {
    img: &'a ElfImage,
}

impl<'a> ElfWriter<'a> {
    fn new(img: &'a ElfImage) -> Self {
        ElfWriter { img }
    }

    fn write(&self) -> Vec<u8> {
        let ehsize = 64usize;
        let phentsize = 56usize;
        let shentsize = 64usize;
        let phnum = self.img.segments.len();

        // Layout: ehdr | phdrs | segment data... | strtab | symtab | shstrtab | shdrs
        let mut out = vec![0; ehsize + phentsize * phnum];

        // Segment raw data, each aligned to 8.
        let mut seg_offsets = Vec::new();
        for seg in &self.img.segments {
            pad8(&mut out);
            seg_offsets.push(out.len());
            out.extend_from_slice(&seg.data);
        }

        // .strtab
        let mut strtab = vec![0u8]; // index 0 = empty name
        let mut name_offsets = Vec::new();
        for name in self.img.symbols.keys() {
            name_offsets.push(strtab.len());
            strtab.extend_from_slice(name.as_bytes());
            strtab.push(0);
        }
        pad8(&mut out);
        let strtab_off = out.len();
        out.extend_from_slice(&strtab);

        // .symtab — Elf64_Sym is 24 bytes; first entry is the null symbol.
        pad8(&mut out);
        let symtab_off = out.len();
        out.extend_from_slice(&[0u8; 24]);
        for ((_, &addr), &noff) in self.img.symbols.iter().zip(&name_offsets) {
            let mut sym = [0u8; 24];
            sym[0..4].copy_from_slice(&(noff as u32).to_le_bytes());
            sym[4] = 0x12; // STB_GLOBAL | STT_FUNC
            sym[6..8].copy_from_slice(&1u16.to_le_bytes()); // st_shndx: arbitrary non-UNDEF
            sym[8..16].copy_from_slice(&addr.to_le_bytes());
            out.extend_from_slice(&sym);
        }
        let symtab_size = out.len() - symtab_off;

        // .shstrtab
        let shnames = ["", ".strtab", ".symtab", ".shstrtab", ".load"];
        let mut shstrtab = Vec::new();
        let mut shname_off = Vec::new();
        for n in shnames {
            shname_off.push(shstrtab.len());
            shstrtab.extend_from_slice(n.as_bytes());
            shstrtab.push(0);
        }
        pad8(&mut out);
        let shstrtab_off = out.len();
        out.extend_from_slice(&shstrtab);

        // Section headers: null, .strtab, .symtab, .shstrtab, one .load per segment.
        pad8(&mut out);
        let shoff = out.len();
        let shnum = 4 + self.img.segments.len();
        let mut shdrs = Vec::with_capacity(shnum * shentsize);
        let mut push_shdr = |name_off: usize,
                             sh_type: u32,
                             off: usize,
                             size: usize,
                             link: u32,
                             entsize: u64,
                             addr: u64| {
            let mut h = [0u8; 64];
            h[0..4].copy_from_slice(&(name_off as u32).to_le_bytes());
            h[4..8].copy_from_slice(&sh_type.to_le_bytes());
            h[16..24].copy_from_slice(&addr.to_le_bytes());
            h[24..32].copy_from_slice(&(off as u64).to_le_bytes());
            h[32..40].copy_from_slice(&(size as u64).to_le_bytes());
            h[40..44].copy_from_slice(&link.to_le_bytes());
            // sh_info for symtab: index of first non-local symbol (1).
            if sh_type == SHT_SYMTAB {
                h[44..48].copy_from_slice(&1u32.to_le_bytes());
            }
            h[56..64].copy_from_slice(&entsize.to_le_bytes());
            shdrs.extend_from_slice(&h);
        };
        push_shdr(shname_off[0], 0, 0, 0, 0, 0, 0); // null
        push_shdr(shname_off[1], SHT_STRTAB, strtab_off, strtab.len(), 0, 0, 0);
        push_shdr(shname_off[2], SHT_SYMTAB, symtab_off, symtab_size, 1, 24, 0);
        push_shdr(
            shname_off[3],
            SHT_STRTAB,
            shstrtab_off,
            shstrtab.len(),
            0,
            0,
            0,
        );
        for (seg, &off) in self.img.segments.iter().zip(&seg_offsets) {
            push_shdr(
                shname_off[4],
                SHT_PROGBITS,
                off,
                seg.data.len(),
                0,
                0,
                seg.vaddr,
            );
        }
        out.extend_from_slice(&shdrs);

        // Program headers.
        for (i, (seg, &off)) in self.img.segments.iter().zip(&seg_offsets).enumerate() {
            let mut ph = [0u8; 56];
            ph[0..4].copy_from_slice(&PT_LOAD.to_le_bytes());
            ph[4..8].copy_from_slice(&perm_to_pflags(seg.perm).to_le_bytes());
            ph[8..16].copy_from_slice(&(off as u64).to_le_bytes());
            ph[16..24].copy_from_slice(&seg.vaddr.to_le_bytes());
            ph[24..32].copy_from_slice(&seg.vaddr.to_le_bytes()); // paddr
            ph[32..40].copy_from_slice(&(seg.data.len() as u64).to_le_bytes());
            ph[40..48].copy_from_slice(&seg.memsz.max(seg.data.len() as u64).to_le_bytes());
            ph[48..56].copy_from_slice(&0x1000u64.to_le_bytes());
            let at = ehsize + i * phentsize;
            out[at..at + 56].copy_from_slice(&ph);
        }

        // ELF header.
        let mut eh = [0u8; 64];
        eh[0..4].copy_from_slice(b"\x7fELF");
        eh[4] = ELFCLASS64;
        eh[5] = ELFDATA2LSB;
        eh[6] = 1; // EV_CURRENT
        eh[16..18].copy_from_slice(&ET_EXEC.to_le_bytes());
        eh[18..20].copy_from_slice(&EM_X86_64.to_le_bytes());
        eh[20..24].copy_from_slice(&1u32.to_le_bytes());
        eh[24..32].copy_from_slice(&self.img.entry.to_le_bytes());
        eh[32..40].copy_from_slice(&(ehsize as u64).to_le_bytes()); // phoff
        eh[40..48].copy_from_slice(&(shoff as u64).to_le_bytes());
        eh[52..54].copy_from_slice(&(ehsize as u16).to_le_bytes());
        eh[54..56].copy_from_slice(&(phentsize as u16).to_le_bytes());
        eh[56..58].copy_from_slice(&(phnum as u16).to_le_bytes());
        eh[58..60].copy_from_slice(&(shentsize as u16).to_le_bytes());
        eh[60..62].copy_from_slice(&(shnum as u16).to_le_bytes());
        eh[62..64].copy_from_slice(&3u16.to_le_bytes()); // shstrndx
        out[..64].copy_from_slice(&eh);
        out
    }
}

/// Upper bound on cumulative segment bytes copied out of one file:
/// corrupt headers must not turn a small input into an OOM amplifier.
const MAX_SEGMENT_BYTES: usize = 64 << 20;

fn rd_u16(b: &[u8], off: usize) -> Result<u16, ImageError> {
    off.checked_add(2)
        .and_then(|end| b.get(off..end))
        .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
        .ok_or(ImageError::Truncated("u16"))
}

fn rd_u32(b: &[u8], off: usize) -> Result<u32, ImageError> {
    off.checked_add(4)
        .and_then(|end| b.get(off..end))
        .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
        .ok_or(ImageError::Truncated("u32"))
}

fn rd_u64(b: &[u8], off: usize) -> Result<u64, ImageError> {
    off.checked_add(8)
        .and_then(|end| b.get(off..end))
        .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
        .ok_or(ImageError::Truncated("u64"))
}

/// `a + b` with offset-overflow mapped to [`ImageError::Malformed`] —
/// corrupt headers routinely carry offsets near `u64::MAX`, which must
/// parse-fail, not trip debug overflow checks.
fn off_add(a: usize, b: usize) -> Result<usize, ImageError> {
    a.checked_add(b)
        .ok_or(ImageError::Malformed("offset overflow"))
}

fn parse_elf(bytes: &[u8]) -> Result<ElfImage, ImageError> {
    if bytes.len() < EI_NIDENT || &bytes[0..4] != b"\x7fELF" {
        return Err(ImageError::BadMagic("ELF"));
    }
    if bytes[4] != ELFCLASS64 || bytes[5] != ELFDATA2LSB {
        return Err(ImageError::Unsupported(
            "only ELF64 little-endian is supported",
        ));
    }
    let entry = rd_u64(bytes, 24)?;
    let phoff = rd_u64(bytes, 32)? as usize;
    let shoff = rd_u64(bytes, 40)? as usize;
    let phentsize = rd_u16(bytes, 54)? as usize;
    let phnum = rd_u16(bytes, 56)? as usize;
    let shentsize = rd_u16(bytes, 58)? as usize;
    let shnum = rd_u16(bytes, 60)? as usize;

    let mut segments = Vec::new();
    let mut copied = 0usize;
    for i in 0..phnum {
        let at = off_add(phoff, i * phentsize)?;
        let ptype = rd_u32(bytes, at)?;
        if ptype != PT_LOAD {
            continue;
        }
        let flags = rd_u32(bytes, at + 4)?;
        let off = rd_u64(bytes, at + 8)? as usize;
        let vaddr = rd_u64(bytes, at + 16)?;
        let filesz = rd_u64(bytes, at + 32)? as usize;
        let memsz = rd_u64(bytes, at + 40)?;
        copied = off_add(copied, filesz)?;
        if copied > MAX_SEGMENT_BYTES {
            return Err(ImageError::Malformed("segment data exceeds sanity cap"));
        }
        let data = bytes
            .get(off..off_add(off, filesz)?)
            .ok_or(ImageError::Truncated("segment data"))?
            .to_vec();
        segments.push(ElfSegment {
            vaddr,
            data,
            memsz,
            perm: pflags_to_perm(flags),
        });
    }

    // Symbols: find SHT_SYMTAB and its linked strtab.
    let mut symbols = BTreeMap::new();
    for i in 0..shnum {
        let at = off_add(shoff, i * shentsize)?;
        if rd_u32(bytes, at + 4)? != SHT_SYMTAB {
            continue;
        }
        let off = rd_u64(bytes, at + 24)? as usize;
        let size = rd_u64(bytes, at + 32)? as usize;
        let link = rd_u32(bytes, at + 40)? as usize;
        let entsize = rd_u64(bytes, at + 56)? as usize;
        if entsize == 0 {
            return Err(ImageError::Malformed("symtab entsize 0"));
        }
        let str_at = link
            .checked_mul(shentsize)
            .ok_or(ImageError::Malformed("offset overflow"))
            .and_then(|x| off_add(shoff, x))?;
        let str_off = rd_u64(bytes, str_at + 24)? as usize;
        let str_size = rd_u64(bytes, str_at + 32)? as usize;
        let strtab = bytes
            .get(str_off..off_add(str_off, str_size)?)
            .ok_or(ImageError::Truncated("strtab"))?;
        for s in (0..size / entsize).skip(1) {
            let sat = off_add(off, s * entsize)?;
            let name_off = rd_u32(bytes, sat)? as usize;
            let value = rd_u64(bytes, sat + 8)?;
            let name_bytes = strtab
                .get(name_off..)
                .ok_or(ImageError::Malformed("symbol name offset"))?;
            let end = name_bytes
                .iter()
                .position(|&b| b == 0)
                .ok_or(ImageError::Malformed("unterminated symbol name"))?;
            let name = String::from_utf8_lossy(&name_bytes[..end]).into_owned();
            if !name.is_empty() {
                symbols.insert(name, value);
            }
        }
    }

    Ok(ElfImage {
        entry,
        segments,
        symbols,
    })
}

/// Zero-pad to the next 8-byte boundary.
fn pad8(out: &mut Vec<u8>) {
    out.resize(out.len().next_multiple_of(8), 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ElfImage {
        let mut symbols = BTreeMap::new();
        symbols.insert("main".to_string(), 0x40_1000);
        symbols.insert("server_loop".to_string(), 0x40_1040);
        ElfImage {
            entry: 0x40_1000,
            segments: vec![
                ElfSegment {
                    vaddr: 0x40_1000,
                    data: vec![0x90, 0xC3],
                    memsz: 2,
                    perm: SegPerm::RX,
                },
                ElfSegment {
                    vaddr: 0x60_0000,
                    data: vec![1, 2, 3, 4],
                    memsz: 0x2000, // bss tail
                    perm: SegPerm::RW,
                },
            ],
            symbols,
        }
    }

    #[test]
    fn roundtrip() {
        let img = sample();
        let bytes = img.to_bytes();
        let back = ElfImage::parse(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn magic_is_checked() {
        assert!(matches!(
            ElfImage::parse(b"nope"),
            Err(ImageError::BadMagic(_))
        ));
        let mut bytes = sample().to_bytes();
        bytes[4] = 1; // ELFCLASS32
        assert!(matches!(
            ElfImage::parse(&bytes),
            Err(ImageError::Unsupported(_))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes();
        // Chop the file after the program headers: segment data is gone.
        let cut = &bytes[..64 + 56];
        assert!(ElfImage::parse(cut).is_err());
    }

    #[test]
    fn sym_lookup() {
        assert_eq!(sample().sym("main"), 0x40_1000);
    }

    #[test]
    #[should_panic(expected = "undefined ELF symbol")]
    fn missing_sym_panics() {
        sample().sym("no_such_symbol");
    }

    #[test]
    fn bss_memsz_preserved() {
        let img = sample();
        let back = ElfImage::parse(&img.to_bytes()).unwrap();
        assert_eq!(back.segments[1].memsz, 0x2000);
        assert_eq!(back.segments[1].data, vec![1, 2, 3, 4]);
    }
}
