//! # cr-image — binary image formats (ELF64, PE32+)
//!
//! Writers and parsers for the two container formats the discovery
//! framework analyzes:
//!
//! * [`ElfImage`] — Linux server binaries (segments + symbol table).
//! * [`PeImage`] / [`PeBuilder`] — Windows modules with exports, `.pdata`
//!   runtime functions, UNWIND_INFO and C-specific-handler scope tables —
//!   the raw material of the paper's exception-handler discovery strategy.
//!
//! Both sides are implemented from scratch: the synthetic targets in
//! `cr-targets` are *written* with the builders here, and the discovery
//! pipeline in `cr-core` *parses* the resulting bytes, never consuming
//! in-memory ground truth.

mod elf;
mod pe;

pub use elf::{ElfImage, ElfSegment};
pub use pe::{
    FilterRef, Machine, PeBuilder, PeImage, PeSection, RuntimeFunction, ScopeEntry, UnwindInfo,
};

/// Segment/section access permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegPerm {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl SegPerm {
    /// Read-only.
    pub const R: SegPerm = SegPerm {
        r: true,
        w: false,
        x: false,
    };
    /// Read-write.
    pub const RW: SegPerm = SegPerm {
        r: true,
        w: true,
        x: false,
    };
    /// Read-execute.
    pub const RX: SegPerm = SegPerm {
        r: true,
        w: false,
        x: true,
    };
    /// Read-write-execute (used only by tests; targets are W^X).
    pub const RWX: SegPerm = SegPerm {
        r: true,
        w: true,
        x: true,
    };
}

impl std::fmt::Display for SegPerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'r' } else { '-' },
            if self.w { 'w' } else { '-' },
            if self.x { 'x' } else { '-' }
        )
    }
}

/// Errors from image parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageError {
    /// Magic bytes did not match the expected format.
    BadMagic(&'static str),
    /// File ended before the named structure.
    Truncated(&'static str),
    /// Structurally invalid content.
    Malformed(&'static str),
    /// Valid but unsupported variant.
    Unsupported(&'static str),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::BadMagic(what) => write!(f, "bad magic for {what}"),
            ImageError::Truncated(what) => write!(f, "truncated while reading {what}"),
            ImageError::Malformed(what) => write!(f, "malformed {what}"),
            ImageError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for ImageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_display() {
        assert_eq!(SegPerm::RX.to_string(), "r-x");
        assert_eq!(SegPerm::RW.to_string(), "rw-");
        assert_eq!(SegPerm::R.to_string(), "r--");
    }

    #[test]
    fn error_display() {
        assert_eq!(ImageError::BadMagic("ELF").to_string(), "bad magic for ELF");
    }
}
