//! PE32+ writer and parser with SEH metadata.
//!
//! This is the container format the exception-handler discovery strategy
//! (paper §IV-C) works on: 64-bit Windows requires every function to expose
//! unwind data in `.pdata`, and functions guarded by `__try/__except`
//! reference a *C-specific handler* whose language-specific data is a scope
//! table of `{begin, end, filter, target}` entries. The filter slot either
//! holds the constant `1` (catch-all, `EXCEPTION_EXECUTE_HANDLER`) or the
//! RVA of a filter function — real machine code the analyzer symbolically
//! executes.
//!
//! x86 ("x32") library variants are modeled as the same container with
//! `machine = I386`; see DESIGN.md for the substitution note.

use crate::{ImageError, SegPerm};
use std::collections::BTreeMap;

const PE_SIG_OFF: usize = 0x80;
const SECTION_ALIGN: u32 = 0x1000;
const FILE_ALIGN: u32 = 0x200;

const IMAGE_SCN_MEM_EXECUTE: u32 = 0x2000_0000;
const IMAGE_SCN_MEM_READ: u32 = 0x4000_0000;
const IMAGE_SCN_MEM_WRITE: u32 = 0x8000_0000;
const IMAGE_SCN_CNT_CODE: u32 = 0x0000_0020;
const IMAGE_SCN_CNT_INITIALIZED_DATA: u32 = 0x0000_0040;

/// Target machine of a PE image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Machine {
    /// x86-64 (`IMAGE_FILE_MACHINE_AMD64`).
    X64,
    /// x86 (`IMAGE_FILE_MACHINE_I386`).
    X86,
}

impl Machine {
    fn coff(self) -> u16 {
        match self {
            Machine::X64 => 0x8664,
            Machine::X86 => 0x014C,
        }
    }

    fn from_coff(v: u16) -> Result<Machine, ImageError> {
        match v {
            0x8664 => Ok(Machine::X64),
            0x014C => Ok(Machine::X86),
            _ => Err(ImageError::Unsupported("unknown COFF machine")),
        }
    }
}

/// Filter reference in a SEH scope-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterRef {
    /// Encoded as the constant `1`: execute the handler for *every*
    /// exception (`EXCEPTION_EXECUTE_HANDLER` unconditionally). This is
    /// the "filter address field contains 0x1" idiom from the paper's
    /// Internet Explorer proof of concept.
    CatchAll,
    /// RVA of a filter function to be invoked with the exception record.
    Function(u32),
}

/// One `__try` scope: the guarded region, its filter, and the `__except`
/// continuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeEntry {
    /// RVA of the first guarded instruction.
    pub begin_rva: u32,
    /// RVA one past the last guarded instruction.
    pub end_rva: u32,
    /// The exception filter.
    pub filter: FilterRef,
    /// RVA of the `__except` block the dispatcher jumps to when the filter
    /// returns `EXCEPTION_EXECUTE_HANDLER`.
    pub target_rva: u32,
}

/// Unwind information attached to a runtime function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnwindInfo {
    /// RVA of the exception handler routine (e.g. `__C_specific_handler`),
    /// if the `UNW_FLAG_EHANDLER` flag is set.
    pub handler_rva: Option<u32>,
    /// Scope table from the language-specific data area.
    pub scopes: Vec<ScopeEntry>,
}

/// A `.pdata` RUNTIME_FUNCTION entry, unwind info resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeFunction {
    /// RVA of the function start.
    pub begin_rva: u32,
    /// RVA of the function end.
    pub end_rva: u32,
    /// Parsed unwind info.
    pub unwind: UnwindInfo,
}

/// A section of a parsed PE image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeSection {
    /// Section name (up to 8 bytes).
    pub name: String,
    /// RVA of the section.
    pub rva: u32,
    /// In-memory size.
    pub virtual_size: u32,
    /// Raw file contents.
    pub data: Vec<u8>,
    /// Memory permissions from the section characteristics.
    pub perm: SegPerm,
}

/// A parsed PE image (DLL or executable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeImage {
    /// Module name (from the export directory, or empty).
    pub name: String,
    /// Target machine.
    pub machine: Machine,
    /// Preferred load address.
    pub image_base: u64,
    /// Entry point RVA (0 for DLLs without one).
    pub entry_rva: u32,
    /// Sections.
    pub sections: Vec<PeSection>,
    /// Exported symbols: name → RVA.
    pub exports: BTreeMap<String, u32>,
    /// `.pdata` runtime functions with resolved unwind info.
    pub runtime_functions: Vec<RuntimeFunction>,
}

impl PeImage {
    /// Parse a PE image.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] on bad magic, truncation, or unsupported
    /// optional-header magic.
    pub fn parse(bytes: &[u8]) -> Result<PeImage, ImageError> {
        let mut span = cr_trace::span(cr_trace::Stage::Parse, "pe.parse");
        span.set_detail(|| format!("bytes={}", bytes.len()));
        let parsed = parse_pe(bytes);
        span.append_detail(|| format!("ok={}", parsed.is_ok()));
        parsed
    }

    /// Virtual address of an exported symbol.
    ///
    /// # Panics
    ///
    /// Panics if the export is missing.
    pub fn export_va(&self, name: &str) -> u64 {
        self.image_base
            + *self
                .exports
                .get(name)
                .unwrap_or_else(|| panic!("undefined PE export {name:?}")) as u64
    }

    /// The section containing `rva`, if any.
    pub fn section_at(&self, rva: u32) -> Option<&PeSection> {
        self.sections
            .iter()
            .find(|s| rva >= s.rva && rva < s.rva + s.virtual_size.max(s.data.len() as u32))
    }

    /// Read `len` bytes at `rva` (zero-filled past the raw data).
    pub fn read_rva(&self, rva: u32, len: usize) -> Option<Vec<u8>> {
        let s = self.section_at(rva)?;
        let off = (rva - s.rva) as usize;
        let mut out = vec![0u8; len];
        for (i, slot) in out.iter_mut().enumerate() {
            if let Some(&b) = s.data.get(off + i) {
                *slot = b;
            }
        }
        Some(out)
    }
}

/// Builder-side function record: begin/end RVAs plus the optional
/// `(handler_rva, scopes)` unwind payload.
type FunctionSpec = (u32, u32, Option<(u32, Vec<ScopeEntry>)>);

/// Builder for PE32+ images with exports and SEH scope tables.
///
/// # Examples
///
/// ```
/// use cr_image::{PeBuilder, Machine, ScopeEntry, FilterRef, PeImage};
///
/// let mut b = PeBuilder::new("demo.dll", Machine::X64, 0x1_8000_0000);
/// b.text(0x1000, vec![0x90, 0xC3]); // nop; ret
/// b.export("DemoFn", 0x1000);
/// b.function_with_seh(0x1000, 0x1002, 0x1000, vec![ScopeEntry {
///     begin_rva: 0x1000, end_rva: 0x1001, filter: FilterRef::CatchAll, target_rva: 0x1001,
/// }]);
/// let bytes = b.build();
/// let img = PeImage::parse(&bytes)?;
/// assert_eq!(img.runtime_functions.len(), 1);
/// # Ok::<(), cr_image::ImageError>(())
/// ```
#[derive(Debug)]
pub struct PeBuilder {
    name: String,
    machine: Machine,
    image_base: u64,
    entry_rva: u32,
    text: Option<(u32, Vec<u8>)>,
    data: Option<(u32, Vec<u8>)>,
    exports: BTreeMap<String, u32>,
    functions: Vec<FunctionSpec>,
}

impl PeBuilder {
    /// Start building an image named `name` at preferred base `image_base`.
    pub fn new(name: &str, machine: Machine, image_base: u64) -> PeBuilder {
        PeBuilder {
            name: name.to_string(),
            machine,
            image_base,
            entry_rva: 0,
            text: None,
            data: None,
            exports: BTreeMap::new(),
            functions: Vec::new(),
        }
    }

    /// Set the code section contents at the given RVA.
    pub fn text(&mut self, rva: u32, data: Vec<u8>) -> &mut Self {
        assert_eq!(rva % SECTION_ALIGN, 0, "section RVA must be page aligned");
        self.text = Some((rva, data));
        self
    }

    /// Set the writable data section at the given RVA.
    pub fn data(&mut self, rva: u32, data: Vec<u8>) -> &mut Self {
        assert_eq!(rva % SECTION_ALIGN, 0, "section RVA must be page aligned");
        self.data = Some((rva, data));
        self
    }

    /// Set the entry point RVA.
    pub fn entry(&mut self, rva: u32) -> &mut Self {
        self.entry_rva = rva;
        self
    }

    /// Export `name` at `rva`.
    pub fn export(&mut self, name: &str, rva: u32) -> &mut Self {
        self.exports.insert(name.to_string(), rva);
        self
    }

    /// Register a function without an exception handler.
    pub fn function(&mut self, begin_rva: u32, end_rva: u32) -> &mut Self {
        self.functions.push((begin_rva, end_rva, None));
        self
    }

    /// Register a function guarded by a C-specific handler with scopes.
    ///
    /// `handler_rva` is the RVA of the handler routine
    /// (`__C_specific_handler` in real modules).
    pub fn function_with_seh(
        &mut self,
        begin_rva: u32,
        end_rva: u32,
        handler_rva: u32,
        scopes: Vec<ScopeEntry>,
    ) -> &mut Self {
        self.functions
            .push((begin_rva, end_rva, Some((handler_rva, scopes))));
        self
    }

    /// Produce the image bytes.
    pub fn build(&self) -> Vec<u8> {
        // ---- Build .rdata (exports + xdata) and .pdata payloads ----------
        let max_rva = [
            self.text.as_ref().map(|(r, d)| r + d.len() as u32),
            self.data.as_ref().map(|(r, d)| r + d.len() as u32),
        ]
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(SECTION_ALIGN);
        let rdata_rva = align_up(max_rva, SECTION_ALIGN);

        // xdata blobs per function, offsets within .rdata filled later.
        // .rdata layout: [export directory][export tables][dll name]
        //                [xdata blobs...]
        let mut rdata = Vec::new();

        // Export directory (40 bytes) + address table + name ptrs + ordinals.
        let nexp = self.exports.len() as u32;
        let dir_off = 0usize;
        rdata.resize(40, 0);
        let eat_off = rdata.len();
        rdata.resize(eat_off + 4 * nexp as usize, 0);
        let names_off = rdata.len();
        rdata.resize(names_off + 4 * nexp as usize, 0);
        let ords_off = rdata.len();
        rdata.resize(ords_off + 2 * nexp as usize, 0);
        let dllname_off = rdata.len();
        rdata.extend_from_slice(self.name.as_bytes());
        rdata.push(0);
        let mut name_rvas = Vec::new();
        for name in self.exports.keys() {
            name_rvas.push(rdata_rva + rdata.len() as u32);
            rdata.extend_from_slice(name.as_bytes());
            rdata.push(0);
        }
        for (i, (&rva, nrva)) in self.exports.values().zip(&name_rvas).enumerate() {
            let at = eat_off + 4 * i;
            rdata[at..at + 4].copy_from_slice(&rva.to_le_bytes());
            let at = names_off + 4 * i;
            rdata[at..at + 4].copy_from_slice(&nrva.to_le_bytes());
            let at = ords_off + 2 * i;
            rdata[at..at + 2].copy_from_slice(&(i as u16).to_le_bytes());
        }
        {
            let d = &mut rdata[dir_off..dir_off + 40];
            d[12..16].copy_from_slice(&(rdata_rva + dllname_off as u32).to_le_bytes());
            d[16..20].copy_from_slice(&1u32.to_le_bytes()); // ordinal base
            d[20..24].copy_from_slice(&nexp.to_le_bytes());
            d[24..28].copy_from_slice(&nexp.to_le_bytes());
            d[28..32].copy_from_slice(&(rdata_rva + eat_off as u32).to_le_bytes());
            d[32..36].copy_from_slice(&(rdata_rva + names_off as u32).to_le_bytes());
            d[36..40].copy_from_slice(&(rdata_rva + ords_off as u32).to_le_bytes());
        }
        let export_dir_size = rdata.len() as u32;

        // UNWIND_INFO blobs.
        let mut unwind_rvas = Vec::new();
        for (_, _, handler) in &self.functions {
            while rdata.len() % 4 != 0 {
                rdata.push(0);
            }
            unwind_rvas.push(rdata_rva + rdata.len() as u32);
            match handler {
                None => {
                    // version 1, no flags, no prolog, no codes.
                    rdata.extend_from_slice(&[0x01, 0, 0, 0]);
                }
                Some((handler_rva, scopes)) => {
                    // version 1 | UNW_FLAG_EHANDLER (1 << 3).
                    rdata.extend_from_slice(&[0x09, 0, 0, 0]);
                    rdata.extend_from_slice(&handler_rva.to_le_bytes());
                    rdata.extend_from_slice(&(scopes.len() as u32).to_le_bytes());
                    for s in scopes {
                        rdata.extend_from_slice(&s.begin_rva.to_le_bytes());
                        rdata.extend_from_slice(&s.end_rva.to_le_bytes());
                        let f = match s.filter {
                            FilterRef::CatchAll => 1u32,
                            FilterRef::Function(rva) => rva,
                        };
                        rdata.extend_from_slice(&f.to_le_bytes());
                        rdata.extend_from_slice(&s.target_rva.to_le_bytes());
                    }
                }
            }
        }

        let pdata_rva = align_up(rdata_rva + rdata.len() as u32, SECTION_ALIGN);
        let mut pdata = Vec::new();
        let mut sorted: Vec<usize> = (0..self.functions.len()).collect();
        sorted.sort_by_key(|&i| self.functions[i].0);
        for &i in &sorted {
            let (b, e, _) = self.functions[i];
            pdata.extend_from_slice(&b.to_le_bytes());
            pdata.extend_from_slice(&e.to_le_bytes());
            pdata.extend_from_slice(&unwind_rvas[i].to_le_bytes());
        }

        // ---- Section table ------------------------------------------------
        struct Sec {
            name: [u8; 8],
            rva: u32,
            data: Vec<u8>,
            chars: u32,
        }
        let mut secs: Vec<Sec> = Vec::new();
        if let Some((rva, data)) = &self.text {
            secs.push(Sec {
                name: *b".text\0\0\0",
                rva: *rva,
                data: data.clone(),
                chars: IMAGE_SCN_CNT_CODE | IMAGE_SCN_MEM_READ | IMAGE_SCN_MEM_EXECUTE,
            });
        }
        if let Some((rva, data)) = &self.data {
            secs.push(Sec {
                name: *b".data\0\0\0",
                rva: *rva,
                data: data.clone(),
                chars: IMAGE_SCN_CNT_INITIALIZED_DATA | IMAGE_SCN_MEM_READ | IMAGE_SCN_MEM_WRITE,
            });
        }
        secs.push(Sec {
            name: *b".rdata\0\0",
            rva: rdata_rva,
            data: rdata,
            chars: IMAGE_SCN_CNT_INITIALIZED_DATA | IMAGE_SCN_MEM_READ,
        });
        let pdata_len = pdata.len() as u32;
        secs.push(Sec {
            name: *b".pdata\0\0",
            rva: pdata_rva,
            data: pdata,
            chars: IMAGE_SCN_CNT_INITIALIZED_DATA | IMAGE_SCN_MEM_READ,
        });
        secs.sort_by_key(|s| s.rva);

        // ---- Headers -------------------------------------------------------
        let opt_size: u16 = 240; // PE32+ with 16 data directories
        let headers_size = align_up(
            (PE_SIG_OFF + 4 + 20 + opt_size as usize + 40 * secs.len()) as u32,
            FILE_ALIGN,
        );
        let mut out = vec![0u8; headers_size as usize];
        // DOS header.
        out[0] = b'M';
        out[1] = b'Z';
        out[0x3C..0x40].copy_from_slice(&(PE_SIG_OFF as u32).to_le_bytes());
        // PE signature.
        out[PE_SIG_OFF..PE_SIG_OFF + 4].copy_from_slice(b"PE\0\0");
        // COFF header.
        let coff = PE_SIG_OFF + 4;
        out[coff..coff + 2].copy_from_slice(&self.machine.coff().to_le_bytes());
        out[coff + 2..coff + 4].copy_from_slice(&(secs.len() as u16).to_le_bytes());
        out[coff + 16..coff + 18].copy_from_slice(&opt_size.to_le_bytes());
        out[coff + 18..coff + 20].copy_from_slice(&0x2022u16.to_le_bytes()); // EXEC | DLL | LARGE_ADDR

        // Optional header (PE32+).
        let opt = coff + 20;
        out[opt..opt + 2].copy_from_slice(&0x20Bu16.to_le_bytes());
        out[opt + 16..opt + 20].copy_from_slice(&self.entry_rva.to_le_bytes());
        out[opt + 24..opt + 32].copy_from_slice(&self.image_base.to_le_bytes());
        out[opt + 32..opt + 36].copy_from_slice(&SECTION_ALIGN.to_le_bytes());
        out[opt + 36..opt + 40].copy_from_slice(&FILE_ALIGN.to_le_bytes());
        let size_of_image = align_up(
            secs.iter()
                .map(|s| s.rva + s.data.len() as u32)
                .max()
                .unwrap_or(0),
            SECTION_ALIGN,
        );
        out[opt + 56..opt + 60].copy_from_slice(&size_of_image.to_le_bytes());
        out[opt + 60..opt + 64].copy_from_slice(&headers_size.to_le_bytes());
        out[opt + 108..opt + 112].copy_from_slice(&16u32.to_le_bytes()); // NumberOfRvaAndSizes
                                                                         // Data directory 0: export table.
        let dd = opt + 112;
        out[dd..dd + 4].copy_from_slice(&rdata_rva.to_le_bytes());
        out[dd + 4..dd + 8].copy_from_slice(&export_dir_size.to_le_bytes());
        // Data directory 3: exception table (.pdata).
        out[dd + 24..dd + 28].copy_from_slice(&pdata_rva.to_le_bytes());
        out[dd + 28..dd + 32].copy_from_slice(&pdata_len.to_le_bytes());

        // Section headers and raw data.
        let mut file_off = headers_size;
        let shdr_base = opt + opt_size as usize;
        for (i, s) in secs.iter().enumerate() {
            let raw_size = align_up(s.data.len() as u32, FILE_ALIGN);
            let h = shdr_base + i * 40;
            out[h..h + 8].copy_from_slice(&s.name);
            out[h + 8..h + 12].copy_from_slice(&(s.data.len() as u32).to_le_bytes()); // VirtualSize
            out[h + 12..h + 16].copy_from_slice(&s.rva.to_le_bytes());
            out[h + 16..h + 20].copy_from_slice(&raw_size.to_le_bytes());
            out[h + 20..h + 24].copy_from_slice(&file_off.to_le_bytes());
            out[h + 36..h + 40].copy_from_slice(&s.chars.to_le_bytes());
            file_off += raw_size;
        }
        for s in &secs {
            out.extend_from_slice(&s.data);
            while !out.len().is_multiple_of(FILE_ALIGN as usize) {
                out.push(0);
            }
        }
        out
    }
}

fn align_up(v: u32, a: u32) -> u32 {
    v.div_ceil(a) * a
}

/// Upper bound on any single parser allocation or cumulative section
/// copy: corrupt length fields must parse-fail, not become OOM
/// amplifiers (a 4-byte export count can otherwise demand a 16 GiB
/// name-pointer table).
const MAX_READ_BYTES: usize = 16 << 20;

fn rd_u16(b: &[u8], off: usize) -> Result<u16, ImageError> {
    off.checked_add(2)
        .and_then(|end| b.get(off..end))
        .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
        .ok_or(ImageError::Truncated("u16"))
}

fn rd_u32(b: &[u8], off: usize) -> Result<u32, ImageError> {
    off.checked_add(4)
        .and_then(|end| b.get(off..end))
        .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
        .ok_or(ImageError::Truncated("u32"))
}

fn rd_u64(b: &[u8], off: usize) -> Result<u64, ImageError> {
    off.checked_add(8)
        .and_then(|end| b.get(off..end))
        .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
        .ok_or(ImageError::Truncated("u64"))
}

/// `a + b` over file-controlled RVAs with overflow mapped to
/// [`ImageError::Malformed`] instead of a debug-build panic.
fn rva_add(a: u32, b: u32) -> Result<u32, ImageError> {
    a.checked_add(b)
        .ok_or(ImageError::Malformed("RVA overflow"))
}

fn parse_pe(bytes: &[u8]) -> Result<PeImage, ImageError> {
    if bytes.len() < 0x40 || bytes[0] != b'M' || bytes[1] != b'Z' {
        return Err(ImageError::BadMagic("PE (MZ)"));
    }
    let pe_off = rd_u32(bytes, 0x3C)? as usize;
    if bytes.get(pe_off..pe_off.saturating_add(4)) != Some(b"PE\0\0".as_slice()) {
        return Err(ImageError::BadMagic("PE signature"));
    }
    let coff = pe_off + 4;
    let machine = Machine::from_coff(rd_u16(bytes, coff)?)?;
    let nsec = rd_u16(bytes, coff + 2)? as usize;
    let opt_size = rd_u16(bytes, coff + 16)? as usize;
    let opt = coff + 20;
    let magic = rd_u16(bytes, opt)?;
    if magic != 0x20B {
        return Err(ImageError::Unsupported(
            "only PE32+ optional headers supported",
        ));
    }
    let entry_rva = rd_u32(bytes, opt + 16)?;
    let image_base = rd_u64(bytes, opt + 24)?;
    let dd = opt + 112;
    let export_rva = rd_u32(bytes, dd)?;
    let pdata_rva = rd_u32(bytes, dd + 24)?;
    let pdata_size = rd_u32(bytes, dd + 28)?;

    // Sections.
    let shdr_base = opt + opt_size;
    let mut sections = Vec::new();
    let mut copied = 0usize;
    for i in 0..nsec {
        let h = shdr_base + i * 40;
        let name_raw = bytes
            .get(h..h + 8)
            .ok_or(ImageError::Truncated("section header"))?;
        let name = String::from_utf8_lossy(name_raw)
            .trim_end_matches('\0')
            .to_string();
        let virtual_size = rd_u32(bytes, h + 8)?;
        let rva = rd_u32(bytes, h + 12)?;
        let raw_size = rd_u32(bytes, h + 16)? as usize;
        let raw_off = rd_u32(bytes, h + 20)? as usize;
        let chars = rd_u32(bytes, h + 36)?;
        copied = copied.saturating_add(raw_size);
        if copied > MAX_READ_BYTES {
            return Err(ImageError::Malformed("section data exceeds sanity cap"));
        }
        let data = bytes
            .get(raw_off..raw_off.saturating_add(raw_size))
            .ok_or(ImageError::Truncated("section data"))?
            .to_vec();
        sections.push(PeSection {
            name,
            rva,
            virtual_size,
            data,
            perm: SegPerm {
                r: chars & IMAGE_SCN_MEM_READ != 0,
                w: chars & IMAGE_SCN_MEM_WRITE != 0,
                x: chars & IMAGE_SCN_MEM_EXECUTE != 0,
            },
        });
    }

    let rva_read = |rva: u32, len: usize| -> Result<Vec<u8>, ImageError> {
        if len > MAX_READ_BYTES {
            return Err(ImageError::Malformed("read length exceeds sanity cap"));
        }
        let s = sections
            .iter()
            .find(|s| {
                rva >= s.rva
                    && (rva as u64)
                        < s.rva as u64 + s.data.len().max(s.virtual_size as usize) as u64
            })
            .ok_or(ImageError::Malformed("RVA outside all sections"))?;
        let off = (rva - s.rva) as usize;
        let mut out = vec![0u8; len];
        for (i, slot) in out.iter_mut().enumerate() {
            if let Some(&b) = s.data.get(off + i) {
                *slot = b;
            }
        }
        Ok(out)
    };

    // Exports.
    let mut exports = BTreeMap::new();
    let mut dll_name = String::new();
    if export_rva != 0 {
        let dir = rva_read(export_rva, 40)?;
        let name_rva = u32::from_le_bytes(dir[12..16].try_into().unwrap());
        let nnames = u32::from_le_bytes(dir[24..28].try_into().unwrap()) as usize;
        let eat_rva = u32::from_le_bytes(dir[28..32].try_into().unwrap());
        let npt_rva = u32::from_le_bytes(dir[32..36].try_into().unwrap());
        let ord_rva = u32::from_le_bytes(dir[36..40].try_into().unwrap());
        if nnames > 0x10000 {
            return Err(ImageError::Malformed(
                "export name count exceeds sanity cap",
            ));
        }
        dll_name = read_cstr(&rva_read(name_rva, 256)?);
        let npt = rva_read(npt_rva, 4 * nnames)?;
        let ords = rva_read(ord_rva, 2 * nnames)?;
        for i in 0..nnames {
            let nrva = u32::from_le_bytes(npt[4 * i..4 * i + 4].try_into().unwrap());
            let name = read_cstr(&rva_read(nrva, 256)?);
            let ord = u16::from_le_bytes(ords[2 * i..2 * i + 2].try_into().unwrap()) as u32;
            let fn_rva_bytes = rva_read(rva_add(eat_rva, 4 * ord)?, 4)?;
            let fn_rva = u32::from_le_bytes(fn_rva_bytes.try_into().unwrap());
            exports.insert(name, fn_rva);
        }
    }

    // Runtime functions.
    let mut runtime_functions = Vec::new();
    if pdata_rva != 0 && pdata_size >= 12 {
        let table = rva_read(pdata_rva, pdata_size as usize)?;
        for entry in table.chunks_exact(12) {
            let begin_rva = u32::from_le_bytes(entry[0..4].try_into().unwrap());
            let end_rva = u32::from_le_bytes(entry[4..8].try_into().unwrap());
            let unwind_rva = u32::from_le_bytes(entry[8..12].try_into().unwrap());
            if begin_rva == 0 && end_rva == 0 {
                continue;
            }
            let head = rva_read(unwind_rva, 4)?;
            let flags = head[0] >> 3;
            let ncodes = head[2] as usize;
            let codes_size = ncodes.div_ceil(2) * 4; // 2-byte codes, 4-aligned
            let mut unwind = UnwindInfo {
                handler_rva: None,
                scopes: Vec::new(),
            };
            if flags & 0x1 != 0 {
                // UNW_FLAG_EHANDLER
                let handler_at = rva_add(unwind_rva, 4 + codes_size as u32)?;
                let h = rva_read(handler_at, 4)?;
                let handler_rva = u32::from_le_bytes(h.try_into().unwrap());
                unwind.handler_rva = Some(handler_rva);
                let lsda_rva = rva_add(handler_at, 4)?;
                let cnt_bytes = rva_read(lsda_rva, 4)?;
                let count = u32::from_le_bytes(cnt_bytes.try_into().unwrap());
                // Sanity-cap the scope count; a corrupt image must not
                // OOM us — and must not be silently half-parsed either.
                if count > 0x10000 {
                    return Err(ImageError::Malformed("scope count exceeds sanity cap"));
                }
                let scopes_raw = rva_read(rva_add(lsda_rva, 4)?, count as usize * 16)?;
                for sc in scopes_raw.chunks_exact(16) {
                    let begin = u32::from_le_bytes(sc[0..4].try_into().unwrap());
                    let end = u32::from_le_bytes(sc[4..8].try_into().unwrap());
                    let filt = u32::from_le_bytes(sc[8..12].try_into().unwrap());
                    let target = u32::from_le_bytes(sc[12..16].try_into().unwrap());
                    unwind.scopes.push(ScopeEntry {
                        begin_rva: begin,
                        end_rva: end,
                        filter: if filt == 1 {
                            FilterRef::CatchAll
                        } else {
                            FilterRef::Function(filt)
                        },
                        target_rva: target,
                    });
                }
            }
            runtime_functions.push(RuntimeFunction {
                begin_rva,
                end_rva,
                unwind,
            });
        }
    }

    Ok(PeImage {
        name: dll_name,
        machine,
        image_base,
        entry_rva,
        sections,
        exports,
        runtime_functions,
    })
}

fn read_cstr(bytes: &[u8]) -> String {
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(bytes.len());
    String::from_utf8_lossy(&bytes[..end]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = PeBuilder::new("sample.dll", Machine::X64, 0x1_8000_0000);
        b.text(0x1000, vec![0x90; 0x100]);
        b.data(0x3000, vec![0xAA; 0x20]);
        b.entry(0x1000);
        b.export("GuardedFn", 0x1000);
        b.export("FilterA", 0x1080);
        b.function_with_seh(
            0x1000,
            0x1040,
            0x10C0,
            vec![
                ScopeEntry {
                    begin_rva: 0x1008,
                    end_rva: 0x1020,
                    filter: FilterRef::Function(0x1080),
                    target_rva: 0x1030,
                },
                ScopeEntry {
                    begin_rva: 0x1024,
                    end_rva: 0x1028,
                    filter: FilterRef::CatchAll,
                    target_rva: 0x1038,
                },
            ],
        );
        b.function(0x1080, 0x10A0);
        b.build()
    }

    #[test]
    fn roundtrip_headers() {
        let img = PeImage::parse(&sample()).unwrap();
        assert_eq!(img.name, "sample.dll");
        assert_eq!(img.machine, Machine::X64);
        assert_eq!(img.image_base, 0x1_8000_0000);
        assert_eq!(img.entry_rva, 0x1000);
        assert_eq!(img.sections.len(), 4);
        let text = img.section_at(0x1000).unwrap();
        assert_eq!(text.name, ".text");
        assert!(text.perm.x && text.perm.r && !text.perm.w);
        let data = img.section_at(0x3000).unwrap();
        assert!(data.perm.w && !data.perm.x);
    }

    #[test]
    fn exports_roundtrip() {
        let img = PeImage::parse(&sample()).unwrap();
        assert_eq!(img.exports["GuardedFn"], 0x1000);
        assert_eq!(img.exports["FilterA"], 0x1080);
        assert_eq!(img.export_va("FilterA"), 0x1_8000_1080);
    }

    #[test]
    fn pdata_and_scopes_roundtrip() {
        let img = PeImage::parse(&sample()).unwrap();
        assert_eq!(img.runtime_functions.len(), 2);
        let f = &img.runtime_functions[0];
        assert_eq!((f.begin_rva, f.end_rva), (0x1000, 0x1040));
        assert_eq!(f.unwind.handler_rva, Some(0x10C0));
        assert_eq!(f.unwind.scopes.len(), 2);
        assert_eq!(f.unwind.scopes[0].filter, FilterRef::Function(0x1080));
        assert_eq!(f.unwind.scopes[1].filter, FilterRef::CatchAll);
        let plain = &img.runtime_functions[1];
        assert_eq!(plain.unwind.handler_rva, None);
        assert!(plain.unwind.scopes.is_empty());
    }

    #[test]
    fn pdata_is_sorted_by_begin_rva() {
        let mut b = PeBuilder::new("s.dll", Machine::X64, 0x1000_0000);
        b.text(0x1000, vec![0x90; 0x40]);
        b.function(0x1020, 0x1030);
        b.function(0x1000, 0x1010);
        let img = PeImage::parse(&b.build()).unwrap();
        assert_eq!(img.runtime_functions[0].begin_rva, 0x1000);
        assert_eq!(img.runtime_functions[1].begin_rva, 0x1020);
    }

    #[test]
    fn x86_machine_roundtrip() {
        let mut b = PeBuilder::new("legacy.dll", Machine::X86, 0x1000_0000);
        b.text(0x1000, vec![0xC3]);
        let img = PeImage::parse(&b.build()).unwrap();
        assert_eq!(img.machine, Machine::X86);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            PeImage::parse(b"not a pe"),
            Err(ImageError::BadMagic(_))
        ));
        let mut bytes = sample();
        bytes[PE_SIG_OFF] = b'X';
        assert!(matches!(
            PeImage::parse(&bytes),
            Err(ImageError::BadMagic(_))
        ));
    }

    #[test]
    fn read_rva_zero_fills() {
        let img = PeImage::parse(&sample()).unwrap();
        // .data virtual size is its raw len; read inside it.
        let v = img.read_rva(0x3000, 4).unwrap();
        assert_eq!(v, vec![0xAA; 4]);
        assert!(img.read_rva(0x9_0000, 4).is_none());
    }
}
