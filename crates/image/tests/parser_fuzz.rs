//! Parser robustness properties: seeded corruption of well-formed
//! images must produce `Ok` or a typed [`ImageError`] — never a panic,
//! debug-overflow abort, or outsized allocation. These back the chaos
//! layer's `image.bytes` fault site: the campaign engine feeds mutated
//! bytes straight into these parsers and relies on a clean `Err`.

use cr_image::{
    ElfImage, ElfSegment, FilterRef, ImageError, Machine, PeBuilder, PeImage, ScopeEntry, SegPerm,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn elf_sample_bytes() -> Vec<u8> {
    let mut symbols = BTreeMap::new();
    symbols.insert("main".to_string(), 0x40_1000u64);
    symbols.insert("helper".to_string(), 0x40_1040u64);
    ElfImage {
        entry: 0x40_1000,
        segments: vec![
            ElfSegment {
                vaddr: 0x40_1000,
                data: vec![0x90; 0x80],
                memsz: 0x80,
                perm: SegPerm::RX,
            },
            ElfSegment {
                vaddr: 0x60_0000,
                data: vec![1, 2, 3, 4],
                memsz: 0x2000,
                perm: SegPerm::RW,
            },
        ],
        symbols,
    }
    .to_bytes()
}

fn pe_sample_bytes() -> Vec<u8> {
    let mut b = PeBuilder::new("fuzz.dll", Machine::X64, 0x1_8000_0000);
    b.text(0x1000, vec![0x90; 0x100]);
    b.data(0x3000, vec![0xAA; 0x20]);
    b.entry(0x1000);
    b.export("GuardedFn", 0x1000);
    b.export("FilterA", 0x1080);
    b.function_with_seh(
        0x1000,
        0x1040,
        0x10C0,
        vec![ScopeEntry {
            begin_rva: 0x1008,
            end_rva: 0x1020,
            filter: FilterRef::Function(0x1080),
            target_rva: 0x1030,
        }],
    );
    b.build()
}

/// SplitMix64 step — the same generator family the chaos crate uses,
/// so corpus mutations here match `FaultInjector::mutate_bytes` shapes.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Flip `flips` seeded bits anywhere in the buffer.
fn flip_bits(bytes: &mut [u8], seed: u64, flips: u32) {
    for i in 0..flips as u64 {
        let d = mix(seed.wrapping_add(i));
        let pos = (d % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << ((d >> 48) % 8);
    }
}

/// Overwrite a seeded 4-byte-aligned word with an adversarial length /
/// offset value — the mutation class most likely to reach overflow and
/// allocation paths.
fn inflate_word(bytes: &mut [u8], seed: u64) {
    let words = bytes.len() / 4;
    let d = mix(seed);
    let at = (d % words as u64) as usize * 4;
    let val: u32 = match (d >> 32) % 4 {
        0 => u32::MAX,
        1 => u32::MAX - 3,
        2 => 0x8000_0000,
        _ => 0x7FFF_FFF0,
    };
    bytes[at..at + 4].copy_from_slice(&val.to_le_bytes());
}

/// The parse outcome must be a value or a typed error; reaching this
/// function at all (no panic, no abort) is most of the property.
fn accepts(res: Result<impl Sized, ImageError>) {
    match res {
        Ok(_) => {}
        Err(
            ImageError::BadMagic(_)
            | ImageError::Truncated(_)
            | ImageError::Malformed(_)
            | ImageError::Unsupported(_),
        ) => {}
    }
}

proptest! {
    #[test]
    fn elf_survives_bit_flips(seed in any::<u64>(), flips in 1u32..64) {
        let mut bytes = elf_sample_bytes();
        flip_bits(&mut bytes, seed, flips);
        accepts(ElfImage::parse(&bytes));
    }

    #[test]
    fn elf_survives_truncation(seed in any::<u64>()) {
        let bytes = elf_sample_bytes();
        let keep = (mix(seed) % (bytes.len() as u64 + 1)) as usize;
        accepts(ElfImage::parse(&bytes[..keep]));
    }

    #[test]
    fn elf_survives_length_inflation(seed in any::<u64>(), extra_flips in 0u32..8) {
        let mut bytes = elf_sample_bytes();
        inflate_word(&mut bytes, seed);
        flip_bits(&mut bytes, seed ^ 0xE1F, extra_flips);
        accepts(ElfImage::parse(&bytes));
    }

    #[test]
    fn pe_survives_bit_flips(seed in any::<u64>(), flips in 1u32..64) {
        let mut bytes = pe_sample_bytes();
        flip_bits(&mut bytes, seed, flips);
        accepts(PeImage::parse(&bytes));
    }

    #[test]
    fn pe_survives_truncation(seed in any::<u64>()) {
        let bytes = pe_sample_bytes();
        let keep = (mix(seed) % (bytes.len() as u64 + 1)) as usize;
        accepts(PeImage::parse(&bytes[..keep]));
    }

    #[test]
    fn pe_survives_length_inflation(seed in any::<u64>(), extra_flips in 0u32..8) {
        let mut bytes = pe_sample_bytes();
        inflate_word(&mut bytes, seed);
        flip_bits(&mut bytes, seed ^ 0x9E, extra_flips);
        accepts(PeImage::parse(&bytes));
    }
}

/// Regression for the scope-count sanity cap: a corrupt LSDA count
/// used to be *silently skipped* (scopes dropped, image "parses"),
/// which under-reports SEH coverage. It must now be a hard parse
/// error.
#[test]
fn inflated_scope_count_is_rejected_not_skipped() {
    let good = pe_sample_bytes();
    let img = PeImage::parse(&good).unwrap();
    assert_eq!(img.runtime_functions[0].unwind.scopes.len(), 1);

    // The LSDA begins with the little-endian scope count (1 here); it
    // is the only dword with that layout directly before our single
    // 16-byte scope record, so patch it by scanning for count=1
    // followed by the known scope begin_rva.
    let needle: Vec<u8> = 1u32
        .to_le_bytes()
        .iter()
        .chain(0x1008u32.to_le_bytes().iter())
        .copied()
        .collect();
    let at = good
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("LSDA count + first scope present in image");
    let mut bad = good.clone();
    bad[at..at + 4].copy_from_slice(&0x7FFF_FFFFu32.to_le_bytes());
    match PeImage::parse(&bad) {
        Err(ImageError::Malformed(msg)) => assert!(msg.contains("scope count")),
        other => panic!("inflated scope count must be Malformed, got {other:?}"),
    }

    // Just past the cap boundary is also rejected; at the boundary it
    // is an ordinary (truncated) read, not a silent skip.
    bad[at..at + 4].copy_from_slice(&0x10001u32.to_le_bytes());
    assert!(matches!(
        PeImage::parse(&bad),
        Err(ImageError::Malformed(_))
    ));
}

/// The export-table name count feeds allocations; corrupt counts must
/// be rejected before any table copy.
#[test]
fn inflated_export_count_is_rejected() {
    let good = pe_sample_bytes();
    // Export directory: NumberOfNames at +24 from the directory start.
    // Locate the directory by its AddressOfNames/AddressOfNameOrdinals
    // being nonzero: patch by scanning for the name count (2 exports).
    let img = PeImage::parse(&good).unwrap();
    assert_eq!(img.exports.len(), 2);
    let needle = [2u32.to_le_bytes(), 2u32.to_le_bytes()].concat();
    let at = good
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("export function/name counts present");
    let mut bad = good.clone();
    bad[at + 4..at + 8].copy_from_slice(&0x4000_0000u32.to_le_bytes());
    assert!(PeImage::parse(&bad).is_err());
}
