//! Campaign metrics — wall-time and outcome accounting.
//!
//! Metrics are deliberately separated from task *results*: results are
//! deterministic (the `--jobs 8` report must equal the serial one byte
//! for byte), while wall times and scheduling metadata vary run to
//! run. [`crate::engine::CampaignReport::results_json`] serializes only
//! the deterministic half.

use crate::cache::CacheStatsSnapshot;
use crate::error::TaskErrorKind;
use crate::pool::TaskExecution;
use crate::spec::TaskKind;

/// Scheduling/outcome metadata for one task.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct TaskMetrics {
    /// Task index in spec order.
    pub index: usize,
    /// Human-readable label (`seh:user32`, …).
    pub label: String,
    /// Task family; serializes to `server` / `seh` / `funnel` / `poc`
    /// exactly as the former free-form string did.
    pub kind: TaskKind,
    /// Whether the task produced a result.
    pub ok: bool,
    /// Attempts used (1 = first-try success).
    pub attempts: u32,
    /// Failed attempts, by error class, in attempt order. Non-empty
    /// with `ok: true` means the task recovered on retry. Serializes
    /// to the same snake_case names as before.
    pub attempt_errors: Vec<TaskErrorKind>,
    /// Wall time across attempts, microseconds.
    pub wall_us: u64,
    /// Milliseconds slept in retry backoff.
    pub backoff_ms: u64,
}

/// Decision-procedure counter deltas for one campaign run, sampled
/// from the process-wide `cr-symex` counters before and after.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// `check` invocations.
    pub calls: u64,
    /// Normalized-query memo probes.
    pub memo_lookups: u64,
    /// Normalized-query memo hits.
    pub memo_hits: u64,
    /// Explorer paths run to completion ([`cr_symex::paths_completed`]).
    pub paths_completed: u64,
    /// Infeasible branch sides pruned ([`cr_symex::paths_pruned`]).
    pub paths_pruned: u64,
}

/// Whole-campaign metrics.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct CampaignMetrics {
    /// Worker count the campaign ran with.
    pub jobs: usize,
    /// Tasks that produced a result.
    pub succeeded: usize,
    /// Tasks that kept failing past the retry bound.
    pub failed: usize,
    /// End-to-end campaign wall time, microseconds.
    pub total_wall_us: u64,
    /// Sum of per-task wall times, microseconds (≫ `total_wall_us`
    /// when sharding helps).
    pub task_wall_us: u64,
    /// Total milliseconds slept in retry backoff across all tasks.
    pub backoff_ms: u64,
    /// SAT-solver invocations during this campaign (delta of the
    /// process-wide [`cr_symex::solver_calls`] counter). Zero on a
    /// fully warm rerun. Memo hits count: they are check invocations,
    /// answered without blasting or solving.
    pub solver_calls: u64,
    /// Normalized-query memo probes during this campaign (delta of
    /// [`cr_symex::memo_lookups`]).
    pub solver_memo_lookups: u64,
    /// Normalized-query memo hits during this campaign (delta of
    /// [`cr_symex::memo_hits`]) — structurally repeated queries
    /// answered beneath the content-addressed verdict cache.
    pub solver_memo_hits: u64,
    /// Explorer paths run to a `ret` during this campaign (delta of
    /// [`cr_symex::paths_completed`]). Zero on a fully warm rerun.
    pub paths_completed: u64,
    /// Infeasible branch sides pruned during this campaign (delta of
    /// [`cr_symex::paths_pruned`]) — what bounds loopy filters.
    pub paths_pruned: u64,
    /// Cache lines quarantined while loading `--cache DIR`.
    pub quarantined: u64,
    /// Cache hit/miss counters for this run.
    pub cache: CacheStatsSnapshot,
    /// Per-task rows, in spec order.
    pub tasks: Vec<TaskMetrics>,
}

impl CampaignMetrics {
    /// Assemble metrics from pool executions.
    pub fn from_executions<T>(
        jobs: usize,
        total_wall_us: u64,
        solver: SolverStats,
        quarantined: u64,
        cache: CacheStatsSnapshot,
        labels: &[(String, TaskKind)],
        execs: &[TaskExecution<T>],
    ) -> CampaignMetrics {
        let tasks: Vec<TaskMetrics> = execs
            .iter()
            .map(|e| TaskMetrics {
                index: e.index,
                label: labels[e.index].0.clone(),
                kind: labels[e.index].1,
                ok: e.outcome.is_ok(),
                attempts: e.attempts,
                attempt_errors: e.attempt_errors.iter().map(|err| err.kind).collect(),
                wall_us: e.wall.as_micros() as u64,
                backoff_ms: e.backoff_ms,
            })
            .collect();
        CampaignMetrics {
            jobs,
            succeeded: tasks.iter().filter(|t| t.ok).count(),
            failed: tasks.iter().filter(|t| !t.ok).count(),
            total_wall_us,
            task_wall_us: tasks.iter().map(|t| t.wall_us).sum(),
            backoff_ms: tasks.iter().map(|t| t.backoff_ms).sum(),
            solver_calls: solver.calls,
            solver_memo_lookups: solver.memo_lookups,
            solver_memo_hits: solver.memo_hits,
            paths_completed: solver.paths_completed,
            paths_pruned: solver.paths_pruned,
            quarantined,
            cache,
            tasks,
        }
    }
}
