//! Campaign metrics — wall-time and outcome accounting.
//!
//! Metrics are deliberately separated from task *results*: results are
//! deterministic (the `--jobs 8` report must equal the serial one byte
//! for byte), while wall times and scheduling metadata vary run to
//! run. [`crate::engine::CampaignReport::results_json`] serializes only
//! the deterministic half.

use crate::cache::CacheStatsSnapshot;
use crate::pool::TaskExecution;

/// Scheduling/outcome metadata for one task.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct TaskMetrics {
    /// Task index in spec order.
    pub index: usize,
    /// Human-readable label (`seh:user32`, …).
    pub label: String,
    /// Task family (`server` / `seh` / `funnel` / `poc`).
    pub kind: String,
    /// Whether the task produced a result.
    pub ok: bool,
    /// Attempts used (1 = first-try success).
    pub attempts: u32,
    /// Wall time across attempts, microseconds.
    pub wall_us: u64,
}

/// Whole-campaign metrics.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct CampaignMetrics {
    /// Worker count the campaign ran with.
    pub jobs: usize,
    /// Tasks that produced a result.
    pub succeeded: usize,
    /// Tasks that kept panicking past the retry bound.
    pub failed: usize,
    /// End-to-end campaign wall time, microseconds.
    pub total_wall_us: u64,
    /// Sum of per-task wall times, microseconds (≫ `total_wall_us`
    /// when sharding helps).
    pub task_wall_us: u64,
    /// Cache hit/miss counters for this run.
    pub cache: CacheStatsSnapshot,
    /// Per-task rows, in spec order.
    pub tasks: Vec<TaskMetrics>,
}

impl CampaignMetrics {
    /// Assemble metrics from pool executions.
    pub fn from_executions<T>(
        jobs: usize,
        total_wall_us: u64,
        cache: CacheStatsSnapshot,
        labels: &[(String, &'static str)],
        execs: &[TaskExecution<T>],
    ) -> CampaignMetrics {
        let tasks: Vec<TaskMetrics> = execs
            .iter()
            .map(|e| TaskMetrics {
                index: e.index,
                label: labels[e.index].0.clone(),
                kind: labels[e.index].1.to_string(),
                ok: e.outcome.is_ok(),
                attempts: e.attempts,
                wall_us: e.wall.as_micros() as u64,
            })
            .collect();
        CampaignMetrics {
            jobs,
            succeeded: tasks.iter().filter(|t| t.ok).count(),
            failed: tasks.iter().filter(|t| !t.ok).count(),
            total_wall_us,
            task_wall_us: tasks.iter().map(|t| t.wall_us).sum(),
            cache,
            tasks,
        }
    }
}
