//! The content-addressed analysis cache.
//!
//! Four tables, all keyed by stable content identifiers
//! ([`cr_core::stable_hash`] or a deterministic config descriptor):
//!
//! * **filter verdicts** — keyed by `machine:sha256(filter code bytes)`
//!   ([`cr_core::seh::filter_key`]); identical filter code shared by
//!   several modules is symbolically executed exactly once per corpus
//!   lifetime;
//! * **module analyses** — summary rows keyed by the image content hash
//!   ([`cr_core::seh::image_content_hash`]); a warm rerun skips the
//!   whole module analysis, solver included;
//! * **static scans** — [`ScanSummary`] rows keyed by the ELF content
//!   hash ([`cr_scan::elf_content_hash`]); a warm rerun skips the
//!   CFG reconstruction and dataflow walk;
//! * **arena summaries** — [`cr_arena::ArenaSummary`] rows keyed by the
//!   strategy's full config descriptor (strategy, seed, rounds, filter
//!   module); a warm rerun skips every probe simulation of that
//!   strategy's rounds.
//!
//! With `--cache DIR` the cache persists as one JSONL file
//! (`analysis-cache.jsonl`, one entry per line, sorted by key so the
//! file is byte-stable), loaded before the campaign and rewritten
//! after. Without a directory the cache lives in memory only — still
//! useful, since campaigns repeat filter bodies across modules.
//!
//! ## Corruption handling
//!
//! Each persisted line is framed as `CRC32HEX ' ' JSON` (CRC-32/IEEE
//! over the JSON bytes). Loading validates the frame, the CRC and the
//! JSON shape; a line failing any check is **quarantined** — appended
//! verbatim to [`QUARANTINE_FILE`] and dropped from the tables — and
//! the load continues. A quarantined entry simply misses on its next
//! lookup and is recomputed; one torn write never costs a whole warm
//! cache. Unframed legacy lines (starting with `{`) still load.
//!
//! Saving is atomic: the file is written to a temporary sibling and
//! renamed into place, so a campaign killed mid-save leaves either the
//! old cache or the new one, never a torn hybrid.

use crate::json::Json;
use cr_arena::{ArenaPair, ArenaSummary};
use cr_core::seh::VerdictCache;
use cr_symex::FilterVerdict;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Name of the persisted cache file inside `--cache DIR`.
pub const CACHE_FILE: &str = "analysis-cache.jsonl";

/// Quarantine file: cache lines that failed CRC or parse validation,
/// appended verbatim at load time.
pub const QUARANTINE_FILE: &str = "cache.quarantine.jsonl";

/// A parsed module image held resident in memory, keyed by module
/// name and stamped with the image content hash. The serve layer keeps
/// these warm across requests so the Nth request for a module does
/// zero image generation and zero parsing; one-shot campaigns get the
/// same benefit for specs that repeat a module. Never persisted —
/// images are cheap to regenerate relative to their size on disk, and
/// the persisted [`SehSummary`] table already skips the analysis.
#[derive(Debug)]
pub struct ImageArtifact {
    /// Content hash of the image bytes ([`cr_core::seh::image_content_hash`]).
    pub hash: String,
    /// The parsed image.
    pub image: cr_image::PeImage,
}

/// Cached summary of one module analysis (the campaign-visible subset
/// of [`cr_core::seh::ModuleSehAnalysis`]).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct SehSummary {
    /// Module name.
    pub module: String,
    /// x64 container?
    pub is_x64: bool,
    /// Guarded locations before symbolic vetting (Table II "before").
    pub guarded_before: usize,
    /// Guarded locations after symbolic vetting (Table II "after").
    pub guarded_after: usize,
    /// Unique filters before vetting (Table III "before").
    pub filters_before: usize,
    /// Filters surviving vetting (Table III "after").
    pub filters_after: usize,
    /// Filters the executor could not decide.
    pub filters_undecided: usize,
}

/// Cached summary of one traceless static scan (the campaign-visible
/// subset of a [`cr_scan::ScanReport`]), keyed by the ELF content hash.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ScanSummary {
    /// Module (server or corpus) name.
    pub module: String,
    /// Syscall sites discovered.
    pub sites: usize,
    /// Sites whose number resolved to a constant.
    pub constant: usize,
    /// Sites whose number is loaded from memory (reported, not guessed).
    pub memory: usize,
    /// Sites tagged init-only.
    pub init_only: usize,
    /// Sites reachable from a serving loop (serving or both).
    pub serving: usize,
    /// Sites on no statically reachable path.
    pub unreached: usize,
}

impl ScanSummary {
    /// Condense a full scan report into its cacheable row.
    pub fn from_report(report: &cr_scan::ScanReport) -> ScanSummary {
        let c = report.counts();
        ScanSummary {
            module: report.module.clone(),
            sites: c.sites,
            constant: c.constant,
            memory: c.memory,
            init_only: c.init_only,
            serving: c.serving + c.both,
            unreached: c.unreached,
        }
    }
}

/// Hit/miss counters, shared across worker threads.
#[derive(Debug, Default)]
pub struct CacheStats {
    filter_hits: AtomicU64,
    filter_misses: AtomicU64,
    module_hits: AtomicU64,
    module_misses: AtomicU64,
    scan_hits: AtomicU64,
    scan_misses: AtomicU64,
    arena_hits: AtomicU64,
    arena_misses: AtomicU64,
    image_hits: AtomicU64,
    image_misses: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`], for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct CacheStatsSnapshot {
    /// Filter-verdict lookups served from the cache.
    pub filter_hits: u64,
    /// Filter-verdict lookups that fell through to symbolic execution.
    pub filter_misses: u64,
    /// Module lookups served from the cache.
    pub module_hits: u64,
    /// Module lookups that fell through to full analysis.
    pub module_misses: u64,
    /// Static-scan lookups served from the cache.
    pub scan_hits: u64,
    /// Static-scan lookups that fell through to a fresh CFG walk.
    pub scan_misses: u64,
    /// Arena-summary lookups served from the cache.
    pub arena_hits: u64,
    /// Arena-summary lookups that fell through to a fresh matrix run.
    pub arena_misses: u64,
    /// Parsed-image lookups served from the resident artifact table.
    pub image_hits: u64,
    /// Parsed-image lookups that fell through to generate + parse.
    pub image_misses: u64,
}

impl CacheStatsSnapshot {
    /// Hit fraction over the persistent content-addressed layers
    /// (filter verdicts + module summaries + scan summaries + arena
    /// summaries); 0.0 when nothing was looked up. Image traffic is
    /// excluded: the resident artifact table lives in process memory
    /// only, so a fresh process always misses it regardless of how warm
    /// the on-disk cache is.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.filter_hits + self.module_hits + self.scan_hits + self.arena_hits;
        let total =
            hits + self.filter_misses + self.module_misses + self.scan_misses + self.arena_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Tables {
    filters: HashMap<String, FilterVerdict>,
    modules: HashMap<String, SehSummary>,
    scans: HashMap<String, ScanSummary>,
    arenas: HashMap<String, ArenaSummary>,
}

/// The campaign-wide analysis cache. Cheap interior locking: entries
/// are tiny and lookups are rare next to the symbolic execution they
/// save, so a single `Mutex` is not a bottleneck.
#[derive(Default)]
pub struct AnalysisCache {
    tables: Mutex<Tables>,
    /// Resident parsed images, keyed by module name. Memory-only (see
    /// [`ImageArtifact`]); a separate lock so image lookups never
    /// contend with verdict traffic.
    images: Mutex<HashMap<String, std::sync::Arc<ImageArtifact>>>,
    stats: CacheStats,
    quarantined: AtomicU64,
}

impl AnalysisCache {
    /// Fresh, empty, memory-only cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Load the cache persisted under `dir`, or an empty cache when no
    /// file exists yet.
    ///
    /// Malformed lines (bad frame, CRC mismatch, unparseable JSON) do
    /// **not** fail the load: each is appended to [`QUARANTINE_FILE`],
    /// counted in [`AnalysisCache::quarantined`], and skipped, so the
    /// healthy remainder of the cache stays warm.
    ///
    /// # Errors
    ///
    /// Real I/O failure only (unreadable cache file, unwritable
    /// quarantine file).
    pub fn load(dir: &Path) -> io::Result<AnalysisCache> {
        let path = dir.join(CACHE_FILE);
        let cache = AnalysisCache::new();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(cache),
            Err(e) => return Err(e),
        };
        let mut quarantine: Vec<&str> = Vec::new();
        {
            let mut tables = cache.tables.lock().unwrap();
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let ok = unframe(line).and_then(|json| parse_entry(json, &mut tables));
                if ok.is_err() {
                    quarantine.push(line);
                }
            }
        }
        if !quarantine.is_empty() {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join(QUARANTINE_FILE))?;
            for line in &quarantine {
                f.write_all(line.as_bytes())?;
                f.write_all(b"\n")?;
            }
            cache
                .quarantined
                .store(quarantine.len() as u64, Ordering::Relaxed);
        }
        Ok(cache)
    }

    /// Lines rejected (and quarantined) by the last [`AnalysisCache::load`].
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Persist all entries under `dir` (created if missing). Entries
    /// are written sorted by key, so equal caches produce equal files.
    /// The write is atomic: a temporary file is renamed into place.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory or writing the file.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        self.save_with(dir, |_, _| {})
    }

    /// [`AnalysisCache::save`] with a per-record hook: `mutate` sees
    /// each framed line (`CRC32HEX ' ' JSON`) together with its index
    /// in the sorted save order, and may rewrite it in place. This is
    /// the fault-injection point for corrupt/torn record chaos — the
    /// index is the stable scope key a
    /// [`cr_chaos::FaultInjector`] decision is keyed on.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory or writing the file.
    pub fn save_with(&self, dir: &Path, mutate: impl FnMut(usize, &mut String)) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let out = self.render(mutate);
        // Write-then-rename: a crash mid-save leaves the old file
        // intact, never a torn hybrid.
        let tmp = dir.join(format!("{CACHE_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, out.as_bytes())?;
        std::fs::rename(&tmp, dir.join(CACHE_FILE))
    }

    /// Every persistent entry as the CRC-framed JSONL document
    /// [`AnalysisCache::save`] would write — sorted by key, so equal
    /// caches export equal bytes. This is the warm-cache replication
    /// payload: one node's export is another node's
    /// [`AnalysisCache::merge_jsonl`] input. Resident images are
    /// excluded (memory-only by design; each node re-parses from its
    /// replicated module summaries' source of truth).
    pub fn export_jsonl(&self) -> String {
        self.render(|_, _| {})
    }

    /// Merge CRC-framed JSONL records (the [`AnalysisCache::export_jsonl`]
    /// format) into this cache. Returns `(merged, rejected)` line
    /// counts. Entries are content-addressed, so a key collision
    /// replaces with an equal value; malformed or CRC-failing lines are
    /// rejected and counted, never quarantined to disk (the sender's
    /// copy is authoritative).
    pub fn merge_jsonl(&self, text: &str) -> (u64, u64) {
        let mut merged = 0u64;
        let mut rejected = 0u64;
        let mut tables = self.tables.lock().unwrap();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match unframe(line).and_then(|json| parse_entry(json, &mut tables)) {
                Ok(()) => merged += 1,
                Err(_) => rejected += 1,
            }
        }
        (merged, rejected)
    }

    fn render(&self, mut mutate: impl FnMut(usize, &mut String)) -> String {
        let tables = self.tables.lock().unwrap();
        let filters: BTreeMap<_, _> = tables.filters.iter().collect();
        let modules: BTreeMap<_, _> = tables.modules.iter().collect();
        let scans: BTreeMap<_, _> = tables.scans.iter().collect();
        let arenas: BTreeMap<_, _> = tables.arenas.iter().collect();
        let mut out = String::new();
        let mut index = 0usize;
        let mut push = |record: String, out: &mut String| {
            let mut line = frame(&record);
            mutate(index, &mut line);
            index += 1;
            out.push_str(&line);
            out.push('\n');
        };
        for (key, verdict) in filters {
            push(
                format!(
                    "{{\"kind\":\"filter\",\"key\":{},\"verdict\":{}}}",
                    serde::Serialize::to_json(key),
                    serde::Serialize::to_json(verdict)
                ),
                &mut out,
            );
        }
        for (key, summary) in modules {
            push(
                format!(
                    "{{\"kind\":\"module\",\"key\":{},\"summary\":{}}}",
                    serde::Serialize::to_json(key),
                    serde::Serialize::to_json(summary)
                ),
                &mut out,
            );
        }
        for (key, summary) in scans {
            push(
                format!(
                    "{{\"kind\":\"scan\",\"key\":{},\"summary\":{}}}",
                    serde::Serialize::to_json(key),
                    serde::Serialize::to_json(summary)
                ),
                &mut out,
            );
        }
        for (key, summary) in arenas {
            push(
                format!(
                    "{{\"kind\":\"arena\",\"key\":{},\"summary\":{}}}",
                    serde::Serialize::to_json(key),
                    serde::Serialize::to_json(summary)
                ),
                &mut out,
            );
        }
        drop(tables);
        out
    }

    /// Look up a filter verdict.
    pub fn get_filter(&self, key: &str) -> Option<FilterVerdict> {
        let hit = self.tables.lock().unwrap().filters.get(key).cloned();
        self.stats.count_filter(hit.is_some());
        hit
    }

    /// Store a filter verdict.
    pub fn put_filter(&self, key: &str, verdict: &FilterVerdict) {
        self.tables
            .lock()
            .unwrap()
            .filters
            .insert(key.to_string(), verdict.clone());
    }

    /// Look up a module summary.
    pub fn get_module(&self, key: &str) -> Option<SehSummary> {
        let hit = self.tables.lock().unwrap().modules.get(key).cloned();
        self.stats.count_module(hit.is_some());
        hit
    }

    /// Store a module summary.
    pub fn put_module(&self, key: &str, summary: &SehSummary) {
        self.tables
            .lock()
            .unwrap()
            .modules
            .insert(key.to_string(), summary.clone());
    }

    /// Look up a static-scan summary by ELF content hash.
    pub fn get_scan(&self, key: &str) -> Option<ScanSummary> {
        let hit = self.tables.lock().unwrap().scans.get(key).cloned();
        self.stats.count_scan(hit.is_some());
        hit
    }

    /// Store a static-scan summary.
    pub fn put_scan(&self, key: &str, summary: &ScanSummary) {
        self.tables
            .lock()
            .unwrap()
            .scans
            .insert(key.to_string(), summary.clone());
    }

    /// Look up an arena summary by config descriptor.
    pub fn get_arena(&self, key: &str) -> Option<ArenaSummary> {
        let hit = self.tables.lock().unwrap().arenas.get(key).cloned();
        self.stats.count_arena(hit.is_some());
        hit
    }

    /// Store an arena summary.
    pub fn put_arena(&self, key: &str, summary: &ArenaSummary) {
        self.tables
            .lock()
            .unwrap()
            .arenas
            .insert(key.to_string(), summary.clone());
    }

    /// Look up a resident parsed image by module name.
    pub fn get_image(&self, module: &str) -> Option<std::sync::Arc<ImageArtifact>> {
        let hit = self.images.lock().unwrap().get(module).cloned();
        self.stats.count_image(hit.is_some());
        hit
    }

    /// Store a parsed image under `module` and return the shared
    /// artifact handle (an existing entry for the module is replaced).
    pub fn put_image(
        &self,
        module: &str,
        hash: impl Into<String>,
        image: cr_image::PeImage,
    ) -> std::sync::Arc<ImageArtifact> {
        let artifact = std::sync::Arc::new(ImageArtifact {
            hash: hash.into(),
            image,
        });
        self.images
            .lock()
            .unwrap()
            .insert(module.to_string(), artifact.clone());
        artifact
    }

    /// Entry counts: `(filter_verdicts, module_summaries)`.
    pub fn len(&self) -> (usize, usize) {
        let t = self.tables.lock().unwrap();
        (t.filters.len(), t.modules.len())
    }

    /// Number of cached static-scan summaries.
    pub fn scan_len(&self) -> usize {
        self.tables.lock().unwrap().scans.len()
    }

    /// Number of cached arena summaries.
    pub fn arena_len(&self) -> usize {
        self.tables.lock().unwrap().arenas.len()
    }

    /// Whether all tables are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0) && self.scan_len() == 0 && self.arena_len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            filter_hits: self.stats.filter_hits.load(Ordering::Relaxed),
            filter_misses: self.stats.filter_misses.load(Ordering::Relaxed),
            module_hits: self.stats.module_hits.load(Ordering::Relaxed),
            module_misses: self.stats.module_misses.load(Ordering::Relaxed),
            scan_hits: self.stats.scan_hits.load(Ordering::Relaxed),
            scan_misses: self.stats.scan_misses.load(Ordering::Relaxed),
            arena_hits: self.stats.arena_hits.load(Ordering::Relaxed),
            arena_misses: self.stats.arena_misses.load(Ordering::Relaxed),
            image_hits: self.stats.image_hits.load(Ordering::Relaxed),
            image_misses: self.stats.image_misses.load(Ordering::Relaxed),
        }
    }
}

impl CacheStats {
    fn count_filter(&self, hit: bool) {
        let c = if hit {
            &self.filter_hits
        } else {
            &self.filter_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
    fn count_module(&self, hit: bool) {
        let c = if hit {
            &self.module_hits
        } else {
            &self.module_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
    fn count_scan(&self, hit: bool) {
        let c = if hit {
            &self.scan_hits
        } else {
            &self.scan_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
    fn count_arena(&self, hit: bool) {
        let c = if hit {
            &self.arena_hits
        } else {
            &self.arena_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
    fn count_image(&self, hit: bool) {
        let c = if hit {
            &self.image_hits
        } else {
            &self.image_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Adapter giving [`cr_core::seh::analyze_module_cached`] a view of a
/// shared [`AnalysisCache`] (the core trait wants `&mut self` for
/// `put`; the cache locks internally, so a shared reference suffices).
pub struct SharedVerdictCache<'a>(pub &'a AnalysisCache);

impl VerdictCache for SharedVerdictCache<'_> {
    fn get(&self, key: &str) -> Option<FilterVerdict> {
        self.0.get_filter(key)
    }
    fn put(&mut self, key: &str, verdict: &FilterVerdict) {
        self.0.put_filter(key, verdict);
    }
}

/// CRC-32/IEEE (the zlib polynomial), bitwise — entries are short and
/// saves are rare, so no table is warranted. Public because the serve
/// layer frames its wire protocol with the same checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frame one JSON record for persistence: `CRC32HEX ' ' JSON`.
fn frame(json: &str) -> String {
    format!("{:08x} {json}", crc32(json.as_bytes()))
}

/// Validate one persisted line and return its JSON payload. Bare
/// `{...}` lines (the pre-CRC format) pass through unchecked.
fn unframe(line: &str) -> Result<&str, String> {
    if line.starts_with('{') {
        return Ok(line); // legacy unframed record
    }
    let (tok, json) = line.split_once(' ').ok_or("missing CRC frame")?;
    if tok.len() != 8 || !tok.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("bad CRC token {tok:?}"));
    }
    let want = u32::from_str_radix(tok, 16).map_err(|e| e.to_string())?;
    let got = crc32(json.as_bytes());
    if got != want {
        return Err(format!("CRC mismatch: frame {want:08x}, payload {got:08x}"));
    }
    Ok(json)
}

fn parse_entry(line: &str, tables: &mut Tables) -> Result<(), String> {
    let v = Json::parse(line)?;
    let key = v
        .get("key")
        .and_then(Json::as_str)
        .ok_or("entry without string `key`")?
        .to_string();
    match v.get("kind").and_then(Json::as_str) {
        Some("filter") => {
            let verdict = parse_verdict(v.get("verdict").ok_or("filter entry without verdict")?)?;
            tables.filters.insert(key, verdict);
            Ok(())
        }
        Some("module") => {
            let summary = parse_summary(v.get("summary").ok_or("module entry without summary")?)?;
            tables.modules.insert(key, summary);
            Ok(())
        }
        Some("scan") => {
            let summary = parse_scan(v.get("summary").ok_or("scan entry without summary")?)?;
            tables.scans.insert(key, summary);
            Ok(())
        }
        Some("arena") => {
            let summary = parse_arena(v.get("summary").ok_or("arena entry without summary")?)?;
            tables.arenas.insert(key, summary);
            Ok(())
        }
        other => Err(format!("unknown entry kind {other:?}")),
    }
}

fn parse_verdict(v: &Json) -> Result<FilterVerdict, String> {
    // Externally tagged: a unit variant is a bare string, the rest are
    // single-key objects.
    if let Some(s) = v.as_str() {
        return match s {
            "RejectsAccessViolation" => Ok(FilterVerdict::RejectsAccessViolation),
            other => Err(format!("unknown unit verdict {other:?}")),
        };
    }
    if let Some(code) = v
        .get("AcceptsAccessViolation")
        .and_then(|p| p.get("witness_code"))
        .and_then(Json::as_u64)
    {
        return Ok(FilterVerdict::AcceptsAccessViolation { witness_code: code });
    }
    if let Some(reason) = v.get("Unknown").and_then(Json::as_str) {
        return Ok(FilterVerdict::Unknown(intern(reason)));
    }
    Err(format!("unparseable verdict {v:?}"))
}

fn parse_summary(v: &Json) -> Result<SehSummary, String> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("summary missing numeric {name:?}"))
    };
    Ok(SehSummary {
        module: v
            .get("module")
            .and_then(Json::as_str)
            .ok_or("summary missing `module`")?
            .to_string(),
        is_x64: v
            .get("is_x64")
            .and_then(Json::as_bool)
            .ok_or("summary missing `is_x64`")?,
        guarded_before: field("guarded_before")?,
        guarded_after: field("guarded_after")?,
        filters_before: field("filters_before")?,
        filters_after: field("filters_after")?,
        filters_undecided: field("filters_undecided")?,
    })
}

fn parse_scan(v: &Json) -> Result<ScanSummary, String> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("scan summary missing numeric {name:?}"))
    };
    Ok(ScanSummary {
        module: v
            .get("module")
            .and_then(Json::as_str)
            .ok_or("scan summary missing `module`")?
            .to_string(),
        sites: field("sites")?,
        constant: field("constant")?,
        memory: field("memory")?,
        init_only: field("init_only")?,
        serving: field("serving")?,
        unreached: field("unreached")?,
    })
}

fn parse_arena(v: &Json) -> Result<ArenaSummary, String> {
    let field = |v: &Json, name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("arena summary missing numeric {name:?}"))
    };
    let mut pairs = Vec::new();
    for p in v
        .get("pairs")
        .and_then(Json::as_arr)
        .ok_or("arena summary missing `pairs` array")?
    {
        pairs.push(ArenaPair {
            detector: p
                .get("detector")
                .and_then(Json::as_str)
                .ok_or("arena pair missing `detector`")?
                .to_string(),
            detected_rounds: field(p, "detected_rounds")? as usize,
            time_to_detect_ms: field(p, "time_to_detect_ms")?,
            false_positives: field(p, "false_positives")?,
            blocked_escalations: field(p, "blocked_escalations")?,
        });
    }
    Ok(ArenaSummary {
        strategy: v
            .get("strategy")
            .and_then(Json::as_str)
            .ok_or("arena summary missing `strategy`")?
            .to_string(),
        rounds: field(v, "rounds")? as usize,
        probes: field(v, "probes")?,
        dropped: field(v, "dropped")?,
        located_rounds: field(v, "located_rounds")? as usize,
        pairs,
    })
}

/// `FilterVerdict::Unknown` carries a `&'static str`; reloaded reasons
/// are interned in a process-global pool so repeated cache loads don't
/// leak a new allocation per load.
fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut pool = pool.lock().unwrap();
    if let Some(&existing) = pool.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cr-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_tables(cache: &AnalysisCache) {
        cache.put_filter("x64:aaaa", &FilterVerdict::RejectsAccessViolation);
        cache.put_filter(
            "x64:bbbb",
            &FilterVerdict::AcceptsAccessViolation {
                witness_code: 0xC0000005,
            },
        );
        cache.put_filter("x86:cccc", &FilterVerdict::Unknown("call to helper"));
        cache.put_module(
            "deadbeef",
            &SehSummary {
                module: "user32".into(),
                is_x64: true,
                guarded_before: 10,
                guarded_after: 3,
                filters_before: 7,
                filters_after: 2,
                filters_undecided: 1,
            },
        );
        cache.put_scan(
            "feedc0de",
            &ScanSummary {
                module: "vsftpd".into(),
                sites: 9,
                constant: 7,
                memory: 1,
                init_only: 3,
                serving: 4,
                unreached: 1,
            },
        );
        cache.put_arena(
            "stealth:s2017:r3:vsftpd",
            &ArenaSummary {
                strategy: "stealth".into(),
                rounds: 3,
                probes: 660,
                dropped: 0,
                located_rounds: 3,
                pairs: vec![ArenaPair {
                    detector: "cusum".into(),
                    detected_rounds: 3,
                    time_to_detect_ms: 700,
                    false_positives: 0,
                    blocked_escalations: 0,
                }],
            },
        );
    }

    #[test]
    fn round_trips_through_jsonl() {
        let dir = scratch("rt");
        let cache = AnalysisCache::new();
        sample_tables(&cache);
        cache.save(&dir).unwrap();

        let back = AnalysisCache::load(&dir).unwrap();
        assert_eq!(back.len(), (3, 1));
        assert_eq!(back.quarantined(), 0);
        assert_eq!(
            back.get_filter("x64:aaaa"),
            Some(FilterVerdict::RejectsAccessViolation)
        );
        assert_eq!(
            back.get_filter("x64:bbbb"),
            Some(FilterVerdict::AcceptsAccessViolation {
                witness_code: 0xC0000005
            })
        );
        assert_eq!(
            back.get_filter("x86:cccc"),
            Some(FilterVerdict::Unknown("call to helper"))
        );
        assert_eq!(back.get_module("deadbeef").unwrap().module, "user32");
        assert_eq!(back.scan_len(), 1);
        let scan = back.get_scan("feedc0de").unwrap();
        assert_eq!(
            (scan.module.as_str(), scan.sites, scan.serving),
            ("vsftpd", 9, 4)
        );
        assert_eq!(back.arena_len(), 1);
        let arena = back.get_arena("stealth:s2017:r3:vsftpd").unwrap();
        assert_eq!(
            (arena.strategy.as_str(), arena.probes, arena.located_rounds),
            ("stealth", 660, 3)
        );
        assert_eq!(arena.pairs.len(), 1);
        assert_eq!(arena.pairs[0].detector, "cusum");
        assert_eq!(arena.pairs[0].time_to_detect_ms, 700);

        // Saving the reloaded cache reproduces the file byte for byte.
        let bytes1 = std::fs::read(dir.join(CACHE_FILE)).unwrap();
        back.save(&dir).unwrap();
        let bytes2 = std::fs::read(dir.join(CACHE_FILE)).unwrap();
        assert_eq!(bytes1, bytes2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_persisted_line_is_crc_framed() {
        let dir = scratch("framed");
        let cache = AnalysisCache::new();
        sample_tables(&cache);
        cache.save(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join(CACHE_FILE)).unwrap();
        for line in text.lines() {
            let json = unframe(line).expect("valid frame");
            assert!(json.starts_with('{'));
            assert!(!line.starts_with('{'), "line must carry a CRC prefix");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_loads_empty() {
        let cache = AnalysisCache::load(Path::new("/nonexistent/cr-cache")).unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.quarantined(), 0);
    }

    /// Regression: a malformed line must not abort the whole load — it
    /// is quarantined and the healthy lines still come back warm.
    #[test]
    fn corrupt_lines_are_quarantined_not_fatal() {
        let dir = scratch("bad");
        let cache = AnalysisCache::new();
        sample_tables(&cache);
        cache.save(&dir).unwrap();

        // Corrupt one line: flip a payload byte under an intact CRC.
        let text = std::fs::read_to_string(dir.join(CACHE_FILE)).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let victim = lines
            .iter()
            .position(|l| l.contains("deadbeef"))
            .expect("module line");
        lines[victim] = lines[victim].replace("user32", "us#r32");
        // And append pure garbage plus a torn half-line.
        lines.push("not a cache line at all".into());
        let torn = &lines[0][..lines[0].len() / 2];
        lines.push(torn.to_string());
        std::fs::write(dir.join(CACHE_FILE), lines.join("\n")).unwrap();

        let back = AnalysisCache::load(&dir).expect("load must survive corruption");
        assert_eq!(back.quarantined(), 3);
        // Healthy entries stayed warm; the corrupted module dropped out.
        assert_eq!(back.len(), (3, 0));
        assert!(back.get_filter("x64:aaaa").is_some());
        assert!(back.get_module("deadbeef").is_none());
        // The rejects landed verbatim in the quarantine file.
        let q = std::fs::read_to_string(dir.join(QUARANTINE_FILE)).unwrap();
        assert_eq!(q.lines().count(), 3);
        assert!(q.contains("us#r32"));
        assert!(q.contains("not a cache line at all"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_unframed_lines_still_load() {
        let dir = scratch("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(CACHE_FILE),
            "{\"kind\":\"filter\",\"key\":\"x64:old\",\"verdict\":\"RejectsAccessViolation\"}\n",
        )
        .unwrap();
        let cache = AnalysisCache::load(&dir).unwrap();
        assert_eq!(cache.quarantined(), 0);
        assert_eq!(
            cache.get_filter("x64:old"),
            Some(FilterVerdict::RejectsAccessViolation)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_leaves_no_temporary_files() {
        let dir = scratch("atomic");
        let cache = AnalysisCache::new();
        sample_tables(&cache);
        cache.save(&dir).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![CACHE_FILE.to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_with_mutator_produces_quarantinable_lines() {
        let dir = scratch("mutate");
        let cache = AnalysisCache::new();
        sample_tables(&cache);
        // Corrupt record 1 and tear record 2 of the 6 sorted records.
        cache
            .save_with(&dir, |i, line| match i {
                1 => *line = line.replace('"', "#"),
                2 => line.truncate(line.len() / 2),
                _ => {}
            })
            .unwrap();
        let back = AnalysisCache::load(&dir).unwrap();
        assert_eq!(back.quarantined(), 2);
        // Records 1 and 2 (both filters in sorted order) dropped out;
        // filter 0 and the module survived.
        assert_eq!(back.len(), (1, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_and_merge_replicate_every_table() {
        let source = AnalysisCache::new();
        sample_tables(&source);
        let jsonl = source.export_jsonl();

        let sink = AnalysisCache::new();
        let (merged, rejected) = sink.merge_jsonl(&jsonl);
        assert_eq!((merged, rejected), (6, 0));
        assert_eq!(sink.len(), source.len());
        assert_eq!(sink.scan_len(), source.scan_len());
        assert_eq!(sink.arena_len(), source.arena_len());
        // Replication is idempotent: entries are content-addressed, so
        // a re-merge replaces equal values with equal values.
        let (merged2, rejected2) = sink.merge_jsonl(&jsonl);
        assert_eq!((merged2, rejected2), (6, 0));
        assert_eq!(sink.export_jsonl(), jsonl, "export round-trips");
        // Malformed input is rejected per line, never fatal.
        let (m, r) = sink.merge_jsonl("garbage line\n\n");
        assert_eq!((m, r), (0, 1));
        assert_eq!(sink.export_jsonl(), jsonl);
    }

    #[test]
    fn crc_rejects_single_byte_changes() {
        let line = frame(r#"{"kind":"filter","key":"k","verdict":"RejectsAccessViolation"}"#);
        assert!(unframe(&line).is_ok());
        let tampered = line.replace("filter", "filteR");
        assert!(unframe(&tampered).is_err());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let cache = AnalysisCache::new();
        sample_tables(&cache);
        assert!(cache.get_filter("x64:aaaa").is_some());
        assert!(cache.get_filter("x64:unknown").is_none());
        assert!(cache.get_module("deadbeef").is_some());
        assert!(cache.get_module("feedface").is_none());
        assert!(cache.get_scan("feedc0de").is_some());
        assert!(cache.get_scan("00000000").is_none());
        assert!(cache.get_arena("stealth:s2017:r3:vsftpd").is_some());
        assert!(cache.get_arena("linear:s0:r0:none").is_none());
        let s = cache.stats();
        assert_eq!((s.filter_hits, s.filter_misses), (1, 1));
        assert_eq!((s.module_hits, s.module_misses), (1, 1));
        assert_eq!((s.scan_hits, s.scan_misses), (1, 1));
        assert_eq!((s.arena_hits, s.arena_misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn image_artifacts_are_shared_and_counted() {
        let cache = AnalysisCache::new();
        assert!(cache.get_image("nginx.exe").is_none());
        let spec = cr_targets::browsers::full_population_specs()
            .into_iter()
            .next()
            .expect("non-empty population");
        let img = cr_targets::browsers::generate_dll(&spec);
        let put = cache.put_image("nginx.exe", "cafebabe", img);
        let got = cache.get_image("nginx.exe").expect("resident image");
        assert!(std::sync::Arc::ptr_eq(&put, &got));
        assert_eq!(got.hash, "cafebabe");
        let s = cache.stats();
        assert_eq!((s.image_hits, s.image_misses), (1, 1));
        // Image traffic is resident-only and stays out of the
        // persistent-cache hit rate.
        assert!((s.hit_rate() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn interning_reuses_reasons() {
        let a = intern("same reason");
        let b = intern("same reason");
        assert!(std::ptr::eq(a, b));
    }
}
