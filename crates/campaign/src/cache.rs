//! The content-addressed analysis cache.
//!
//! Two tables, both keyed by stable content hashes
//! ([`cr_core::stable_hash`]):
//!
//! * **filter verdicts** — keyed by `machine:sha256(filter code bytes)`
//!   ([`cr_core::seh::filter_key`]); identical filter code shared by
//!   several modules is symbolically executed exactly once per corpus
//!   lifetime;
//! * **module analyses** — summary rows keyed by the image content hash
//!   ([`cr_core::seh::image_content_hash`]); a warm rerun skips the
//!   whole module analysis, solver included.
//!
//! With `--cache DIR` the cache persists as one JSONL file
//! (`analysis-cache.jsonl`, one entry per line, sorted by key so the
//! file is byte-stable), loaded before the campaign and rewritten
//! after. Without a directory the cache lives in memory only — still
//! useful, since campaigns repeat filter bodies across modules.

use crate::json::Json;
use cr_core::seh::VerdictCache;
use cr_symex::FilterVerdict;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Name of the persisted cache file inside `--cache DIR`.
pub const CACHE_FILE: &str = "analysis-cache.jsonl";

/// Cached summary of one module analysis (the campaign-visible subset
/// of [`cr_core::seh::ModuleSehAnalysis`]).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct SehSummary {
    /// Module name.
    pub module: String,
    /// x64 container?
    pub is_x64: bool,
    /// Guarded locations before symbolic vetting (Table II "before").
    pub guarded_before: usize,
    /// Guarded locations after symbolic vetting (Table II "after").
    pub guarded_after: usize,
    /// Unique filters before vetting (Table III "before").
    pub filters_before: usize,
    /// Filters surviving vetting (Table III "after").
    pub filters_after: usize,
    /// Filters the executor could not decide.
    pub filters_undecided: usize,
}

/// Hit/miss counters, shared across worker threads.
#[derive(Debug, Default)]
pub struct CacheStats {
    filter_hits: AtomicU64,
    filter_misses: AtomicU64,
    module_hits: AtomicU64,
    module_misses: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`], for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct CacheStatsSnapshot {
    /// Filter-verdict lookups served from the cache.
    pub filter_hits: u64,
    /// Filter-verdict lookups that fell through to symbolic execution.
    pub filter_misses: u64,
    /// Module lookups served from the cache.
    pub module_hits: u64,
    /// Module lookups that fell through to full analysis.
    pub module_misses: u64,
}

impl CacheStatsSnapshot {
    /// Hit fraction over all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.filter_hits + self.module_hits;
        let total = hits + self.filter_misses + self.module_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Tables {
    filters: HashMap<String, FilterVerdict>,
    modules: HashMap<String, SehSummary>,
}

/// The campaign-wide analysis cache. Cheap interior locking: entries
/// are tiny and lookups are rare next to the symbolic execution they
/// save, so a single `Mutex` is not a bottleneck.
#[derive(Default)]
pub struct AnalysisCache {
    tables: Mutex<Tables>,
    stats: CacheStats,
}

impl AnalysisCache {
    /// Fresh, empty, memory-only cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Load the cache persisted under `dir`, or an empty cache when no
    /// file exists yet.
    ///
    /// # Errors
    ///
    /// I/O failure reading the file, or a malformed line (the cache is
    /// machine-written; corruption should be loud, not silent).
    pub fn load(dir: &Path) -> io::Result<AnalysisCache> {
        let path = dir.join(CACHE_FILE);
        let cache = AnalysisCache::new();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(cache),
            Err(e) => return Err(e),
        };
        let mut tables = cache.tables.lock().unwrap();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            parse_entry(line, &mut tables).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.display(), lineno + 1),
                )
            })?;
        }
        drop(tables);
        Ok(cache)
    }

    /// Persist all entries under `dir` (created if missing). Entries
    /// are written sorted by key, so equal caches produce equal files.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory or writing the file.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tables = self.tables.lock().unwrap();
        let filters: BTreeMap<_, _> = tables.filters.iter().collect();
        let modules: BTreeMap<_, _> = tables.modules.iter().collect();
        let mut out = String::new();
        for (key, verdict) in filters {
            out.push_str(&format!(
                "{{\"kind\":\"filter\",\"key\":{},\"verdict\":{}}}\n",
                serde::Serialize::to_json(key),
                serde::Serialize::to_json(verdict)
            ));
        }
        for (key, summary) in modules {
            out.push_str(&format!(
                "{{\"kind\":\"module\",\"key\":{},\"summary\":{}}}\n",
                serde::Serialize::to_json(key),
                serde::Serialize::to_json(summary)
            ));
        }
        drop(tables);
        let mut f = std::fs::File::create(dir.join(CACHE_FILE))?;
        f.write_all(out.as_bytes())
    }

    /// Look up a filter verdict.
    pub fn get_filter(&self, key: &str) -> Option<FilterVerdict> {
        let hit = self.tables.lock().unwrap().filters.get(key).cloned();
        self.stats.count_filter(hit.is_some());
        hit
    }

    /// Store a filter verdict.
    pub fn put_filter(&self, key: &str, verdict: &FilterVerdict) {
        self.tables
            .lock()
            .unwrap()
            .filters
            .insert(key.to_string(), verdict.clone());
    }

    /// Look up a module summary.
    pub fn get_module(&self, key: &str) -> Option<SehSummary> {
        let hit = self.tables.lock().unwrap().modules.get(key).cloned();
        self.stats.count_module(hit.is_some());
        hit
    }

    /// Store a module summary.
    pub fn put_module(&self, key: &str, summary: &SehSummary) {
        self.tables
            .lock()
            .unwrap()
            .modules
            .insert(key.to_string(), summary.clone());
    }

    /// Entry counts: `(filter_verdicts, module_summaries)`.
    pub fn len(&self) -> (usize, usize) {
        let t = self.tables.lock().unwrap();
        (t.filters.len(), t.modules.len())
    }

    /// Whether both tables are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0)
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            filter_hits: self.stats.filter_hits.load(Ordering::Relaxed),
            filter_misses: self.stats.filter_misses.load(Ordering::Relaxed),
            module_hits: self.stats.module_hits.load(Ordering::Relaxed),
            module_misses: self.stats.module_misses.load(Ordering::Relaxed),
        }
    }
}

impl CacheStats {
    fn count_filter(&self, hit: bool) {
        let c = if hit {
            &self.filter_hits
        } else {
            &self.filter_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
    fn count_module(&self, hit: bool) {
        let c = if hit {
            &self.module_hits
        } else {
            &self.module_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Adapter giving [`cr_core::seh::analyze_module_cached`] a view of a
/// shared [`AnalysisCache`] (the core trait wants `&mut self` for
/// `put`; the cache locks internally, so a shared reference suffices).
pub struct SharedVerdictCache<'a>(pub &'a AnalysisCache);

impl VerdictCache for SharedVerdictCache<'_> {
    fn get(&self, key: &str) -> Option<FilterVerdict> {
        self.0.get_filter(key)
    }
    fn put(&mut self, key: &str, verdict: &FilterVerdict) {
        self.0.put_filter(key, verdict);
    }
}

fn parse_entry(line: &str, tables: &mut Tables) -> Result<(), String> {
    let v = Json::parse(line)?;
    let key = v
        .get("key")
        .and_then(Json::as_str)
        .ok_or("entry without string `key`")?
        .to_string();
    match v.get("kind").and_then(Json::as_str) {
        Some("filter") => {
            let verdict = parse_verdict(v.get("verdict").ok_or("filter entry without verdict")?)?;
            tables.filters.insert(key, verdict);
            Ok(())
        }
        Some("module") => {
            let summary = parse_summary(v.get("summary").ok_or("module entry without summary")?)?;
            tables.modules.insert(key, summary);
            Ok(())
        }
        other => Err(format!("unknown entry kind {other:?}")),
    }
}

fn parse_verdict(v: &Json) -> Result<FilterVerdict, String> {
    // Externally tagged: a unit variant is a bare string, the rest are
    // single-key objects.
    if let Some(s) = v.as_str() {
        return match s {
            "RejectsAccessViolation" => Ok(FilterVerdict::RejectsAccessViolation),
            other => Err(format!("unknown unit verdict {other:?}")),
        };
    }
    if let Some(code) = v
        .get("AcceptsAccessViolation")
        .and_then(|p| p.get("witness_code"))
        .and_then(Json::as_u64)
    {
        return Ok(FilterVerdict::AcceptsAccessViolation { witness_code: code });
    }
    if let Some(reason) = v.get("Unknown").and_then(Json::as_str) {
        return Ok(FilterVerdict::Unknown(intern(reason)));
    }
    Err(format!("unparseable verdict {v:?}"))
}

fn parse_summary(v: &Json) -> Result<SehSummary, String> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("summary missing numeric {name:?}"))
    };
    Ok(SehSummary {
        module: v
            .get("module")
            .and_then(Json::as_str)
            .ok_or("summary missing `module`")?
            .to_string(),
        is_x64: v
            .get("is_x64")
            .and_then(Json::as_bool)
            .ok_or("summary missing `is_x64`")?,
        guarded_before: field("guarded_before")?,
        guarded_after: field("guarded_after")?,
        filters_before: field("filters_before")?,
        filters_after: field("filters_after")?,
        filters_undecided: field("filters_undecided")?,
    })
}

/// `FilterVerdict::Unknown` carries a `&'static str`; reloaded reasons
/// are interned in a process-global pool so repeated cache loads don't
/// leak a new allocation per load.
fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut pool = pool.lock().unwrap();
    if let Some(&existing) = pool.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tables(cache: &AnalysisCache) {
        cache.put_filter("x64:aaaa", &FilterVerdict::RejectsAccessViolation);
        cache.put_filter(
            "x64:bbbb",
            &FilterVerdict::AcceptsAccessViolation {
                witness_code: 0xC0000005,
            },
        );
        cache.put_filter("x86:cccc", &FilterVerdict::Unknown("call to helper"));
        cache.put_module(
            "deadbeef",
            &SehSummary {
                module: "user32".into(),
                is_x64: true,
                guarded_before: 10,
                guarded_after: 3,
                filters_before: 7,
                filters_after: 2,
                filters_undecided: 1,
            },
        );
    }

    #[test]
    fn round_trips_through_jsonl() {
        let dir = std::env::temp_dir().join(format!("cr-cache-rt-{}", std::process::id()));
        let cache = AnalysisCache::new();
        sample_tables(&cache);
        cache.save(&dir).unwrap();

        let back = AnalysisCache::load(&dir).unwrap();
        assert_eq!(back.len(), (3, 1));
        assert_eq!(
            back.get_filter("x64:aaaa"),
            Some(FilterVerdict::RejectsAccessViolation)
        );
        assert_eq!(
            back.get_filter("x64:bbbb"),
            Some(FilterVerdict::AcceptsAccessViolation {
                witness_code: 0xC0000005
            })
        );
        assert_eq!(
            back.get_filter("x86:cccc"),
            Some(FilterVerdict::Unknown("call to helper"))
        );
        assert_eq!(back.get_module("deadbeef").unwrap().module, "user32");

        // Saving the reloaded cache reproduces the file byte for byte.
        let bytes1 = std::fs::read(dir.join(CACHE_FILE)).unwrap();
        back.save(&dir).unwrap();
        let bytes2 = std::fs::read(dir.join(CACHE_FILE)).unwrap();
        assert_eq!(bytes1, bytes2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_loads_empty() {
        let cache = AnalysisCache::load(Path::new("/nonexistent/cr-cache")).unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn corrupt_lines_are_loud() {
        let dir = std::env::temp_dir().join(format!("cr-cache-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(CACHE_FILE), "{\"kind\":\"filter\"}\n").unwrap();
        assert!(AnalysisCache::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let cache = AnalysisCache::new();
        sample_tables(&cache);
        assert!(cache.get_filter("x64:aaaa").is_some());
        assert!(cache.get_filter("x64:unknown").is_none());
        assert!(cache.get_module("deadbeef").is_some());
        assert!(cache.get_module("feedface").is_none());
        let s = cache.stats();
        assert_eq!((s.filter_hits, s.filter_misses), (1, 1));
        assert_eq!((s.module_hits, s.module_misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn interning_reuses_reasons() {
        let a = intern("same reason");
        let b = intern("same reason");
        assert!(std::ptr::eq(a, b));
    }
}
