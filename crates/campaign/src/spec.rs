//! Campaign specifications — what a discovery campaign should run.
//!
//! A [`CampaignSpec`] enumerates independent analysis tasks over the
//! paper's three primitive families (Table I servers, §IV-C SEH
//! modules, the §V-B API funnel) plus the §VI PoC oracles. Specs
//! serialize to JSON (for `--spec` files and report embedding) and
//! parse back via the in-crate [`Json`](crate::json::Json) reader.

use crate::builder::CampaignSpecBuilder;
use crate::json::Json;

/// The six task families a campaign draws from. Serializes to the
/// same short names (`server` / `seh` / `funnel` / `poc` / `scan` /
/// `arena`) the metrics JSON always used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TaskKind {
    /// Table-I server syscall discovery.
    Server,
    /// §IV-C SEH module analysis.
    Seh,
    /// §V-B Windows API funnel.
    Funnel,
    /// §VI PoC memory-oracle scan.
    Poc,
    /// Traceless static syscall-site scan (cr-scan).
    Scan,
    /// Adversarial arena: one probing strategy vs the detector roster.
    Arena,
}

impl TaskKind {
    /// Every kind, in the stable reporting order.
    pub const ALL: [TaskKind; 6] = [
        TaskKind::Server,
        TaskKind::Seh,
        TaskKind::Funnel,
        TaskKind::Poc,
        TaskKind::Scan,
        TaskKind::Arena,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Server => "server",
            TaskKind::Seh => "seh",
            TaskKind::Funnel => "funnel",
            TaskKind::Poc => "poc",
            TaskKind::Scan => "scan",
            TaskKind::Arena => "arena",
        }
    }
}

impl serde::Serialize for TaskKind {
    fn write_json(&self, out: &mut String) {
        self.name().write_json(out);
    }
}

/// One unit of campaign work. Tasks are independent by construction —
/// the pool may run them in any order on any worker.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum CampaignTask {
    /// Run the Table-I syscall pipeline on one server target.
    ServerDiscovery(String),
    /// SEH-analyze one module from the §V-C population.
    SehAnalysis(String),
    /// Run the §V-B Windows API funnel with the given corpus size.
    ApiFunnel {
        /// Number of synthetic corpus functions (plus the curated set).
        corpus_size: usize,
    },
    /// Drive one §VI memory oracle over its probe window.
    PocScan(String),
    /// Statically scan one module (server target or harness-less
    /// corpus module) for syscall sites with temporal tags.
    StaticScan(String),
    /// Drive one arena probing strategy (by [`cr_arena::StrategyKind`]
    /// name) through the full detector roster.
    Arena(String),
}

impl CampaignTask {
    /// The task's family.
    pub fn kind(&self) -> TaskKind {
        match self {
            CampaignTask::ServerDiscovery(_) => TaskKind::Server,
            CampaignTask::SehAnalysis(_) => TaskKind::Seh,
            CampaignTask::ApiFunnel { .. } => TaskKind::Funnel,
            CampaignTask::PocScan(_) => TaskKind::Poc,
            CampaignTask::StaticScan(_) => TaskKind::Scan,
            CampaignTask::Arena(_) => TaskKind::Arena,
        }
    }

    /// Human-readable label, e.g. `seh:user32`.
    pub fn label(&self) -> String {
        match self {
            CampaignTask::ServerDiscovery(n) => format!("server:{n}"),
            CampaignTask::SehAnalysis(n) => format!("seh:{n}"),
            CampaignTask::ApiFunnel { corpus_size } => format!("funnel:{corpus_size}"),
            CampaignTask::PocScan(n) => format!("poc:{n}"),
            CampaignTask::StaticScan(n) => format!("scan:{n}"),
            CampaignTask::Arena(n) => format!("arena:{n}"),
        }
    }
}

/// A full campaign: a name, the RNG seed threaded into every
/// rand-driven workload, and the task list.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct CampaignSpec {
    /// Campaign name (report header).
    pub name: String,
    /// Seed for corpus generation and synthetic workloads.
    pub seed: u64,
    /// The tasks, in spec order. Report records keep this order
    /// regardless of worker scheduling.
    pub tasks: Vec<CampaignTask>,
}

/// Default seed — the paper's publication year, matching the CLI
/// funnel default.
pub const DEFAULT_SEED: u64 = 2017;

impl CampaignSpec {
    /// Start building a spec fluently; validation happens at
    /// [`CampaignSpecBuilder::build`].
    pub fn builder() -> CampaignSpecBuilder {
        CampaignSpecBuilder::new()
    }

    /// The built-in full campaign: every server, every calibrated DLL,
    /// the standard funnel, every PoC oracle.
    pub fn builtin(seed: u64) -> CampaignSpec {
        let mut b = CampaignSpec::builder().name("builtin-full").seed(seed);
        for s in ["nginx", "cherokee", "lighttpd", "memcached", "postgresql"] {
            b = b.server(s);
        }
        for c in cr_targets::browsers::CALIBRATION {
            b = b.seh(c.name);
        }
        b = b.funnel(2_000);
        for o in ["ie", "firefox", "nginx"] {
            b = b.poc(o);
        }
        for s in ["nginx", "cherokee", "lighttpd", "memcached", "postgresql"] {
            b = b.scan(s);
        }
        for m in cr_targets::corpus::modules() {
            b = b.scan(m.name);
        }
        for s in cr_arena::StrategyKind::ALL {
            b = b.arena(s.name());
        }
        b.build().expect("builtin spec is valid")
    }

    /// A small fixed campaign for smoke tests and chaos validation:
    /// one server, four modules, a small funnel, one oracle — every
    /// task family represented, but seconds instead of minutes.
    pub fn smoke(seed: u64) -> CampaignSpec {
        let mut b = CampaignSpec::builder()
            .name("builtin-smoke")
            .seed(seed)
            .server("nginx");
        for c in cr_targets::browsers::CALIBRATION.iter().take(4) {
            b = b.seh(c.name);
        }
        b.funnel(200)
            .poc("ie")
            .scan("vsftpd")
            .arena("bisect")
            .build()
            .expect("smoke spec is valid")
    }

    /// Parse a spec from its JSON form (the shape [`serde::Serialize`]
    /// emits; `name` and `seed` may be omitted).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let root = Json::parse(text)?;
        let name = match root.get("name") {
            Some(v) => v
                .as_str()
                .ok_or("spec `name` must be a string")?
                .to_string(),
            None => "campaign".to_string(),
        };
        let seed = match root.get("seed") {
            Some(v) => v
                .as_u64()
                .ok_or("spec `seed` must be a non-negative integer")?,
            None => DEFAULT_SEED,
        };
        let raw_tasks = root
            .get("tasks")
            .and_then(Json::as_arr)
            .ok_or("spec needs a `tasks` array")?;
        let mut tasks = Vec::with_capacity(raw_tasks.len());
        for t in raw_tasks {
            tasks.push(parse_task(t)?);
        }
        Ok(CampaignSpec { name, seed, tasks })
    }
}

fn parse_task(v: &Json) -> Result<CampaignTask, String> {
    let fields = v.as_obj().ok_or("each task must be an object")?;
    let [(tag, payload)] = fields else {
        return Err("each task must have exactly one variant key".into());
    };
    match tag.as_str() {
        "ServerDiscovery" => Ok(CampaignTask::ServerDiscovery(
            payload
                .as_str()
                .ok_or("ServerDiscovery takes a server name")?
                .to_string(),
        )),
        "SehAnalysis" => Ok(CampaignTask::SehAnalysis(
            payload
                .as_str()
                .ok_or("SehAnalysis takes a module name")?
                .to_string(),
        )),
        "ApiFunnel" => {
            let corpus_size = payload
                .get("corpus_size")
                .and_then(Json::as_usize)
                .ok_or("ApiFunnel takes {\"corpus_size\": N}")?;
            Ok(CampaignTask::ApiFunnel { corpus_size })
        }
        "PocScan" => Ok(CampaignTask::PocScan(
            payload
                .as_str()
                .ok_or("PocScan takes an oracle name")?
                .to_string(),
        )),
        "StaticScan" => Ok(CampaignTask::StaticScan(
            payload
                .as_str()
                .ok_or("StaticScan takes a module name")?
                .to_string(),
        )),
        "Arena" => Ok(CampaignTask::Arena(
            payload
                .as_str()
                .ok_or("Arena takes a strategy name")?
                .to_string(),
        )),
        other => Err(format!("unknown task kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn builtin_covers_all_families() {
        let spec = CampaignSpec::builtin(DEFAULT_SEED);
        for kind in TaskKind::ALL {
            assert!(
                spec.tasks.iter().any(|t| t.kind() == kind),
                "missing {}",
                kind.name()
            );
        }
        assert_eq!(
            spec.tasks
                .iter()
                .filter(|t| t.kind() == TaskKind::Seh)
                .count(),
            10
        );
        // The builder keeps spec order: servers, modules, funnel,
        // pocs, scans, arena strategies.
        assert_eq!(spec.tasks[0].kind(), TaskKind::Server);
        assert_eq!(spec.tasks.last().unwrap().kind(), TaskKind::Arena);
        assert_eq!(
            spec.tasks
                .iter()
                .filter(|t| t.kind() == TaskKind::Arena)
                .count(),
            4,
            "one task per probing strategy"
        );
    }

    #[test]
    fn smoke_covers_all_families_but_stays_small() {
        let spec = CampaignSpec::smoke(DEFAULT_SEED);
        for kind in TaskKind::ALL {
            assert!(
                spec.tasks.iter().any(|t| t.kind() == kind),
                "missing {}",
                kind.name()
            );
        }
        assert!(spec.tasks.len() <= 9);
    }

    #[test]
    fn kind_names_serialize_like_the_old_strings() {
        let names: Vec<&str> = TaskKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["server", "seh", "funnel", "poc", "scan", "arena"]);
        assert_eq!(TaskKind::Seh.to_json(), "\"seh\"");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = CampaignSpec::builder()
            .name("rt")
            .seed(99)
            .server("nginx")
            .seh("user32")
            .funnel(123)
            .poc("ie")
            .scan("vsftpd")
            .arena("stealth")
            .build()
            .unwrap();
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn defaults_fill_in() {
        let spec = CampaignSpec::from_json(r#"{"tasks":[{"PocScan":"ie"}]}"#).unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.tasks.len(), 1);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(CampaignSpec::from_json("{}").is_err());
        assert!(CampaignSpec::from_json(r#"{"tasks":[{"Bogus":1}]}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"tasks":[{"ApiFunnel":{}}]}"#).is_err());
        assert!(CampaignSpec::from_json(
            r#"{"tasks":[{"ServerDiscovery":"a","SehAnalysis":"b"}]}"#
        )
        .is_err());
    }
}
