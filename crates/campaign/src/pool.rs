//! Work-stealing worker pool with panic isolation, per-task deadlines,
//! and seeded retry backoff.
//!
//! `jobs = N` spawns N scoped worker threads that pull task indices
//! from a shared atomic counter — the degenerate (and contention-free)
//! form of work stealing: every worker steals the next undone task, so
//! long tasks never serialize behind short ones and no static
//! partitioning is needed.
//!
//! Robustness semantics per task:
//!
//! * each attempt runs under [`std::panic::catch_unwind`] — a panic is
//!   classified [`TaskErrorKind::Panic`](crate::error::TaskErrorKind)
//!   without taking the worker down;
//! * each attempt gets a [`TaskCtx`] carrying a *virtual* clock: code
//!   that stalls (really or via fault injection) charges virtual
//!   milliseconds with [`TaskCtx::stall`], and exceeding the configured
//!   deadline classifies the attempt
//!   [`TaskErrorKind::TimedOut`](crate::error::TaskErrorKind). Virtual
//!   time never sleeps, so chaos runs stay fast and deterministic;
//! * an optional wall-clock watchdog (off by default — wall time is
//!   nondeterministic) cancels attempts cooperatively: the watchdog
//!   thread flips a per-task flag that [`TaskCtx::checkpoint`] turns
//!   into `TimedOut`;
//! * failed attempts back off exponentially with seeded jitter before
//!   retrying, and every attempt derives a fresh seed from
//!   `(pool seed, task index, attempt)` — a retry is a genuinely new
//!   trial, not a replay of the failing one;
//! * every failed attempt's classified error is kept in
//!   [`TaskExecution::attempt_errors`] so reports can account for
//!   recovered faults, not just terminal ones.
//!
//! The workspace vendors no `crossbeam`/`rayon` (offline build), so
//! the pool is plain `std`: [`std::thread::scope`] + atomics.

use crate::error::TaskError;
use cr_chaos::derive_seed;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pool knobs. [`PoolConfig::default`] is serial, one retry, a
/// 200 ms virtual deadline and no wall watchdog.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (values < 1 degrade to 1).
    pub jobs: usize,
    /// Extra attempts for a failing task.
    pub retries: u32,
    /// Base seed; attempt `a` of task `i` runs with
    /// `derive_seed(&[seed, i, a])` for `a > 0` and `seed` itself for
    /// the first attempt (so fault-free runs are seed-stable).
    pub seed: u64,
    /// Per-attempt *virtual* deadline in milliseconds; `None` disables
    /// deadline classification entirely.
    pub deadline_ms: Option<u64>,
    /// Per-attempt *wall-clock* watchdog in milliseconds; `None` (the
    /// default) disables the watchdog thread. Cancellation is
    /// cooperative — tasks notice at their next [`TaskCtx::checkpoint`].
    pub wall_watchdog_ms: Option<u64>,
    /// Backoff before retry `a` is `min(cap, base << (a-1))` plus
    /// seeded jitter in `[0, base)` milliseconds.
    pub backoff_base_ms: u64,
    /// Upper bound for the exponential backoff component.
    pub backoff_cap_ms: u64,
    /// External abort flag (request cancellation, server shutdown
    /// deadline). Checked before every attempt: once set, remaining
    /// tasks fail fast as
    /// [`TaskErrorKind::Cancelled`](crate::error::TaskErrorKind)
    /// without running. `None` (the default) never aborts.
    pub abort: Option<Arc<AtomicBool>>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            jobs: 1,
            retries: 1,
            seed: 0,
            deadline_ms: Some(DEFAULT_DEADLINE_MS),
            wall_watchdog_ms: None,
            backoff_base_ms: 1,
            backoff_cap_ms: 64,
            abort: None,
        }
    }
}

/// Default per-attempt virtual deadline (milliseconds).
pub const DEFAULT_DEADLINE_MS: u64 = 200;

/// Per-attempt execution context handed to the task closure.
///
/// Carries the attempt's derived seed, the virtual clock, and the
/// cooperative cancellation flag. Not `Sync` (the virtual clock is a
/// [`Cell`]); each attempt gets its own.
pub struct TaskCtx<'a> {
    /// Task index in submission order (the stable fault-scope key).
    pub index: usize,
    /// Attempt number, 0-based.
    pub attempt: u32,
    /// Seed for this attempt (fresh per attempt — see [`PoolConfig::seed`]).
    pub seed: u64,
    cancel: &'a AtomicBool,
    virtual_ms: Cell<u64>,
    deadline_ms: Option<u64>,
}

impl TaskCtx<'_> {
    /// Charge `ms` virtual milliseconds to this attempt's clock.
    ///
    /// # Errors
    ///
    /// [`TaskErrorKind::TimedOut`](crate::error::TaskErrorKind) when the
    /// accumulated virtual time exceeds the configured deadline, or when
    /// the wall watchdog has cancelled this task.
    pub fn stall(&self, ms: u64) -> Result<(), TaskError> {
        let t = self.virtual_ms.get().saturating_add(ms);
        self.virtual_ms.set(t);
        cr_trace::advance_virtual(ms);
        if let Some(d) = self.deadline_ms {
            if t > d {
                return Err(TaskError::timed_out(format!(
                    "task {} attempt {}: virtual clock {t}ms exceeded deadline {d}ms",
                    self.index, self.attempt
                )));
            }
        }
        self.checkpoint()
    }

    /// Cooperative cancellation point.
    ///
    /// # Errors
    ///
    /// [`TaskErrorKind::TimedOut`](crate::error::TaskErrorKind) when the
    /// wall watchdog cancelled this task.
    pub fn checkpoint(&self) -> Result<(), TaskError> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(TaskError::timed_out(format!(
                "task {} attempt {}: cancelled by wall-clock watchdog",
                self.index, self.attempt
            )));
        }
        Ok(())
    }

    /// Virtual milliseconds charged so far this attempt.
    pub fn virtual_ms(&self) -> u64 {
        self.virtual_ms.get()
    }
}

/// What happened to one task, with scheduling metadata.
#[derive(Debug)]
pub struct TaskExecution<T> {
    /// Index of the task in the submitted order.
    pub index: usize,
    /// Attempts used (1 = first-try success).
    pub attempts: u32,
    /// Wall time across all attempts (including backoff).
    pub wall: Duration,
    /// The task's value, or the final attempt's classified error.
    pub outcome: Result<T, TaskError>,
    /// The classified error of every *failed* attempt, in attempt
    /// order. Non-empty even when `outcome` is `Ok` (the task
    /// recovered on retry).
    pub attempt_errors: Vec<TaskError>,
    /// Total milliseconds slept in retry backoff.
    pub backoff_ms: u64,
}

/// Run `count` tasks on a pool configured by `cfg`. Results come back
/// in task order, one entry per task, regardless of which worker ran
/// what when.
///
/// `task` must be callable from any worker — shared state goes through
/// interior mutability (the campaign cache already locks internally).
/// A returned `Err` is a classified failure; a panic is caught and
/// classified as [`TaskErrorKind::Panic`](crate::error::TaskErrorKind).
/// Either failure is retried up to `cfg.retries` extra times.
///
/// # Panics
///
/// Panics only on poisoned internal locks (i.e. never, unless the
/// allocator itself fails mid-collection).
pub fn run_pool<T, F>(cfg: &PoolConfig, count: usize, task: F) -> Vec<TaskExecution<T>>
where
    T: Send,
    F: Fn(&TaskCtx) -> Result<T, TaskError> + Sync,
{
    let jobs = cfg.jobs.max(1).min(count.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TaskExecution<T>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let cancels: Vec<AtomicBool> = (0..count).map(|_| AtomicBool::new(false)).collect();
    // Attempt start times for the wall watchdog: task index -> Instant.
    let running: Vec<Mutex<Option<Instant>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let done = AtomicBool::new(false);

    let worker = |_worker_id: usize| loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        if index >= count {
            break;
        }
        let exec = run_one(cfg, index, &cancels[index], &running[index], &task);
        *slots[index].lock().unwrap() = Some(exec);
        // Drain this worker's trace ring at the task boundary so
        // long-lived workers never overflow it mid-campaign.
        cr_trace::flush_local();
    };

    if jobs == 1 && cfg.wall_watchdog_ms.is_none() {
        // Inline fast path: same isolation semantics, no threads.
        worker(0);
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs).map(|id| s.spawn(move || worker(id))).collect();
            if let Some(limit_ms) = cfg.wall_watchdog_ms {
                let (done, cancels, running) = (&done, &cancels[..], &running[..]);
                s.spawn(move || watchdog(limit_ms, done, cancels, running));
            }
            for h in handles {
                let _ = h.join();
            }
            done.store(true, Ordering::Relaxed);
        });
    }

    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every index was claimed"))
        .collect()
}

/// Watchdog loop: cancel any attempt running longer than `limit_ms`
/// wall milliseconds. Runs until `done` is set by the pool.
fn watchdog(
    limit_ms: u64,
    done: &AtomicBool,
    cancels: &[AtomicBool],
    running: &[Mutex<Option<Instant>>],
) {
    let tick = Duration::from_millis((limit_ms / 4).clamp(1, 20));
    while !done.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        for (index, start) in running.iter().enumerate() {
            let expired = start
                .lock()
                .unwrap()
                .is_some_and(|t| t.elapsed().as_millis() as u64 > limit_ms);
            if expired {
                cancels[index].store(true, Ordering::Relaxed);
            }
        }
    }
}

fn run_one<T, F>(
    cfg: &PoolConfig,
    index: usize,
    cancel: &AtomicBool,
    running: &Mutex<Option<Instant>>,
    task: &F,
) -> TaskExecution<T>
where
    F: Fn(&TaskCtx) -> Result<T, TaskError>,
{
    // Outcome of one attempt, decided inside its trace scope so retry
    // events share the attempt's deterministic sequence numbering.
    enum AttemptStep<T> {
        Done(T),
        Failed(TaskError, u64),
    }
    let started = Instant::now();
    let mut attempt_errors = Vec::new();
    let mut backoff_ms = 0u64;
    for attempt in 0..=cfg.retries {
        if cfg
            .abort
            .as_ref()
            .is_some_and(|a| a.load(Ordering::Relaxed))
        {
            let err = TaskError::cancelled(format!(
                "task {index}: campaign aborted before attempt {attempt}"
            ));
            attempt_errors.push(err.clone());
            return TaskExecution {
                index,
                attempts: attempt + 1,
                wall: started.elapsed(),
                outcome: Err(err),
                attempt_errors,
                backoff_ms,
            };
        }
        let ctx = TaskCtx {
            index,
            attempt,
            seed: attempt_seed(cfg.seed, index, attempt),
            cancel,
            virtual_ms: Cell::new(0),
            deadline_ms: cfg.deadline_ms,
        };
        cancel.store(false, Ordering::Relaxed);
        *running.lock().unwrap() = Some(Instant::now());
        let step = cr_trace::task_scope(index as u64, attempt, || {
            let outcome = catch_unwind(AssertUnwindSafe(|| task(&ctx)));
            let error = match outcome {
                Ok(Ok(value)) => return AttemptStep::Done(value),
                Ok(Err(e)) => e,
                Err(payload) => TaskError::panic(panic_message(payload.as_ref())),
            };
            let pause = if attempt < cfg.retries {
                let pause = backoff_pause(cfg, index, attempt);
                cr_trace::emit(cr_trace::Stage::Retry, "backoff", || {
                    format!("error={} pause_ms={pause}", error.kind.name())
                });
                pause
            } else {
                0
            };
            AttemptStep::Failed(error, pause)
        });
        *running.lock().unwrap() = None;
        match step {
            AttemptStep::Done(value) => {
                return TaskExecution {
                    index,
                    attempts: attempt + 1,
                    wall: started.elapsed(),
                    outcome: Ok(value),
                    attempt_errors,
                    backoff_ms,
                };
            }
            AttemptStep::Failed(error, pause) => {
                attempt_errors.push(error);
                backoff_ms += pause;
                if pause > 0 {
                    std::thread::sleep(Duration::from_millis(pause));
                }
            }
        }
    }
    TaskExecution {
        index,
        attempts: cfg.retries + 1,
        wall: started.elapsed(),
        outcome: Err(attempt_errors.last().expect("at least one attempt").clone()),
        attempt_errors,
        backoff_ms,
    }
}

/// Seed for attempt `attempt` of task `index`: the pool seed itself on
/// the first attempt (fault-free runs are seed-stable), a fresh
/// derivation afterwards so retries are new trials.
pub fn attempt_seed(seed: u64, index: usize, attempt: u32) -> u64 {
    if attempt == 0 {
        seed
    } else {
        derive_seed(&[seed, index as u64, attempt as u64])
    }
}

/// Backoff (milliseconds) after failed attempt `attempt` of task
/// `index`: exponential in the attempt, capped, plus seeded jitter so
/// simultaneously failing tasks do not retry in lockstep.
fn backoff_pause(cfg: &PoolConfig, index: usize, attempt: u32) -> u64 {
    if cfg.backoff_base_ms == 0 {
        return 0;
    }
    let exp = cfg
        .backoff_base_ms
        .saturating_shl(attempt.min(16))
        .min(cfg.backoff_cap_ms);
    let jitter = derive_seed(&[cfg.seed, index as u64, attempt as u64, 0xBAC0FF])
        % cfg.backoff_base_ms.max(1);
    exp + jitter
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}
impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TaskErrorKind;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicU32;

    fn quick(jobs: usize, retries: u32) -> PoolConfig {
        PoolConfig {
            jobs,
            retries,
            seed: 42,
            backoff_base_ms: 0,
            ..PoolConfig::default()
        }
    }

    #[test]
    fn runs_every_task_exactly_once_in_order() {
        for jobs in [1, 2, 8] {
            let hits: Vec<AtomicU32> = (0..40).map(|_| AtomicU32::new(0)).collect();
            let out = run_pool(&quick(jobs, 0), 40, |ctx| {
                hits[ctx.index].fetch_add(1, Ordering::Relaxed);
                Ok(ctx.index * 3)
            });
            assert_eq!(out.len(), 40);
            for (i, e) in out.iter().enumerate() {
                assert_eq!(e.index, i);
                assert_eq!(e.attempts, 1);
                assert!(e.attempt_errors.is_empty());
                assert_eq!(*e.outcome.as_ref().unwrap(), i * 3);
            }
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_workers_really_share_the_queue() {
        let seen = Mutex::new(BTreeSet::new());
        run_pool(&quick(4, 0), 50, |ctx| {
            // Long enough that one worker cannot drain the queue before
            // the other three have spawned.
            std::thread::sleep(Duration::from_millis(2));
            seen.lock()
                .unwrap()
                .insert((ctx.index, format!("{:?}", std::thread::current().id())));
            Ok(())
        });
        let ids: BTreeSet<String> = seen
            .lock()
            .unwrap()
            .iter()
            .map(|(_, t)| t.clone())
            .collect();
        assert!(
            ids.len() > 1,
            "with 4 workers and 50 tasks, >1 thread must run tasks"
        );
    }

    #[test]
    fn panicking_task_is_retried_then_reported() {
        let tries = AtomicU32::new(0);
        let out = run_pool(&quick(2, 2), 3, |ctx| {
            if ctx.index == 1 {
                tries.fetch_add(1, Ordering::Relaxed);
                panic!("task {} exploded", ctx.index);
            }
            Ok(ctx.index)
        });
        assert_eq!(tries.load(Ordering::Relaxed), 3, "1 try + 2 retries");
        assert_eq!(out[0].outcome.as_ref().unwrap(), &0);
        assert_eq!(out[2].outcome.as_ref().unwrap(), &2);
        assert_eq!(out[1].attempts, 3);
        let err = out[1].outcome.as_ref().unwrap_err();
        assert_eq!(err.kind, TaskErrorKind::Panic);
        assert_eq!(err.message, "task 1 exploded");
        assert_eq!(out[1].attempt_errors.len(), 3);
    }

    #[test]
    fn flaky_task_succeeds_on_retry_and_keeps_the_error() {
        let tries = AtomicU32::new(0);
        let out = run_pool(&quick(1, 3), 1, |_| {
            if tries.fetch_add(1, Ordering::Relaxed) == 0 {
                return Err(TaskError::io("first attempt only"));
            }
            Ok(7u32)
        });
        assert_eq!(out[0].attempts, 2);
        assert_eq!(*out[0].outcome.as_ref().unwrap(), 7);
        assert_eq!(out[0].attempt_errors.len(), 1);
        assert_eq!(out[0].attempt_errors[0].kind, TaskErrorKind::Io);
    }

    #[test]
    fn attempt_seeds_differ_but_first_is_stable() {
        assert_eq!(attempt_seed(99, 5, 0), 99);
        let s1 = attempt_seed(99, 5, 1);
        let s2 = attempt_seed(99, 5, 2);
        assert_ne!(s1, 99);
        assert_ne!(s1, s2);
        assert_ne!(attempt_seed(99, 6, 1), s1, "seed is per-task");
    }

    #[test]
    fn virtual_deadline_classifies_timed_out() {
        let cfg = PoolConfig {
            deadline_ms: Some(100),
            ..quick(1, 0)
        };
        let out = run_pool(&cfg, 2, |ctx| {
            if ctx.index == 0 {
                ctx.stall(250)?; // exceeds the 100ms virtual deadline
                unreachable!("stall past deadline must error");
            }
            ctx.stall(50)?; // within deadline: fine
            Ok(ctx.virtual_ms())
        });
        let err = out[0].outcome.as_ref().unwrap_err();
        assert_eq!(err.kind, TaskErrorKind::TimedOut);
        assert!(err.message.contains("250ms"), "{}", err.message);
        assert_eq!(*out[1].outcome.as_ref().unwrap(), 50);
    }

    #[test]
    fn stall_accumulates_across_calls() {
        let cfg = PoolConfig {
            deadline_ms: Some(100),
            ..quick(1, 0)
        };
        let out = run_pool(&cfg, 1, |ctx| -> Result<(), TaskError> {
            ctx.stall(60)?;
            ctx.stall(60)?; // 120 total > 100
            unreachable!();
        });
        assert_eq!(
            out[0].outcome.as_ref().unwrap_err().kind,
            TaskErrorKind::TimedOut
        );
    }

    #[test]
    fn wall_watchdog_cancels_stuck_tasks() {
        let cfg = PoolConfig {
            wall_watchdog_ms: Some(20),
            ..quick(2, 0)
        };
        let out = run_pool(&cfg, 2, |ctx| {
            if ctx.index == 0 {
                // "Stuck" loop that still hits checkpoints.
                let start = Instant::now();
                while start.elapsed() < Duration::from_secs(5) {
                    ctx.checkpoint()?;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Ok(())
        });
        let err = out[0].outcome.as_ref().unwrap_err();
        assert_eq!(err.kind, TaskErrorKind::TimedOut);
        assert!(err.message.contains("watchdog"), "{}", err.message);
        assert!(out[1].outcome.is_ok());
    }

    #[test]
    fn backoff_grows_and_is_recorded() {
        let tries = AtomicU32::new(0);
        let cfg = PoolConfig {
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            ..quick(1, 3)
        };
        let out = run_pool(&cfg, 1, |_| {
            tries.fetch_add(1, Ordering::Relaxed);
            Err::<(), _>(TaskError::io("always fails"))
        });
        assert_eq!(out[0].attempts, 4);
        // 3 backoffs of at least base ms each, plus jitter.
        assert!(out[0].backoff_ms >= 3, "got {}", out[0].backoff_ms);
        assert!(out[0].wall >= Duration::from_millis(3));
    }

    #[test]
    fn abort_flag_fails_remaining_tasks_fast() {
        let abort = Arc::new(AtomicBool::new(false));
        let cfg = PoolConfig {
            abort: Some(abort.clone()),
            ..quick(1, 2)
        };
        let ran = AtomicU32::new(0);
        let out = run_pool(&cfg, 4, |ctx| {
            ran.fetch_add(1, Ordering::Relaxed);
            if ctx.index == 1 {
                abort.store(true, Ordering::Relaxed);
            }
            Ok(ctx.index)
        });
        // Tasks 0 and 1 ran; 2 and 3 were cancelled without running.
        assert_eq!(ran.load(Ordering::Relaxed), 2);
        assert!(out[0].outcome.is_ok());
        assert!(out[1].outcome.is_ok());
        for e in &out[2..] {
            let err = e.outcome.as_ref().unwrap_err();
            assert_eq!(err.kind, TaskErrorKind::Cancelled);
            assert_eq!(e.attempts, 1, "no attempt ran");
        }
    }

    #[test]
    fn zero_jobs_degrades_to_one() {
        let out = run_pool(&quick(0, 0), 2, |ctx| Ok(ctx.index));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.outcome.is_ok()));
    }
}
