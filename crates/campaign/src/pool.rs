//! Work-stealing worker pool with per-task panic isolation.
//!
//! `--jobs N` spawns N scoped worker threads that pull task indices
//! from a shared atomic counter — the degenerate (and contention-free)
//! form of work stealing: every worker steals the next undone task, so
//! long tasks never serialize behind short ones and no static
//! partitioning is needed. Each task runs under
//! [`std::panic::catch_unwind`]: a panicking task is retried up to the
//! configured bound and, if it keeps failing, recorded as failed
//! without taking the worker (or the campaign) down.
//!
//! The workspace vendors no `crossbeam`/`rayon` (offline build), so
//! the pool is plain `std`: [`std::thread::scope`] + atomics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What happened to one task, with scheduling metadata.
#[derive(Debug)]
pub struct TaskExecution<T> {
    /// Index of the task in the submitted order.
    pub index: usize,
    /// 1 for a first-try success; `1 + retries` when every attempt
    /// panicked.
    pub attempts: u32,
    /// Wall time across all attempts.
    pub wall: Duration,
    /// The task's value, or the final panic message.
    pub outcome: Result<T, String>,
}

/// Run `count` tasks on `jobs` workers, retrying each panicking task
/// up to `retries` extra times. Results come back in task order, one
/// entry per task, regardless of which worker ran what when.
///
/// `task` must be callable from any worker — shared state goes through
/// interior mutability (the campaign cache already locks internally).
///
/// # Panics
///
/// Panics only on poisoned internal locks (i.e. never, unless the
/// allocator itself fails mid-collection).
pub fn run_sharded<T, F>(jobs: usize, count: usize, retries: u32, task: F) -> Vec<TaskExecution<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TaskExecution<T>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();

    let worker = |_worker_id: usize| loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        if index >= count {
            break;
        }
        let exec = run_one(index, retries, &task);
        *slots[index].lock().unwrap() = Some(exec);
    };

    if jobs == 1 {
        // Inline fast path: same isolation semantics, no threads.
        worker(0);
    } else {
        std::thread::scope(|s| {
            for id in 0..jobs {
                s.spawn(move || worker(id));
            }
        });
    }

    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every index was claimed"))
        .collect()
}

fn run_one<T, F>(index: usize, retries: u32, task: &F) -> TaskExecution<T>
where
    F: Fn(usize) -> T,
{
    let started = Instant::now();
    let mut attempts = 0;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| task(index))) {
            Ok(value) => {
                return TaskExecution {
                    index,
                    attempts,
                    wall: started.elapsed(),
                    outcome: Ok(value),
                }
            }
            Err(payload) => {
                if attempts > retries {
                    return TaskExecution {
                        index,
                        attempts,
                        wall: started.elapsed(),
                        outcome: Err(panic_message(payload.as_ref())),
                    };
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_task_exactly_once_in_order() {
        for jobs in [1, 2, 8] {
            let hits: Vec<AtomicU32> = (0..40).map(|_| AtomicU32::new(0)).collect();
            let out = run_sharded(jobs, 40, 0, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                i * 3
            });
            assert_eq!(out.len(), 40);
            for (i, e) in out.iter().enumerate() {
                assert_eq!(e.index, i);
                assert_eq!(e.attempts, 1);
                assert_eq!(*e.outcome.as_ref().unwrap(), i * 3);
            }
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_workers_really_share_the_queue() {
        let seen = Mutex::new(BTreeSet::new());
        run_sharded(4, 50, 0, |i| {
            // Long enough that one worker cannot drain the queue before
            // the other three have spawned.
            std::thread::sleep(Duration::from_millis(2));
            seen.lock()
                .unwrap()
                .insert((i, format!("{:?}", std::thread::current().id())));
        });
        let ids: BTreeSet<String> = seen
            .lock()
            .unwrap()
            .iter()
            .map(|(_, t)| t.clone())
            .collect();
        assert!(
            ids.len() > 1,
            "with 4 workers and 100 tasks, >1 thread must run tasks"
        );
    }

    #[test]
    fn panicking_task_is_retried_then_reported() {
        let tries = AtomicU32::new(0);
        let out = run_sharded(2, 3, 2, |i| {
            if i == 1 {
                tries.fetch_add(1, Ordering::Relaxed);
                panic!("task {i} exploded");
            }
            i
        });
        assert_eq!(tries.load(Ordering::Relaxed), 3, "1 try + 2 retries");
        assert_eq!(out[0].outcome.as_ref().unwrap(), &0);
        assert_eq!(out[2].outcome.as_ref().unwrap(), &2);
        assert_eq!(out[1].attempts, 3);
        assert_eq!(out[1].outcome.as_ref().unwrap_err(), "task 1 exploded");
    }

    #[test]
    fn flaky_task_succeeds_on_retry() {
        let tries = AtomicU32::new(0);
        let out = run_sharded(1, 1, 3, |_| {
            if tries.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("first attempt only");
            }
            7u32
        });
        assert_eq!(out[0].attempts, 2);
        assert_eq!(*out[0].outcome.as_ref().unwrap(), 7);
    }

    #[test]
    fn zero_jobs_degrades_to_one() {
        let out = run_sharded(0, 2, 0, |i| i);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.outcome.is_ok()));
    }
}
