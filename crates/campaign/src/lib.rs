//! # cr-campaign — sharded discovery campaigns
//!
//! The paper's evaluation is a *campaign*: the same analyses repeated
//! over many independent targets — five servers (Table I), 187 system
//! modules (§V-C), an API-funnel run (§V-B) and the §VI PoC oracles.
//! This crate turns that into an engine:
//!
//! * [`spec::CampaignSpec`] — a serializable enumeration of tasks;
//! * [`pool`] — a work-stealing worker pool (`--jobs N`) with per-task
//!   panic isolation, virtual-time deadlines, and seeded retry
//!   backoff (fresh seed per attempt);
//! * [`error`] — the structured failure taxonomy
//!   ([`error::TaskErrorKind`]) every failed attempt is classified
//!   into, aggregated per class in the report;
//! * [`cache::AnalysisCache`] — a content-addressed cache: filter
//!   verdicts keyed by the hash of the filter's code bytes, module
//!   analyses by the image hash, static-scan summaries by the ELF
//!   hash, arena strategy rows by their full configuration, persisted
//!   as CRC-framed JSONL
//!   (corrupt lines are quarantined, saves are atomic) so a warm
//!   rerun skips all symbolic execution and probing simulation;
//! * [`engine::run_campaign`] — fan-out, re-ordering and metrics,
//!   optionally under a [`cr_chaos::FaultInjector`]. The
//!   deterministic half of the report
//!   ([`engine::CampaignReport::results_json`]) is byte-identical
//!   across worker counts, fault plans included.
//!
//! # Examples
//!
//! ```
//! use cr_campaign::prelude::*;
//!
//! let spec = CampaignSpec::builder()
//!     .name("doc")
//!     .seh("xmllite")
//!     .build()
//!     .expect("one task, non-empty name");
//! let report = run_campaign(&spec, &EngineConfig::default())?;
//! assert_eq!(report.records.len(), 1);
//! assert!(report.records[0].result.is_some());
//! let envelope = report.to_report();
//! assert!(envelope.to_json().starts_with("{\"schema_version\":1,\"kind\":\"campaign\""));
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod builder;
pub mod cache;
pub mod engine;
pub mod error;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod prelude;
pub mod report;
pub mod spec;

pub use builder::{CampaignSpecBuilder, SpecError};
pub use cache::{
    crc32, AnalysisCache, CacheStatsSnapshot, ImageArtifact, ScanSummary, SehSummary,
    SharedVerdictCache, CACHE_FILE, QUARANTINE_FILE,
};
pub use engine::{
    expected_error_counts, run_campaign, run_campaign_with_cache, CampaignReport, EngineConfig,
    TaskRecord, TaskResult,
};
pub use error::{ErrorCounts, TaskError, TaskErrorKind};
pub use metrics::{CampaignMetrics, SolverStats, TaskMetrics};
pub use pool::{run_pool, PoolConfig, TaskCtx, TaskExecution, DEFAULT_DEADLINE_MS};
pub use report::{Report, ReportKind, SCHEMA_VERSION};
pub use spec::{CampaignSpec, CampaignTask, TaskKind, DEFAULT_SEED};
