//! Structured error taxonomy for campaign tasks.
//!
//! Every failed task *attempt* is classified into one of a small set
//! of [`TaskErrorKind`]s, and the campaign report aggregates them into
//! [`ErrorCounts`]. The taxonomy is what makes chaos runs checkable:
//! the `chaos` CLI verb compares the observed per-class counts against
//! the counts the fault plan predicts.

/// The failure class of one task attempt. Serializes to the same
/// snake_case strings ([`TaskErrorKind::name`]) the metrics JSON
/// always carried, so swapping the old free-form strings for this enum
/// changed no wire bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TaskErrorKind {
    /// The task panicked (caught by the pool; worker survives).
    Panic,
    /// The task exceeded its deadline (virtual-time stall or wall-clock
    /// watchdog cancellation).
    TimedOut,
    /// A module image failed to parse (corrupt bytes).
    ImageMalformed,
    /// Symbolic execution ran out of solver budget.
    SolverBudget,
    /// A persisted cache record failed CRC or parse validation.
    CacheCorrupt,
    /// An I/O operation failed.
    Io,
    /// The attempt was cancelled (request abort or shutdown deadline).
    Cancelled,
}

impl TaskErrorKind {
    /// Every kind, in the stable reporting order.
    pub const ALL: [TaskErrorKind; 7] = [
        TaskErrorKind::Panic,
        TaskErrorKind::TimedOut,
        TaskErrorKind::ImageMalformed,
        TaskErrorKind::SolverBudget,
        TaskErrorKind::CacheCorrupt,
        TaskErrorKind::Io,
        TaskErrorKind::Cancelled,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TaskErrorKind::Panic => "panic",
            TaskErrorKind::TimedOut => "timed_out",
            TaskErrorKind::ImageMalformed => "image_malformed",
            TaskErrorKind::SolverBudget => "solver_budget",
            TaskErrorKind::CacheCorrupt => "cache_corrupt",
            TaskErrorKind::Io => "io",
            TaskErrorKind::Cancelled => "cancelled",
        }
    }
}

impl serde::Serialize for TaskErrorKind {
    fn write_json(&self, out: &mut String) {
        self.name().write_json(out);
    }
}

/// A classified task failure.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct TaskError {
    /// The failure class.
    pub kind: TaskErrorKind,
    /// Human-readable detail (deterministic for injected faults).
    pub message: String,
}

impl TaskError {
    /// Construct an error of `kind` with `message`.
    pub fn new(kind: TaskErrorKind, message: impl Into<String>) -> TaskError {
        TaskError {
            kind,
            message: message.into(),
        }
    }

    /// A [`TaskErrorKind::Panic`] error.
    pub fn panic(message: impl Into<String>) -> TaskError {
        TaskError::new(TaskErrorKind::Panic, message)
    }

    /// A [`TaskErrorKind::TimedOut`] error.
    pub fn timed_out(message: impl Into<String>) -> TaskError {
        TaskError::new(TaskErrorKind::TimedOut, message)
    }

    /// A [`TaskErrorKind::ImageMalformed`] error.
    pub fn image_malformed(message: impl Into<String>) -> TaskError {
        TaskError::new(TaskErrorKind::ImageMalformed, message)
    }

    /// A [`TaskErrorKind::SolverBudget`] error.
    pub fn solver_budget(message: impl Into<String>) -> TaskError {
        TaskError::new(TaskErrorKind::SolverBudget, message)
    }

    /// A [`TaskErrorKind::CacheCorrupt`] error.
    pub fn cache_corrupt(message: impl Into<String>) -> TaskError {
        TaskError::new(TaskErrorKind::CacheCorrupt, message)
    }

    /// A [`TaskErrorKind::Io`] error.
    pub fn io(message: impl Into<String>) -> TaskError {
        TaskError::new(TaskErrorKind::Io, message)
    }

    /// A [`TaskErrorKind::Cancelled`] error.
    pub fn cancelled(message: impl Into<String>) -> TaskError {
        TaskError::new(TaskErrorKind::Cancelled, message)
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind.name(), self.message)
    }
}

/// Per-class failure counters over a whole campaign. Counts every
/// failed *attempt*, including attempts whose task later recovered on
/// retry — that is what makes the counts comparable with what a fault
/// plan predicts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct ErrorCounts {
    /// Attempts that panicked.
    pub panic: u64,
    /// Attempts that exceeded a deadline.
    pub timed_out: u64,
    /// Attempts that hit a malformed image.
    pub image_malformed: u64,
    /// Attempts that exhausted the solver budget.
    pub solver_budget: u64,
    /// Cache records rejected at load (CRC/parse) — counted once per
    /// quarantined record, not per attempt.
    pub cache_corrupt: u64,
    /// Attempts that failed on I/O.
    pub io: u64,
    /// Attempts cancelled by a request abort or shutdown deadline.
    pub cancelled: u64,
}

impl ErrorCounts {
    /// Bump the counter for `kind`.
    pub fn record(&mut self, kind: TaskErrorKind) {
        *self.slot(kind) += 1;
    }

    /// Add `n` to the counter for `kind`.
    pub fn add(&mut self, kind: TaskErrorKind, n: u64) {
        *self.slot(kind) += n;
    }

    /// The counter for `kind`.
    pub fn get(&self, kind: TaskErrorKind) -> u64 {
        match kind {
            TaskErrorKind::Panic => self.panic,
            TaskErrorKind::TimedOut => self.timed_out,
            TaskErrorKind::ImageMalformed => self.image_malformed,
            TaskErrorKind::SolverBudget => self.solver_budget,
            TaskErrorKind::CacheCorrupt => self.cache_corrupt,
            TaskErrorKind::Io => self.io,
            TaskErrorKind::Cancelled => self.cancelled,
        }
    }

    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        TaskErrorKind::ALL.iter().map(|&k| self.get(k)).sum()
    }

    fn slot(&mut self, kind: TaskErrorKind) -> &mut u64 {
        match kind {
            TaskErrorKind::Panic => &mut self.panic,
            TaskErrorKind::TimedOut => &mut self.timed_out,
            TaskErrorKind::ImageMalformed => &mut self.image_malformed,
            TaskErrorKind::SolverBudget => &mut self.solver_budget,
            TaskErrorKind::CacheCorrupt => &mut self.cache_corrupt,
            TaskErrorKind::Io => &mut self.io,
            TaskErrorKind::Cancelled => &mut self.cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_round_trip_every_kind() {
        let mut c = ErrorCounts::default();
        for (i, &kind) in TaskErrorKind::ALL.iter().enumerate() {
            c.add(kind, i as u64 + 1);
        }
        for (i, &kind) in TaskErrorKind::ALL.iter().enumerate() {
            assert_eq!(c.get(kind), i as u64 + 1, "{}", kind.name());
        }
        assert_eq!(c.total(), (1..=7).sum::<u64>());
    }

    #[test]
    fn display_includes_class_and_message() {
        let e = TaskError::timed_out("virtual deadline 200ms exceeded");
        assert_eq!(e.to_string(), "[timed_out] virtual deadline 200ms exceeded");
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = TaskErrorKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "panic",
                "timed_out",
                "image_malformed",
                "solver_budget",
                "cache_corrupt",
                "io",
                "cancelled"
            ]
        );
    }

    #[test]
    fn kinds_serialize_to_their_names() {
        use serde::Serialize;
        for kind in TaskErrorKind::ALL {
            assert_eq!(kind.to_json(), format!("\"{}\"", kind.name()));
        }
    }
}
