//! The versioned JSON report envelope shared by every CLI output.
//!
//! All machine-readable outputs (`campaign --json`, `chaos
//! --summary-json`, `list --json`, `report --json`) wrap their payload
//! in one envelope:
//!
//! ```json
//! {"schema_version":1,"kind":"campaign","results":{…},"metrics":{…}}
//! ```
//!
//! `results` is the deterministic half — byte-identical across worker
//! counts for the same spec and fault plan. `metrics` is the
//! non-deterministic half (wall times, scheduling metadata) and is
//! `null` for outputs that have none. Consumers should check
//! `schema_version` before touching anything else.

use crate::engine::CampaignReport;
use crate::json::Json;
use serde::Serialize;

/// Version of the envelope schema (`schema_version` in every emitted
/// JSON document).
pub const SCHEMA_VERSION: u32 = 1;

/// What an envelope carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// A campaign run (`campaign --json`).
    Campaign,
    /// A chaos-validation run (`chaos --summary-json`).
    Chaos,
    /// The target/plan listing (`list --json`).
    List,
    /// A trace analysis (`report --json`).
    Report,
    /// Resident-server lifetime statistics (`serve --stats-json`).
    Serve,
    /// A traceless static scan (`scan --json`).
    Scan,
    /// A supervised-fleet invariant run (`fleet --summary-json`).
    Fleet,
}

impl ReportKind {
    /// Every kind, in a stable order.
    pub const ALL: [ReportKind; 7] = [
        ReportKind::Campaign,
        ReportKind::Chaos,
        ReportKind::List,
        ReportKind::Report,
        ReportKind::Serve,
        ReportKind::Scan,
        ReportKind::Fleet,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ReportKind::Campaign => "campaign",
            ReportKind::Chaos => "chaos",
            ReportKind::List => "list",
            ReportKind::Report => "report",
            ReportKind::Serve => "serve",
            ReportKind::Scan => "scan",
            ReportKind::Fleet => "fleet",
        }
    }
}

impl Serialize for ReportKind {
    fn write_json(&self, out: &mut String) {
        self.name().write_json(out);
    }
}

/// One versioned envelope. `results` and `metrics` hold
/// *pre-serialized* JSON (the deterministic and non-deterministic
/// halves are rendered by their owners; the envelope only frames
/// them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Payload kind.
    pub kind: ReportKind,
    /// Deterministic payload, as serialized JSON.
    pub results: String,
    /// Non-deterministic payload, as serialized JSON; `None` renders
    /// as `null`.
    pub metrics: Option<String>,
}

impl Report {
    /// Frame `results` (and optionally `metrics`) as a `kind` envelope.
    pub fn new(kind: ReportKind, results: String, metrics: Option<String>) -> Report {
        Report {
            kind,
            results,
            metrics,
        }
    }

    /// Render the envelope. Key order is fixed:
    /// `schema_version`, `kind`, `results`, `metrics`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema_version\":");
        SCHEMA_VERSION.write_json(&mut out);
        out.push_str(",\"kind\":");
        self.kind.write_json(&mut out);
        out.push_str(",\"results\":");
        out.push_str(&self.results);
        out.push_str(",\"metrics\":");
        match &self.metrics {
            Some(m) => out.push_str(m),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Parse and validate an envelope: `schema_version` must equal
    /// [`SCHEMA_VERSION`], `kind` must be known, `results` must be
    /// present. Returns the parsed document root.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated envelope rule.
    pub fn validate(text: &str) -> Result<Json, String> {
        let root = Json::parse(text).map_err(|e| format!("bad report JSON: {e}"))?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("report missing `schema_version`")?;
        if version != u64::from(SCHEMA_VERSION) {
            return Err(format!(
                "unsupported report schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let kind = root
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("report missing `kind`")?;
        if !ReportKind::ALL.iter().any(|k| k.name() == kind) {
            return Err(format!("unknown report kind {kind:?}"));
        }
        if root.get("results").is_none() {
            return Err("report missing `results`".into());
        }
        Ok(root)
    }
}

impl CampaignReport {
    /// This campaign's versioned envelope: deterministic
    /// [`CampaignReport::results_json`] as `results`, the metrics JSON
    /// as `metrics`.
    pub fn to_report(&self) -> Report {
        Report::new(
            ReportKind::Campaign,
            self.results_json(),
            Some(self.metrics.to_json()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = ReportKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["campaign", "chaos", "list", "report", "serve", "scan", "fleet"]
        );
    }

    #[test]
    fn envelope_frames_and_validates() {
        let r = Report::new(ReportKind::List, "{\"servers\":[]}".into(), None);
        let text = r.to_json();
        assert_eq!(
            text,
            "{\"schema_version\":1,\"kind\":\"list\",\"results\":{\"servers\":[]},\"metrics\":null}"
        );
        let root = Report::validate(&text).unwrap();
        assert!(root.get("results").is_some());
        assert_eq!(root.get("metrics"), Some(&Json::Null));
    }

    #[test]
    fn validate_rejects_bad_envelopes() {
        assert!(Report::validate("{}").is_err());
        assert!(
            Report::validate("{\"schema_version\":2,\"kind\":\"list\",\"results\":{}}").is_err()
        );
        assert!(
            Report::validate("{\"schema_version\":1,\"kind\":\"bogus\",\"results\":{}}").is_err()
        );
        assert!(Report::validate("{\"schema_version\":1,\"kind\":\"list\"}").is_err());
        assert!(Report::validate("not json").is_err());
    }

    #[test]
    fn campaign_report_envelope_carries_both_halves() {
        let spec = crate::CampaignSpec::builder().poc("ie").build().unwrap();
        let report = crate::run_campaign(&spec, &crate::EngineConfig::default()).unwrap();
        let envelope = report.to_report();
        assert_eq!(envelope.kind, ReportKind::Campaign);
        let root = Report::validate(&envelope.to_json()).unwrap();
        assert_eq!(root.get("kind").and_then(Json::as_str), Some("campaign"));
        assert!(root.get("results").unwrap().get("records").is_some());
        assert!(root.get("metrics").unwrap().get("jobs").is_some());
    }
}
