//! Campaign-side view of the versioned report envelope.
//!
//! The envelope itself ([`ReportEnvelope`], [`ReportKind`],
//! [`SCHEMA_VERSION`]) lives in `cr-trace` so every emitter — CLI
//! verbs, the trace JSONL header, benches — frames its output through
//! one author. This module re-exports it under the historical
//! `cr_campaign::Report` name and attaches the campaign-specific
//! conversion: [`CampaignReport::to_report`] splits a run into its
//! deterministic (`results`) and non-deterministic (`metrics`) halves.

use crate::engine::CampaignReport;
pub use cr_trace::{ReportEnvelope, ReportKind, SCHEMA_VERSION};

/// Historical alias: the envelope predates its move to `cr-trace`.
pub type Report = ReportEnvelope;

impl CampaignReport {
    /// This campaign's versioned envelope: deterministic
    /// [`CampaignReport::results_json`] as `results`, the metrics JSON
    /// as `metrics`.
    pub fn to_report(&self) -> ReportEnvelope {
        ReportEnvelope::builder(ReportKind::Campaign)
            .results(self.results_json())
            .metrics_of(&self.metrics)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_trace::Json;

    #[test]
    fn campaign_report_envelope_carries_both_halves() {
        let spec = crate::CampaignSpec::builder().poc("ie").build().unwrap();
        let report = crate::run_campaign(&spec, &crate::EngineConfig::default()).unwrap();
        let envelope = report.to_report();
        assert_eq!(envelope.kind, ReportKind::Campaign);
        let root = ReportEnvelope::validate(&envelope.to_json()).unwrap();
        assert_eq!(root.get("kind").and_then(Json::as_str), Some("campaign"));
        assert!(root.get("results").unwrap().get("records").is_some());
        assert!(root.get("metrics").unwrap().get("jobs").is_some());
    }
}
