//! Fluent, validated construction of [`CampaignSpec`]s.
//!
//! Struct-literal construction allowed specs the engine cannot run
//! well — empty task lists, duplicate task identities that break the
//! "spec index = task identity" invariant the pool and fault injector
//! rely on. [`CampaignSpec::builder`] moves those checks to a single
//! [`CampaignSpecBuilder::build`] call with typed [`SpecError`]s
//! instead of downstream panics.

use crate::spec::{CampaignSpec, CampaignTask, DEFAULT_SEED};

/// Why a [`CampaignSpecBuilder::build`] call was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The campaign name was empty (reports key on it).
    EmptyName,
    /// No tasks were added; an empty campaign has no meaning.
    NoTasks,
    /// Two tasks share an identity (label); carries the label.
    /// Task identity keys retry seeds, fault-injection scopes, and
    /// trace attribution, so it must be unique within a spec.
    DuplicateTask(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyName => write!(f, "campaign name must not be empty"),
            SpecError::NoTasks => write!(f, "campaign needs at least one task"),
            SpecError::DuplicateTask(label) => {
                write!(f, "duplicate task {label:?} (task identity must be unique)")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Builder returned by [`CampaignSpec::builder`]. Defaults: name
/// `campaign`, seed [`DEFAULT_SEED`], no tasks.
#[derive(Debug, Clone)]
pub struct CampaignSpecBuilder {
    name: String,
    seed: u64,
    tasks: Vec<CampaignTask>,
}

impl Default for CampaignSpecBuilder {
    fn default() -> CampaignSpecBuilder {
        CampaignSpecBuilder::new()
    }
}

impl CampaignSpecBuilder {
    /// A builder with the defaults.
    pub fn new() -> CampaignSpecBuilder {
        CampaignSpecBuilder {
            name: "campaign".into(),
            seed: DEFAULT_SEED,
            tasks: Vec::new(),
        }
    }

    /// Set the campaign name.
    pub fn name(mut self, name: impl Into<String>) -> CampaignSpecBuilder {
        self.name = name.into();
        self
    }

    /// Set the seed threaded into every rand-driven workload.
    pub fn seed(mut self, seed: u64) -> CampaignSpecBuilder {
        self.seed = seed;
        self
    }

    /// Append one task.
    pub fn task(mut self, task: CampaignTask) -> CampaignSpecBuilder {
        self.tasks.push(task);
        self
    }

    /// Append several tasks, keeping their order.
    pub fn tasks(mut self, tasks: impl IntoIterator<Item = CampaignTask>) -> CampaignSpecBuilder {
        self.tasks.extend(tasks);
        self
    }

    /// Append a [`CampaignTask::ServerDiscovery`] task.
    pub fn server(self, name: impl Into<String>) -> CampaignSpecBuilder {
        self.task(CampaignTask::ServerDiscovery(name.into()))
    }

    /// Append a [`CampaignTask::SehAnalysis`] task.
    pub fn seh(self, module: impl Into<String>) -> CampaignSpecBuilder {
        self.task(CampaignTask::SehAnalysis(module.into()))
    }

    /// Append a [`CampaignTask::ApiFunnel`] task.
    pub fn funnel(self, corpus_size: usize) -> CampaignSpecBuilder {
        self.task(CampaignTask::ApiFunnel { corpus_size })
    }

    /// Append a [`CampaignTask::PocScan`] task.
    pub fn poc(self, oracle: impl Into<String>) -> CampaignSpecBuilder {
        self.task(CampaignTask::PocScan(oracle.into()))
    }

    /// Append a [`CampaignTask::StaticScan`] task.
    pub fn scan(self, module: impl Into<String>) -> CampaignSpecBuilder {
        self.task(CampaignTask::StaticScan(module.into()))
    }

    /// Append a [`CampaignTask::Arena`] task.
    pub fn arena(self, strategy: impl Into<String>) -> CampaignSpecBuilder {
        self.task(CampaignTask::Arena(strategy.into()))
    }

    /// Validate and assemble the spec.
    ///
    /// # Errors
    ///
    /// [`SpecError::EmptyName`] for a blank name, [`SpecError::NoTasks`]
    /// for an empty task list, [`SpecError::DuplicateTask`] when two
    /// tasks share a label.
    pub fn build(self) -> Result<CampaignSpec, SpecError> {
        if self.name.trim().is_empty() {
            return Err(SpecError::EmptyName);
        }
        if self.tasks.is_empty() {
            return Err(SpecError::NoTasks);
        }
        let mut labels: Vec<String> = self.tasks.iter().map(CampaignTask::label).collect();
        labels.sort();
        if let Some(dup) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(SpecError::DuplicateTask(dup[0].clone()));
        }
        Ok(CampaignSpec {
            name: self.name,
            seed: self.seed,
            tasks: self.tasks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_valid_spec_with_defaults() {
        let spec = CampaignSpec::builder().poc("ie").build().unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.tasks, vec![CampaignTask::PocScan("ie".into())]);
    }

    #[test]
    fn rejects_empty_name() {
        let err = CampaignSpec::builder().name("  ").poc("ie").build();
        assert_eq!(err, Err(SpecError::EmptyName));
    }

    #[test]
    fn rejects_empty_task_list() {
        assert_eq!(CampaignSpec::builder().build(), Err(SpecError::NoTasks));
    }

    #[test]
    fn rejects_duplicate_tasks() {
        let err = CampaignSpec::builder()
            .seh("user32")
            .server("nginx")
            .seh("user32")
            .build();
        assert_eq!(err, Err(SpecError::DuplicateTask("seh:user32".into())));
        // Same payload under different families is not a duplicate.
        assert!(CampaignSpec::builder()
            .server("nginx")
            .poc("nginx")
            .build()
            .is_ok());
    }

    #[test]
    fn spec_errors_display_and_compose() {
        let err: Box<dyn std::error::Error> = Box::new(SpecError::DuplicateTask("x".into()));
        assert!(err.to_string().contains("duplicate task"));
        assert!(SpecError::NoTasks.to_string().contains("at least one"));
        assert!(SpecError::EmptyName.to_string().contains("name"));
    }

    #[test]
    fn tasks_helper_preserves_order() {
        let spec = CampaignSpec::builder()
            .tasks(vec![
                CampaignTask::ServerDiscovery("nginx".into()),
                CampaignTask::ApiFunnel { corpus_size: 10 },
            ])
            .poc("ie")
            .build()
            .unwrap();
        let labels: Vec<String> = spec.tasks.iter().map(CampaignTask::label).collect();
        assert_eq!(labels, ["server:nginx", "funnel:10", "poc:ie"]);
    }

    #[test]
    fn builder_is_the_only_constructor() {
        // The deprecated `from_parts` shim is gone; fluent construction
        // covers the same ground with validation.
        let spec = CampaignSpec::builder()
            .name("legacy")
            .seed(7)
            .poc("ie")
            .build()
            .unwrap();
        assert_eq!(spec.name, "legacy");
        assert_eq!(spec.seed, 7);
    }
}
