//! JSON reading for cache files, campaign specs, and reports.
//!
//! The recursive-descent parser used to live here; it moved to
//! [`cr_trace::json`] so the trace crate can read `trace.jsonl` without
//! depending on the campaign engine. This module re-exports it — every
//! existing `cr_campaign::json::Json` use keeps compiling unchanged.

pub use cr_trace::Json;

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn reexport_still_parses_campaign_shapes() {
        let v = Json::parse(r#"{"tasks":[{"PocScan":"ie"}],"seed":2017}"#).unwrap();
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(2017));
        assert_eq!(
            v.get("tasks").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }
}
