//! One-stop imports for campaign consumers.
//!
//! `use cr_campaign::prelude::*;` brings in everything a CLI or test
//! needs to build a spec, run it, and frame the output: the builder
//! API, the engine entry point, the typed task/error enums, and the
//! versioned [`Report`] envelope.

pub use crate::builder::{CampaignSpecBuilder, SpecError};
pub use crate::engine::{run_campaign, CampaignReport, EngineConfig, TaskRecord, TaskResult};
pub use crate::error::{ErrorCounts, TaskError, TaskErrorKind};
pub use crate::metrics::{CampaignMetrics, TaskMetrics};
pub use crate::report::{Report, ReportKind, SCHEMA_VERSION};
pub use crate::spec::{CampaignSpec, CampaignTask, TaskKind, DEFAULT_SEED};
