//! The campaign engine — spec in, sharded execution, report out.
//!
//! Each [`CampaignTask`] maps to one of the repo's task-granular entry
//! points ([`cr_core::discover_server`],
//! [`cr_core::seh::analyze_module_cached`],
//! [`cr_core::api_fuzzer::run_funnel`], [`cr_exploits::scan`],
//! [`cr_scan::scan_elf`]). Tasks
//! fan out over the [`crate::pool`] and share one
//! [`AnalysisCache`]; results are re-ordered by spec index, so the
//! deterministic half of the report is identical no matter how many
//! workers ran it.
//!
//! ## Fault injection
//!
//! With an [`EngineConfig::injector`], the engine threads a
//! [`cr_chaos::FaultInjector`] through every hot path: at the top of
//! each attempt ([`Site::WorkerPanic`], [`Site::TaskStall`]), between
//! image generation and parsing ([`Site::ImageBytes`]), before
//! symbolic vetting ([`Site::SolverBudget`]) and while persisting the
//! cache ([`Site::CacheRecord`]). Decisions are keyed on the task's
//! spec index (or a cache record's save-order index), so the same plan
//! injects the same faults at any `--jobs` count —
//! [`expected_error_counts`] predicts the per-class totals exactly.

use crate::cache::{AnalysisCache, ScanSummary, SehSummary, SharedVerdictCache};
use crate::error::{ErrorCounts, TaskError, TaskErrorKind};
use crate::metrics::{CampaignMetrics, SolverStats};
use crate::pool::{run_pool, PoolConfig, TaskCtx, DEFAULT_DEADLINE_MS};
use crate::spec::{CampaignSpec, CampaignTask, TaskKind};
use cr_arena::{ArenaConfig, ArenaSummary};
use cr_chaos::{FaultInjector, FaultKind, Site};
use cr_core::seh::{self, analyze_module_cached, analyze_module_cached_jobs, NoCache};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// Engine knobs (the CLI's `--jobs/--cache/--retries/--deadline-ms`).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (1 = serial).
    pub jobs: usize,
    /// Exploration worker threads inside each symex (SEH) task: the
    /// module's uncached filters are batched through one parallel
    /// explorer call instead of explored one at a time. Reports and
    /// verdicts are byte-identical at any value (canonical-merge
    /// contract); 1 = the serial explorer.
    pub symex_jobs: usize,
    /// Extra attempts for a failing task.
    pub retries: u32,
    /// Cache directory; `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Per-attempt virtual-time deadline in milliseconds (`None`
    /// disables deadline classification).
    pub deadline_ms: Option<u64>,
    /// Per-attempt wall-clock watchdog in milliseconds; off by default
    /// (wall time is nondeterministic, so reports under the watchdog
    /// are not byte-stable).
    pub wall_watchdog_ms: Option<u64>,
    /// Base for seeded exponential retry backoff, milliseconds.
    pub backoff_base_ms: u64,
    /// Fault injector; `None` runs the pipeline unperturbed.
    pub injector: Option<Arc<FaultInjector>>,
    /// External abort flag (request cancellation, server shutdown).
    /// Once set, unstarted tasks fail fast as
    /// [`TaskErrorKind::Cancelled`] and the campaign returns early
    /// with a degraded report.
    pub abort: Option<Arc<AtomicBool>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            symex_jobs: 1,
            retries: 1,
            cache_dir: None,
            deadline_ms: Some(DEFAULT_DEADLINE_MS),
            wall_watchdog_ms: None,
            backoff_base_ms: 1,
            injector: None,
            abort: None,
        }
    }
}

/// Deterministic result of one task.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum TaskResult {
    /// Table-I server pipeline summary.
    Server {
        /// Server name.
        server: String,
        /// Syscalls observed during the workload.
        observed_syscalls: usize,
        /// Classified candidate findings.
        findings: usize,
        /// Findings classified usable with service intact.
        usable: usize,
    },
    /// SEH analysis summary plus its cache key.
    Seh {
        /// Image content hash (the module cache key).
        image_hash: String,
        /// The cached/recomputed summary row.
        summary: SehSummary,
    },
    /// §V-B funnel counts.
    Funnel {
        /// Corpus size.
        total: usize,
        /// Functions with pointer arguments.
        with_pointer_args: usize,
        /// Crash-resistant candidates.
        crash_resistant: usize,
        /// Candidates reachable from JavaScript.
        js_reachable: usize,
        /// Usable primitives (controllable pointer argument).
        usable: usize,
    },
    /// Traceless static scan summary plus its cache key.
    Scan {
        /// ELF content hash (the scan cache key).
        image_hash: String,
        /// The cached/recomputed summary row.
        summary: ScanSummary,
    },
    /// Adversarial-arena strategy row plus its cache key.
    Arena {
        /// Readable content key (`strategy:sSEED:rROUNDS:module`).
        key: String,
        /// The cached/recomputed strategy-vs-detectors summary.
        summary: ArenaSummary,
    },
    /// §VI oracle scan outcome: a region is hidden at a secret
    /// address, and the oracle sweeps the window for it.
    Poc {
        /// Oracle name (from the oracle itself).
        oracle: String,
        /// Addresses found mapped in the probe window.
        mapped: usize,
        /// Probes issued.
        probes: u64,
        /// Whether the sweep located the hidden region.
        located: bool,
        /// Whether the target crashed (a usable oracle never does).
        crashed: bool,
    },
}

/// One task's row in the deterministic report.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct TaskRecord {
    /// Task index in spec order.
    pub index: usize,
    /// Human-readable label.
    pub label: String,
    /// The result, absent when the task failed.
    pub result: Option<TaskResult>,
    /// The final attempt's classified error when the task failed.
    pub error: Option<TaskError>,
}

/// Everything a campaign run produces.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CampaignReport {
    /// The spec that ran.
    pub spec: CampaignSpec,
    /// Deterministic per-task rows, in spec order.
    pub records: Vec<TaskRecord>,
    /// Per-class counts over every failed attempt (recovered ones
    /// included) plus quarantined cache records.
    pub errors: ErrorCounts,
    /// `true` when at least one task has no result — the campaign
    /// completed, but its coverage is partial.
    pub degraded: bool,
    /// Run-variant metrics (timings, attempts, cache counters).
    pub metrics: CampaignMetrics,
}

impl CampaignReport {
    /// JSON of the deterministic half only (spec, records, error
    /// accounting, degraded flag). Two runs of the same spec under the
    /// same fault plan — serial or sharded, any worker count — produce
    /// identical bytes.
    pub fn results_json(&self) -> String {
        use serde::Serialize;
        let mut out = String::from("{\"spec\":");
        self.spec.write_json(&mut out);
        out.push_str(",\"records\":");
        self.records.write_json(&mut out);
        out.push_str(",\"errors\":");
        self.errors.write_json(&mut out);
        out.push_str(",\"degraded\":");
        self.degraded.write_json(&mut out);
        out.push('}');
        out
    }
}

/// Run a campaign.
///
/// # Errors
///
/// Only cache I/O fails the whole campaign (an unreadable or
/// unwritable `--cache DIR` should be loud); individual task failures
/// land in their [`TaskRecord`], and corrupt cache *content* is
/// quarantined, not fatal.
pub fn run_campaign(spec: &CampaignSpec, cfg: &EngineConfig) -> std::io::Result<CampaignReport> {
    cr_trace::begin_run(&spec.name);
    let cache = match &cfg.cache_dir {
        Some(dir) => {
            let mut span = cr_trace::span(cr_trace::Stage::Cache, "cache.load");
            let cache = AnalysisCache::load(dir)?;
            span.set_detail(|| {
                let (filters, modules) = cache.len();
                format!(
                    "filters={filters} modules={modules} quarantined={}",
                    cache.quarantined()
                )
            });
            cache
        }
        None => AnalysisCache::new(),
    };
    let report = run_campaign_with_cache(spec, cfg, &cache);

    if let Some(dir) = &cfg.cache_dir {
        let mut span = cr_trace::span(cr_trace::Stage::Cache, "cache.save");
        span.set_detail(|| {
            let (filters, modules) = cache.len();
            format!("filters={filters} modules={modules}")
        });
        match cfg.injector.as_deref() {
            Some(inj) if inj.plan().arms(Site::CacheRecord) => {
                cache.save_with(dir, |i, line| {
                    if let Some(kind) = inj.fires(Site::CacheRecord, i as u64, 0) {
                        inj.corrupt_record(kind, i as u64, line);
                    }
                })?
            }
            _ => cache.save(dir)?,
        }
    }
    Ok(report)
}

/// The disk-free core of [`run_campaign`]: run `spec` against an
/// already-resident [`AnalysisCache`]. No trace run is begun and no
/// cache I/O happens — the caller owns both, which is what lets a
/// resident server share one warm cache (verdicts, module summaries,
/// parsed images) across many requests and persist it once at
/// shutdown.
pub fn run_campaign_with_cache(
    spec: &CampaignSpec,
    cfg: &EngineConfig,
    cache: &AnalysisCache,
) -> CampaignReport {
    let quarantined = cache.quarantined();
    let solver_before = cr_symex::SolverCounters::snapshot();
    let cache_before = cache.stats();
    let injector = cfg.injector.as_deref();
    let labels: Vec<(String, TaskKind)> =
        spec.tasks.iter().map(|t| (t.label(), t.kind())).collect();

    let pool_cfg = PoolConfig {
        jobs: cfg.jobs,
        retries: cfg.retries,
        seed: spec.seed,
        deadline_ms: cfg.deadline_ms,
        wall_watchdog_ms: cfg.wall_watchdog_ms,
        backoff_base_ms: cfg.backoff_base_ms,
        abort: cfg.abort.clone(),
        ..PoolConfig::default()
    };
    let started = Instant::now();
    // The pool span's detail deliberately omits the worker count: the
    // deterministic event sequence must not vary with `--jobs`.
    let mut pool_span = cr_trace::span(cr_trace::Stage::Schedule, "pool");
    pool_span.set_detail(|| format!("tasks={}", spec.tasks.len()));
    let execs = run_pool(&pool_cfg, spec.tasks.len(), |ctx| {
        // Identity goes into the detail up front so an unwinding panic
        // still leaves an attributable span; the outcome is appended
        // only when the attempt returns normally.
        let mut span = cr_trace::span(cr_trace::Stage::Schedule, "attempt");
        span.set_detail(|| labels[ctx.index].0.clone());
        let outcome = execute_task(&spec.tasks[ctx.index], cache, injector, ctx, cfg.symex_jobs);
        span.append_detail(|| match &outcome {
            Ok(_) => "ok".into(),
            Err(e) => format!("err={}", e.kind.name()),
        });
        outcome
    });
    drop(pool_span);
    let total_wall_us = started.elapsed().as_micros() as u64;

    let records: Vec<TaskRecord> = execs
        .iter()
        .map(|e| TaskRecord {
            index: e.index,
            label: labels[e.index].0.clone(),
            result: e.outcome.as_ref().ok().cloned(),
            error: e.outcome.as_ref().err().cloned(),
        })
        .collect();
    let mut errors = ErrorCounts::default();
    for e in &execs {
        for err in &e.attempt_errors {
            errors.record(err.kind);
        }
    }
    errors.add(TaskErrorKind::CacheCorrupt, quarantined);
    let degraded = records.iter().any(|r| r.result.is_none());
    let cache_now = cache.stats();
    let metrics = CampaignMetrics::from_executions(
        cfg.jobs.max(1),
        total_wall_us,
        {
            let d = solver_before.delta();
            SolverStats {
                calls: d.solver_calls,
                memo_lookups: d.memo_lookups,
                memo_hits: d.memo_hits,
                paths_completed: d.paths_completed,
                paths_pruned: d.paths_pruned,
            }
        },
        quarantined,
        crate::cache::CacheStatsSnapshot {
            filter_hits: cache_now.filter_hits - cache_before.filter_hits,
            filter_misses: cache_now.filter_misses - cache_before.filter_misses,
            module_hits: cache_now.module_hits - cache_before.module_hits,
            module_misses: cache_now.module_misses - cache_before.module_misses,
            scan_hits: cache_now.scan_hits - cache_before.scan_hits,
            scan_misses: cache_now.scan_misses - cache_before.scan_misses,
            arena_hits: cache_now.arena_hits - cache_before.arena_hits,
            arena_misses: cache_now.arena_misses - cache_before.arena_misses,
            image_hits: cache_now.image_hits - cache_before.image_hits,
            image_misses: cache_now.image_misses - cache_before.image_misses,
        },
        &labels,
        &execs,
    );
    CampaignReport {
        spec: spec.clone(),
        records,
        errors,
        degraded,
        metrics,
    }
}

/// Predict the per-class error counts [`run_campaign`] will report for
/// `spec` under `cfg` — an exact, side-effect-free mirror of the
/// per-attempt fault decision order in [`execute_task`] (worker panic,
/// then stall, then image bytes, then solver budget; first firing site
/// wins the attempt). Counts **injected** faults only; a spec whose
/// tasks fail on their own (unknown targets, say) will report more.
///
/// Cache-record faults fire at save time against the *previous* run's
/// records, so they are accounted separately (see
/// [`FaultInjector::fired_count`] with [`Site::CacheRecord`], and the
/// quarantine counter on the following load).
pub fn expected_error_counts(spec: &CampaignSpec, cfg: &EngineConfig) -> ErrorCounts {
    let mut counts = ErrorCounts::default();
    let Some(inj) = cfg.injector.as_deref() else {
        return counts;
    };
    for (i, task) in spec.tasks.iter().enumerate() {
        for attempt in 0..=cfg.retries {
            match simulate_attempt(inj, task, i as u64, attempt, cfg.deadline_ms) {
                Some(kind) => counts.record(kind),
                None => break,
            }
        }
    }
    counts
}

/// The injected failure class (if any) of one simulated attempt. Must
/// mirror [`execute_task`] exactly.
fn simulate_attempt(
    inj: &FaultInjector,
    task: &CampaignTask,
    key: u64,
    attempt: u32,
    deadline_ms: Option<u64>,
) -> Option<TaskErrorKind> {
    if let Some(FaultKind::Panic) = inj.would_fire(Site::WorkerPanic, key, attempt) {
        return Some(TaskErrorKind::Panic);
    }
    if let Some(FaultKind::Stall { virtual_ms }) = inj.would_fire(Site::TaskStall, key, attempt) {
        if deadline_ms.is_some_and(|d| virtual_ms > d) {
            return Some(TaskErrorKind::TimedOut);
        }
    }
    if matches!(task, CampaignTask::SehAnalysis(_)) {
        if let Some(FaultKind::BitFlip { .. } | FaultKind::Truncate { .. }) =
            inj.would_fire(Site::ImageBytes, key, attempt)
        {
            return Some(TaskErrorKind::ImageMalformed);
        }
        if let Some(FaultKind::SolverBudget { .. }) =
            inj.would_fire(Site::SolverBudget, key, attempt)
        {
            return Some(TaskErrorKind::SolverBudget);
        }
    }
    None
}

fn execute_task(
    task: &CampaignTask,
    cache: &AnalysisCache,
    inj: Option<&FaultInjector>,
    ctx: &TaskCtx,
    symex_jobs: usize,
) -> Result<TaskResult, TaskError> {
    let key = ctx.index as u64;
    ctx.checkpoint()?;
    if let Some(inj) = inj {
        if let Some(FaultKind::Panic) = inj.fires(Site::WorkerPanic, key, ctx.attempt) {
            panic!(
                "chaos: injected panic at worker.panic (task {key}, attempt {})",
                ctx.attempt
            );
        }
        if let Some(FaultKind::Stall { virtual_ms }) = inj.fires(Site::TaskStall, key, ctx.attempt)
        {
            ctx.stall(virtual_ms)?;
        }
    }
    match task {
        CampaignTask::ServerDiscovery(name) => Ok(run_server(name)),
        CampaignTask::SehAnalysis(name) => run_seh(name, cache, inj, ctx, symex_jobs),
        CampaignTask::ApiFunnel { corpus_size } => Ok(run_funnel(*corpus_size, ctx.seed)),
        CampaignTask::PocScan(name) => Ok(run_poc(name)),
        CampaignTask::StaticScan(name) => Ok(run_scan(name, cache)),
        CampaignTask::Arena(name) => Ok(run_arena(name, cache, ctx.seed, inj)),
    }
}

fn run_server(name: &str) -> TaskResult {
    let target = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("unknown server {name:?}"));
    let report = cr_core::discover_server(&target);
    TaskResult::Server {
        server: report.server.clone(),
        observed_syscalls: report.observed_syscalls.len(),
        findings: report.findings.len(),
        usable: report.usable().len(),
    }
}

fn run_seh(
    name: &str,
    cache: &AnalysisCache,
    inj: Option<&FaultInjector>,
    ctx: &TaskCtx,
    symex_jobs: usize,
) -> Result<TaskResult, TaskError> {
    // The loopy explorer-regression family lives outside the calibrated
    // §V-C population (its Table II/III totals are pinned), so it is
    // resolved by name instead of through the population specs.
    let spec = if name == "loopy" {
        None
    } else {
        Some(
            cr_targets::browsers::full_population_specs()
                .into_iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("unknown dll {name:?}")),
        )
    };
    let module_bytes = || match &spec {
        Some(s) => cr_targets::browsers::generate_dll_bytes(s),
        None => cr_targets::browsers::generate_loopy_dll_bytes(),
    };
    let module_image = || match &spec {
        Some(s) => cr_targets::browsers::generate_dll(s),
        None => cr_targets::browsers::generate_loopy_dll(),
    };
    let key = ctx.index as u64;

    if let Some(inj) = inj {
        if let Some(kind @ (FaultKind::BitFlip { .. } | FaultKind::Truncate { .. })) =
            inj.fires(Site::ImageBytes, key, ctx.attempt)
        {
            // Corrupt the raw bytes between generation and parsing.
            // Either the parser rejects them (the hardened common case)
            // or the mutation landed in slack space and the image still
            // parses — both are classified ImageMalformed so accounting
            // stays exact.
            let mut bytes = module_bytes();
            inj.mutate_bytes(kind, key, &mut bytes);
            return Err(match cr_image::PeImage::parse(&bytes) {
                Err(e) => TaskError::image_malformed(format!(
                    "chaos: mutated image rejected by parser: {e}"
                )),
                Ok(_) => TaskError::image_malformed(
                    "chaos: mutation landed in slack space; image still parses",
                ),
            });
        }
        if let Some(FaultKind::SolverBudget { max_steps }) =
            inj.fires(Site::SolverBudget, key, ctx.attempt)
        {
            // Run the real analysis under a clamped step budget so the
            // exhaustion path is exercised, but without the shared
            // cache: Unknown verdicts from a starved solver must not
            // poison warm reruns.
            let img = module_image();
            let _ =
                cr_symex::with_step_budget(max_steps, || analyze_module_cached(&img, &mut NoCache));
            return Err(TaskError::solver_budget(format!(
                "chaos: solver step budget clamped to {max_steps}"
            )));
        }
    }

    // Resident parsed-image lookup: a warm hit skips generation and
    // parsing entirely (the fault paths above bypass this table — a
    // corrupted image must never become the resident artifact).
    let artifact = match cache.get_image(name) {
        Some(a) => a,
        None => {
            let img = module_image();
            let hash = seh::image_content_hash(&img);
            cache.put_image(name, hash, img)
        }
    };
    let image_hash = artifact.hash.clone();
    let summary = match cache.get_module(&image_hash) {
        Some(s) => s,
        None => {
            let a = analyze_module_cached_jobs(
                &artifact.image,
                &mut SharedVerdictCache(cache),
                symex_jobs,
            );
            let s = SehSummary {
                module: a.module,
                is_x64: a.is_x64,
                guarded_before: a.guarded_before,
                guarded_after: a.guarded_after,
                filters_before: a.filters_before,
                filters_after: a.filters_after,
                filters_undecided: a.filters_undecided,
            };
            cache.put_module(&image_hash, &s);
            s
        }
    };
    Ok(TaskResult::Seh {
        image_hash,
        summary,
    })
}

fn run_scan(name: &str, cache: &AnalysisCache) -> TaskResult {
    let image = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == name)
        .map(|t| t.image)
        .or_else(|| cr_targets::corpus::module(name).map(|m| m.image))
        .unwrap_or_else(|| panic!("unknown scan module {name:?}"));
    let image_hash = cr_scan::elf_content_hash(&image);
    let summary = match cache.get_scan(&image_hash) {
        Some(s) => {
            // A warm hit skips the CFG walk; still stamp the scan stage
            // so a warm campaign's trace shows where the row came from.
            let mut span = cr_trace::span(cr_trace::Stage::Scan, "scan.cached");
            span.set_detail(|| format!("module={name} sites={}", s.sites));
            s
        }
        None => {
            let report = cr_scan::scan_elf(name, &image);
            let s = ScanSummary::from_report(&report);
            cache.put_scan(&image_hash, &s);
            s
        }
    };
    TaskResult::Scan {
        image_hash,
        summary,
    }
}

fn run_arena(
    name: &str,
    cache: &AnalysisCache,
    seed: u64,
    inj: Option<&FaultInjector>,
) -> TaskResult {
    let kind = cr_arena::StrategyKind::parse_name(name)
        .unwrap_or_else(|| panic!("unknown arena strategy {name:?}"));
    let cfg = ArenaConfig {
        seed,
        ..ArenaConfig::default()
    };
    let key = format!(
        "{}:s{}:r{}:{}",
        kind.name(),
        cfg.seed,
        cfg.rounds,
        cfg.filter_module
    );
    // A probe-drop plan perturbs the sessions, so (like a solver-budget
    // fault) the run bypasses the cache in both directions: it neither
    // serves a clean row nor poisons the table with a degraded one.
    let chaos = inj.filter(|i| i.plan().arms(Site::ArenaProbeDrop));
    if chaos.is_none() {
        if let Some(summary) = cache.get_arena(&key) {
            // A warm hit skips re-simulating every probing session;
            // still stamp the arena stage so the trace shows the source.
            let mut span = cr_trace::span(cr_trace::Stage::Arena, "arena.cached");
            span.set_detail(|| format!("strategy={} probes={}", summary.strategy, summary.probes));
            return TaskResult::Arena { key, summary };
        }
    }
    let mut span = cr_trace::span(cr_trace::Stage::Arena, "arena.run");
    // Keyed on a monotonic probe ordinal across the strategy's rounds,
    // so the same plan drops the same probes at any `--jobs` count.
    let mut probe_no: u64 = 0;
    let mut drop_probe = |_round_index: u64| {
        let n = probe_no;
        probe_no += 1;
        chaos.is_some_and(|i| i.fires(Site::ArenaProbeDrop, n, 0).is_some())
    };
    let summary = cr_arena::run_strategy(kind, &cfg, &mut drop_probe);
    span.set_detail(|| {
        format!(
            "strategy={} probes={} dropped={}",
            summary.strategy, summary.probes, summary.dropped
        )
    });
    drop(span);
    if chaos.is_none() {
        cache.put_arena(&key, &summary);
    }
    TaskResult::Arena { key, summary }
}

fn run_funnel(corpus_size: usize, seed: u64) -> TaskResult {
    let mut sim = cr_targets::browsers::ie::build_with_corpus(corpus_size, seed);
    let report = cr_core::api_fuzzer::run_funnel(&mut sim, 2);
    TaskResult::Funnel {
        total: report.total,
        with_pointer_args: report.with_pointer_args,
        crash_resistant: report.crash_resistant,
        js_reachable: report.js_reachable,
        usable: report.usable,
    }
}

/// Per-oracle §VI scenario: secret region (address, length) and the
/// probe window (start, end, stride) swept for it — the same shapes
/// the `poc_exploits` bench uses.
fn poc_scenario(oracle: &str) -> (u64, u64, u64, u64, u64) {
    match oracle {
        "ie" => (
            0x31_4159_0000,
            0x4000,
            0x31_4000_0000,
            0x31_4200_0000,
            0x1_0000,
        ),
        "firefox" => (
            0x27_1828_1000,
            0x2000,
            0x27_1800_0000,
            0x27_1900_0000,
            0x1000,
        ),
        "nginx" => (
            0x55_0000_2000,
            0x1000,
            0x55_0000_0000,
            0x55_0001_0000,
            0x1000,
        ),
        other => panic!("unknown oracle {other:?}"),
    }
}

fn run_poc(name: &str) -> TaskResult {
    let (secret, len, start, end, stride) = poc_scenario(name);
    // The defense hides a SafeStack-style region at the secret address;
    // the oracle must locate it with zero crashes.
    let mut oracle: Box<dyn cr_exploits::MemoryOracle> = match name {
        "ie" => {
            let mut o = cr_exploits::ie::IeOracle::new();
            o.sim().proc.mem.map(secret, len, cr_vm::Prot::RW);
            Box::new(o)
        }
        "firefox" => {
            let mut o = cr_exploits::firefox::FirefoxOracle::new();
            o.sim().proc.mem.map(secret, len, cr_vm::Prot::RW);
            Box::new(o)
        }
        "nginx" => {
            let mut o = cr_exploits::nginx::NginxOracle::new();
            o.proc().mem.map(secret, len, cr_vm::Prot::RW);
            Box::new(o)
        }
        other => panic!("unknown oracle {other:?}"),
    };
    let out = cr_exploits::scan(oracle.as_mut(), start, end, stride);
    TaskResult::Poc {
        oracle: oracle.name().to_string(),
        mapped: out.mapped.len(),
        probes: out.probes,
        located: out.mapped.contains(&secret),
        crashed: out.crashed,
    }
}
