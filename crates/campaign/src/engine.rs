//! The campaign engine — spec in, sharded execution, report out.
//!
//! Each [`CampaignTask`] maps to one of the repo's task-granular entry
//! points ([`cr_core::discover_server`],
//! [`cr_core::seh::analyze_module_cached`],
//! [`cr_core::api_fuzzer::run_funnel`], [`cr_exploits::scan`]). Tasks
//! fan out over the [`crate::pool`] and share one
//! [`AnalysisCache`]; results are re-ordered by spec index, so the
//! deterministic half of the report is identical no matter how many
//! workers ran it.

use crate::cache::{AnalysisCache, SehSummary, SharedVerdictCache};
use crate::metrics::CampaignMetrics;
use crate::pool::run_sharded;
use crate::spec::{CampaignSpec, CampaignTask};
use cr_core::seh::{self, analyze_module_cached};
use cr_exploits::MemoryOracle;
use std::path::PathBuf;
use std::time::Instant;

/// Engine knobs (the CLI's `--jobs/--cache/--retries`).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (1 = serial).
    pub jobs: usize,
    /// Extra attempts for a panicking task.
    pub retries: u32,
    /// Cache directory; `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            retries: 1,
            cache_dir: None,
        }
    }
}

/// Deterministic result of one task.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum TaskResult {
    /// Table-I server pipeline summary.
    Server {
        /// Server name.
        server: String,
        /// Syscalls observed during the workload.
        observed_syscalls: usize,
        /// Classified candidate findings.
        findings: usize,
        /// Findings classified usable with service intact.
        usable: usize,
    },
    /// SEH analysis summary plus its cache key.
    Seh {
        /// Image content hash (the module cache key).
        image_hash: String,
        /// The cached/recomputed summary row.
        summary: SehSummary,
    },
    /// §V-B funnel counts.
    Funnel {
        /// Corpus size.
        total: usize,
        /// Functions with pointer arguments.
        with_pointer_args: usize,
        /// Crash-resistant candidates.
        crash_resistant: usize,
        /// Candidates reachable from JavaScript.
        js_reachable: usize,
        /// Usable primitives (controllable pointer argument).
        usable: usize,
    },
    /// §VI oracle scan outcome: a region is hidden at a secret
    /// address, and the oracle sweeps the window for it.
    Poc {
        /// Oracle name (from the oracle itself).
        oracle: String,
        /// Addresses found mapped in the probe window.
        mapped: usize,
        /// Probes issued.
        probes: u64,
        /// Whether the sweep located the hidden region.
        located: bool,
        /// Whether the target crashed (a usable oracle never does).
        crashed: bool,
    },
}

/// One task's row in the deterministic report.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct TaskRecord {
    /// Task index in spec order.
    pub index: usize,
    /// Human-readable label.
    pub label: String,
    /// The result, absent when the task failed.
    pub result: Option<TaskResult>,
    /// Final panic message when the task failed.
    pub error: Option<String>,
}

/// Everything a campaign run produces.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CampaignReport {
    /// The spec that ran.
    pub spec: CampaignSpec,
    /// Deterministic per-task rows, in spec order.
    pub records: Vec<TaskRecord>,
    /// Run-variant metrics (timings, attempts, cache counters).
    pub metrics: CampaignMetrics,
}

impl CampaignReport {
    /// JSON of the deterministic half only (spec + records). Two runs
    /// of the same spec — serial or sharded, any worker count —
    /// produce identical bytes.
    pub fn results_json(&self) -> String {
        use serde::Serialize;
        let mut out = String::from("{\"spec\":");
        self.spec.write_json(&mut out);
        out.push_str(",\"records\":");
        self.records.write_json(&mut out);
        out.push('}');
        out
    }
}

/// Run a campaign.
///
/// # Errors
///
/// Only cache I/O fails the whole campaign (a corrupt or unwritable
/// `--cache DIR` should be loud); individual task failures land in
/// their [`TaskRecord`].
pub fn run_campaign(spec: &CampaignSpec, cfg: &EngineConfig) -> std::io::Result<CampaignReport> {
    let cache = match &cfg.cache_dir {
        Some(dir) => AnalysisCache::load(dir)?,
        None => AnalysisCache::new(),
    };

    let started = Instant::now();
    let execs = run_sharded(cfg.jobs, spec.tasks.len(), cfg.retries, |i| {
        execute_task(&spec.tasks[i], spec.seed, &cache)
    });
    let total_wall_us = started.elapsed().as_micros() as u64;

    if let Some(dir) = &cfg.cache_dir {
        cache.save(dir)?;
    }

    let labels: Vec<(String, &'static str)> =
        spec.tasks.iter().map(|t| (t.label(), t.kind())).collect();
    let records: Vec<TaskRecord> = execs
        .iter()
        .map(|e| TaskRecord {
            index: e.index,
            label: labels[e.index].0.clone(),
            result: e.outcome.as_ref().ok().cloned(),
            error: e.outcome.as_ref().err().cloned(),
        })
        .collect();
    let metrics = CampaignMetrics::from_executions(
        cfg.jobs.max(1),
        total_wall_us,
        cache.stats(),
        &labels,
        &execs,
    );
    Ok(CampaignReport {
        spec: spec.clone(),
        records,
        metrics,
    })
}

fn execute_task(task: &CampaignTask, seed: u64, cache: &AnalysisCache) -> TaskResult {
    match task {
        CampaignTask::ServerDiscovery(name) => run_server(name),
        CampaignTask::SehAnalysis(name) => run_seh(name, cache),
        CampaignTask::ApiFunnel { corpus_size } => run_funnel(*corpus_size, seed),
        CampaignTask::PocScan(name) => run_poc(name),
    }
}

fn run_server(name: &str) -> TaskResult {
    let target = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("unknown server {name:?}"));
    let report = cr_core::discover_server(&target);
    TaskResult::Server {
        server: report.server.clone(),
        observed_syscalls: report.observed_syscalls.len(),
        findings: report.findings.len(),
        usable: report.usable().len(),
    }
}

fn run_seh(name: &str, cache: &AnalysisCache) -> TaskResult {
    let spec = cr_targets::browsers::full_population_specs()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown dll {name:?}"));
    let img = cr_targets::browsers::generate_dll(&spec);
    let image_hash = seh::image_content_hash(&img);
    let summary = match cache.get_module(&image_hash) {
        Some(s) => s,
        None => {
            let a = analyze_module_cached(&img, &mut SharedVerdictCache(cache));
            let s = SehSummary {
                module: a.module,
                is_x64: a.is_x64,
                guarded_before: a.guarded_before,
                guarded_after: a.guarded_after,
                filters_before: a.filters_before,
                filters_after: a.filters_after,
                filters_undecided: a.filters_undecided,
            };
            cache.put_module(&image_hash, &s);
            s
        }
    };
    TaskResult::Seh {
        image_hash,
        summary,
    }
}

fn run_funnel(corpus_size: usize, seed: u64) -> TaskResult {
    let mut sim = cr_targets::browsers::ie::build_with_corpus(corpus_size, seed);
    let report = cr_core::api_fuzzer::run_funnel(&mut sim, 2);
    TaskResult::Funnel {
        total: report.total,
        with_pointer_args: report.with_pointer_args,
        crash_resistant: report.crash_resistant,
        js_reachable: report.js_reachable,
        usable: report.usable,
    }
}

/// Per-oracle probe windows: the IE oracle walks the DLL region, the
/// Firefox oracle the §VII hidden-region window, the nginx oracle the
/// server heap window its PoC tests use.
/// Per-oracle §VI scenario: secret region (address, length) and the
/// probe window (start, end, stride) swept for it — the same shapes
/// the `poc_exploits` bench uses.
fn poc_scenario(oracle: &str) -> (u64, u64, u64, u64, u64) {
    match oracle {
        "ie" => (
            0x31_4159_0000,
            0x4000,
            0x31_4000_0000,
            0x31_4200_0000,
            0x1_0000,
        ),
        "firefox" => (
            0x27_1828_1000,
            0x2000,
            0x27_1800_0000,
            0x27_1900_0000,
            0x1000,
        ),
        "nginx" => (
            0x55_0000_2000,
            0x1000,
            0x55_0000_0000,
            0x55_0001_0000,
            0x1000,
        ),
        other => panic!("unknown oracle {other:?}"),
    }
}

fn run_poc(name: &str) -> TaskResult {
    let (secret, len, start, end, stride) = poc_scenario(name);
    // The defense hides a SafeStack-style region at the secret address;
    // the oracle must locate it with zero crashes.
    let mut oracle: Box<dyn MemoryOracle> = match name {
        "ie" => {
            let mut o = cr_exploits::ie::IeOracle::new();
            o.sim().proc.mem.map(secret, len, cr_vm::Prot::RW);
            Box::new(o)
        }
        "firefox" => {
            let mut o = cr_exploits::firefox::FirefoxOracle::new();
            o.sim().proc.mem.map(secret, len, cr_vm::Prot::RW);
            Box::new(o)
        }
        "nginx" => {
            let mut o = cr_exploits::nginx::NginxOracle::new();
            o.proc().mem.map(secret, len, cr_vm::Prot::RW);
            Box::new(o)
        }
        other => panic!("unknown oracle {other:?}"),
    };
    let out = cr_exploits::scan(oracle.as_mut(), start, end, stride);
    TaskResult::Poc {
        oracle: oracle.name().to_string(),
        mapped: out.mapped.len(),
        probes: out.probes,
        located: out.mapped.contains(&secret),
        crashed: out.crashed,
    }
}
