//! # cr-vm — paged-memory CPU emulator
//!
//! Executes the `cr-isa` x86-64 subset over a 4 KiB-paged address space
//! with RWX permissions. Access violations surface as [`Fault`] values and
//! leave `rip` at the faulting instruction, which is exactly what the OS
//! personalities in `cr-os` need to implement signals (Linux) and SEH
//! dispatch (Windows) — the two mechanisms crash-resistant primitives are
//! made of.
//!
//! Instrumentation is pluggable via the [`Hook`] trait; the taint engine
//! and coverage harvesting are hooks, mirroring the Pin/libdft/DynamoRIO
//! tooling of the paper.
//!
//! # Examples
//!
//! ```
//! use cr_vm::{Cpu, Memory, Prot, Exit, NullHook};
//! use cr_isa::{Asm, Reg};
//!
//! let mut a = Asm::new(0x1000);
//! a.mov_ri(Reg::Rax, 41);
//! a.add_ri(Reg::Rax, 1);
//! a.hlt();
//! let code = a.assemble()?.code;
//!
//! let mut mem = Memory::new();
//! mem.map(0x1000, 0x1000, Prot::RX);
//! mem.poke(0x1000, &code)?;
//! let mut cpu = Cpu::new();
//! cpu.rip = 0x1000;
//! while cpu.step(&mut mem, &mut NullHook) == Exit::Normal {}
//! assert_eq!(cpu.reg(Reg::Rax), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cpu;
mod hook;
mod mem;

pub use cpu::{Cpu, Exit, Flags};
pub use hook::{CoverageHook, Hook, NullHook, PairHook};
pub use mem::{Access, Fault, Memory, Prot, PAGE_SIZE};
