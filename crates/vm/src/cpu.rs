//! CPU state and single-step execution engine.

use crate::hook::Hook;
use crate::mem::{Fault, Memory};
use cr_isa::{decode, AluOp, Cond, Decoded, Inst, Mem as MemOp, Reg, Rm, ShiftOp, Width};
use std::collections::HashMap;

/// Upper bound on cached decoded instructions before the cache resets.
const ICACHE_CAP: usize = 1 << 16;

/// Arithmetic flags (the subset the ISA's conditions need).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

impl Flags {
    /// Evaluate a condition code against the flags.
    pub fn cond(&self, c: Cond) -> bool {
        match c {
            Cond::O => self.of,
            Cond::No => !self.of,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || self.sf != self.of,
            Cond::G => !self.zf && self.sf == self.of,
        }
    }
}

/// Why a [`Cpu::step`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// The instruction retired normally.
    Normal,
    /// A `syscall` retired; the OS personality must service it.
    Syscall,
    /// A `cpuid` retired; used as a monitor hypercall by test drivers.
    Hypercall,
    /// An `int3` retired (breakpoint).
    Breakpoint,
    /// A `hlt` retired; targets use it as a cooperative yield.
    Halt,
    /// Illegal or undecodable instruction; `rip` unchanged.
    IllegalInst,
    /// Memory access violation; `rip` unchanged (points at the faulting
    /// instruction so exception dispatch can locate the guarded region).
    Fault(Fault),
}

/// Architectural register and flag state, plus a retired-instruction
/// counter.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers, indexed by [`Reg::encoding`].
    pub regs: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Arithmetic flags.
    pub flags: Flags,
    /// Retired instruction count.
    pub steps: u64,
    /// Decoded-instruction cache, keyed by VA and validated against the
    /// memory generation (invalidated on map/unmap/protect/poke).
    icache: HashMap<u64, Decoded>,
    icache_gen: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

impl Cpu {
    /// A zeroed CPU.
    pub fn new() -> Cpu {
        Cpu {
            regs: [0; 16],
            rip: 0,
            flags: Flags::default(),
            steps: 0,
            icache: HashMap::new(),
            icache_gen: 0,
        }
    }

    /// Read a full 64-bit register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.encoding() as usize]
    }

    /// Write a full 64-bit register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.encoding() as usize] = v;
    }

    /// Read a register at the given width (zero-extended).
    #[inline]
    pub fn reg_w(&self, r: Reg, w: Width) -> u64 {
        self.reg(r) & w.mask()
    }

    /// Write a register at the given width with x86 semantics:
    /// 64-bit replaces, 32-bit zero-extends, 8-bit merges the low byte.
    #[inline]
    pub fn set_reg_w(&mut self, r: Reg, w: Width, v: u64) {
        let cur = self.reg(r);
        let nv = match w {
            Width::B8 => v,
            Width::B4 => v & 0xFFFF_FFFF,
            Width::B1 => (cur & !0xFF) | (v & 0xFF),
        };
        self.set_reg(r, nv);
    }

    /// Effective address of a memory operand, given the address of the
    /// *next* instruction (for RIP-relative operands).
    pub fn effective_addr(&self, m: &MemOp, next_rip: u64) -> u64 {
        if m.rip {
            return next_rip.wrapping_add(m.disp as i64 as u64);
        }
        let mut a = m.disp as i64 as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.reg(b));
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.reg(i).wrapping_mul(s as u64));
        }
        a
    }

    fn alu(&mut self, op: AluOp, a: u64, b: u64, w: Width) -> u64 {
        let mask = w.mask();
        let (a, b) = (a & mask, b & mask);
        let sign = w.sign_bit();
        let r = match op {
            AluOp::Add => {
                let r = a.wrapping_add(b) & mask;
                self.flags.cf = r < a;
                self.flags.of = (a ^ r) & (b ^ r) & sign != 0;
                r
            }
            AluOp::Sub | AluOp::Cmp => {
                let r = a.wrapping_sub(b) & mask;
                self.flags.cf = a < b;
                self.flags.of = (a ^ b) & (a ^ r) & sign != 0;
                r
            }
            AluOp::And | AluOp::Test => {
                self.flags.cf = false;
                self.flags.of = false;
                a & b
            }
            AluOp::Or => {
                self.flags.cf = false;
                self.flags.of = false;
                a | b
            }
            AluOp::Xor => {
                self.flags.cf = false;
                self.flags.of = false;
                a ^ b
            }
        };
        self.flags.zf = r == 0;
        self.flags.sf = r & sign != 0;
        r
    }

    fn read_rm(
        &self,
        rm: Rm,
        w: Width,
        next: u64,
        mem: &Memory,
        hook: &mut dyn Hook,
    ) -> Result<u64, Fault> {
        match rm {
            Rm::Reg(r) => Ok(self.reg_w(r, w)),
            Rm::Mem(m) => {
                let ea = self.effective_addr(&m, next);
                let v = mem.read_width(ea, w.bytes())?;
                hook.on_mem_read(self, ea, w.bytes());
                Ok(v)
            }
        }
    }

    fn write_rm(
        &mut self,
        rm: Rm,
        w: Width,
        v: u64,
        next: u64,
        mem: &mut Memory,
        hook: &mut dyn Hook,
    ) -> Result<(), Fault> {
        match rm {
            Rm::Reg(r) => {
                self.set_reg_w(r, w, v);
                Ok(())
            }
            Rm::Mem(m) => {
                let ea = self.effective_addr(&m, next);
                mem.write_width(ea, v, w.bytes())?;
                hook.on_mem_write(self, ea, w.bytes());
                Ok(())
            }
        }
    }

    /// Execute one instruction.
    ///
    /// On a fault or illegal instruction, `rip` still points at the
    /// offending instruction; otherwise it has advanced (or jumped).
    pub fn step(&mut self, mem: &mut Memory, hook: &mut dyn Hook) -> Exit {
        if self.icache_gen != mem.generation() || self.icache.len() >= ICACHE_CAP {
            self.icache.clear();
            self.icache_gen = mem.generation();
        }
        let d = if let Some(d) = self.icache.get(&self.rip) {
            *d
        } else {
            let mut bytes = [0u8; 15];
            let n = match mem.fetch(self.rip, &mut bytes) {
                Ok(n) => n,
                Err(f) => return Exit::Fault(f),
            };
            let d = match decode(&bytes[..n]) {
                Ok(d) => d,
                Err(_) => return Exit::IllegalInst,
            };
            self.icache.insert(self.rip, d);
            d
        };
        let next = self.rip.wrapping_add(d.len as u64);
        hook.on_inst(self, mem, &d.inst, self.rip, d.len);

        macro_rules! fault {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(f) => return Exit::Fault(f),
                }
            };
        }

        let mut exit = Exit::Normal;
        match d.inst {
            Inst::MovRRm { dst, src, width } => {
                let v = fault!(self.read_rm(src, width, next, mem, hook));
                // Plain 32-bit loads zero-extend; byte loads via `mov r8`
                // merge, byte loads via `movzx` are handled below.
                match width {
                    Width::B4 => self.set_reg(dst, v),
                    _ => self.set_reg_w(dst, width, v),
                }
            }
            Inst::MovRmR { dst, src, width } => {
                let v = self.reg_w(src, width);
                fault!(self.write_rm(dst, width, v, next, mem, hook));
            }
            Inst::MovRI { dst, imm } => self.set_reg(dst, imm),
            Inst::MovRmI { dst, imm, width } => {
                let v = imm as i64 as u64;
                fault!(self.write_rm(dst, width, v, next, mem, hook));
            }
            Inst::Movzx { dst, src, .. } => {
                let v = fault!(self.read_rm(src, Width::B1, next, mem, hook));
                self.set_reg(dst, v & 0xFF);
            }
            Inst::Lea { dst, mem: m } => {
                let ea = self.effective_addr(&m, next);
                self.set_reg(dst, ea);
            }
            Inst::AluRRm {
                op,
                dst,
                src,
                width,
            } => {
                let a = self.reg_w(dst, width);
                let b = fault!(self.read_rm(src, width, next, mem, hook));
                let r = self.alu(op, a, b, width);
                if op.writes_dst() {
                    match width {
                        Width::B4 => self.set_reg(dst, r),
                        _ => self.set_reg_w(dst, width, r),
                    }
                }
            }
            Inst::AluRmR {
                op,
                dst,
                src,
                width,
            } => {
                let a = fault!(self.read_rm(dst, width, next, mem, hook));
                let b = self.reg_w(src, width);
                let r = self.alu(op, a, b, width);
                if op.writes_dst() {
                    fault!(self.write_rm(dst, width, r, next, mem, hook));
                }
            }
            Inst::AluRmI {
                op,
                dst,
                imm,
                width,
            } => {
                let a = fault!(self.read_rm(dst, width, next, mem, hook));
                let b = imm as i64 as u64;
                let r = self.alu(op, a, b, width);
                if op.writes_dst() {
                    fault!(self.write_rm(dst, width, r, next, mem, hook));
                }
            }
            Inst::ShiftRI { op, dst, amount } => {
                let a = self.reg(dst);
                let n = (amount & 63) as u32;
                if n != 0 {
                    let r = match op {
                        ShiftOp::Shl => {
                            self.flags.cf = n <= 64 && (a >> (64 - n)) & 1 != 0;
                            a.wrapping_shl(n)
                        }
                        ShiftOp::Shr => {
                            self.flags.cf = (a >> (n - 1)) & 1 != 0;
                            a.wrapping_shr(n)
                        }
                        ShiftOp::Sar => {
                            self.flags.cf = (a >> (n - 1)) & 1 != 0;
                            ((a as i64) >> n) as u64
                        }
                    };
                    self.flags.zf = r == 0;
                    self.flags.sf = r & (1 << 63) != 0;
                    self.set_reg(dst, r);
                }
            }
            Inst::Neg(r) => {
                let v = self.reg(r);
                let res = 0u64.wrapping_sub(v);
                self.flags.cf = v != 0;
                self.flags.of = v == 1 << 63;
                self.flags.zf = res == 0;
                self.flags.sf = res & (1 << 63) != 0;
                self.set_reg(r, res);
            }
            Inst::Not(r) => {
                let v = self.reg(r);
                self.set_reg(r, !v);
            }
            Inst::Imul { dst, src } => {
                let a = self.reg(dst) as i64 as i128;
                let b = fault!(self.read_rm(src, Width::B8, next, mem, hook)) as i64 as i128;
                let full = a * b;
                let trunc = full as i64;
                self.flags.cf = full != trunc as i128;
                self.flags.of = self.flags.cf;
                self.flags.zf = trunc == 0;
                self.flags.sf = trunc < 0;
                self.set_reg(dst, trunc as u64);
            }
            Inst::Cmov { cond, dst, src } => {
                // x86 semantics: the source is read (and may fault) even
                // when the condition is false.
                let v = fault!(self.read_rm(src, Width::B8, next, mem, hook));
                if self.flags.cond(cond) {
                    self.set_reg(dst, v);
                }
            }
            Inst::Xchg(a, b) => {
                let (va, vb) = (self.reg(a), self.reg(b));
                self.set_reg(a, vb);
                self.set_reg(b, va);
            }
            Inst::Push(r) => {
                let sp = self.reg(Reg::Rsp).wrapping_sub(8);
                let v = self.reg(r);
                fault!(mem.write_u64(sp, v));
                hook.on_mem_write(self, sp, 8);
                self.set_reg(Reg::Rsp, sp);
            }
            Inst::Pop(r) => {
                let sp = self.reg(Reg::Rsp);
                let v = fault!(mem.read_u64(sp));
                hook.on_mem_read(self, sp, 8);
                self.set_reg(Reg::Rsp, sp.wrapping_add(8));
                self.set_reg(r, v);
            }
            Inst::CallRel(rel) => {
                let sp = self.reg(Reg::Rsp).wrapping_sub(8);
                fault!(mem.write_u64(sp, next));
                hook.on_mem_write(self, sp, 8);
                self.set_reg(Reg::Rsp, sp);
                let target = next.wrapping_add(rel as i64 as u64);
                hook.on_call(self, next, target);
                self.rip = target;
                self.steps += 1;
                return Exit::Normal;
            }
            Inst::CallRm(rm) => {
                let target = fault!(self.read_rm(rm, Width::B8, next, mem, hook));
                let sp = self.reg(Reg::Rsp).wrapping_sub(8);
                fault!(mem.write_u64(sp, next));
                hook.on_mem_write(self, sp, 8);
                self.set_reg(Reg::Rsp, sp);
                hook.on_call(self, next, target);
                self.rip = target;
                self.steps += 1;
                return Exit::Normal;
            }
            Inst::JmpRel(rel) => {
                self.rip = next.wrapping_add(rel as i64 as u64);
                self.steps += 1;
                return Exit::Normal;
            }
            Inst::JmpRm(rm) => {
                let target = fault!(self.read_rm(rm, Width::B8, next, mem, hook));
                self.rip = target;
                self.steps += 1;
                return Exit::Normal;
            }
            Inst::Jcc { cond, rel } => {
                if self.flags.cond(cond) {
                    self.rip = next.wrapping_add(rel as i64 as u64);
                    self.steps += 1;
                    return Exit::Normal;
                }
            }
            Inst::Setcc { cond, dst } => {
                let v = self.flags.cond(cond) as u64;
                self.set_reg_w(dst, Width::B1, v);
            }
            Inst::Ret => {
                let sp = self.reg(Reg::Rsp);
                let ra = fault!(mem.read_u64(sp));
                hook.on_mem_read(self, sp, 8);
                self.set_reg(Reg::Rsp, sp.wrapping_add(8));
                hook.on_ret(self, ra);
                self.rip = ra;
                self.steps += 1;
                return Exit::Normal;
            }
            Inst::Syscall => {
                // Hardware clobbers: rcx = return RIP, r11 = rflags.
                self.set_reg(Reg::Rcx, next);
                self.set_reg(Reg::R11, 0x202);
                exit = Exit::Syscall;
            }
            Inst::Int3 => exit = Exit::Breakpoint,
            Inst::Nop => {}
            Inst::Ud2 => return Exit::IllegalInst,
            Inst::Hlt => exit = Exit::Halt,
            Inst::Cpuid => exit = Exit::Hypercall,
        }
        self.rip = next;
        self.steps += 1;
        exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NullHook;
    use crate::mem::Prot;
    use cr_isa::Asm;
    use Reg::*;

    fn run_asm(build: impl FnOnce(&mut Asm)) -> (Cpu, Memory) {
        let mut a = Asm::new(0x40_0000);
        build(&mut a);
        let asm = a.assemble().unwrap();
        let mut mem = Memory::new();
        mem.map(0x40_0000, asm.code.len() as u64 + 0x1000, Prot::RX);
        mem.poke(0x40_0000, &asm.code).unwrap();
        mem.map(0x7F_0000, 0x1_0000, Prot::RW); // stack
        let mut cpu = Cpu::new();
        cpu.rip = 0x40_0000;
        cpu.set_reg(Rsp, 0x7F_F000);
        (cpu, mem)
    }

    fn run_until_halt(cpu: &mut Cpu, mem: &mut Memory) {
        for _ in 0..10_000 {
            match cpu.step(mem, &mut NullHook) {
                Exit::Normal | Exit::Syscall => {}
                Exit::Halt => return,
                other => panic!("unexpected exit {other:?} at rip {:#x}", cpu.rip),
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10 into rax.
        let (mut cpu, mut mem) = run_asm(|a| {
            a.zero(Rax);
            a.mov_ri(Rcx, 10);
            let top = a.here();
            a.add_rr(Rax, Rcx);
            a.sub_ri(Rcx, 1);
            a.cmp_ri(Rcx, 0);
            a.jcc(cr_isa::Cond::Ne, top);
            a.hlt();
        });
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rax), 55);
    }

    #[test]
    fn call_ret_stack() {
        let (mut cpu, mut mem) = run_asm(|a| {
            let f = a.fresh();
            a.call_label(f);
            a.hlt();
            a.bind(f);
            a.mov_ri(Rax, 0x1234);
            a.ret();
        });
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rax), 0x1234);
        assert_eq!(cpu.reg(Rsp), 0x7F_F000);
    }

    #[test]
    fn faulting_load_preserves_rip() {
        let (mut cpu, mut mem) = run_asm(|a| {
            a.mov_ri(Rdi, 0xdead_0000);
            a.load(Rax, cr_isa::Mem::base(Rdi));
            a.hlt();
        });
        assert_eq!(cpu.step(&mut mem, &mut NullHook), Exit::Normal);
        let rip_before = cpu.rip;
        match cpu.step(&mut mem, &mut NullHook) {
            Exit::Fault(f) => {
                assert_eq!(f.addr, 0xdead_0000);
                assert!(!f.mapped);
            }
            other => panic!("expected fault, got {other:?}"),
        }
        assert_eq!(
            cpu.rip, rip_before,
            "rip must stay at the faulting instruction"
        );
    }

    #[test]
    fn width_semantics() {
        let (mut cpu, mut mem) = run_asm(|a| {
            a.mov_ri(Rax, 0xFFFF_FFFF_FFFF_FFFF);
            // 32-bit mov zero-extends.
            a.inst(cr_isa::Inst::MovRmI {
                dst: cr_isa::Rm::Reg(Rax),
                imm: -1,
                width: cr_isa::Width::B4,
            });
            a.hlt();
        });
        // MovRmI with B4 writes via set_reg_w → zero-extends.
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rax), 0x0000_0000_FFFF_FFFF);
    }

    #[test]
    fn signed_conditions() {
        let (mut cpu, mut mem) = run_asm(|a| {
            a.mov_ri(Rax, (-5i64) as u64);
            a.cmp_ri(Rax, 3);
            a.mov_ri(Rbx, 0);
            let ge = a.fresh();
            a.jcc(cr_isa::Cond::Ge, ge);
            a.mov_ri(Rbx, 1); // taken: -5 < 3
            a.bind(ge);
            a.hlt();
        });
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rbx), 1);
    }

    #[test]
    fn unsigned_conditions() {
        let (mut cpu, mut mem) = run_asm(|a| {
            a.mov_ri(Rax, (-5i64) as u64); // huge unsigned
            a.cmp_ri(Rax, 3);
            a.mov_ri(Rbx, 0);
            let be = a.fresh();
            a.jcc(cr_isa::Cond::Be, be);
            a.mov_ri(Rbx, 1); // taken: 0xfff..b > 3 unsigned
            a.bind(be);
            a.hlt();
        });
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rbx), 1);
    }

    #[test]
    fn syscall_clobbers_rcx_r11() {
        let (mut cpu, mut mem) = run_asm(|a| {
            a.mov_ri(Rcx, 7);
            a.syscall();
            a.hlt();
        });
        assert_eq!(cpu.step(&mut mem, &mut NullHook), Exit::Normal);
        let rip = cpu.rip;
        assert_eq!(cpu.step(&mut mem, &mut NullHook), Exit::Syscall);
        assert_eq!(cpu.reg(Rcx), rip + 2, "rcx = return address after syscall");
    }

    #[test]
    fn rip_relative_load() {
        let (mut cpu, mut mem) = run_asm(|a| {
            let data = a.fresh();
            a.load(Rax, cr_isa::Mem::rip(0)); // placeholder; fixed below
            a.hlt();
            a.bind(data);
            a.bytes(&0xCAFE_u64.to_le_bytes());
        });
        // Patch: rewrite the first inst by assembling with the right disp.
        // Simpler: execute a fresh program via lea_label.
        let _ = (&mut cpu, &mut mem);
        let mut a = Asm::new(0x40_0000);
        let data = a.fresh();
        a.lea_label(Rbx, data);
        a.load(Rax, cr_isa::Mem::base(Rbx));
        a.hlt();
        a.bind(data);
        a.bytes(&0xCAFE_u64.to_le_bytes());
        let asm = a.assemble().unwrap();
        let mut mem = Memory::new();
        mem.map(0x40_0000, 0x1000, Prot::RX);
        mem.poke(0x40_0000, &asm.code).unwrap();
        let mut cpu = Cpu::new();
        cpu.rip = 0x40_0000;
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rax), 0xCAFE);
    }

    #[test]
    fn icache_invalidates_on_code_poke() {
        // Run a loop twice; between runs, patch the loop body via poke
        // (debugger-style write). The second run must see the new code.
        let mut a = Asm::new(0x1000);
        a.global("f");
        a.mov_ri(Rax, 1);
        a.hlt();
        let asm = a.assemble().unwrap();
        let mut mem = Memory::new();
        mem.map(0x1000, 0x1000, Prot::RX);
        mem.poke(0x1000, &asm.code).unwrap();
        let mut cpu = Cpu::new();
        cpu.rip = 0x1000;
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rax), 1);
        // Patch `mov rax, 1` → `mov rax, 2`.
        let mut a2 = Asm::new(0x1000);
        a2.mov_ri(Rax, 2);
        a2.hlt();
        mem.poke(0x1000, &a2.assemble().unwrap().code).unwrap();
        cpu.rip = 0x1000;
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rax), 2, "stale icache entry would return 1");
    }

    #[test]
    fn ud2_is_illegal() {
        let (mut cpu, mut mem) = run_asm(|a| {
            a.ud2();
        });
        assert_eq!(cpu.step(&mut mem, &mut NullHook), Exit::IllegalInst);
        assert_eq!(cpu.rip, 0x40_0000);
    }

    #[test]
    fn extended_alu_instructions() {
        let (mut cpu, mut mem) = run_asm(|a| {
            a.mov_ri(Rax, 7);
            a.inst(cr_isa::Inst::Neg(Rax)); // -7
            a.mov_ri(Rbx, 3);
            a.inst(cr_isa::Inst::Imul {
                dst: Rax,
                src: cr_isa::Rm::Reg(Rbx),
            }); // -21
            a.inst(cr_isa::Inst::Not(Rax)); // !(-21) = 20
            a.mov_ri(Rdx, 100);
            a.inst(cr_isa::Inst::Xchg(Rax, Rdx)); // rax=100, rdx=20
            a.hlt();
        });
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rax), 100);
        assert_eq!(cpu.reg(Rdx), 20);
    }

    #[test]
    fn cmov_moves_only_when_condition_holds() {
        let (mut cpu, mut mem) = run_asm(|a| {
            a.mov_ri(Rax, 1);
            a.mov_ri(Rbx, 42);
            a.mov_ri(Rdx, 99);
            a.cmp_ri(Rax, 1);
            a.inst(cr_isa::Inst::Cmov {
                cond: cr_isa::Cond::E,
                dst: Rsi,
                src: cr_isa::Rm::Reg(Rbx),
            });
            a.inst(cr_isa::Inst::Cmov {
                cond: cr_isa::Cond::Ne,
                dst: Rdi,
                src: cr_isa::Rm::Reg(Rdx),
            });
            a.hlt();
        });
        cpu.set_reg(Rsi, 0);
        cpu.set_reg(Rdi, 7);
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rsi), 42, "taken cmov moves");
        assert_eq!(cpu.reg(Rdi), 7, "untaken cmov preserves");
    }

    #[test]
    fn cmov_source_faults_even_when_untaken() {
        let (mut cpu, mut mem) = run_asm(|a| {
            a.mov_ri(Rdi, 0xdead_0000);
            a.cmp_ri(Rdi, 0); // NE
            a.inst(cr_isa::Inst::Cmov {
                cond: cr_isa::Cond::E, // false
                dst: Rax,
                src: cr_isa::Rm::Mem(cr_isa::Mem::base(Rdi)),
            });
            a.hlt();
        });
        loop {
            match cpu.step(&mut mem, &mut NullHook) {
                Exit::Normal => {}
                Exit::Fault(f) => {
                    assert_eq!(f.addr, 0xdead_0000);
                    return;
                }
                e => panic!("expected fault, got {e:?}"),
            }
        }
    }

    #[test]
    fn setcc() {
        let (mut cpu, mut mem) = run_asm(|a| {
            a.mov_ri(Rax, 5);
            a.cmp_ri(Rax, 5);
            a.mov_ri(Rbx, 0xFFFF);
            a.setcc(cr_isa::Cond::E, Rbx);
            a.hlt();
        });
        run_until_halt(&mut cpu, &mut mem);
        assert_eq!(cpu.reg(Rbx), 0xFF01); // only low byte written
    }
}
